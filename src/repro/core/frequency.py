"""Frequency-estimation extension of DAP for categorical data (Section V-D).

The paper's numerical machinery carries over to categorical data almost
unchanged: with k-RR as the perturbation mechanism, the transform matrix's
normal block is the k-RR transition matrix and each *candidate poisoned
category* contributes an identity poison column (Byzantine users report their
poisoned category directly).  The open design point is how to locate the
poisoned categories — the paper sketches a recursive variant of Algorithm 3.

This implementation uses greedy forward selection driven by the EM
log-likelihood: starting from "no category is poisoned", it repeatedly adds
the category whose poison column improves the reconstruction likelihood the
most, and stops when the improvement drops below a threshold.  This realises
the same idea (a poison column on a genuinely poisoned category explains the
observed excess far better than the k-RR mixture can) with a sharper, scale-
aware stopping rule; DESIGN.md records it as an implementation choice.

Once the poisoned categories are known, EMF* with the probed ``gamma_hat``
reconstructs the normal users' frequency histogram, which is the quantity
Figure 9(c)(d) evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Literal, Sequence, Tuple

import numpy as np

from repro.backends import get_backend, use_backend
from repro.collect.accumulators import CategoryCountAccumulator
from repro.collect.sharding import (
    DEFAULT_SHARD_BLOCK,
    build_shard_plan,
    run_shard_tasks,
)
from repro.collect.streaming import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.core.emf_star import constrained_m_step
from repro.core.probing import PROBE_STRATEGIES, check_probe_strategy
from repro.ldp.ems import EMResult, em_reconstruct, em_reconstruct_batch
from repro.ldp.krr import KRandomizedResponse
from repro.protocol.pipeline import ProtocolPipeline
from repro.protocol.plan import ProtocolPlan
from repro.utils.profiling import profiled_stage, stage
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_integer, check_positive

EstimatorName = Literal["emf", "emf_star", "cemf_star"]

#: Domains past this size make the dense route pathological: the probe's
#: ``k x k`` transform alone is ``8 k^2`` bytes (0.5 GiB at 8192) and the
#: greedy search is O(k^2) per round.  Larger domains belong on the sketch
#: route (:class:`repro.core.sketch_frequency.SketchFrequencyDAP`), whose
#: state is ``rows x width`` regardless of ``k``.
DENSE_MAX_CATEGORIES = 8192


def ostrich_frequencies(
    mechanism: KRandomizedResponse, reports: np.ndarray, clip: bool = True
) -> np.ndarray:
    """The undefended frequency estimator (standard k-RR de-biasing)."""
    frequencies = mechanism.estimate_frequencies(reports)
    if clip:
        frequencies = np.clip(frequencies, 0.0, 1.0)
        total = frequencies.sum()
        if total > 0:
            frequencies = frequencies / total
    return frequencies


@dataclass
class FrequencyDAPResult:
    """Outcome of the categorical DAP pipeline.

    Attributes
    ----------
    frequencies:
        Estimated frequency histogram of the *normal* users (sums to one).
    poisoned_categories:
        Categories identified as poisoned, in selection order.
    gamma_hat:
        Estimated fraction of poison reports.
    log_likelihood_gains:
        Likelihood improvement recorded when each poisoned category was added
        (diagnostic for the greedy probe).
    """

    frequencies: np.ndarray
    poisoned_categories: List[int] = field(default_factory=list)
    gamma_hat: float = 0.0
    log_likelihood_gains: List[float] = field(default_factory=list)
    #: reports dropped by the contribution-cap client gate (end-to-end runs)
    skipped_reports: int = 0
    #: privacy-amplification ledger (``None`` under the local protocol)
    amplification: List[dict] | None = None


class FrequencyDAP:
    """Collusion-robust frequency estimation on top of k-RR.

    Parameters
    ----------
    epsilon:
        Privacy budget of the k-RR reports.
    n_categories:
        Size of the categorical domain.
    estimator:
        ``"emf"`` (plain reconstruction), ``"emf_star"`` (gamma-constrained,
        the default) or ``"cemf_star"`` (additionally suppresses candidate
        poison columns that received negligible mass).
    max_poisoned:
        Upper bound on the number of poisoned categories the probe may flag
        (defaults to half the domain, mirroring the BFT bound).
    min_likelihood_gain:
        Greedy-probe stopping threshold on the per-step log-likelihood gain.
    probe_strategy:
        How each greedy round evaluates its candidate hypotheses.
        ``"batched"`` (the default) solves every surviving candidate of a
        round in one batched EM (:func:`repro.ldp.ems.em_reconstruct_batch`),
        warm-started from the incumbent's converged weights, after a sound
        likelihood-cap screen discarded candidates that provably cannot reach
        the gain threshold.  ``"cold"`` is the bit-stable fallback: one
        cold-start EM solve per candidate per round, exactly the historical
        search.  Both strategies select the same poison set (the screen is a
        proof, the warm start a test-enforced property), and the final
        estimate is always recomputed on the bit-stable path, so
        :meth:`estimate_from_counts` results are identical either way.
    """

    def __init__(
        self,
        epsilon: float,
        n_categories: int,
        estimator: EstimatorName = "emf_star",
        max_poisoned: int | None = None,
        min_likelihood_gain: float = 2.0,
        probe_strategy: str = "batched",
        protocol: str = "local",
        contribution_cap: int | None = None,
        shuffle_seed: int = 0,
    ) -> None:
        self.epsilon = check_positive(epsilon, "epsilon")
        self.n_categories = check_integer(n_categories, "n_categories", minimum=2)
        if self.n_categories > DENSE_MAX_CATEGORIES:
            transform_gib = 8.0 * float(self.n_categories) ** 2 / 2**30
            raise ValueError(
                f"n_categories={self.n_categories} exceeds the dense-route "
                f"limit ({DENSE_MAX_CATEGORIES}): the probe's k x k transform "
                f"alone would need ~{transform_gib:.1f} GiB; use the sketch "
                f"route (SketchFrequencyDAP / mechanism 'count-sketch') for "
                f"high-cardinality domains"
            )
        if estimator not in ("emf", "emf_star", "cemf_star"):
            raise ValueError(
                f"estimator must be 'emf', 'emf_star' or 'cemf_star', got {estimator!r}"
            )
        self.estimator = estimator
        self.max_poisoned = (
            max(1, n_categories // 2) if max_poisoned is None else int(max_poisoned)
        )
        self.min_likelihood_gain = check_positive(min_likelihood_gain, "min_likelihood_gain")
        self.probe_strategy = check_probe_strategy(probe_strategy)
        # the frequency route has a single budget group, so the shuffle
        # protocol leaves the adversary's reach unchanged (poison is already
        # category-targeted); what shuffling adds here is the amplification
        # ledger and the transport mixing (statistics-invariant)
        self.protocol_plan = ProtocolPlan(
            protocol=protocol,
            contribution_cap=contribution_cap,
            shuffle_seed=shuffle_seed,
        )
        self.mechanism = KRandomizedResponse(epsilon, n_categories)
        # transform caches: the k x k normal block never changes for a given
        # instance, and repeated solves over one poison set (plain EMF, then
        # the gamma-constrained re-solve) reuse the identical stacked matrix
        self._normal_block: np.ndarray | None = None
        self._transform_cache: tuple[tuple[int, ...], np.ndarray] | None = None

    # ------------------------------------------------------------------
    # protocol pipeline
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> ProtocolPipeline:
        """Stage helpers for the configured protocol (cheap to build)."""
        return ProtocolPipeline(self.protocol_plan)

    def _reports_per_user(self) -> int:
        """Each user sends one k-RR report, unless the cap drops it."""
        return self.protocol_plan.effective_repeats(1)

    def contribution_summary(self, n_total: int) -> int:
        """Reports the contribution cap drops for ``n_total`` users."""
        return self.pipeline.skipped_reports([int(n_total)], [1])

    # ------------------------------------------------------------------
    # client-side simulation helpers
    # ------------------------------------------------------------------
    @profiled_stage("collect")
    def collect(
        self,
        normal_categories: np.ndarray,
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Simulate one collection round.

        Normal users perturb their category with k-RR; Byzantine users report
        one of the ``poisoned_categories`` directly (uniformly at random among
        them), which is the strongest attack available in the k-RR output
        domain.  The combined batch then rides the transport stage.
        """
        rng = ensure_rng(rng)
        pipeline = self.pipeline
        normal_categories = np.asarray(normal_categories, dtype=int)
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)
        if not self._reports_per_user():
            return np.empty(0, dtype=int)
        with stage("collect.sample"):
            reports = [self.mechanism.perturb(normal_categories, rng)]
        if n_byzantine:
            if not poisoned_categories:
                raise ValueError(
                    "poisoned_categories must be provided when n_byzantine > 0"
                )
            targets = np.asarray(list(poisoned_categories), dtype=int)
            with stage("collect.poison"):
                poison = targets[rng.integers(0, targets.size, size=n_byzantine)]
            reports.append(poison)
        merged = np.concatenate(reports)
        return pipeline.deliver(merged, (0, merged.size))

    @profiled_stage("collect")
    def collect_stream(
        self,
        category_chunks: Iterable[np.ndarray],
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
        poison_chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> CategoryCountAccumulator:
        """Chunked collection into a category-count accumulator.

        The streaming counterpart of :meth:`collect`: normal users' category
        chunks are perturbed and counted as they arrive, and Byzantine
        reports are drawn in bounded chunks, so memory never scales with the
        population.  Feed the result to :meth:`estimate_from_counts`.
        """
        rng = ensure_rng(rng)
        pipeline = self.pipeline
        capped = not self._reports_per_user()
        lane = 0
        accumulator = CategoryCountAccumulator(self.n_categories)
        for chunk in category_chunks:
            chunk = np.asarray(chunk, dtype=int).ravel()
            if chunk.size and not capped:
                with stage("collect.sample"):
                    reports = self.mechanism.perturb(chunk, rng)
                reports = pipeline.deliver(reports, (0, lane, reports.size))
                lane += 1
                with stage("collect.accumulate"):
                    accumulator.update(reports)
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)
        if n_byzantine and not capped:
            if not poisoned_categories:
                raise ValueError(
                    "poisoned_categories must be provided when n_byzantine > 0"
                )
            targets = np.asarray(list(poisoned_categories), dtype=int)
            for start, stop in iter_chunks(n_byzantine, poison_chunk_size):
                with stage("collect.poison"):
                    poison = targets[rng.integers(0, targets.size, size=stop - start)]
                poison = pipeline.deliver(poison, (0, lane, poison.size))
                lane += 1
                with stage("collect.accumulate"):
                    accumulator.update(poison)
        return accumulator

    @profiled_stage("collect")
    def collect_sharded(
        self,
        normal_categories: np.ndarray,
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
        n_shards: int = 1,
        n_workers: int | None = None,
        block_size: int = DEFAULT_SHARD_BLOCK,
    ) -> CategoryCountAccumulator:
        """Sharded collection into one merged category-count accumulator.

        The categorical counterpart of
        :meth:`repro.core.dap.DAPProtocol.collect_sharded`: the users are cut
        into fixed-size blocks with one pre-drawn seed each
        (:func:`repro.collect.build_shard_plan`), shards — contiguous runs of
        blocks — are processed independently (optionally over a process
        pool), and the per-shard counts are folded with ``merge()``.  The
        merged counts are bit-identical at any ``n_shards`` / ``n_workers``.
        """
        rng = ensure_rng(rng)
        normal_categories = np.asarray(normal_categories, dtype=int).ravel()
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)
        if n_byzantine and not poisoned_categories:
            raise ValueError(
                "poisoned_categories must be provided when n_byzantine > 0"
            )
        targets = np.asarray(list(poisoned_categories), dtype=int)
        if not self._reports_per_user():
            return CategoryCountAccumulator(self.n_categories)
        plan = build_shard_plan(
            [normal_categories.size],
            [n_byzantine],
            n_shards=n_shards,
            rng=rng,
            block_size=block_size,
        )
        backend_name = get_backend().name
        tasks = []
        for shard_index in range(plan.n_shards):
            slices = plan.shard(shard_index)
            if not slices:
                continue
            (piece,) = slices
            tasks.append(
                _FrequencyShardTask(
                    epsilon=self.epsilon,
                    n_categories=self.n_categories,
                    categories=normal_categories[
                        piece.normal_start : piece.normal_stop
                    ],
                    normal_seeds=piece.normal_seeds,
                    n_byzantine=piece.n_byzantine,
                    byzantine_seeds=piece.byzantine_seeds,
                    targets=targets,
                    block_size=block_size,
                    backend=backend_name,
                    protocol=self.protocol_plan.protocol,
                    shuffle_seed=self.protocol_plan.shuffle_seed,
                )
            )
        accumulator = CategoryCountAccumulator(self.n_categories)
        for state in run_shard_tasks(_run_frequency_shard, tasks, n_workers):
            accumulator.merge(CategoryCountAccumulator.from_state(state))
        return accumulator

    # ------------------------------------------------------------------
    # collector side
    # ------------------------------------------------------------------
    def _transition_matrix(self) -> np.ndarray:
        """The mechanism's ``k x k`` transition matrix, built once per instance."""
        if self._normal_block is None:
            self._normal_block = self.mechanism.transition_matrix()
        return self._normal_block

    def _build_transform(self, poison_set: Sequence[int]) -> np.ndarray:
        """Normal k-RR block plus identity poison columns for ``poison_set``.

        Single-slot cache keyed on the frozen poison set: the estimator
        re-solves the same poison set back to back (plain EMF for
        ``gamma_hat``, then the constrained re-solve), and rebuilding the
        stacked ``k x (k + m)`` matrix each time dominated small-domain runs.
        The cached matrix is returned as-is — solves never mutate it — so
        repeated calls are bit-identical to fresh builds.
        """
        normal_block = self._transition_matrix()
        if not poison_set:
            return normal_block
        key = tuple(int(category) for category in poison_set)
        if self._transform_cache is not None and self._transform_cache[0] == key:
            return self._transform_cache[1]
        poison_block = np.zeros((self.n_categories, len(poison_set)))
        for column, category in enumerate(poison_set):
            poison_block[category, column] = 1.0
        transform = np.hstack([normal_block, poison_block])
        self._transform_cache = (key, transform)
        return transform

    def _reconstruct(
        self,
        counts: np.ndarray,
        poison_set: Sequence[int],
        gamma_hat: float | None = None,
    ):
        """Run EM (optionally gamma-constrained) for a given poison set."""
        transform = self._build_transform(poison_set)
        m_step = None
        if gamma_hat is not None and poison_set:
            m_step = constrained_m_step(gamma_hat, self.n_categories)
        # the poison columns are one-hot on their category row, so EM can use
        # the split dense + gather/scatter products
        return em_reconstruct(
            transform,
            counts,
            m_step=m_step,
            tol=1e-9,
            max_iter=10_000,
            indicator_tail=np.asarray(list(poison_set), dtype=np.intp),
        )

    def probe_poisoned_categories(
        self, counts: np.ndarray
    ) -> tuple[List[int], List[float]]:
        """Greedy likelihood-driven search for the poisoned categories."""
        poison_set, gains, _ = self._probe(np.asarray(counts, dtype=float))
        return poison_set, gains

    @profiled_stage("probe")
    def _probe(
        self, counts: np.ndarray
    ) -> tuple[List[int], List[float], EMResult | None]:
        """Dispatch the greedy probe; returns ``(poison_set, gains, emf)``.

        The third element is the incumbent's converged plain-EM result when
        the probe produced it on the bit-stable path (cold strategy), so
        :meth:`estimate_from_counts` can reuse it instead of re-solving the
        identical problem; the batched strategy returns ``None`` because its
        warm-started iterates are not bit-comparable to a cold solve.
        """
        if self.probe_strategy == "cold":
            return self._probe_cold(counts)
        return self._probe_batched(counts)

    def _probe_cold(
        self, counts: np.ndarray
    ) -> tuple[List[int], List[float], EMResult | None]:
        """One cold-start EM solve per candidate per round (bit-stable)."""
        poison_set: List[int] = []
        poisoned: set[int] = set()
        gains: List[float] = []
        incumbent = self._reconstruct(counts, poison_set)
        current_ll = incumbent.log_likelihood

        while len(poison_set) < self.max_poisoned:
            best_category = None
            best_ll = current_ll
            best_result = None
            candidate = poison_set + [-1]  # reused buffer: only the tail varies
            for category in range(self.n_categories):
                if category in poisoned:
                    continue
                candidate[-1] = category
                result = self._reconstruct(counts, candidate)
                if result.log_likelihood > best_ll:
                    best_ll = result.log_likelihood
                    best_category = category
                    best_result = result
            if best_category is None:
                break
            gain = best_ll - current_ll
            if gain < self.min_likelihood_gain:
                break
            poison_set.append(best_category)
            poisoned.add(best_category)
            gains.append(float(gain))
            current_ll = best_ll
            incumbent = best_result
        return poison_set, gains, incumbent

    def _probe_batched(
        self, counts: np.ndarray
    ) -> tuple[List[int], List[float], EMResult | None]:
        """Batched hypothesis evaluation: screen, warm-start, solve jointly.

        Each greedy round (1) discards candidates whose log-likelihood
        provably cannot reach ``current_ll + min_likelihood_gain`` — for any
        weight vector ``F``, ``(A @ F)_i <= max_k A[i, k]``, so
        ``sum_i c_i log(max_k A[i, k])`` caps the achievable likelihood, and
        a candidate's cap differs from the incumbent's only through the rows
        its indicator column lifts to one; (2) solves every survivor in one
        batched EM, each hypothesis warm-started from the incumbent's
        converged weights with the new component seeded at a uniform share.
        Screened-out candidates can never change the selection: if the best
        survivor clears the gain threshold it also beats every screened
        candidate's cap, and if it does not, the round terminates the greedy
        loop exactly as the cold path would.
        """
        dense = self._transition_matrix()
        poison_set: List[int] = []
        poisoned: set[int] = set()
        gains: List[float] = []
        incumbent = self._reconstruct(counts, poison_set)
        current_ll = incumbent.log_likelihood
        incumbent_weights = incumbent.weights

        # per-row likelihood cap of the normal block (clamped for the log)
        row_max = np.maximum(dense.max(axis=1), 1e-300)
        log_row_max = np.log(row_max)

        while len(poison_set) < self.max_poisoned:
            candidates = np.array(
                [c for c in range(self.n_categories) if c not in poisoned],
                dtype=np.intp,
            )
            if candidates.size == 0:
                break
            # likelihood cap with the current poison set's rows lifted to one
            capped_log = log_row_max.copy()
            if poison_set:
                capped_log[poison_set] = np.maximum(capped_log[poison_set], 0.0)
            base_cap = float(counts @ capped_log)
            boosts = counts[candidates] * np.maximum(-capped_log[candidates], 0.0)
            survivors = candidates[
                base_cap + boosts >= current_ll + self.min_likelihood_gain
            ]
            if survivors.size == 0:
                break

            n_tail = len(poison_set) + 1
            n_components = self.n_categories + n_tail
            tail_rows = np.empty((survivors.size, n_tail), dtype=np.intp)
            tail_rows[:, :-1] = poison_set
            tail_rows[:, -1] = survivors
            # warm start: the incumbent's converged weights with the new
            # component seeded at a uniform share, plus a pinch of uniform
            # mass so no component starts at the (EM-absorbing) exact zero.
            # The deliberate blur keeps each candidate's effective solver
            # accuracy comparable to a cold-start solve under the same
            # tol/max_iter budget — candidates must not *out-converge* the
            # cold search, or threshold-marginal configurations would select
            # more categories than the cold path they must reproduce.
            share = 1.0 / n_components
            initial = np.empty((survivors.size, n_components))
            initial[:, :-1] = incumbent_weights * (1.0 - share)
            initial[:, -1] = share
            initial = 0.98 * initial + 0.02 / n_components

            batch = em_reconstruct_batch(
                dense,
                counts,
                tail_rows,
                initial=initial,
                tol=1e-9,
                max_iter=10_000,
                # candidates certifiably below the acceptance floor stop
                # immediately; the rest stop once their likelihood is
                # certified within a fraction of the gain threshold of
                # optimal — margins the greedy decisions never resolve
                gap_tol=1e-3 * self.min_likelihood_gain,
                ll_floor=current_ll + self.min_likelihood_gain,
            )
            best = int(np.argmax(batch.log_likelihoods))
            best_ll = float(batch.log_likelihoods[best])
            gain = best_ll - current_ll
            if gain < self.min_likelihood_gain:
                break
            poison_set.append(int(survivors[best]))
            poisoned.add(int(survivors[best]))
            gains.append(float(gain))
            current_ll = best_ll
            incumbent_weights = batch.weights[best]
        return poison_set, gains, None

    def estimate(self, reports: np.ndarray) -> FrequencyDAPResult:
        """Full collector pipeline: probe poisoned categories, then estimate."""
        reports = np.asarray(reports, dtype=int)
        if reports.size == 0:
            raise ValueError("cannot estimate frequencies from zero reports")
        counts = np.bincount(reports, minlength=self.n_categories).astype(float)
        return self.estimate_from_counts(counts)

    def estimate_from_counts(
        self, counts: np.ndarray | CategoryCountAccumulator
    ) -> FrequencyDAPResult:
        """The collector pipeline on category counts (the sufficient statistic).

        Accepts either a raw count vector or the accumulator produced by
        :meth:`collect_stream`.  Category counts accumulated over chunks are
        exactly the bincount of the concatenated stream, so this path is
        bit-identical to :meth:`estimate` on the same reports.
        """
        if isinstance(counts, CategoryCountAccumulator):
            counts = counts.counts_float()
        counts = np.asarray(counts, dtype=float)
        if counts.shape != (self.n_categories,):
            raise ValueError(
                f"counts must have length n_categories={self.n_categories}, "
                f"got shape {counts.shape}"
            )
        if counts.sum() == 0:
            raise ValueError("cannot estimate frequencies from zero reports")

        poison_set, gains, probe_emf = self._probe(counts)

        with stage("aggregate"):
            # plain EMF reconstruction gives gamma_hat; the cold probe already
            # solved exactly this problem for its final incumbent (same
            # transform, counts and initialisation — the solve is
            # deterministic, so reuse is bit-identical), while the batched
            # probe re-solves on the bit-stable path so both strategies
            # return identical estimates
            emf = probe_emf if probe_emf is not None else self._reconstruct(
                counts, poison_set
            )
            gamma_hat = (
                float(emf.weights[self.n_categories:].sum()) if poison_set else 0.0
            )

            if self.estimator == "emf" or not poison_set:
                weights = emf.weights
            else:
                if self.estimator == "cemf_star" and poison_set:
                    # suppress candidate poison columns with almost no mass
                    poison_mass = emf.weights[self.n_categories:]
                    threshold = 0.5 * gamma_hat / max(1, len(poison_set))
                    kept = [
                        category
                        for category, mass in zip(poison_set, poison_mass)
                        if mass >= threshold
                    ]
                    poison_set = kept or poison_set
                weights = self._reconstruct(
                    counts, poison_set, gamma_hat=gamma_hat
                ).weights

            normal = np.clip(weights[: self.n_categories], 0.0, None)
            total = normal.sum()
            frequencies = normal / total if total > 0 else np.full(
                self.n_categories, 1.0 / self.n_categories
            )
        return FrequencyDAPResult(
            frequencies=frequencies,
            poisoned_categories=list(poison_set),
            gamma_hat=gamma_hat,
            log_likelihood_gains=gains,
            amplification=self.pipeline.ledger([self.epsilon], [int(counts.sum())]),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        normal_categories: np.ndarray,
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
    ) -> FrequencyDAPResult:
        """Simulate one round end to end (collection + estimation)."""
        reports = self.collect(normal_categories, poisoned_categories, n_byzantine, rng)
        result = self.estimate(reports)
        result.skipped_reports = self.contribution_summary(
            int(np.asarray(normal_categories).size) + int(n_byzantine)
        )
        return result


# ----------------------------------------------------------------------
# shard workers (module-level, so tasks pickle cleanly into process pools)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _FrequencyShardTask:
    """One shard of a k-RR collection round (picklable)."""

    epsilon: float
    n_categories: int
    categories: np.ndarray
    normal_seeds: Tuple[int, ...]
    n_byzantine: int
    byzantine_seeds: Tuple[int, ...]
    targets: np.ndarray
    block_size: int
    backend: str = "numpy"
    protocol: str = "local"
    shuffle_seed: int = 0


def _run_frequency_shard(task: _FrequencyShardTask) -> dict:
    """Perturb + poison one shard into a category-count snapshot."""
    with use_backend(task.backend):
        return _run_frequency_shard_inner(task)


def _run_frequency_shard_inner(task: _FrequencyShardTask) -> dict:
    mechanism = KRandomizedResponse(task.epsilon, task.n_categories)
    pipeline = ProtocolPipeline(
        ProtocolPlan(protocol=task.protocol, shuffle_seed=task.shuffle_seed)
    )
    accumulator = CategoryCountAccumulator(task.n_categories)
    block = task.block_size
    for index, seed in enumerate(task.normal_seeds):
        chunk = task.categories[index * block : (index + 1) * block]
        if not chunk.size:
            continue
        with stage("collect.sample"):
            reports = mechanism.perturb(chunk, np.random.default_rng(int(seed)))
        # block seeds are the shard-partition-invariant delivery lanes
        reports = pipeline.deliver(reports, (int(seed),))
        with stage("collect.accumulate"):
            accumulator.update(reports)
    remaining = task.n_byzantine
    for seed in task.byzantine_seeds:
        n_users_block = min(block, remaining)
        remaining -= n_users_block
        if not n_users_block:
            continue
        block_rng = np.random.default_rng(int(seed))
        with stage("collect.poison"):
            poison = task.targets[
                block_rng.integers(0, task.targets.size, size=n_users_block)
            ]
        poison = pipeline.deliver(poison, (int(seed),))
        with stage("collect.accumulate"):
            accumulator.update(poison)
    return accumulator.state_dict()


__all__ = [
    "DENSE_MAX_CATEGORIES",
    "FrequencyDAP",
    "FrequencyDAPResult",
    "PROBE_STRATEGIES",
    "ostrich_frequencies",
]
