"""Privacy-budget accounting.

The paper manipulates privacy budgets in two places:

* the **baseline protocol** (Section IV) splits a user's budget into
  ``epsilon_alpha + epsilon_beta = epsilon`` and perturbs twice (sequential
  composition);
* the **DAP protocol** (Section V) assigns each group a budget from the ladder
  ``{epsilon, epsilon/2, ..., epsilon_0}`` and lets users with a smaller group
  budget report multiple times until their total budget ``epsilon`` is used up
  (again sequential composition within a user, parallel composition across
  disjoint groups).

:class:`PrivacyBudget` is a tiny ledger that enforces these rules so protocol
code cannot silently overspend a user's budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.utils.validation import check_positive


@dataclass
class PrivacyBudget:
    """A spendable epsilon ledger for one user (or one logical entity).

    Attributes
    ----------
    total:
        Total budget available.
    spent:
        Budget consumed so far by :meth:`spend`.
    """

    total: float
    spent: float = 0.0
    _log: List[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        check_positive(self.total, "total")
        if self.spent < 0 or self.spent > self.total + 1e-12:
            raise ValueError(
                f"spent must lie in [0, total], got spent={self.spent}, total={self.total}"
            )

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return max(0.0, self.total - self.spent)

    @property
    def history(self) -> List[float]:
        """Chronological list of spends."""
        return list(self._log)

    def can_spend(self, epsilon: float) -> bool:
        """Whether ``epsilon`` more budget can be spent without overdrawing."""
        return epsilon <= self.remaining + 1e-12

    def spend(self, epsilon: float) -> float:
        """Consume ``epsilon`` from the ledger and return it.

        Raises
        ------
        ValueError
            If the spend would exceed the total budget.
        """
        epsilon = check_positive(epsilon, "epsilon")
        if not self.can_spend(epsilon):
            raise ValueError(
                f"budget exhausted: tried to spend {epsilon:g} with only "
                f"{self.remaining:g} of {self.total:g} remaining"
            )
        self.spent += epsilon
        self._log.append(epsilon)
        return epsilon

    def split(self, fractions: Iterable[float]) -> List[float]:
        """Split the *remaining* budget according to ``fractions`` (sum to 1).

        Used by the baseline protocol: ``split([alpha, 1 - alpha])`` yields
        ``(epsilon_alpha, epsilon_beta)``.
        """
        fractions = [float(f) for f in fractions]
        if any(f <= 0 for f in fractions):
            raise ValueError("all fractions must be positive")
        total_frac = sum(fractions)
        if abs(total_frac - 1.0) > 1e-9:
            raise ValueError(f"fractions must sum to 1, got {total_frac:g}")
        remaining = self.remaining
        return [self.spend(remaining * f) for f in fractions]

    def n_reports(self, epsilon_per_report: float) -> int:
        """How many reports at ``epsilon_per_report`` the remaining budget buys.

        This is the DAP rule for users assigned to a small-epsilon group: they
        report ``epsilon / epsilon_t`` times (footnote 1 / Section V-A).
        """
        epsilon_per_report = check_positive(epsilon_per_report, "epsilon_per_report")
        return int(round(self.remaining / epsilon_per_report + 1e-9))


def sequential_composition(epsilons: Iterable[float]) -> float:
    """Total privacy cost of running mechanisms sequentially on the same data."""
    epsilons = [check_positive(e, "epsilon") for e in epsilons]
    return float(sum(epsilons))


def parallel_composition(epsilons: Iterable[float]) -> float:
    """Privacy cost when mechanisms run on *disjoint* user groups.

    The DAP grouping satisfies epsilon-LDP via this theorem: each user's data
    only enters one group, so the overall guarantee is the maximum group
    budget (which DAP sets equal to the users' budget epsilon).
    """
    epsilons = [check_positive(e, "epsilon") for e in epsilons]
    if not epsilons:
        raise ValueError("parallel_composition requires at least one epsilon")
    return float(max(epsilons))


def dap_budget_ladder(epsilon: float, epsilon_min: float) -> List[float]:
    """Group budgets ``{epsilon, epsilon/2, ..., epsilon_min}`` used by DAP.

    The number of rungs is ``h = ceil(log2(epsilon / epsilon_min)) + 1``
    (Section V-A).  ``epsilon / epsilon_min`` does not have to be a power of
    two; the last rung is clamped to ``epsilon_min``.
    """
    import math

    epsilon = check_positive(epsilon, "epsilon")
    epsilon_min = check_positive(epsilon_min, "epsilon_min")
    if epsilon_min > epsilon:
        raise ValueError(
            f"epsilon_min ({epsilon_min:g}) must not exceed epsilon ({epsilon:g})"
        )
    h = int(math.ceil(math.log2(epsilon / epsilon_min))) + 1 if epsilon_min < epsilon else 1
    ladder = [epsilon / (2**t) for t in range(h)]
    ladder[-1] = max(ladder[-1], epsilon_min)
    return ladder


__all__ = [
    "PrivacyBudget",
    "sequential_composition",
    "parallel_composition",
    "dap_budget_ladder",
]
