"""Shared experiment scale settings.

The paper runs every experiment on populations of roughly one million users.
That is supported here but unnecessary for verifying the *shape* of the
results, so two presets are provided:

* :data:`QUICK_SCALE` — the default for the benchmark suite and CI: tens of
  thousands of users and a couple of trials per point; every qualitative
  conclusion of the paper already holds at this scale.
* :data:`PAPER_SCALE` — the paper's setting for users who want to reproduce
  the absolute numbers more closely (takes hours on a laptop).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_fraction, check_integer


@dataclass(frozen=True)
class ExperimentScale:
    """Scale knobs shared by every experiment driver.

    Attributes
    ----------
    n_users:
        Total user population per trial.
    n_trials:
        Independent trials per sweep point (MSE is averaged over these).
    gamma:
        Default Byzantine proportion (0.25 in the paper unless swept).
    """

    n_users: int = 20_000
    n_trials: int = 3
    gamma: float = 0.25

    def __post_init__(self) -> None:
        check_integer(self.n_users, "n_users", minimum=10)
        check_integer(self.n_trials, "n_trials", minimum=1)
        check_fraction(self.gamma, "gamma")


#: fast preset used by the benchmark harness
QUICK_SCALE = ExperimentScale(n_users=20_000, n_trials=3, gamma=0.25)

#: the paper's setting (one million users); slow but faithful
PAPER_SCALE = ExperimentScale(n_users=1_000_000, n_trials=10, gamma=0.25)

#: the privacy budgets swept in Figures 6, 8 and 9
PAPER_EPSILONS = (0.25, 0.5, 1.0, 1.5, 2.0)

#: the smaller budgets swept in Figure 5 / Table I (probing accuracy)
PROBING_EPSILONS = (2.0, 1.0, 0.5, 0.25, 0.125, 0.0625)


__all__ = [
    "ExperimentScale",
    "QUICK_SCALE",
    "PAPER_SCALE",
    "PAPER_EPSILONS",
    "PROBING_EPSILONS",
]
