"""Dataset containers and normalisation helpers.

The paper normalises every numerical dataset into ``[-1, 1]`` before applying
LDP perturbation; :func:`normalize_to_unit` performs that affine map and
:class:`NumericalDataset` keeps both representations together with provenance
metadata so experiment reports can state what was actually measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.utils.discretization import BucketGrid
from repro.utils.histogram import normalize_histogram


def normalize_to_unit(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Affinely map values from ``[low, high]`` into ``[-1, 1]``."""
    values = np.asarray(values, dtype=float)
    if high <= low:
        raise ValueError(f"high must exceed low, got low={low}, high={high}")
    return 2.0 * (values - low) / (high - low) - 1.0


def denormalize_from_unit(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Inverse of :func:`normalize_to_unit`."""
    values = np.asarray(values, dtype=float)
    if high <= low:
        raise ValueError(f"high must exceed low, got low={low}, high={high}")
    return (values + 1.0) / 2.0 * (high - low) + low


@dataclass
class NumericalDataset:
    """A numerical dataset normalised into ``[-1, 1]``.

    Attributes
    ----------
    name:
        Human-readable dataset name (e.g. ``"Taxi"``).
    values:
        Normalised values in ``[-1, 1]``.
    raw_domain:
        The original value domain before normalisation.
    description:
        What the data represents and how it was generated.
    """

    name: str
    values: np.ndarray
    raw_domain: Tuple[float, float]
    description: str = ""

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 1:
            raise ValueError(f"values must be one-dimensional, got {self.values.shape}")
        if self.values.size and (
            self.values.min() < -1.0 - 1e-9 or self.values.max() > 1.0 + 1e-9
        ):
            raise ValueError(
                f"dataset {self.name!r} values must be normalised into [-1, 1]"
            )
        self.values = np.clip(self.values, -1.0, 1.0)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of records."""
        return int(self.values.size)

    @property
    def true_mean(self) -> float:
        """Ground-truth mean of the normalised values (the paper's ``O``)."""
        return float(self.values.mean())

    @property
    def true_variance(self) -> float:
        """Ground-truth variance of the normalised values."""
        return float(self.values.var())

    def histogram(self, n_buckets: int = 64) -> tuple[np.ndarray, BucketGrid]:
        """Normalised frequency histogram over ``[-1, 1]`` (Figure 4)."""
        grid = BucketGrid(-1.0, 1.0, n_buckets)
        return normalize_histogram(grid.counts(self.values)), grid

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` records with replacement (for smaller experiments)."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if size <= self.n:
            idx = rng.choice(self.n, size=size, replace=False)
        else:
            idx = rng.choice(self.n, size=size, replace=True)
        return self.values[idx]

    def subset(self, size: int, rng: np.random.Generator) -> "NumericalDataset":
        """Return a new dataset holding a random subset of the records."""
        return NumericalDataset(
            name=self.name,
            values=self.sample(size, rng),
            raw_domain=self.raw_domain,
            description=self.description,
        )

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NumericalDataset(name={self.name!r}, n={self.n}, "
            f"mean={self.true_mean:.4f})"
        )


@dataclass
class CategoricalDataset:
    """A categorical dataset (category index per record).

    Attributes
    ----------
    name:
        Dataset name.
    categories:
        Integer category index per record, in ``[0, n_categories)``.
    labels:
        Optional human-readable label per category.
    """

    name: str
    categories: np.ndarray
    labels: Tuple[str, ...] = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        self.categories = np.asarray(self.categories, dtype=int)
        if self.categories.ndim != 1:
            raise ValueError("categories must be one-dimensional")
        if self.categories.size and self.categories.min() < 0:
            raise ValueError("category indices must be non-negative")
        if self.labels and self.categories.size:
            if self.categories.max() >= len(self.labels):
                raise ValueError("labels must cover every category index")

    @property
    def n(self) -> int:
        """Number of records."""
        return int(self.categories.size)

    @property
    def n_categories(self) -> int:
        """Number of distinct categories (from labels if given, else data)."""
        if self.labels:
            return len(self.labels)
        return int(self.categories.max()) + 1 if self.n else 0

    @property
    def true_frequencies(self) -> np.ndarray:
        """Ground-truth category frequencies."""
        counts = np.bincount(self.categories, minlength=self.n_categories)
        return counts / max(1, self.n)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` records (with replacement if needed)."""
        if size <= self.n:
            idx = rng.choice(self.n, size=size, replace=False)
        else:
            idx = rng.choice(self.n, size=size, replace=True)
        return self.categories[idx]

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.n


__all__ = [
    "NumericalDataset",
    "CategoricalDataset",
    "normalize_to_unit",
    "denormalize_from_unit",
]
