"""Differential Aggregation Protocol — DAP (Section V, Figure 3).

The five stages of the protocol:

1. **Grouping** — users are randomly assigned to ``h = ceil(log2(eps/eps0)) + 1``
   equal-sized groups whose budgets form the ladder ``{eps, eps/2, ..., eps0}``.
   Users in a small-budget group report multiple times (``eps / eps_t`` reports)
   so every user spends exactly ``eps`` in total.
2. **Perturbation** — each user perturbs with her group's budget; Byzantine
   users instead submit poison values inside that group's output domain.
3. **Probing** — the collector runs EMF per group; the poisoned side and the
   Byzantine proportion are taken from the smallest-budget group, where
   Theorem 3 makes them most accurate.
4. **Intra-group estimation** — each group's mean is corrected for the
   reconstructed poison mass (Equation 13), optionally after the EMF* or
   CEMF* post-processing.
5. **Inter-group aggregation** — the group means are combined with the
   minimum-variance weights of Theorem 6.

``DAPProtocol.run`` simulates the client side and the collector side end to
end; ``DAPProtocol.aggregate`` is the collector-only entry point that consumes
already-collected per-group reports.

The collector only ever needs *sufficient statistics* of the report stream —
the output-grid histogram (probing + the EMF family) and the report sum and
count (corrected mean) — so the whole pipeline also runs in bounded memory:
``collect_stream`` consumes user values chunk by chunk into per-group
:class:`~repro.collect.GroupAccumulator` objects, and
``aggregate_accumulated`` / ``aggregate_stats`` run stages 3-5 on the
accumulated statistics, bit-identical to the in-memory path on the same
reports.

Every collection path (in-memory, streaming, sharded) lowers to the shared
client → transport → server pipeline of :mod:`repro.protocol`: the client
stage applies the contribution cap and hands compromised slots to the
attack (under the shuffle protocol, against the group-blind
domain-intersection view), the transport stage is an identity pass-through
(``protocol="local"``) or the seeded shuffler (``protocol="shuffle"``),
and the server stage folds accumulators and — under shuffle — writes the
privacy-amplification ledger into :class:`DAPResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Literal, Mapping, Sequence, Tuple

import numpy as np

from repro.attacks.base import Attack, NoAttack
from repro.backends import get_backend, use_backend
from repro.collect.accumulators import GroupAccumulator, GroupStats
from repro.collect.sharding import (
    DEFAULT_SHARD_BLOCK,
    build_shard_plan,
    run_shard_tasks,
)
from repro.collect.streaming import DEFAULT_CHUNK_SIZE
from repro.core.aggregation import aggregate_means, aggregation_weights
from repro.core.cemf_star import DEFAULT_SUPPRESSION_FACTOR, run_cemf_star
from repro.core.emf import EMFResult, run_emf
from repro.core.emf_star import run_emf_star
from repro.core.features import ByzantineFeatures, estimate_byzantine_features
from repro.core.mean_estimation import corrected_mean_from_stats
from repro.core.probing import check_probe_strategy
from repro.core.transform import cached_transform_matrix, default_bucket_counts
from repro.ldp.base import NumericalMechanism
from repro.ldp.budget import dap_budget_ladder
from repro.ldp.piecewise import PiecewiseMechanism
from repro.protocol.client import intersection_output_domain
from repro.protocol.pipeline import ProtocolPipeline
from repro.protocol.plan import ProtocolPlan, check_contribution_cap, check_protocol
from repro.utils.discretization import BucketGrid
from repro.utils.profiling import profiled_stage, stage
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_integer, check_positive

MechanismFactory = Callable[[float], NumericalMechanism]
EstimatorName = Literal["emf", "emf_star", "cemf_star"]


@dataclass
class DAPConfig:
    """Configuration of the DAP protocol.

    Attributes
    ----------
    epsilon:
        Total per-user privacy budget.
    epsilon_min:
        Minimum acceptable group budget ``eps_0`` (1/16 in the paper).
    estimator:
        Which reconstruction drives the intra-group correction: ``"emf"``,
        ``"emf_star"`` or ``"cemf_star"`` — the three DAP variants of Figure 6.
    mechanism_factory:
        Budget -> mechanism constructor (PM by default; pass
        ``SquareWaveMechanism`` for the Figure 8 variant).
    reference_mean:
        The collector's ``O'`` (``None`` = output-domain centre, the paper's
        simplification).
    n_input_buckets / n_output_buckets:
        Grid resolutions; ``None`` uses the paper defaults per group.
    suppression_factor:
        CEMF* bucket-suppression threshold factor.
    intra_group_mean:
        ``"corrected_sum"`` (Equation 13 — subtract the reconstructed poison
        contribution from the report sum; correct for unbiased mechanisms such
        as PM) or ``"distribution"`` (take the mean of the reconstructed
        normal-user histogram — the route used with Square Wave, whose raw
        reports are biased).
    max_reports_per_user:
        Safety cap on the per-user report multiplicity for tiny ``eps_0``.
    probe_strategy:
        How the probing stage evaluates its side hypotheses: ``"batched"``
        (default) solves both sides in one stacked EM over their shared
        normal block — same side selections, statistically equivalent
        reconstructions; ``"cold"`` solves each side independently,
        bit-identical to the seed implementation.  A pure execution detail
        of the collector (see
        :func:`repro.core.probing.probe_poisoned_side`).
    protocol:
        Trust model of the round (identity knob): ``"local"`` (default;
        bit-identical to the historical behaviour) or ``"shuffle"`` (seeded
        shuffler transport, group-blind adversary, amplification ledger) —
        see :mod:`repro.protocol`.
    contribution_cap:
        Client-gate upper bound on reports per user (``None`` = no cap).
        Reports beyond the cap are dropped deterministically before
        perturbation and tallied into ``DAPResult.skipped_reports``.
    shuffle_seed:
        Execution-detail reseed of the shuffler's permutation lanes; cannot
        change any accumulator statistic (property-tested), so it never
        enters documents or fingerprints.
    """

    epsilon: float
    epsilon_min: float = 1.0 / 16.0
    estimator: EstimatorName = "cemf_star"
    mechanism_factory: MechanismFactory = PiecewiseMechanism
    reference_mean: float | None = None
    n_input_buckets: int | None = None
    n_output_buckets: int | None = None
    suppression_factor: float = DEFAULT_SUPPRESSION_FACTOR
    intra_group_mean: Literal["corrected_sum", "distribution"] = "corrected_sum"
    max_reports_per_user: int = 64
    probe_strategy: str = "batched"
    protocol: str = "local"
    contribution_cap: int | None = None
    shuffle_seed: int = 0

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        check_positive(self.epsilon_min, "epsilon_min")
        if self.epsilon_min > self.epsilon:
            raise ValueError(
                f"epsilon_min ({self.epsilon_min:g}) must not exceed epsilon "
                f"({self.epsilon:g})"
            )
        if self.estimator not in ("emf", "emf_star", "cemf_star"):
            raise ValueError(
                f"estimator must be 'emf', 'emf_star' or 'cemf_star', got "
                f"{self.estimator!r}"
            )
        if self.intra_group_mean not in ("corrected_sum", "distribution"):
            raise ValueError(
                "intra_group_mean must be 'corrected_sum' or 'distribution', got "
                f"{self.intra_group_mean!r}"
            )
        check_integer(self.max_reports_per_user, "max_reports_per_user", minimum=1)
        check_probe_strategy(self.probe_strategy)
        check_protocol(self.protocol)
        check_contribution_cap(self.contribution_cap)

    @property
    def protocol_plan(self) -> ProtocolPlan:
        """The pipeline contract this configuration lowers to."""
        return ProtocolPlan(
            protocol=self.protocol,
            contribution_cap=self.contribution_cap,
            shuffle_seed=self.shuffle_seed,
        )

    @property
    def budget_ladder(self) -> List[float]:
        """Group budgets ``{eps, eps/2, ..., eps_0}``."""
        return dap_budget_ladder(self.epsilon, self.epsilon_min)

    @property
    def n_groups(self) -> int:
        """Number of groups ``h``."""
        return len(self.budget_ladder)


@dataclass
class GroupCollection:
    """Reports collected from one group.

    Attributes
    ----------
    epsilon:
        The group's privacy budget ``eps_t``.
    reports:
        All reports from the group (normal + poison), one entry per report
        (users may contribute several).
    n_users:
        Number of users assigned to the group (normal + Byzantine).
    """

    epsilon: float
    reports: np.ndarray
    n_users: int = 0

    def __post_init__(self) -> None:
        self.reports = np.asarray(self.reports, dtype=float).ravel()

    @property
    def n_reports(self) -> int:
        """Number of collected reports ``N_t``."""
        return int(self.reports.size)


@dataclass
class GroupEstimate:
    """Collector-side result for one group.

    Attributes
    ----------
    epsilon:
        The group budget.
    mean:
        The poison-corrected intra-group mean ``M_t``.
    gamma_hat:
        Poison proportion reconstructed in this group.
    n_reports:
        Number of reports the group contributed.
    n_normal_estimate:
        Estimated number of normal *users* ``n_hat_t`` (reports rescaled by
        ``eps_t / eps``).
    weight:
        Aggregation weight assigned by Theorem 6 (filled in at aggregation).
    emf:
        The reconstruction (EMF / EMF* / CEMF*) the mean was derived from.
    """

    epsilon: float
    mean: float
    gamma_hat: float
    n_reports: int
    n_normal_estimate: float
    weight: float = 0.0
    emf: EMFResult | None = None


@dataclass
class DAPResult:
    """Final outcome of a DAP run.

    Attributes
    ----------
    estimate:
        The aggregated mean estimate ``M_tilde``.
    poisoned_side:
        Side selected by the probing stage.
    gamma_hat:
        Byzantine proportion probed in the smallest-budget group.
    group_estimates:
        Per-group details (budget, corrected mean, weight, ...).
    features:
        The probing stage's full :class:`~repro.core.features.ByzantineFeatures`
        (both side EMF runs included), so incremental callers can warm-start
        the next round's probe from ``features.probe.warm_weights()``.
    skipped_reports:
        Reports dropped by the contribution-cap client gate (0 when no cap
        is configured); filled by the end-to-end entry points, which know
        the population size.
    amplification:
        Privacy-amplification ledger, one row per contributing group
        (``epsilon_local`` / ``n_reports`` / ``delta`` / ``epsilon_central``
        / ``amplification_factor``); ``None`` under the local protocol.
    """

    estimate: float
    poisoned_side: str
    gamma_hat: float
    group_estimates: List[GroupEstimate] = field(default_factory=list)
    features: ByzantineFeatures | None = None
    skipped_reports: int = 0
    amplification: List[dict] | None = None

    @property
    def weights(self) -> np.ndarray:
        """Aggregation weights, in group order."""
        return np.array([g.weight for g in self.group_estimates])


def _client_perturb(
    mechanism: NumericalMechanism,
    values: np.ndarray,
    repeats: int,
    rng: RngLike,
) -> np.ndarray:
    """Client stage, honest users: perturb ``repeats`` reports per value.

    The single perturbation kernel every collection path (in-memory,
    streaming, sharded worker) lowers to.
    """
    with stage("collect.sample"):
        return mechanism.perturb(np.repeat(values, repeats), rng)


def _client_poison(
    attack: Attack,
    mechanism_view: NumericalMechanism,
    n_reports: int,
    reference_mean: float,
    rng: RngLike,
) -> np.ndarray:
    """Client stage, compromised users: draw poison against a mechanism view.

    ``mechanism_view`` is the group's own mechanism under the local
    protocol, or the group-blind domain-intersection view under shuffle.
    """
    with stage("collect.poison"):
        return attack.poison_reports(
            n_reports, mechanism_view, reference_mean, rng
        ).reports


class DAPProtocol:
    """The multi-group Differential Aggregation Protocol."""

    def __init__(self, config: DAPConfig) -> None:
        self.config = config
        self._mechanisms = {
            eps: config.mechanism_factory(eps) for eps in config.budget_ladder
        }

    # ------------------------------------------------------------------
    # protocol pipeline (client → transport → server contract)
    # ------------------------------------------------------------------
    @property
    def plan(self) -> ProtocolPlan:
        """The protocol contract, derived lazily from the (mutable) config."""
        return self.config.protocol_plan

    @property
    def pipeline(self) -> ProtocolPipeline:
        """Stage helpers for the configured protocol (cheap to build)."""
        return ProtocolPipeline(self.plan)

    def adversary_mechanism(self, epsilon: float) -> NumericalMechanism:
        """The mechanism view the attack stage sees for one budget group.

        Local protocol: the group's own mechanism.  Shuffle protocol: the
        group-blind :class:`~repro.ldp.base.DomainRestrictedMechanism` over
        the ladder-wide output-domain intersection.
        """
        return self.pipeline.adversary_view(
            self.mechanism_for(epsilon), self._mechanisms
        )

    def contribution_summary(self, n_total: int) -> int:
        """Reports the contribution cap drops for ``n_total`` users.

        Deterministic without simulating: group head-counts are fixed by
        the nearly-equal split and per-user multiplicities by the ladder.
        """
        return self.pipeline.skipped_reports(
            self.group_sizes(n_total),
            [self._uncapped_reports_per_user(eps) for eps in self.config.budget_ladder],
        )

    def poison_domain(self) -> tuple[float, float] | None:
        """The poison support the *server* may assume, per trust model.

        The server conditions its reconstruction on the same contract the
        adversary is bound by: under the shuffle protocol poison lies in
        the ladder-wide output-domain intersection, so stages 3-4 restrict
        their poison columns to it; under the local protocol the adversary
        owns each group's whole poisoned side (``None`` — the historical,
        bit-identical hypotheses).
        """
        if not self.plan.is_shuffle:
            return None
        return intersection_output_domain(tuple(self._mechanisms.values()))

    # ------------------------------------------------------------------
    # client-side simulation
    # ------------------------------------------------------------------
    def mechanism_for(self, epsilon: float) -> NumericalMechanism:
        """The mechanism instance used by the group with budget ``epsilon``."""
        return self._mechanisms[epsilon]

    @profiled_stage("collect")
    def collect(
        self,
        normal_values: np.ndarray,
        attack: Attack | None = None,
        n_byzantine: int = 0,
        rng: RngLike = None,
    ) -> List[GroupCollection]:
        """Simulate grouping + perturbation and return per-group reports.

        Normal users perturb their value ``eps / eps_t`` times with their
        group's mechanism; Byzantine users submit the same number of poison
        reports drawn from the attack strategy against that group's output
        domain (under the shuffle protocol, against the group-blind
        domain-intersection view), and each group's batch then rides the
        transport stage — identity (local) or the seeded shuffler.
        """
        rng = ensure_rng(rng)
        attack = attack or NoAttack()
        pipeline = self.pipeline
        normal_values = np.asarray(normal_values, dtype=float).ravel()
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)

        n_normal = normal_values.size
        n_total = n_normal + n_byzantine
        if n_total == 0:
            raise ValueError("at least one user is required")

        ladder = self.config.budget_ladder
        h = len(ladder)

        # random assignment into h (nearly) equal-sized groups
        user_indices = rng.permutation(n_total)
        group_of_user = np.empty(n_total, dtype=int)
        for group_index, member in enumerate(np.array_split(user_indices, h)):
            group_of_user[member] = group_index

        groups: List[GroupCollection] = []
        for group_index, epsilon_t in enumerate(ladder):
            mechanism = self.mechanism_for(epsilon_t)
            members = np.flatnonzero(group_of_user == group_index)
            normal_members = members[members < n_normal]
            byzantine_members = members[members >= n_normal]
            repeats = self._reports_per_user(epsilon_t)

            pieces = []
            if normal_members.size and repeats:
                pieces.append(
                    _client_perturb(
                        mechanism, normal_values[normal_members], repeats, rng
                    )
                )
            if byzantine_members.size and repeats:
                view = pipeline.adversary_view(mechanism, self._mechanisms)
                pieces.append(
                    _client_poison(
                        attack,
                        view,
                        int(byzantine_members.size) * repeats,
                        self._reference_mean(view),
                        rng,
                    )
                )
            reports = np.concatenate(pieces) if pieces else np.empty(0)
            reports = pipeline.deliver(reports, (group_index, reports.size))
            groups.append(
                GroupCollection(
                    epsilon=epsilon_t, reports=reports, n_users=int(members.size)
                )
            )
        return groups

    def _uncapped_reports_per_user(self, epsilon_t: float) -> int:
        """The ladder's per-user multiplicity, before the contribution cap."""
        repeats = int(round(self.config.epsilon / epsilon_t))
        return max(1, min(repeats, self.config.max_reports_per_user))

    def _reports_per_user(self, epsilon_t: float) -> int:
        """How many reports a user in the ``epsilon_t`` group submits."""
        return self.plan.effective_repeats(self._uncapped_reports_per_user(epsilon_t))

    def _reference_mean(self, mechanism: NumericalMechanism) -> float:
        if self.config.reference_mean is not None:
            return self.config.reference_mean
        low, high = mechanism.output_domain
        return 0.5 * (low + high)

    # ------------------------------------------------------------------
    # streaming accumulators
    # ------------------------------------------------------------------
    def group_sizes(self, n_total: int) -> List[int]:
        """User head-count per group for a population of ``n_total``.

        Matches the (nearly) equal split of :meth:`collect`: the first
        ``n_total % h`` groups receive one extra user.
        """
        n_total = check_integer(n_total, "n_total", minimum=1)
        h = self.config.n_groups
        base, extra = divmod(n_total, h)
        return [base + 1 if index < extra else base for index in range(h)]

    def group_output_grid(self, epsilon: float, n_reports: int) -> BucketGrid:
        """The output-domain grid the collector uses for a group's histogram."""
        _, d_out = self._bucket_counts(n_reports, epsilon)
        low, high = self.mechanism_for(epsilon).output_domain
        return BucketGrid(low, high, d_out)

    def group_accumulator(
        self, epsilon: float, n_expected_reports: int, n_users: int = 0
    ) -> GroupAccumulator:
        """A chunked accumulator holding one group's sufficient statistics.

        The accumulator's histogram grid is sized from ``n_expected_reports``
        (the collector knows it up front: group sizes and per-user report
        multiplicities are fixed by the grouping stage), so feeding exactly
        that many reports — in chunks of any size — yields statistics
        bit-identical to an in-memory :class:`GroupCollection`.
        """
        grid = self.group_output_grid(epsilon, max(1, n_expected_reports))
        return GroupAccumulator(
            epsilon, grid, n_expected_reports=n_expected_reports, n_users=n_users
        )

    @profiled_stage("collect")
    def collect_stream(
        self,
        value_chunks: Iterable[np.ndarray],
        n_normal: int,
        attack: Attack | None = None,
        n_byzantine: int = 0,
        rng: RngLike = None,
        poison_chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> List[GroupAccumulator]:
        """Streaming grouping + perturbation: constant memory in ``n_normal``.

        The chunked counterpart of :meth:`collect`: normal users' values
        arrive as an iterable of chunks (``n_normal`` must be declared up
        front so groups can be sized), each chunk is assigned to groups,
        perturbed and folded into per-group accumulators, and poison reports
        are drawn in bounded chunks.  Peak memory is proportional to the
        chunk size times the report multiplicity, never to the population.

        Group head-counts are identical in distribution to :meth:`collect`'s
        random assignment (per-chunk counts are drawn from the multivariate
        hypergeometric law over the groups' remaining slots), but the two
        paths consume randomness differently, so individual draws differ.
        """
        rng = ensure_rng(rng)
        attack = attack or NoAttack()
        pipeline = self.pipeline
        n_normal = check_integer(n_normal, "n_normal", minimum=0)
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)
        n_total = n_normal + n_byzantine
        if n_total == 0:
            raise ValueError("at least one user is required")

        ladder = self.config.budget_ladder
        h = len(ladder)
        sizes = np.asarray(self.group_sizes(n_total), dtype=np.int64)
        # random user->group assignment makes each group's Byzantine
        # head-count multivariate hypergeometric over the group slots
        if n_byzantine:
            byz_counts = rng.multivariate_hypergeometric(sizes, n_byzantine)
        else:
            byz_counts = np.zeros(h, dtype=np.int64)
        remaining = sizes - byz_counts

        # silent attacks (NoAttack) contribute no reports, so the expected
        # count — which sizes the histogram grid and doubles as a
        # consistency check — asks the attack for its poison report count
        accumulators = [
            self.group_accumulator(
                epsilon_t,
                int(size - byz) * self._reports_per_user(epsilon_t)
                + attack.n_poison_reports(int(byz) * self._reports_per_user(epsilon_t)),
                n_users=int(size),
            )
            for epsilon_t, size, byz in zip(ladder, sizes, byz_counts)
        ]

        consumed = 0
        # one delivery lane per (group, delivered batch): streaming batches
        # ride the transport independently, so the shuffler composes with
        # any chunking (its statistics are permutation-invariant anyway)
        lane_counters = [0] * h
        for chunk in value_chunks:
            chunk = np.asarray(chunk, dtype=float).ravel()
            if chunk.size == 0:
                continue
            consumed += chunk.size
            if consumed > n_normal:
                raise ValueError(
                    f"value stream yielded more than the declared "
                    f"n_normal={n_normal} values"
                )
            counts = rng.multivariate_hypergeometric(remaining, chunk.size)
            remaining = remaining - counts
            assignment = np.repeat(np.arange(h), counts)
            rng.shuffle(assignment)
            for group_index, epsilon_t in enumerate(ladder):
                values = chunk[assignment == group_index]
                repeats = self._reports_per_user(epsilon_t)
                if not values.size or not repeats:
                    continue
                mechanism = self.mechanism_for(epsilon_t)
                reports = _client_perturb(mechanism, values, repeats, rng)
                reports = pipeline.deliver(
                    reports, (group_index, lane_counters[group_index], reports.size)
                )
                lane_counters[group_index] += 1
                with stage("collect.accumulate"):
                    accumulators[group_index].update(reports)
        if consumed != n_normal:
            raise ValueError(
                f"value stream yielded {consumed} normal values, expected "
                f"{n_normal}"
            )

        for group_index, epsilon_t in enumerate(ladder):
            n_byz = int(byz_counts[group_index])
            n_poison = n_byz * self._reports_per_user(epsilon_t)
            if not n_poison:
                continue
            view = pipeline.adversary_view(
                self.mechanism_for(epsilon_t), self._mechanisms
            )
            reference = self._reference_mean(view)
            chunks = attack.poison_report_chunks(
                n_poison, view, reference, rng, chunk_size=poison_chunk_size
            )
            # drive the generator with next() so the poison drawing and the
            # accumulator update land in their own sub-timers (a for-loop
            # would charge the draw of chunk i+1 to the accumulate stage)
            while True:
                with stage("collect.poison"):
                    piece = next(chunks, None)
                if piece is None:
                    break
                piece = pipeline.deliver(
                    piece, (group_index, lane_counters[group_index], piece.size)
                )
                lane_counters[group_index] += 1
                with stage("collect.accumulate"):
                    accumulators[group_index].update(piece)
        return accumulators

    # ------------------------------------------------------------------
    # sharded collection
    # ------------------------------------------------------------------
    @profiled_stage("collect")
    def collect_sharded(
        self,
        normal_values: np.ndarray,
        attack: Attack | None = None,
        n_byzantine: int = 0,
        rng: RngLike = None,
        n_shards: int = 1,
        n_workers: int | None = None,
        block_size: int = DEFAULT_SHARD_BLOCK,
    ) -> List[GroupAccumulator]:
        """Sharded grouping + perturbation: one collection round, many cores.

        The population is assigned to groups with the *same* master-generator
        permutation draw as :meth:`collect` (group composition is identical
        bit for bit), then each group's user range is cut into fixed-size
        blocks with one pre-drawn seed per block
        (:func:`repro.collect.build_shard_plan`).  A shard — a contiguous run
        of whole blocks — is processed by the existing chunked perturb/poison
        path into fresh :class:`~repro.collect.GroupAccumulator` objects, and
        shard results are folded back with ``merge()``.

        Because the blocks own the randomness, the merged accumulators are
        bit-identical at any ``n_shards`` and any ``n_workers`` (both are
        execution details); only ``block_size`` is part of the run identity.
        Shard results cross process boundaries as accumulator snapshots
        (bucket counts plus compacted sum partials), never as raw reports.

        Parameters
        ----------
        normal_values:
            The normal users' values (materialised; at 10^7 users this is
            ~80 MiB — the reports, which would be an order of magnitude
            larger, are never materialised).
        attack, n_byzantine, rng:
            As in :meth:`collect`.
        n_shards:
            Number of independent work units to split the round into.
        n_workers:
            ``None`` / ``1`` runs the shards in-process; larger values fan
            them out over a process pool (capped at ``n_shards``).
        block_size:
            Users per seed block (identity-relevant; keep the default unless
            benchmarking).
        """
        rng = ensure_rng(rng)
        attack = attack or NoAttack()
        normal_values = np.asarray(normal_values, dtype=float).ravel()
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)
        n_normal = normal_values.size
        n_total = n_normal + n_byzantine
        if n_total == 0:
            raise ValueError("at least one user is required")

        ladder = self.config.budget_ladder
        h = len(ladder)

        # identical group assignment to collect(): same permutation draw,
        # same nearly-equal split, members processed in ascending user order
        user_indices = rng.permutation(n_total)
        group_values: List[np.ndarray] = []
        group_byzantine: List[int] = []
        for piece in np.array_split(user_indices, h):
            members = np.sort(piece)
            normal_members = members[members < n_normal]
            group_values.append(normal_values[normal_members])
            group_byzantine.append(int(members.size - normal_members.size))

        plan = build_shard_plan(
            [values.size for values in group_values],
            group_byzantine,
            n_shards=n_shards,
            rng=rng,
            block_size=block_size,
        )
        def expected_reports(group_index: int, n_normal_part: int, n_byz_part: int) -> int:
            repeats = self._reports_per_user(ladder[group_index])
            return n_normal_part * repeats + attack.n_poison_reports(
                n_byz_part * repeats
            )

        # shard workers run in their own processes, so the parent's active
        # backend travels with the task (the name of what actually runs —
        # a numba request without numba has already fallen back by here)
        backend_name = get_backend().name
        tasks = [
            _ShardTask(
                config=self.config,
                attack=attack,
                block_size=block_size,
                backend=backend_name,
                groups=tuple(
                    _ShardGroupPayload(
                        group_index=piece.group_index,
                        epsilon=ladder[piece.group_index],
                        total_expected_reports=expected_reports(
                            piece.group_index,
                            group_values[piece.group_index].size,
                            group_byzantine[piece.group_index],
                        ),
                        values=group_values[piece.group_index][
                            piece.normal_start : piece.normal_stop
                        ],
                        normal_seeds=piece.normal_seeds,
                        n_byzantine=piece.n_byzantine,
                        byzantine_seeds=piece.byzantine_seeds,
                    )
                    for piece in plan.shard(shard_index)
                ),
            )
            for shard_index in range(plan.n_shards)
        ]

        shard_states = run_shard_tasks(
            _run_shard,
            tasks,
            n_workers,
            pickle_probe=(self.config, attack),
        )

        accumulators = [
            self.group_accumulator(
                epsilon_t,
                expected_reports(
                    index, group_values[index].size, group_byzantine[index]
                ),
                n_users=0,
            )
            for index, epsilon_t in enumerate(ladder)
        ]
        for states in shard_states:
            for group_index, state in states:
                accumulators[group_index].merge(GroupAccumulator.from_state(state))
        return accumulators

    def run_sharded(
        self,
        normal_values: np.ndarray,
        attack: Attack | None = None,
        n_byzantine: int = 0,
        rng: RngLike = None,
        n_shards: int = 1,
        n_workers: int | None = None,
        block_size: int = DEFAULT_SHARD_BLOCK,
    ) -> DAPResult:
        """One full DAP round through the sharded collection path."""
        accumulators = self.collect_sharded(
            normal_values,
            attack,
            n_byzantine,
            rng=rng,
            n_shards=n_shards,
            n_workers=n_workers,
            block_size=block_size,
        )
        result = self.aggregate_accumulated(accumulators)
        result.skipped_reports = self.contribution_summary(
            int(np.asarray(normal_values).size) + int(n_byzantine)
        )
        return result

    # ------------------------------------------------------------------
    # collector side
    # ------------------------------------------------------------------
    def group_stats(self, group: GroupCollection) -> GroupStats:
        """Reduce an in-memory group to its sufficient statistics."""
        accumulator = self.group_accumulator(
            group.epsilon, group.n_reports, n_users=group.n_users
        )
        return accumulator.update(group.reports).stats()

    def aggregate(self, groups: Sequence[GroupCollection]) -> DAPResult:
        """Probing + intra-group estimation + inter-group aggregation.

        The in-memory entry point: each group's raw reports are reduced to
        :class:`~repro.collect.GroupStats` (a one-chunk accumulator pass) and
        handed to :meth:`aggregate_stats` — the collector never needs more
        than the sufficient statistics.
        """
        groups = [g for g in groups if g.n_reports > 0]
        if not groups:
            raise ValueError("no group contributed any reports")
        return self.aggregate_stats([self.group_stats(group) for group in groups])

    def aggregate_accumulated(
        self, accumulators: Sequence[GroupAccumulator]
    ) -> DAPResult:
        """Aggregate from streaming accumulators (see :meth:`collect_stream`)."""
        stats = [acc.stats() for acc in accumulators if acc.n_reports > 0]
        if not stats:
            raise ValueError("no group contributed any reports")
        return self.aggregate_stats(stats)

    def aggregate_stats(
        self,
        stats: Sequence[GroupStats],
        probe_warm_start: Mapping[str, np.ndarray] | None = None,
    ) -> DAPResult:
        """Stages 3-5 on per-group sufficient statistics.

        Bit-identical to feeding the same reports through the in-memory
        :meth:`aggregate`: EMF and its variants already operate on the
        output-grid histogram, and the corrected mean only needs the report
        sum and count, so no stage ever touches raw reports.

        ``probe_warm_start`` optionally seeds the probing stage's side EMs
        from a previous round's converged weights
        (:meth:`~repro.core.probing.SideProbeResult.warm_weights` of the
        returned ``result.features.probe``) — the incremental path the
        windowed service runs every window.
        """
        stats = [s for s in stats if s.n_reports > 0]
        if not stats:
            raise ValueError("no group contributed any reports")
        for group in stats:
            self._check_stats_geometry(group)

        # --- stage 3: probe side and gamma in the smallest-budget group ----------
        with stage("probe"):
            probe_stats = min(stats, key=lambda s: s.epsilon)
            probe_mechanism = self.mechanism_for(probe_stats.epsilon)
            d_in, d_out = self._bucket_counts(
                probe_stats.n_reports, probe_stats.epsilon
            )
            features = estimate_byzantine_features(
                probe_mechanism,
                counts=probe_stats.output_counts,
                n_reports=probe_stats.n_reports,
                n_input_buckets=d_in,
                n_output_buckets=d_out,
                reference_mean=self.config.reference_mean,
                epsilon=probe_stats.epsilon,
                strategy=self.config.probe_strategy,
                warm_start=probe_warm_start,
                poison_domain=self.poison_domain(),
            )
        side = features.side
        gamma_global = features.gamma_hat

        with stage("aggregate"):
            # --- stage 4: per-group reconstruction + corrected mean --------------
            # The probing stage already ran EMF on the probe group with the
            # exact transform, counts and tolerance stage 4 would use (the
            # paper's tau applies to both), so its reconstruction is reused
            # instead of being recomputed.  The distribution route tightens
            # the tolerance, so it cannot reuse the probe run.
            reusable = (
                features.emf
                if self.config.intra_group_mean == "corrected_sum"
                else None
            )
            estimates: List[GroupEstimate] = []
            for group in stats:
                reuse = reusable if group is probe_stats else None
                estimates.append(
                    self._estimate_group(
                        group, side=side, gamma_global=gamma_global, reuse_emf=reuse
                    )
                )

            # --- stage 5: minimum-variance aggregation ---------------------------
            variances = [
                self.mechanism_for(e.epsilon).worst_case_variance()
                for e in estimates
            ]
            weights = aggregation_weights(
                [e.epsilon for e in estimates],
                [e.n_normal_estimate for e in estimates],
                per_report_variances=variances,
            )
            for estimate, weight in zip(estimates, weights):
                estimate.weight = float(weight)
            aggregated = aggregate_means([e.mean for e in estimates], weights)

        return DAPResult(
            estimate=aggregated,
            poisoned_side=side,
            gamma_hat=gamma_global,
            group_estimates=estimates,
            features=features,
            amplification=self.pipeline.ledger(
                [group.epsilon for group in stats],
                [group.n_reports for group in stats],
            ),
        )

    def _check_stats_geometry(self, stats: GroupStats) -> None:
        """Reject statistics accumulated on a grid the collector cannot use."""
        expected = self.group_output_grid(stats.epsilon, max(1, stats.n_reports))
        if stats.output_grid != expected:
            raise ValueError(
                f"group (epsilon={stats.epsilon:g}) statistics were accumulated "
                f"on a {stats.output_grid.n_buckets}-bucket grid over "
                f"[{stats.output_grid.low:g}, {stats.output_grid.high:g}], but "
                f"{stats.n_reports} reports call for {expected.n_buckets} buckets "
                f"over [{expected.low:g}, {expected.high:g}]; build the "
                f"accumulator via DAPProtocol.group_accumulator with the true "
                f"expected report count"
            )
        if stats.output_counts.shape != (expected.n_buckets,):
            raise ValueError(
                f"group (epsilon={stats.epsilon:g}) has "
                f"{stats.output_counts.shape} counts for a "
                f"{expected.n_buckets}-bucket grid"
            )

    def _estimate_group(
        self,
        group: GroupStats,
        side: str,
        gamma_global: float,
        reuse_emf: EMFResult | None = None,
    ) -> GroupEstimate:
        """Stage 4 for one group: reconstruct, correct, convert to users.

        ``reuse_emf`` short-circuits the plain EMF run when the caller already
        holds a reconstruction of this group against the same transform (the
        probing stage produces exactly that for the probe group).  The reuse
        is rejected unless the transform geometry matches, so results are
        identical with or without it.
        """
        mechanism = self.mechanism_for(group.epsilon)
        d_in, d_out = self._bucket_counts(group.n_reports, group.epsilon)
        if reuse_emf is not None and not self._transform_matches(
            reuse_emf, d_in, d_out, side
        ):
            reuse_emf = None
        if reuse_emf is not None:
            transform = reuse_emf.transform
        else:
            transform = cached_transform_matrix(
                mechanism,
                n_input_buckets=d_in,
                n_output_buckets=d_out,
                side=side,
                reference_mean=self.config.reference_mean,
                poison_domain=self.poison_domain(),
            )
        counts = group.output_counts

        # the distribution route needs a sharply converged histogram, so it
        # tightens the paper's probing tolerance tau = 0.01 * e^eps
        tol = 1e-6 if self.config.intra_group_mean == "distribution" else None

        # plain EMF is only an input to the "emf" and "cemf_star" estimators;
        # EMF* re-runs EM from scratch with its constrained M-step
        emf: EMFResult | None = None
        if self.config.estimator in ("emf", "cemf_star"):
            emf = reuse_emf or run_emf(
                transform, counts=counts, epsilon=group.epsilon, tol=tol
            )
        if self.config.estimator == "emf":
            reconstruction = emf
        elif self.config.estimator == "emf_star":
            reconstruction = run_emf_star(
                transform,
                gamma_hat=gamma_global,
                counts=counts,
                epsilon=group.epsilon,
                tol=tol,
            )
        else:  # cemf_star
            reconstruction = run_cemf_star(
                transform,
                emf_result=emf,
                gamma_hat=gamma_global,
                counts=counts,
                epsilon=group.epsilon,
                suppression_factor=self.config.suppression_factor,
                tol=tol,
            )

        gamma_t = reconstruction.gamma_hat
        if self.config.intra_group_mean == "corrected_sum":
            mean_t = corrected_mean_from_stats(
                group.report_sum,
                group.n_reports,
                gamma_hat=gamma_t,
                poison_mean=reconstruction.poison_mean,
                input_domain=mechanism.input_domain,
            )
        else:
            low, high = mechanism.input_domain
            mean_t = float(
                np.clip(reconstruction.estimated_normal_mean(), low, high)
            )
        m_hat_t = gamma_t * group.n_reports
        n_normal_estimate = max(0.0, (group.n_reports - m_hat_t)) * (
            group.epsilon / self.config.epsilon
        )
        return GroupEstimate(
            epsilon=group.epsilon,
            mean=mean_t,
            gamma_hat=gamma_t,
            n_reports=group.n_reports,
            n_normal_estimate=n_normal_estimate,
            emf=reconstruction,
        )

    def _transform_matches(
        self, emf: EMFResult, d_in: int, d_out: int, side: str
    ) -> bool:
        """Whether an existing reconstruction used this group's exact transform."""
        transform = emf.transform
        reference = self.config.reference_mean
        return (
            transform.input_grid.n_buckets == d_in
            and transform.output_grid.n_buckets == d_out
            and transform.side == side
            and (reference is None or transform.reference_mean == float(reference))
            and transform.poison_domain == self.poison_domain()
        )

    def _bucket_counts(self, n_reports: int, epsilon: float) -> tuple[int, int]:
        d_in, d_out = default_bucket_counts(max(1, n_reports), epsilon)
        if self.config.n_input_buckets is not None:
            d_in = self.config.n_input_buckets
        if self.config.n_output_buckets is not None:
            d_out = self.config.n_output_buckets
        return d_in, d_out

    # ------------------------------------------------------------------
    # end to end
    # ------------------------------------------------------------------
    def run(
        self,
        normal_values: np.ndarray,
        attack: Attack | None = None,
        n_byzantine: int = 0,
        rng: RngLike = None,
    ) -> DAPResult:
        """Simulate one full DAP round (client + collector)."""
        groups = self.collect(normal_values, attack, n_byzantine, rng)
        result = self.aggregate(groups)
        result.skipped_reports = self.contribution_summary(
            int(np.asarray(normal_values).size) + int(n_byzantine)
        )
        return result

    def run_stream(
        self,
        value_chunks: Iterable[np.ndarray],
        n_normal: int,
        attack: Attack | None = None,
        n_byzantine: int = 0,
        rng: RngLike = None,
    ) -> DAPResult:
        """One full DAP round over a chunked value stream (bounded memory)."""
        accumulators = self.collect_stream(
            value_chunks, n_normal, attack, n_byzantine, rng=rng
        )
        result = self.aggregate_accumulated(accumulators)
        result.skipped_reports = self.contribution_summary(
            int(n_normal) + int(n_byzantine)
        )
        return result


# ----------------------------------------------------------------------
# shard workers (module-level, so tasks pickle cleanly into process pools)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardGroupPayload:
    """One group's slice of one shard, plus the data needed to process it."""

    group_index: int
    epsilon: float
    total_expected_reports: int
    values: np.ndarray
    normal_seeds: Tuple[int, ...]
    n_byzantine: int
    byzantine_seeds: Tuple[int, ...]


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to run one shard."""

    config: DAPConfig
    attack: Attack
    block_size: int
    groups: Tuple[_ShardGroupPayload, ...]
    backend: str = "numpy"


def _run_shard(task: _ShardTask) -> List[Tuple[int, dict]]:
    """Process one shard into per-group accumulator snapshots.

    Every block is perturbed (or poisoned) with a fresh generator seeded by
    its pre-drawn block seed, so the output depends only on the task — never
    on which process ran it or what ran before.  The task also carries the
    submitting process's array backend, re-applied here so pooled shards
    sample with the same kernels as in-process ones.
    """
    with use_backend(task.backend):
        return _run_shard_inner(task)


def _run_shard_inner(task: _ShardTask) -> List[Tuple[int, dict]]:
    protocol = DAPProtocol(task.config)
    pipeline = protocol.pipeline
    block = task.block_size
    states: List[Tuple[int, dict]] = []
    for payload in task.groups:
        mechanism = protocol.mechanism_for(payload.epsilon)
        repeats = protocol._reports_per_user(payload.epsilon)
        grid = protocol.group_output_grid(
            payload.epsilon, max(1, payload.total_expected_reports)
        )
        accumulator = GroupAccumulator(
            payload.epsilon,
            grid,
            n_expected_reports=int(payload.values.size) * repeats
            + task.attack.n_poison_reports(payload.n_byzantine * repeats),
            n_users=int(payload.values.size) + payload.n_byzantine,
        )
        for index, seed in enumerate(payload.normal_seeds):
            chunk = payload.values[index * block : (index + 1) * block]
            if not chunk.size or not repeats:
                continue
            reports = _client_perturb(
                mechanism, chunk, repeats, np.random.default_rng(int(seed))
            )
            # the block seed is the shard-partition-invariant lane key, so
            # shuffled merges stay bit-identical at any shard/worker count
            reports = pipeline.deliver(reports, (int(seed),))
            with stage("collect.accumulate"):
                accumulator.update(reports)
        if payload.n_byzantine and repeats:
            view = pipeline.adversary_view(mechanism, protocol._mechanisms)
            reference = protocol._reference_mean(view)
            remaining = payload.n_byzantine
            for seed in payload.byzantine_seeds:
                n_users_block = min(block, remaining)
                remaining -= n_users_block
                if not n_users_block:
                    continue
                poison = _client_poison(
                    task.attack,
                    view,
                    n_users_block * repeats,
                    reference,
                    np.random.default_rng(int(seed)),
                )
                poison = pipeline.deliver(poison, (int(seed),))
                with stage("collect.accumulate"):
                    accumulator.update(poison)
        states.append((payload.group_index, accumulator.state_dict()))
    return states


__all__ = [
    "DAPConfig",
    "DAPProtocol",
    "DAPResult",
    "GroupCollection",
    "GroupEstimate",
]
