"""Sketch-backed high-cardinality frequency estimation with poison probing.

The dense :class:`~repro.core.frequency.FrequencyDAP` route is O(n*k) in
collection and O(k^2) in probing, which caps it at domains of a few thousand
categories (and it now refuses larger ones outright — see its
``DENSE_MAX_CATEGORIES`` guard).  This module is the production answer for
10^5–10^6-category domains: the same collect / probe / estimate pipeline,
re-based on the :class:`~repro.ldp.count_sketch.CountSketch` mechanism.

* **Collection** is O(1) per user: each report is a ``(row, bucket)`` pair
  folded into the mergeable ``(rows, width)``
  :class:`~repro.collect.SketchAccumulator`, so streaming, sharding and the
  windowed service compose exactly as on the dense path.
* **Probing** never touches a ``k x k`` transform — and unlike the dense
  probe it does not *attribute* poison greedily by likelihood.  At sketch
  geometry the reduced model is nearly unidentifiable per candidate: a
  candidate's column and its poison column differ only in the ``q``-spread
  carrying ``~ 1 - p`` of a report's probability, and the fungible
  background column absorbs that difference, so the *marginal* gain of one
  more poison column is O(1) even under a heavy attack.  Two signals remain
  identifiable.  (a) Decode geometry: targeted poison must land on **all**
  ``rows`` of a target's cells to move its estimate, so a true target's
  *row-minimum* decode stays at its inflated value, while a hash-collision
  artifact is elevated in only the colliding rows (minimum ~ 0) and an
  honest heavy hitter sits at its true frequency.  (b) The global spread
  deficit: a poisoned sketch is missing the ``q``-spread mass its inflated
  decodes imply, which is worth a large, certifiable likelihood gain for
  the flagged set *as a whole*.  The probe flags by row-minimum decode and
  verifies the flag set with two SQUAREM-certified solves over the
  flattened ``rows * width`` cells (one column per candidate, a closed-form
  background column, *spread* poison columns of ``1/rows`` at ``rows``
  cells); per-flag single-target gains are then reported from the batched
  warm-started EM machinery (:func:`repro.ldp.ems.em_reconstruct_batch`)
  as diagnostic lower bounds.
* **Estimation** re-solves the reduced problem with the probed poison set,
  optionally gamma-constrained (EMF*) with CEMF*'s low-mass suppression —
  the same estimator family, on ``rows * width`` cells instead of ``k``.
  The refit finishes with closed-form Newton line searches along the
  candidate/poison ridge (the one EM direction that would otherwise crawl
  for >10^5 iterations).  At the ridge's maximum a verified-poisoned
  category's *honest* share is driven to ~0: the split between a target's
  honest and poison mass is not identifiable at sketch resolution, so the
  estimator suppresses the category conservatively, and ``gamma_hat``
  over-counts true poison by at most ``p`` times the flagged categories'
  honest mass.

The probe's candidate reduction is the designed trade-off: poison planted
outside the decoded heavy hitters is invisible to it — but such poison is
also (by construction) not frequency-relevant at the sketch's resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.backends import get_backend, use_backend
from repro.collect.accumulators import SketchAccumulator
from repro.collect.sharding import (
    DEFAULT_SHARD_BLOCK,
    build_shard_plan,
    run_shard_tasks,
)
from repro.collect.streaming import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.core.emf_star import constrained_m_step
from repro.core.frequency import EstimatorName
from repro.ldp.count_sketch import CountSketch
from repro.protocol.pipeline import ProtocolPipeline
from repro.protocol.plan import ProtocolPlan
from repro.ldp.ems import (
    EMResult,
    em_reconstruct,
    em_reconstruct_accelerated,
    em_reconstruct_batch,
)
from repro.utils.profiling import profiled_stage, stage
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_integer, check_positive

#: sigmas of privacy noise a candidate's row-minimum decode must clear to
#: be flaggable at all (the absolute arm of the flag rule)
FLAG_NOISE_SIGMAS = 3.0
#: verification solve: iterations between certificate checks, and the total
#: budget after which an undecided set is conservatively rejected
_VERIFY_CHUNK = 500
_VERIFY_MAX_ITER = 25_000


@dataclass
class SketchFrequencyDAPResult:
    """Outcome of the sketch-backed categorical DAP pipeline.

    Attributes
    ----------
    heavy_hitters:
        The decoded top categories the probe and estimator operated on, in
        decode-rank order (highest sketch estimate first).
    frequencies:
        EM-estimated *normal-user* frequency of each heavy hitter (aligned
        with ``heavy_hitters``; poison mass removed).  A category verified
        as poisoned is conservatively suppressed to ~0 — its honest share
        is not identifiable at sketch resolution (module docstring).
    decoded:
        Raw (pre-EM) sketch decode of each heavy hitter — what an undefended
        collector would report.
    background_mass:
        Normal-user mass attributed to everything outside the heavy hitters.
    poisoned_categories:
        Heavy hitters identified as poisoned, in flag order (largest
        row-minimum decode first).
    gamma_hat:
        Estimated fraction of poison reports.  Approximate by design: the
        candidate/poison mass split sits on a near-flat likelihood ridge
        (see the module docstring), and the refit stops at the decision-
        irrelevant gap rather than grinding the ridge to its end.
    log_likelihood_gains:
        Single-target likelihood gain of each flagged category over the
        dense-only incumbent (capped-iteration lower bounds; diagnostic —
        the accept decision is made on the *joint* gain of the flag set).
    """

    heavy_hitters: np.ndarray
    frequencies: np.ndarray
    decoded: np.ndarray
    background_mass: float = 0.0
    poisoned_categories: List[int] = field(default_factory=list)
    gamma_hat: float = 0.0
    log_likelihood_gains: List[float] = field(default_factory=list)
    mechanism: CountSketch | None = field(default=None, repr=False)
    sketch_counts: np.ndarray | None = field(default=None, repr=False)
    #: reports dropped by the contribution-cap client gate (end-to-end runs)
    skipped_reports: int = 0
    #: privacy-amplification ledger (``None`` under the local protocol)
    amplification: List[dict] | None = None

    def query(self, categories: np.ndarray) -> np.ndarray:
        """Raw sketch decode of arbitrary categories (post-hoc point queries)."""
        if self.mechanism is None or self.sketch_counts is None:
            raise ValueError("result was built without its sketch state")
        return self.mechanism.estimate_categories(self.sketch_counts, categories)


@dataclass
class _ProbeState:
    """Everything the estimator reuses from the probe's reduction."""

    candidates: np.ndarray  # (M,) heavy-hitter category ids, decode-ranked
    decoded: np.ndarray  # (M,) their raw sketch decodes
    dense: np.ndarray  # (d', M [+1]) reduced normal block over sketch cells
    cells: np.ndarray  # (M, rows) flat sketch-cell index of each candidate
    has_background: bool
    positions: List[int]  # flagged candidate positions (the poison set)
    gains: List[float]
    min_decoded: np.ndarray | None = None  # (M,) row-minimum decodes
    weights: np.ndarray | None = None  # converged reduced weights (dense [+ poison])


class SketchFrequencyDAP:
    """Collusion-robust heavy-hitter frequency estimation on a count sketch.

    Parameters
    ----------
    epsilon:
        Privacy budget of the sketch reports.
    n_categories:
        Size of the categorical domain (10^5–10^6 is the design regime).
    sketch_rows, sketch_width:
        Sketch geometry (identity knobs — all parties must agree).
    estimator:
        ``"emf"`` / ``"emf_star"`` / ``"cemf_star"``, with the same semantics
        as :class:`~repro.core.frequency.FrequencyDAP`, applied to the
        reduced heavy-hitter problem.
    n_heavy_hitters:
        How many decoded top categories the probe and estimator keep.
    max_poisoned:
        Upper bound on flagged categories (default: half the heavy hitters).
    min_likelihood_gain:
        Verification gate: the flag set is accepted only when its joint
        poison model beats the dense-only incumbent by at least this much
        log-likelihood (and rejected when the solver certifies it cannot).
    flag_relative_cut:
        Relative arm of the flag rule: a candidate is flagged when its
        row-minimum decode reaches this fraction of the largest row-minimum
        decode (and clears the absolute privacy-noise floor).
    """

    def __init__(
        self,
        epsilon: float,
        n_categories: int,
        sketch_rows: int = 4,
        sketch_width: int = 1024,
        estimator: EstimatorName = "emf_star",
        n_heavy_hitters: int = 64,
        max_poisoned: int | None = None,
        min_likelihood_gain: float = 2.0,
        flag_relative_cut: float = 0.5,
        protocol: str = "local",
        contribution_cap: int | None = None,
        shuffle_seed: int = 0,
    ) -> None:
        self.epsilon = check_positive(epsilon, "epsilon")
        self.n_categories = check_integer(n_categories, "n_categories", minimum=2)
        if estimator not in ("emf", "emf_star", "cemf_star"):
            raise ValueError(
                f"estimator must be 'emf', 'emf_star' or 'cemf_star', got {estimator!r}"
            )
        self.estimator = estimator
        self.n_heavy_hitters = min(
            check_integer(n_heavy_hitters, "n_heavy_hitters", minimum=1),
            self.n_categories,
        )
        self.max_poisoned = (
            max(1, self.n_heavy_hitters // 2)
            if max_poisoned is None
            else int(max_poisoned)
        )
        self.min_likelihood_gain = check_positive(
            min_likelihood_gain, "min_likelihood_gain"
        )
        self.flag_relative_cut = check_positive(
            flag_relative_cut, "flag_relative_cut"
        )
        if self.flag_relative_cut > 1.0:
            raise ValueError(
                f"flag_relative_cut must be in (0, 1], got {flag_relative_cut!r}"
            )
        # single budget group: shuffling adds the amplification ledger and
        # the (statistics-invariant) transport mixing, as in FrequencyDAP
        self.protocol_plan = ProtocolPlan(
            protocol=protocol,
            contribution_cap=contribution_cap,
            shuffle_seed=shuffle_seed,
        )
        self.mechanism = CountSketch(
            epsilon, n_categories, sketch_rows=sketch_rows, sketch_width=sketch_width
        )
        self.sketch_rows = self.mechanism.sketch_rows
        self.sketch_width = self.mechanism.sketch_width

    # ------------------------------------------------------------------
    # protocol pipeline
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> ProtocolPipeline:
        """Stage helpers for the configured protocol (cheap to build)."""
        return ProtocolPipeline(self.protocol_plan)

    def _reports_per_user(self) -> int:
        """Each user sends one sketch report, unless the cap drops it."""
        return self.protocol_plan.effective_repeats(1)

    def contribution_summary(self, n_total: int) -> int:
        """Reports the contribution cap drops for ``n_total`` users."""
        return self.pipeline.skipped_reports([int(n_total)], [1])

    # ------------------------------------------------------------------
    # client-side simulation helpers
    # ------------------------------------------------------------------
    @profiled_stage("collect")
    def collect(
        self,
        normal_categories: np.ndarray,
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Simulate one collection round (returns raw ``(row, bucket)`` reports).

        Normal users perturb through the sketch mechanism; Byzantine users
        submit the strongest sketch poison — a target category's own cell in
        a uniformly chosen row (see :meth:`CountSketch.target_reports`).
        """
        rng = ensure_rng(rng)
        pipeline = self.pipeline
        normal_categories = np.asarray(normal_categories, dtype=int)
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)
        if not self._reports_per_user():
            return np.empty((0, 2), dtype=int)
        with stage("collect.sample"):
            reports = [self.mechanism.perturb(normal_categories, rng)]
        if n_byzantine:
            if not len(poisoned_categories):
                raise ValueError(
                    "poisoned_categories must be provided when n_byzantine > 0"
                )
            targets = np.asarray(list(poisoned_categories), dtype=int)
            with stage("collect.poison"):
                poison = self.mechanism.target_reports(targets, rng, size=n_byzantine)
            reports.append(poison)
        merged = np.concatenate(reports)
        return pipeline.deliver(merged, (0, len(merged)))

    @profiled_stage("collect")
    def collect_stream(
        self,
        category_chunks: Iterable[np.ndarray],
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
        poison_chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> SketchAccumulator:
        """Chunked collection into a sketch accumulator (bounded memory)."""
        rng = ensure_rng(rng)
        pipeline = self.pipeline
        capped = not self._reports_per_user()
        lane = 0
        accumulator = SketchAccumulator(self.sketch_rows, self.sketch_width)
        for chunk in category_chunks:
            chunk = np.asarray(chunk, dtype=int).ravel()
            if chunk.size and not capped:
                with stage("collect.sample"):
                    reports = self.mechanism.perturb(chunk, rng)
                reports = pipeline.deliver(reports, (0, lane, len(reports)))
                lane += 1
                with stage("collect.accumulate"):
                    accumulator.update(reports)
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)
        if n_byzantine and not capped:
            if not len(poisoned_categories):
                raise ValueError(
                    "poisoned_categories must be provided when n_byzantine > 0"
                )
            targets = np.asarray(list(poisoned_categories), dtype=int)
            for start, stop in iter_chunks(n_byzantine, poison_chunk_size):
                with stage("collect.poison"):
                    poison = self.mechanism.target_reports(
                        targets, rng, size=stop - start
                    )
                poison = pipeline.deliver(poison, (0, lane, len(poison)))
                lane += 1
                with stage("collect.accumulate"):
                    accumulator.update(poison)
        return accumulator

    @profiled_stage("collect")
    def collect_sharded(
        self,
        normal_categories: np.ndarray,
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
        n_shards: int = 1,
        n_workers: int | None = None,
        block_size: int = DEFAULT_SHARD_BLOCK,
    ) -> SketchAccumulator:
        """Sharded collection into one merged sketch accumulator.

        Same contract as the dense path: fixed-size blocks with pre-drawn
        seeds, shards folded with ``merge()`` — the merged sketch counts are
        bit-identical at any ``n_shards`` / ``n_workers``.
        """
        rng = ensure_rng(rng)
        normal_categories = np.asarray(normal_categories, dtype=int).ravel()
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)
        if n_byzantine and not len(poisoned_categories):
            raise ValueError(
                "poisoned_categories must be provided when n_byzantine > 0"
            )
        targets = np.asarray(list(poisoned_categories), dtype=int)
        if not self._reports_per_user():
            return SketchAccumulator(self.sketch_rows, self.sketch_width)
        plan = build_shard_plan(
            [normal_categories.size],
            [n_byzantine],
            n_shards=n_shards,
            rng=rng,
            block_size=block_size,
        )
        backend_name = get_backend().name
        tasks = []
        for shard_index in range(plan.n_shards):
            slices = plan.shard(shard_index)
            if not slices:
                continue
            (piece,) = slices
            tasks.append(
                _SketchShardTask(
                    epsilon=self.epsilon,
                    n_categories=self.n_categories,
                    sketch_rows=self.sketch_rows,
                    sketch_width=self.sketch_width,
                    categories=normal_categories[
                        piece.normal_start : piece.normal_stop
                    ],
                    normal_seeds=piece.normal_seeds,
                    n_byzantine=piece.n_byzantine,
                    byzantine_seeds=piece.byzantine_seeds,
                    targets=targets,
                    block_size=block_size,
                    backend=backend_name,
                    protocol=self.protocol_plan.protocol,
                    shuffle_seed=self.protocol_plan.shuffle_seed,
                )
            )
        accumulator = SketchAccumulator(self.sketch_rows, self.sketch_width)
        for state in run_shard_tasks(_run_sketch_shard, tasks, n_workers):
            accumulator.merge(SketchAccumulator.from_state(state))
        return accumulator

    # ------------------------------------------------------------------
    # collector side
    # ------------------------------------------------------------------
    def _check_counts(self, counts) -> np.ndarray:
        if isinstance(counts, SketchAccumulator):
            if (
                counts.sketch_rows != self.sketch_rows
                or counts.sketch_width != self.sketch_width
            ):
                raise ValueError(
                    f"sketch accumulator geometry "
                    f"({counts.sketch_rows}, {counts.sketch_width}) does not "
                    f"match the mechanism "
                    f"({self.sketch_rows}, {self.sketch_width})"
                )
            counts = counts.counts
        counts = self.mechanism.check_counts(np.asarray(counts))
        if counts.sum() == 0:
            raise ValueError("cannot estimate frequencies from zero reports")
        return counts

    def _reduced_problem(self, counts: np.ndarray) -> _ProbeState:
        """Decode the domain, rank heavy hitters, build the reduced transform.

        The reduced normal block lives on the ``rows * width`` flattened
        sketch cells: candidate category ``v`` reports cell ``(j, b)`` with
        probability ``(p if h_j(v) == b else q) / rows``, and the background
        column averages that distribution over every non-candidate category —
        its per-cell hash multiplicity is exactly the domain occupancy minus
        the candidates' own cells, so the column is closed-form (no per-
        category work beyond the occupancy pass).

        Ranking uses the *row-minimum* decode (the same statistic the flag
        rule keys on): collisions only ever *add* mass, so an honest heavy
        hitter's minimum never falls below its true frequency minus decode
        noise, while an innocent category elevated by sharing buckets with a
        heavy or poisoned cell is suppressed unless it collides in *every*
        row at once (probability ``~(m / w)^rows`` per category — negligible
        even at 10^6 categories, where the row-median's two-collision tail
        produces hundreds of artifacts that would crowd genuine heavies out
        of the candidate set).  True heavy hitters and actual poison targets
        are elevated in every row, so both still rank (poison targets must:
        the probe needs them as candidates to flag them).  The *mean* decode
        remains the reported unbiased estimate.
        """
        mechanism = self.mechanism
        rows, width = self.sketch_rows, self.sketch_width
        ranked_all = mechanism.estimate_all(counts, reduce="min")
        # deterministic ranking: min decode descending, category id tiebreak
        order = np.lexsort((np.arange(ranked_all.size), -ranked_all))
        candidates = np.sort(order[: self.n_heavy_hitters])
        # decode-rank order for reporting; np.sort above keeps the cell/hash
        # arithmetic cache-friendlier, so re-rank explicitly
        candidates = candidates[np.argsort(-ranked_all[candidates], kind="stable")]
        decoded = mechanism.estimate_categories(counts, candidates)

        cells = mechanism.hash_rows(candidates)  # (M, rows) buckets
        cells = cells + (np.arange(rows) * width)[np.newaxis, :]  # flat indices

        n_cells = rows * width
        n_other = self.n_categories - candidates.size
        p_cell = mechanism.p / rows
        q_cell = mechanism.q / rows
        dense = np.full((n_cells, candidates.size + (1 if n_other else 0)), q_cell)
        for m in range(candidates.size):
            dense[cells[m], m] = p_cell
        if n_other:
            occupancy = mechanism.occupancy().ravel().astype(float)
            np.subtract.at(occupancy, cells.ravel(), 1.0)
            dense[:, -1] = q_cell + (p_cell - q_cell) * occupancy / n_other
        return _ProbeState(
            candidates=candidates,
            decoded=decoded,
            dense=dense,
            cells=cells,
            has_background=bool(n_other),
            positions=[],
            gains=[],
        )

    def _poison_transform(
        self, state: _ProbeState, positions: Sequence[int]
    ) -> np.ndarray:
        """Reduced transform extended with one *spread* poison column per
        position: a sketch poison report lands on one of the target's cells
        per row, so the column is ``1/rows`` at the candidate's ``rows``
        cells and zero elsewhere."""
        transform = state.dense
        if len(positions):
            poison = np.zeros((transform.shape[0], len(positions)))
            for column, position in enumerate(positions):
                poison[state.cells[position], column] = 1.0 / self.sketch_rows
            transform = np.hstack([transform, poison])
        return transform

    def _poison_heavy_initial(
        self, incumbent_weights: np.ndarray, flags: Sequence[int]
    ) -> np.ndarray:
        """Incumbent weights with each flag's dense mass moved into its own
        poison column.

        The candidate and poison columns agree on the candidate's cells up
        to scale, so the likelihood ridge between them is nearly flat and EM
        crawls across it — warm-started from the candidate-heavy side, a
        genuinely poisoned flag set's solve stalls on the plateau and its
        gain goes unobserved.  Seeding from the poison-heavy side leaves
        only the fast direction (the background reabsorbing the released
        phantom spread); for honest flags the two sides are likelihood-
        equivalent, so the gain stays ~0 either way.  The uniform blur keeps
        every component off the EM-absorbing exact zero.
        """
        n_dense = incumbent_weights.size
        n_components = n_dense + len(flags)
        share = 1.0 / n_components
        initial = np.empty(n_components)
        initial[:n_dense] = incumbent_weights * (1.0 - share * len(flags))
        for column, position in enumerate(flags):
            initial[n_dense + column] = share + initial[position]
            initial[position] = 0.0
        return 0.98 * initial + 0.02 / n_components

    def _polish_ridge(
        self,
        transform: np.ndarray,
        counts_flat: np.ndarray,
        weights: np.ndarray,
        n_dense: int,
        positions: Sequence[int],
        gap_tol: float,
    ) -> EMResult:
        """Newton line searches along the candidate/poison ridge, then EM.

        EM's slow direction on the flagged model is known in closed form:
        by the cell-mass identity, trading a flagged candidate's weight
        ``delta`` for ``p * delta`` of its poison column and
        ``(1 - p) * delta`` of background leaves every sketch cell's mixture
        almost unchanged — accelerated EM needs >10^5 iterations to crawl
        that ridge, while a safeguarded 1-D Newton solves each flag's
        optimal ``delta`` exactly.  Alternating the line searches with short
        certified EM rounds (which handle every *fast* direction) reaches
        the certified optimum in a couple of rounds.
        """
        p = self.mechanism.p
        background = n_dense - 1
        mask = counts_flat > 0
        masked_counts = counts_flat[mask]
        fit = None
        for _ in range(8):
            for column, position in enumerate(positions):
                poison = n_dense + column
                direction = (
                    p * transform[:, poison]
                    + (1.0 - p) * transform[:, background]
                    - transform[:, position]
                )[mask]
                mixture = np.maximum(transform @ weights, 1e-300)[mask]
                low = max(
                    -weights[poison] / p, -weights[background] / (1.0 - p)
                ) + 1e-12
                high = weights[position] - 1e-12
                if high <= low:
                    continue
                delta = 0.0
                for _newton in range(60):
                    denominator = np.maximum(mixture + delta * direction, 1e-300)
                    gradient = float(
                        np.sum(masked_counts * direction / denominator)
                    )
                    curvature = float(
                        np.sum(masked_counts * (direction / denominator) ** 2)
                    )
                    if curvature <= 0:
                        break
                    moved = float(
                        np.clip(delta + gradient / curvature, low, high)
                    )
                    if abs(moved - delta) < 1e-15:
                        delta = moved
                        break
                    delta = moved
                weights = weights.copy()
                weights[position] -= delta
                weights[poison] += p * delta
                weights[background] += (1.0 - p) * delta
            fit = em_reconstruct_accelerated(
                transform,
                counts_flat,
                initial=weights,
                tol=1e-12,
                max_iter=500,
                gap_tol=gap_tol,
            )
            weights = fit.weights
            if fit.converged:
                break
        return fit

    def _reconstruct_reduced(
        self,
        counts_flat: np.ndarray,
        state: _ProbeState,
        positions: Sequence[int],
        gamma_hat: float | None = None,
        initial: np.ndarray | None = None,
    ) -> EMResult:
        """Scalar EM on the reduced problem for a given poison set.

        The unconstrained solve runs on the accelerated kernel with a
        duality-gap certificate; with poison columns present it finishes on
        :meth:`_polish_ridge`, which replaces the >10^5-iteration
        candidate/poison-ridge crawl with closed-form line searches.  The
        gamma-constrained M-step is not expressible in the accelerated
        kernel (plain normalising M-step only), so EMF*/CEMF* refits stay
        on the plain kernel, warm-started from the unconstrained solution.
        """
        transform = self._poison_transform(state, positions)
        if gamma_hat is not None and len(positions):
            return em_reconstruct(
                transform,
                counts_flat,
                initial=initial,
                m_step=constrained_m_step(gamma_hat, state.dense.shape[1]),
                tol=1e-9,
                max_iter=10_000,
            )
        gap_tol = 1e-3 * self.min_likelihood_gain
        fit = em_reconstruct_accelerated(
            transform,
            counts_flat,
            initial=initial,
            tol=1e-12,
            max_iter=2_000,
            gap_tol=gap_tol,
        )
        if len(positions) and state.has_background and not fit.converged:
            fit = self._polish_ridge(
                transform,
                counts_flat,
                fit.weights,
                state.dense.shape[1],
                positions,
                gap_tol,
            )
        return fit

    def probe_poisoned_categories(self, counts) -> tuple[List[int], List[float]]:
        """Min-decode-flagged, likelihood-verified poisoned heavy hitters."""
        state = self._probe(self._check_counts(counts))
        return [int(state.candidates[p]) for p in state.positions], state.gains

    def _decode_initial(self, state: _ProbeState) -> np.ndarray:
        """Decode-based warm start for the dense incumbent solve.

        The mean decode is a consistent estimator of exactly the weights the
        incumbent EM solves for, so starting there skips the multiplicative
        crawl that dominates a uniform start: the candidate set typically
        contains dozens of near-zero categories (decode-noise order
        statistics), and multiplicative EM shrinks a uniform-initialised
        weight to ~1e-5 only geometrically — tens of thousands of iterations
        that the warm start replaces with a few hundred.
        """
        decoded = np.clip(state.decoded, 1e-6, None)
        if state.has_background:
            background = max(1e-3, 1.0 - float(decoded.sum()))
            decoded = np.concatenate([decoded, [background]])
        return decoded / decoded.sum()

    def _verify_flags(
        self,
        counts_flat: np.ndarray,
        state: _ProbeState,
        flagged: np.ndarray,
        incumbent: EMResult,
        gap_tol: float,
    ) -> np.ndarray | None:
        """Certified accept/reject of a flagged set; weights on accept.

        The achieved likelihood of the flagged model is a valid lower bound
        at *any* iteration, so the solve accepts as soon as it beats the
        incumbent's certified optimum by ``min_likelihood_gain`` — under a
        real attack that happens within the first few hundred iterations,
        long before the candidate/poison ridge converges.  Rejection uses
        the solver's ``ll_floor`` duality-gap certificate (the flagged
        optimum provably cannot reach the bar), which fires quickly on
        clean data where the true joint gain is ~0.  Between chunks the
        ridge polish (:meth:`_polish_ridge`) jumps the iterate along the
        candidate/poison ridge — on clean rounds that lands the solve at
        its certified optimum within a chunk or two, so the reject decision
        never grinds across the ridge one EM step at a time.  The solve
        runs in chunks so an undecided set cannot grind; exhausting the
        budget rejects conservatively.
        """
        transform = self._poison_transform(state, flagged)
        weights = self._poison_heavy_initial(incumbent.weights, flagged)
        floor = incumbent.log_likelihood + self.min_likelihood_gain
        budget = _VERIFY_MAX_ITER
        while budget > 0:
            chunk = min(_VERIFY_CHUNK, budget)
            fit = em_reconstruct_accelerated(
                transform,
                counts_flat,
                initial=weights,
                tol=1e-12,
                max_iter=chunk,
                gap_tol=gap_tol,
                ll_floor=floor,
            )
            weights = fit.weights
            budget -= fit.n_iterations
            if fit.log_likelihood >= floor + gap_tol:
                # the incumbent is certified within gap_tol of its optimum,
                # so this achieved likelihood certifies the joint gain
                return weights
            if fit.converged or fit.n_iterations < chunk:
                # converged below the bar, or the ll_floor certificate fired
                return None
            if state.has_background:
                fit = self._polish_ridge(
                    transform,
                    counts_flat,
                    weights,
                    state.dense.shape[1],
                    list(flagged),
                    gap_tol,
                )
                weights = fit.weights
                if fit.log_likelihood >= floor + gap_tol:
                    return weights
                if fit.converged:
                    # certified within gap_tol of the flagged optimum and
                    # still below the bar
                    return None
        return None

    def _one_shot_gains(
        self,
        counts_flat: np.ndarray,
        state: _ProbeState,
        flagged: np.ndarray,
        incumbent: EMResult,
        gap_tol: float,
    ) -> List[float]:
        """Single-flag likelihood gains over the incumbent, batched.

        One hypothesis per flag, spread poison tails, poison-heavy warm
        start — the dense probe's batched EM machinery on the sketch's
        reduced problem.  Iteration-capped: the values are reported as
        diagnostic lower bounds, not run to certification (the ridge's last
        fraction of a log-likelihood unit costs orders of magnitude more
        iterations than the bound is worth).
        """
        n_dense = state.dense.shape[1]
        n_components = n_dense + 1
        share = 1.0 / n_components
        initial = np.empty((flagged.size, n_components))
        initial[:, :-1] = incumbent.weights * (1.0 - share)
        initial[:, -1] = share
        hypothesis = np.arange(flagged.size)
        initial[hypothesis, -1] += initial[hypothesis, flagged]
        initial[hypothesis, flagged] = 0.0
        initial = 0.98 * initial + 0.02 / n_components
        batch = em_reconstruct_batch(
            state.dense,
            counts_flat,
            state.cells[flagged][:, np.newaxis, :],
            initial=initial,
            tol=1e-9,
            max_iter=10_000,
            gap_tol=gap_tol,
        )
        return [
            float(ll - incumbent.log_likelihood) for ll in batch.log_likelihoods
        ]

    @profiled_stage("probe")
    def _probe(self, counts: np.ndarray) -> _ProbeState:
        """Flag poison by row-minimum decode; verify the set by likelihood.

        Stage ``probe.decode`` builds the reduced problem (min-decode
        candidate ranking) and computes the flag statistic: each candidate's
        *row-minimum* debiased decode.  Targeted sketch poison must elevate
        all ``rows`` of a target's cells to move its estimate, so a true
        target's minimum stays at its inflated decode, while a collision
        artifact is elevated in only the colliding rows (minimum ~ 0) and an
        honest heavy hitter sits at its true frequency.  A candidate is
        flagged when its minimum clears both ``flag_relative_cut`` of the
        largest minimum and the ``FLAG_NOISE_SIGMAS``-sigma noise floor.

        Stage ``probe.em`` verifies: the flag set is accepted only if its
        joint poison model beats the dense-only incumbent by
        ``min_likelihood_gain`` — the global q-spread-deficit test (module
        docstring).  Both solves carry duality-gap certificates, so accept
        (achieved gain) and reject (certified bound) are both sound; a clean
        round whose honest heavies pass the relative cut is rejected here,
        their joint gain being ~0.  Known limitation: the relative cut
        compares within the candidate set, so an honest heavy whose
        frequency is comparable to a true target's inflated decode is
        flagged along with it; the estimator's low-mass suppression (CEMF*)
        is the second line of defense.
        """
        with stage("probe.decode"):
            state = self._reduced_problem(counts)
            min_decoded = self.mechanism.estimate_categories(
                counts, state.candidates, reduce="min"
            )
            state.min_decoded = min_decoded
            noise_floor = FLAG_NOISE_SIGMAS * self.mechanism.frequency_stderr(
                int(counts.sum())
            )
            cut = max(
                self.flag_relative_cut * float(min_decoded.max()), noise_floor
            )
            flagged = np.flatnonzero(min_decoded >= cut)
            flagged = flagged[np.argsort(-min_decoded[flagged], kind="stable")]
            flagged = flagged[: self.max_poisoned]
        with stage("probe.em"):
            counts_flat = counts.ravel().astype(float)
            gap_tol = 1e-3 * self.min_likelihood_gain
            incumbent = em_reconstruct_accelerated(
                state.dense,
                counts_flat,
                initial=self._decode_initial(state),
                tol=1e-12,
                max_iter=200_000,
                gap_tol=gap_tol,
            )
            state.weights = incumbent.weights
            if flagged.size:
                verified = self._verify_flags(
                    counts_flat, state, flagged, incumbent, gap_tol
                )
                if verified is not None:
                    state.positions = [int(m) for m in flagged]
                    state.weights = verified
                    state.gains = self._one_shot_gains(
                        counts_flat, state, flagged, incumbent, gap_tol
                    )
        return state

    def estimate(self, reports: np.ndarray) -> SketchFrequencyDAPResult:
        """Full collector pipeline from raw ``(row, bucket)`` reports."""
        return self.estimate_from_counts(self.mechanism.fold(reports))

    def estimate_from_counts(self, counts) -> SketchFrequencyDAPResult:
        """The collector pipeline on sketch counts (the sufficient statistic).

        Accepts the raw ``(rows, width)`` count matrix or the accumulator
        produced by :meth:`collect_stream` / :meth:`collect_sharded`.  Sketch
        counts folded over chunks equal the one-shot fold of the concatenated
        stream, so this path is report-order invariant.
        """
        counts = self._check_counts(counts)
        state = self._probe(counts)
        counts_flat = counts.ravel().astype(float)
        positions = list(state.positions)

        with stage("aggregate"):
            # the probe's verification solve is the same reduced model, so
            # its converged weights warm-start the refit
            emf = self._reconstruct_reduced(
                counts_flat, state, positions, initial=state.weights
            )
            n_dense = state.dense.shape[1]
            gamma_hat = (
                float(emf.weights[n_dense:].sum()) if positions else 0.0
            )

            if self.estimator == "emf" or not positions:
                weights = emf.weights
            else:
                initial = emf.weights
                if self.estimator == "cemf_star":
                    poison_mass = emf.weights[n_dense:]
                    threshold = 0.5 * gamma_hat / max(1, len(positions))
                    keep = [
                        index
                        for index, mass in enumerate(poison_mass)
                        if mass >= threshold
                    ]
                    if keep and len(keep) < len(positions):
                        positions = [positions[index] for index in keep]
                        initial = np.concatenate(
                            [emf.weights[:n_dense], poison_mass[keep]]
                        )
                        initial = initial / initial.sum()
                weights = self._reconstruct_reduced(
                    counts_flat,
                    state,
                    positions,
                    gamma_hat=gamma_hat,
                    initial=initial,
                ).weights

            normal = np.clip(weights[:n_dense], 0.0, None)
            total = normal.sum()
            if total > 0:
                normal = normal / total
            else:
                normal = np.full(n_dense, 1.0 / n_dense)
            n_candidates = state.candidates.size
            frequencies = normal[:n_candidates]
            background = float(normal[-1]) if state.has_background else 0.0
        return SketchFrequencyDAPResult(
            heavy_hitters=state.candidates.copy(),
            frequencies=frequencies,
            decoded=state.decoded.copy(),
            background_mass=background,
            poisoned_categories=[int(state.candidates[p]) for p in state.positions],
            gamma_hat=gamma_hat,
            log_likelihood_gains=state.gains,
            mechanism=self.mechanism,
            sketch_counts=counts,
            amplification=self.pipeline.ledger(
                [self.epsilon], [int(counts.sum())]
            ),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        normal_categories: np.ndarray,
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
    ) -> SketchFrequencyDAPResult:
        """Simulate one round end to end (collection + estimation)."""
        reports = self.collect(normal_categories, poisoned_categories, n_byzantine, rng)
        result = self.estimate(reports)
        result.skipped_reports = self.contribution_summary(
            int(np.asarray(normal_categories).size) + int(n_byzantine)
        )
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SketchFrequencyDAP(epsilon={self.epsilon:g}, "
            f"n_categories={self.n_categories}, "
            f"rows={self.sketch_rows}, width={self.sketch_width}, "
            f"estimator={self.estimator!r})"
        )


# ----------------------------------------------------------------------
# shard workers (module-level, so tasks pickle cleanly into process pools)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _SketchShardTask:
    """One shard of a count-sketch collection round (picklable)."""

    epsilon: float
    n_categories: int
    sketch_rows: int
    sketch_width: int
    categories: np.ndarray
    normal_seeds: Tuple[int, ...]
    n_byzantine: int
    byzantine_seeds: Tuple[int, ...]
    targets: np.ndarray
    block_size: int
    backend: str = "numpy"
    protocol: str = "local"
    shuffle_seed: int = 0


def _run_sketch_shard(task: _SketchShardTask) -> dict:
    """Perturb + poison one shard into a sketch-count snapshot."""
    with use_backend(task.backend):
        return _run_sketch_shard_inner(task)


def _run_sketch_shard_inner(task: _SketchShardTask) -> dict:
    mechanism = CountSketch(
        task.epsilon,
        task.n_categories,
        sketch_rows=task.sketch_rows,
        sketch_width=task.sketch_width,
    )
    pipeline = ProtocolPipeline(
        ProtocolPlan(protocol=task.protocol, shuffle_seed=task.shuffle_seed)
    )
    accumulator = SketchAccumulator(task.sketch_rows, task.sketch_width)
    block = task.block_size
    for index, seed in enumerate(task.normal_seeds):
        chunk = task.categories[index * block : (index + 1) * block]
        if not chunk.size:
            continue
        with stage("collect.sample"):
            reports = mechanism.perturb(chunk, np.random.default_rng(int(seed)))
        # block seeds are the shard-partition-invariant delivery lanes
        reports = pipeline.deliver(reports, (int(seed),))
        with stage("collect.accumulate"):
            accumulator.update(reports)
    remaining = task.n_byzantine
    for seed in task.byzantine_seeds:
        n_users_block = min(block, remaining)
        remaining -= n_users_block
        if not n_users_block:
            continue
        block_rng = np.random.default_rng(int(seed))
        with stage("collect.poison"):
            poison = mechanism.target_reports(
                task.targets, block_rng, size=n_users_block
            )
        poison = pipeline.deliver(poison, (int(seed),))
        with stage("collect.accumulate"):
            accumulator.update(poison)
    return accumulator.state_dict()


__all__ = ["SketchFrequencyDAP", "SketchFrequencyDAPResult"]
