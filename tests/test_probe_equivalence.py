"""Equivalence suite for the fast probing + vectorized defense kernels.

Three contracts introduced by the perf overhaul, each enforced here:

* the **batched** (screened, warm-started, gap-certified) hypothesis
  evaluation selects the same poison categories and the same poisoned side
  as the bit-stable **cold** greedy path on the seed grids, and the final
  frequency estimates are bit-identical (both strategies solve the final
  reconstruction on the cold path);
* the batched EM kernel converges to the same maximisers as per-hypothesis
  scalar solves, and its screening certificates are sound;
* the vectorized defense kernels (interval-encoded isolation forest,
  searchsorted k-means assignment, blocked subset sampling) are
  bit-identical to the seed loop implementations under a fixed rng.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.bba import BiasedByzantineAttack
from repro.attacks.distributions import PAPER_POISON_RANGES
from repro.core.dap import DAPConfig, DAPProtocol
from repro.core.frequency import FrequencyDAP
from repro.core.probing import check_probe_strategy
from repro.datasets import covid_dataset
from repro.datasets.synthetic import uniform_dataset
from repro.defenses.isolation_forest import IsolationForest
from repro.defenses.kmeans import (
    KMeansDefense,
    _nearest_center_labels,
    _nearest_center_labels_brute,
    kmeans_1d,
)
from repro.ldp.ems import (
    em_reconstruct,
    em_reconstruct_accelerated,
    em_reconstruct_batch,
)
from repro.ldp.piecewise import PiecewiseMechanism
from repro.simulation.population import build_population


# ----------------------------------------------------------------------
# batched EM kernel
# ----------------------------------------------------------------------
class TestBatchKernel:
    @pytest.fixture(scope="class")
    def problem(self):
        rng = np.random.default_rng(0)
        dense = rng.random((30, 12))
        dense /= dense.sum(axis=0)
        counts = rng.integers(0, 500, size=30).astype(float)
        return dense, counts

    def test_matches_scalar_solves(self, problem):
        dense, counts = problem
        candidates = [3, 7, 11, 20]
        batch = em_reconstruct_batch(
            dense, counts, np.array([[c] for c in candidates]), tol=1e-9
        )
        for h, candidate in enumerate(candidates):
            column = np.zeros((30, 1))
            column[candidate, 0] = 1.0
            reference = em_reconstruct(np.hstack([dense, column]), counts, tol=1e-9)
            assert batch.log_likelihoods[h] == pytest.approx(
                reference.log_likelihood, abs=1e-6
            )
            np.testing.assert_allclose(
                batch.weights[h], reference.weights, atol=1e-6
            )

    def test_padded_tails_match_ragged_hypotheses(self, problem):
        dense, counts = problem
        tail_rows = np.array([[3, 7], [11, 11]])
        tail_mask = np.array([[True, True], [True, False]])
        batch = em_reconstruct_batch(
            dense, counts, tail_rows, tail_mask=tail_mask, tol=1e-9
        )
        two = np.zeros((30, 2))
        two[3, 0] = two[7, 1] = 1.0
        one = np.zeros((30, 1))
        one[11, 0] = 1.0
        ref2 = em_reconstruct(np.hstack([dense, two]), counts, tol=1e-9)
        ref1 = em_reconstruct(np.hstack([dense, one]), counts, tol=1e-9)
        assert batch.log_likelihoods[0] == pytest.approx(
            ref2.log_likelihood, abs=1e-6
        )
        assert batch.log_likelihoods[1] == pytest.approx(
            ref1.log_likelihood, abs=1e-6
        )
        assert batch.weights[1, -1] == 0.0  # padded component pinned to zero

    def test_screening_certificate_is_sound(self, problem):
        dense, counts = problem
        candidates = np.arange(dense.shape[0])
        floor_probe = em_reconstruct_batch(
            dense, counts, candidates[:, None], tol=1e-9
        )
        # set the floor above some hypotheses' converged optima: those (and
        # only those) may be screened, and every screened hypothesis's true
        # optimum must indeed lie below the floor
        floor = float(np.median(floor_probe.log_likelihoods))
        screened_run = em_reconstruct_batch(
            dense,
            counts,
            candidates[:, None],
            tol=1e-9,
            gap_tol=1e-6,
            ll_floor=floor,
        )
        assert screened_run.screened.any()
        for h in np.flatnonzero(screened_run.screened):
            assert floor_probe.log_likelihoods[h] < floor

    def test_accelerated_reaches_the_same_maximiser(self, problem):
        dense, counts = problem
        column = np.zeros((30, 1))
        column[5, 0] = 1.0
        transform = np.hstack([dense, column])
        plain = em_reconstruct(transform, counts, tol=1e-9)
        accelerated = em_reconstruct_accelerated(transform, counts, tol=1e-9)
        assert accelerated.log_likelihood == pytest.approx(
            plain.log_likelihood, abs=1e-5
        )
        assert accelerated.n_iterations < plain.n_iterations

    def test_gap_certificate_stops_early_and_accurately(self, problem):
        dense, counts = problem
        full = em_reconstruct(dense, counts, tol=1e-12, max_iter=50_000)
        certified = em_reconstruct(dense, counts, tol=1e-12, gap_tol=1e-4)
        assert certified.converged
        assert certified.n_iterations <= full.n_iterations
        assert full.log_likelihood - certified.log_likelihood <= 1e-4


# ----------------------------------------------------------------------
# greedy category probe: batched == cold selections, identical estimates
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def covid():
    return covid_dataset(n_samples=12_000, rng=3)


SEED_GRIDS = [
    (0, (3,), 2_000),
    (1, (2, 3), 3_000),
    (2, (), 0),
    (5, (0, 7, 11), 3_000),
]


class TestFrequencyProbeEquivalence:
    @pytest.mark.parametrize("estimator", ["emf", "emf_star", "cemf_star"])
    @pytest.mark.parametrize("grid", SEED_GRIDS, ids=str)
    def test_same_selections_and_identical_estimates(self, covid, estimator, grid):
        seed, targets, n_byzantine = grid
        rng = np.random.default_rng(seed)
        cold = FrequencyDAP(
            1.0, covid.n_categories, estimator=estimator, probe_strategy="cold"
        )
        batched = FrequencyDAP(
            1.0, covid.n_categories, estimator=estimator, probe_strategy="batched"
        )
        reports = cold.collect(
            covid.categories[:6_000], targets, n_byzantine, rng=rng
        )
        counts = np.bincount(reports, minlength=covid.n_categories).astype(float)

        cold_set, _ = cold.probe_poisoned_categories(counts)
        batched_set, _ = batched.probe_poisoned_categories(counts)
        assert batched_set == cold_set

        cold_result = cold.estimate_from_counts(counts)
        batched_result = batched.estimate_from_counts(counts)
        assert batched_result.poisoned_categories == cold_result.poisoned_categories
        assert batched_result.gamma_hat == cold_result.gamma_hat
        np.testing.assert_array_equal(
            batched_result.frequencies, cold_result.frequencies
        )

    def test_default_strategy_is_batched(self, covid):
        assert FrequencyDAP(1.0, covid.n_categories).probe_strategy == "batched"

    def test_invalid_strategy_rejected(self, covid):
        with pytest.raises(ValueError):
            FrequencyDAP(1.0, covid.n_categories, probe_strategy="bogus")
        with pytest.raises(ValueError):
            check_probe_strategy("warm")


# ----------------------------------------------------------------------
# side probe: batched == cold side selection across the DAP estimators
# ----------------------------------------------------------------------
class TestSideProbeEquivalence:
    @pytest.mark.parametrize("estimator", ["emf", "emf_star", "cemf_star"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_side_and_equivalent_estimates(self, estimator, seed):
        dataset = uniform_dataset(n_samples=20_000, rng=seed)
        population = build_population(dataset, 20_000, 0.25, rng=seed)
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])
        results = {}
        for strategy in ("cold", "batched"):
            protocol = DAPProtocol(
                DAPConfig(epsilon=1.0, estimator=estimator, probe_strategy=strategy)
            )
            results[strategy] = protocol.run(
                population.normal_values,
                attack,
                population.n_byzantine,
                rng=np.random.default_rng(seed),
            )
        assert results["batched"].poisoned_side == results["cold"].poisoned_side
        assert results["batched"].estimate == pytest.approx(
            results["cold"].estimate, abs=1e-9
        )
        assert results["batched"].gamma_hat == pytest.approx(
            results["cold"].gamma_hat, abs=1e-9
        )


# ----------------------------------------------------------------------
# vectorized defense kernels: bit-identical to the seed loops
# ----------------------------------------------------------------------
def _kmeans_seed_replica(values, n_clusters, max_iter, rng):
    """The pre-vectorisation kmeans_1d, kept verbatim as the oracle."""
    values = np.asarray(values, dtype=float).ravel()
    n_clusters = min(n_clusters, values.size)
    quantiles = np.linspace(0.0, 1.0, n_clusters + 2)[1:-1]
    centers = np.quantile(values, quantiles)
    labels = np.zeros(values.size, dtype=int)
    for _ in range(max_iter):
        distances = np.abs(values[:, None] - centers[None, :])
        new_labels = distances.argmin(axis=1)
        new_centers = centers.copy()
        for cluster in range(n_clusters):
            members = values[new_labels == cluster]
            if members.size:
                new_centers[cluster] = members.mean()
            else:
                new_centers[cluster] = values[rng.integers(0, values.size)]
        if np.array_equal(new_labels, labels) and np.allclose(new_centers, centers):
            labels, centers = new_labels, new_centers
            break
        labels, centers = new_labels, new_centers
    return labels, centers


report_vectors = st.lists(
    st.floats(
        min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
    ),
    min_size=8,
    max_size=300,
)


class TestIsolationForestVectorization:
    @settings(max_examples=25, deadline=None)
    @given(values=report_vectors, seed=st.integers(0, 2**31 - 1))
    def test_scores_bit_identical_to_loop(self, values, seed):
        rng = np.random.default_rng(seed)
        train = rng.normal(0.0, 1.0, 600)
        forest = IsolationForest(n_trees=15, subsample_size=64, rng=seed).fit(train)
        values = np.asarray(values)
        np.testing.assert_array_equal(
            forest.scores(values), forest.scores_loop(values)
        )

    def test_boundary_values_bit_identical(self):
        rng = np.random.default_rng(11)
        forest = IsolationForest(n_trees=25, subsample_size=128, rng=4).fit(
            rng.normal(0.0, 1.0, 2_000)
        )
        # exact split boundaries exercise the `value < split` tie handling
        boundaries = np.concatenate(
            [tree.boundaries for tree in forest._flat_trees]
        )
        np.testing.assert_array_equal(
            forest.scores(boundaries), forest.scores_loop(boundaries)
        )

    def test_chunked_scoring_matches_single_chunk(self):
        from repro.defenses import isolation_forest as module

        rng = np.random.default_rng(5)
        forest = IsolationForest(n_trees=10, subsample_size=64, rng=0).fit(
            rng.normal(0.0, 1.0, 1_000)
        )
        values = rng.normal(0.0, 2.0, 1_000)
        whole = forest.scores(values)
        original = module.SCORE_CHUNK
        module.SCORE_CHUNK = 97  # force many ragged chunks
        try:
            np.testing.assert_array_equal(forest.scores(values), whole)
        finally:
            module.SCORE_CHUNK = original


class TestKMeansVectorization:
    @settings(max_examples=40, deadline=None)
    @given(values=report_vectors, seed=st.integers(0, 2**31 - 1))
    def test_kmeans_bit_identical_to_seed_loop(self, values, seed):
        values = np.asarray(values)
        fast_labels, fast_centers = kmeans_1d(values, 2, rng=seed)
        ref_labels, ref_centers = _kmeans_seed_replica(
            values, 2, 100, np.random.default_rng(seed)
        )
        np.testing.assert_array_equal(fast_labels, ref_labels)
        np.testing.assert_array_equal(fast_centers, ref_centers)

    @settings(max_examples=40, deadline=None)
    @given(
        values=report_vectors,
        centers=st.lists(
            st.floats(
                min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_assignment_bit_identical_even_unsorted(self, values, centers):
        values = np.asarray(values)
        centers = np.asarray(centers)
        np.testing.assert_array_equal(
            _nearest_center_labels(values, centers),
            _nearest_center_labels_brute(values, centers),
        )

    def test_midpoint_ties_match_argmin(self):
        centers = np.array([-1.0, 0.5, 2.0])
        midpoints = (centers[:-1] + centers[1:]) / 2.0
        np.testing.assert_array_equal(
            _nearest_center_labels(midpoints, centers),
            _nearest_center_labels_brute(midpoints, centers),
        )

    def test_defense_estimate_bit_identical_to_seed_sampling(self):
        mechanism = PiecewiseMechanism(1.0)
        rng = np.random.default_rng(2)
        reports = mechanism.perturb(rng.uniform(-1.0, 1.0, 30_000), rng)
        defense = KMeansDefense(sampling_rate=0.1, n_subsets=200)
        result = defense.estimate_mean(reports, mechanism, rng=np.random.default_rng(9))

        # seed replica: per-subset loop + per-subset means, same rng stream
        replica_rng = np.random.default_rng(9)
        subset_size = max(1, int(round(reports.size * 0.1)))
        means = np.empty(200)
        for index in range(200):
            idx = replica_rng.integers(0, reports.size, size=subset_size)
            means[index] = reports[idx].mean()
        labels, _ = _kmeans_seed_replica(means, 2, 100, replica_rng)
        majority = int(np.argmax(np.bincount(labels, minlength=2)))
        expected = float(
            np.clip(means[labels == majority].mean(), *mechanism.input_domain)
        )
        assert result.estimate == expected


# ----------------------------------------------------------------------
# engine / scenario knob: execution detail, not identity
# ----------------------------------------------------------------------
class TestProbeStrategyKnob:
    def _spec(self, **kwargs):
        from repro.engine import ExperimentSpec
        from repro.engine.factories import FixedAttack, FixedDataset, SchemesByName

        return ExperimentSpec(
            name="knob",
            points=[{"epsilon": 1.0}],
            n_users=200,
            n_trials=1,
            scheme_factory=SchemesByName(("DAP-CEMF*",)),
            attack_factory=FixedAttack(None),
            dataset_factory=FixedDataset(uniform_dataset(n_samples=200, rng=0)),
            **kwargs,
        )

    def test_excluded_from_fingerprint(self):
        assert (
            self._spec(probe_strategy="cold").fingerprint()
            == self._spec().fingerprint()
        )

    def test_applied_to_schemes(self):
        spec = self._spec(probe_strategy="cold")
        (scheme,) = spec.schemes_for(spec.points[0])
        assert scheme.config.probe_strategy == "cold"
        (default_scheme,) = self._spec().schemes_for(self._spec().points[0])
        assert default_scheme.config.probe_strategy == "batched"

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            self._spec(probe_strategy="warm")

    def test_scenario_document_excludes_the_knob(self):
        from repro.scenario import ScenarioSpec

        base = dict(
            name="s", schemes=["Ostrich"], epsilons=[1.0], n_users=100, n_trials=1
        )
        with_knob = ScenarioSpec(**base, probe_strategy="cold")
        without = ScenarioSpec(**base)
        assert with_knob.document() == without.document()
        assert with_knob.digest() == without.digest()

    def test_non_probing_schemes_validate_and_ignore(self):
        from repro.simulation.schemes import make_scheme

        scheme = make_scheme("Ostrich", epsilon=1.0)
        assert scheme.configure_probing("cold") is scheme
        with pytest.raises(ValueError):
            scheme.configure_probing("warm")
