"""Dataset registry: load any paper dataset by name.

``load_dataset("Taxi", n_samples=100_000, rng=0)`` is the single entry point
used by the experiment drivers and the benchmarks so that every figure can be
regenerated with one consistent call per dataset.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from repro.datasets.base import CategoricalDataset, NumericalDataset
from repro.datasets.covid import covid_dataset
from repro.datasets.retirement import retirement_dataset
from repro.datasets.synthetic import beta_dataset, gaussian_dataset, uniform_dataset
from repro.datasets.taxi import taxi_dataset
from repro.utils.rng import RngLike

Dataset = Union[NumericalDataset, CategoricalDataset]

#: the four numerical datasets + one categorical dataset used in the paper
PAPER_DATASETS = ("Beta(2,5)", "Beta(5,2)", "Taxi", "Retirement", "COVID-19")

_FACTORIES: Dict[str, Callable[..., Dataset]] = {
    "beta(2,5)": lambda n_samples, rng: beta_dataset(2.0, 5.0, n_samples, rng),
    "beta(5,2)": lambda n_samples, rng: beta_dataset(5.0, 2.0, n_samples, rng),
    "taxi": taxi_dataset,
    "retirement": retirement_dataset,
    "covid-19": covid_dataset,
    "uniform": uniform_dataset,
    "gaussian": gaussian_dataset,
}


def available_datasets() -> tuple[str, ...]:
    """Names accepted by :func:`load_dataset` (case-insensitive)."""
    return tuple(sorted(_FACTORIES))


def load_dataset(name: str, n_samples: int = 100_000, rng: RngLike = None) -> Dataset:
    """Instantiate a dataset by (case-insensitive) name.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` — e.g. ``"Taxi"`` or ``"Beta(2,5)"``.
    n_samples:
        Number of records to generate.
    rng:
        Seed or generator for reproducibility.
    """
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    return _FACTORIES[key](n_samples=n_samples, rng=rng)


__all__ = ["load_dataset", "available_datasets", "PAPER_DATASETS", "Dataset"]
