"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import beta_dataset, taxi_dataset
from repro.ldp import PiecewiseMechanism


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def pm_1() -> PiecewiseMechanism:
    """Piecewise Mechanism at epsilon = 1."""
    return PiecewiseMechanism(1.0)


@pytest.fixture(scope="session")
def small_taxi():
    """A small Taxi dataset reused across tests (session-scoped for speed)."""
    return taxi_dataset(n_samples=6_000, rng=7)


@pytest.fixture(scope="session")
def small_beta25():
    """A small Beta(2,5) dataset reused across tests."""
    return beta_dataset(2, 5, n_samples=6_000, rng=11)
