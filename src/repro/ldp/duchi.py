"""Duchi et al.'s one-bit mechanism for numerical mean estimation.

Each user reports one of two values ``+-(e^eps + 1)/(e^eps - 1)``, chosen with
a probability linear in the input, so that the report is an unbiased estimator
of the input.  Included as the classical mean-estimation baseline referenced in
the related-work section and as a building block of the Hybrid Mechanism.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.ldp.base import NumericalMechanism
from repro.registry import MECHANISMS
from repro.utils.rng import RngLike, ensure_rng


@MECHANISMS.register("duchi", kind="numerical")
class DuchiMechanism(NumericalMechanism):
    """Duchi's binary mechanism over ``[-1, 1]``."""

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        exp_eps = math.exp(self.epsilon)
        #: magnitude of the two possible outputs
        self.magnitude = (exp_eps + 1.0) / (exp_eps - 1.0)
        self._exp_eps = exp_eps

    @property
    def output_domain(self) -> Tuple[float, float]:
        return (-self.magnitude, self.magnitude)

    def positive_probability(self, values: np.ndarray) -> np.ndarray:
        """Probability of reporting ``+magnitude`` for each input value."""
        values = np.asarray(values, dtype=float)
        exp_eps = self._exp_eps
        return ((exp_eps - 1.0) * values + exp_eps + 1.0) / (2.0 * exp_eps + 2.0)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        values = self._validate_inputs(values)
        prob_pos = self.positive_probability(values)
        positive = rng.random(values.size) < prob_pos.ravel()
        out = np.where(positive, self.magnitude, -self.magnitude)
        return out.reshape(values.shape)

    def variance(self, value: float) -> float:
        """Per-report variance for input ``value``."""
        # E[v'^2] = magnitude^2 always; Var = magnitude^2 - value^2.
        return self.magnitude**2 - float(value) ** 2

    def worst_case_variance(self) -> float:
        """Worst-case variance, attained at ``v = 0``."""
        return self.variance(0.0)


__all__ = ["DuchiMechanism"]
