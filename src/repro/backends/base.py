"""The bit-stable numpy reference backend.

:class:`ArrayBackend` is both the kernel interface and its reference
implementation: every method body here is the historical (seed) numpy
implementation of that kernel, moved verbatim from the mechanism /
accumulator modules so the dispatch seam cannot change a single draw or a
single rounding.  The equivalence tests in ``tests/test_backends.py`` pin
this backend bit-for-bit against frozen copies of the seed algorithms.

Subclasses (:mod:`repro.backends.fast`, :mod:`repro.backends.numba_backend`)
override individual kernels with faster algorithms that are *statistically*
equivalent — same distributions, different RNG consumption — which is why
the backend choice is an execution detail (like ``collect_workers``) and not
part of a run's identity.

Kernel families:

* **mechanism sampling** — ``pm_sample`` / ``sw_sample`` (numerical),
  ``oue_sample`` / ``olh_sample`` / ``krr_sample`` (categorical);
* **OLH support counting** — ``olh_support`` (tiled over bounded user
  chunks, so the ``(category, user)`` hash grid never materialises);
* **EM linear algebra** — ``matvec`` / ``rmatvec`` / ``matmul``, the inner
  products of :mod:`repro.ldp.ems`;
* **accumulation** — ``histogram_chunk`` / ``category_chunk`` /
  ``sketch_chunk``, the fused assign+bincount of
  :mod:`repro.collect.accumulators`;
* **count-sketch** — ``sketch_sample`` / ``sketch_decode`` /
  ``sketch_occupancy``, the high-cardinality frequency kernels of
  :mod:`repro.ldp.count_sketch` (reports are ``(row, bucket)`` pairs, so
  nothing in this family ever materialises the categorical domain).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

#: elements per (category x user) hashing tile in :meth:`ArrayBackend.olh_support`
#: — bounds the transient hash matrix to a few dozen MiB however many users
#: reported
OLH_SUPPORT_TILE_ELEMENTS = 1 << 22


def raise_category_range(reports: np.ndarray, n_categories: int) -> None:
    """Raise the accumulator family's category-range error (shared message)."""
    raise ValueError(
        f"category reports must lie in [0, {n_categories}), got range "
        f"[{reports.min()}, {reports.max()}]"
    )


def raise_sketch_range(reports: np.ndarray, n_rows: int, width: int) -> None:
    """Raise the sketch accumulator's cell-range error (shared message)."""
    rows = reports[:, 0]
    buckets = reports[:, 1]
    raise ValueError(
        f"sketch reports must be (row, bucket) pairs with row in [0, {n_rows}) "
        f"and bucket in [0, {width}), got rows in [{rows.min()}, {rows.max()}] "
        f"and buckets in [{buckets.min()}, {buckets.max()}]"
    )


class ArrayBackend:
    """Reference numpy kernels (bit-identical to the seed implementation)."""

    name = "numpy"

    # ------------------------------------------------------------------
    # numerical mechanism sampling
    # ------------------------------------------------------------------
    def pm_sample(
        self,
        values: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        C: float,
        high_prob: float,
        p_high: float,
        p_low: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Piecewise Mechanism sampling: two-pass band/complement draws."""
        n = values.size
        outputs = np.empty(n, dtype=float)
        in_band = rng.random(n) < high_prob

        # high-probability band: uniform on [l(v), r(v)]
        n_in = int(in_band.sum())
        if n_in:
            u = rng.random(n_in)
            outputs[in_band] = left[in_band] + u * (right[in_band] - left[in_band])

        # low-probability region: uniform on [-C, l(v)) U (r(v), C]
        out_band = ~in_band
        n_out = int(out_band.sum())
        if n_out:
            l_out = left[out_band]
            r_out = right[out_band]
            left_len = l_out + C               # length of [-C, l(v))
            right_len = C - r_out              # length of (r(v), C]
            total_len = left_len + right_len
            u = rng.random(n_out) * total_len
            take_left = u < left_len
            sample = np.where(take_left, -C + u, r_out + (u - left_len))
            outputs[out_band] = sample
        return outputs

    def sw_sample(
        self,
        values: np.ndarray,
        b: float,
        p_high: float,
        p_low: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Square Wave sampling: two-pass window/complement draws."""
        n = values.size
        out = np.empty(n, dtype=float)

        window_mass = 2.0 * b * p_high
        in_window = rng.random(n) < window_mass

        n_in = int(in_window.sum())
        if n_in:
            out[in_window] = values[in_window] + rng.uniform(-b, b, size=n_in)

        out_window = ~in_window
        n_out = int(out_window.sum())
        if n_out:
            v = values[out_window]
            left_len = (v - b) - (-b)          # = v
            right_len = (1.0 + b) - (v + b)    # = 1 - v
            total_len = left_len + right_len
            u = rng.random(n_out) * total_len
            take_left = u < left_len
            sample = np.where(take_left, -b + u, v + b + (u - left_len))
            out[out_window] = sample
        return out

    # ------------------------------------------------------------------
    # categorical mechanism sampling
    # ------------------------------------------------------------------
    def oue_sample(
        self,
        categories: np.ndarray,
        n_categories: int,
        p: float,
        q: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """OUE sampling: dense ``(n, k)`` Bernoulli matrix plus 1-bit overwrite."""
        n = categories.size
        bits = rng.random((n, n_categories)) < q
        keep_one = rng.random(n) < p
        bits[np.arange(n), categories] = keep_one
        return bits.astype(np.int8)

    def olh_sample(
        self,
        categories: np.ndarray,
        domain: int,
        p: float,
        hash_fn: Callable[[np.ndarray, np.ndarray, int], np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """OLH sampling: per-user seed, hash, then k-RR over the hashed domain."""
        n = categories.size
        seeds = rng.integers(0, 2**32 - 1, size=n, dtype=np.uint64)
        hashed = hash_fn(categories, seeds, domain)
        keep = rng.random(n) < p
        random_other = rng.integers(0, domain - 1, size=n)
        random_other = np.where(random_other >= hashed, random_other + 1, random_other)
        reports = np.where(keep, hashed, random_other)
        return np.column_stack([seeds.astype(np.int64), reports.astype(np.int64)])

    def krr_sample(
        self,
        categories: np.ndarray,
        n_categories: int,
        p: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """k-RR sampling: keep with probability ``p``, else a uniform other."""
        n = categories.size
        keep = rng.random(n) < p
        # when flipping, draw uniformly among the other k-1 categories
        random_other = rng.integers(0, n_categories - 1, size=n)
        random_other = np.where(
            random_other >= categories, random_other + 1, random_other
        )
        return np.where(keep, categories, random_other)

    # ------------------------------------------------------------------
    # OLH support counting
    # ------------------------------------------------------------------
    def olh_support(
        self,
        seeds: np.ndarray,
        observed: np.ndarray,
        n_categories: int,
        domain: int,
        hash_fn: Callable[[np.ndarray, np.ndarray, int], np.ndarray],
    ) -> np.ndarray:
        """Per-category support counts, tiled over bounded user chunks.

        Row ``j`` of the conceptual ``(category, user)`` grid holds every
        user's hash of candidate category ``j``; materialising the whole grid
        is O(k*n) memory, so the comparison runs tile by tile over the users
        (:data:`OLH_SUPPORT_TILE_ELEMENTS` elements per tile).  Counts are
        integers, so the tiled total is identical to the one-shot broadcast
        whatever the tile size.
        """
        categories = np.arange(n_categories, dtype=np.int64)[:, np.newaxis]
        tile = max(1, OLH_SUPPORT_TILE_ELEMENTS // max(1, n_categories))
        support = np.zeros(n_categories, dtype=np.int64)
        for start in range(0, seeds.size, tile):
            seed_tile = seeds[start : start + tile][np.newaxis, :]
            hashed = hash_fn(categories, seed_tile, domain)
            support += np.count_nonzero(
                hashed == observed[np.newaxis, start : start + tile], axis=1
            )
        return support

    # ------------------------------------------------------------------
    # EM linear algebra
    # ------------------------------------------------------------------
    def matvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """``matrix @ vector`` — the EM mixture product."""
        return matrix @ vector

    def rmatvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """``matrix.T @ vector`` — the EM aggregation product."""
        return matrix.T @ vector

    def matmul(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Batched EM matrix product (``numpy.matmul`` semantics)."""
        return np.matmul(a, b, out=out)

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def histogram_chunk(self, values: np.ndarray, grid) -> Tuple[np.ndarray, Optional[float]]:
        """One chunk's histogram counts plus an optional chunk sum.

        Returns ``(counts, chunk_sum)``.  ``chunk_sum is None`` instructs the
        accumulator to feed the raw values to its :class:`ExactSum` (the
        chunking-invariant fsum path — the reference behaviour); a float
        instructs it to fold that pre-reduced chunk sum instead (what the
        fast backends return).  The caller has already validated finiteness;
        the reference path re-validates inside ``grid.assign`` exactly as the
        seed implementation did.
        """
        idx = grid.assign(values)
        return np.bincount(idx, minlength=grid.n_buckets), None

    def category_chunk(self, reports: np.ndarray, n_categories: int) -> np.ndarray:
        """One chunk's category counts (validates the report range)."""
        if reports.min() < 0 or reports.max() >= n_categories:
            raise_category_range(reports, n_categories)
        return np.bincount(reports, minlength=n_categories)

    def sketch_chunk(self, reports: np.ndarray, n_rows: int, width: int) -> np.ndarray:
        """One chunk's ``(n_rows, width)`` sketch counts from (row, bucket) pairs."""
        rows = reports[:, 0]
        buckets = reports[:, 1]
        if (
            rows.min() < 0
            or rows.max() >= n_rows
            or buckets.min() < 0
            or buckets.max() >= width
        ):
            raise_sketch_range(reports, n_rows, width)
        flat = np.bincount(rows * width + buckets, minlength=n_rows * width)
        return flat.reshape(n_rows, width)

    # ------------------------------------------------------------------
    # count-sketch
    # ------------------------------------------------------------------
    def sketch_sample(
        self,
        categories: np.ndarray,
        n_rows: int,
        width: int,
        p: float,
        hash_fn: Callable[[np.ndarray, np.ndarray, int], np.ndarray],
        row_seeds: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Count-sketch sampling: uniform row, hash into ``width``, w-ary k-RR.

        Each user picks one of the ``n_rows`` hash rows uniformly, hashes its
        category into that row's ``width`` buckets, and reports the bucket
        through k-RR over the bucket domain (keep with probability ``p``, else
        uniform among the other ``width - 1`` buckets).  Reports are ``(row,
        bucket)`` int64 pairs — O(1) per user regardless of the category
        count.
        """
        n = categories.size
        rows = rng.integers(0, n_rows, size=n)
        hashed = hash_fn(categories, row_seeds[rows], width)
        keep = rng.random(n) < p
        random_other = rng.integers(0, width - 1, size=n)
        random_other = np.where(random_other >= hashed, random_other + 1, random_other)
        buckets = np.where(keep, hashed, random_other)
        return np.column_stack([rows.astype(np.int64), buckets.astype(np.int64)])

    def sketch_decode(
        self,
        counts: np.ndarray,
        categories: np.ndarray,
        p: float,
        q: float,
        hash_fn: Callable[[np.ndarray, np.ndarray, int], np.ndarray],
        row_seeds: np.ndarray,
        width: int,
        reduce: str = "mean",
    ) -> np.ndarray:
        """Debiased frequency estimates for ``categories`` from sketch counts.

        Per row ``j`` the bucket counts are first unbiased against the k-RR
        noise (``(count/n_j - q) / (p - q)``), then each candidate gathers its
        own bucket's debiased frequency and reduces across rows — the
        ``"mean"`` (unbiased, the estimator), the ``"median"`` (robust: a
        category elevated in only a minority of rows, e.g. by colliding with
        a poisoned cell, is suppressed — the count-median ranking rule), or
        the ``"min"`` (the strictest row statistic: only a category elevated
        in *every* row keeps a high value, which is what targeted sketch
        poison — and nothing else — produces, so the min is what poison
        *flagging* keys on).  The reduction still includes the ``1/width``
        expected mass of colliding categories, which the final
        ``(width * raw - 1) / (width - 1)`` removes — unbiased under the
        uniform-collision approximation (for the mean; median/min inherit
        the same affine debias as rank statistics).  Candidate hashing is
        tiled so the ``(candidate, row)`` grid stays bounded.
        """
        if reduce not in ("mean", "median", "min"):
            raise ValueError(
                f"reduce must be 'mean', 'median' or 'min', got {reduce!r}"
            )
        n_rows = counts.shape[0]
        row_totals = counts.sum(axis=1).astype(float)
        freq_buckets = (
            counts / np.maximum(row_totals, 1.0)[:, np.newaxis] - q
        ) / (p - q)
        out = np.empty(categories.size, dtype=float)
        row_index = np.arange(n_rows)[np.newaxis, :]
        seed_row = row_seeds[np.newaxis, :]
        tile = max(1, OLH_SUPPORT_TILE_ELEMENTS // max(1, n_rows))
        for start in range(0, categories.size, tile):
            cats = categories[start : start + tile, np.newaxis]
            hashed = hash_fn(cats, seed_row, width)
            gathered = freq_buckets[row_index, hashed]
            if reduce == "median":
                raw = np.median(gathered, axis=1)
            elif reduce == "min":
                raw = gathered.min(axis=1)
            else:
                raw = gathered.mean(axis=1)
            out[start : start + tile] = (width * raw - 1.0) / (width - 1.0)
        return out

    def sketch_occupancy(
        self,
        n_categories: int,
        hash_fn: Callable[[np.ndarray, np.ndarray, int], np.ndarray],
        row_seeds: np.ndarray,
        width: int,
    ) -> np.ndarray:
        """Per-row bucket occupancy of the full domain: how many of the
        ``n_categories`` categories hash to each ``(row, bucket)`` cell.
        Tiled over the domain so the ``(category, row)`` hash grid stays
        bounded.
        """
        n_rows = row_seeds.size
        occupancy = np.zeros(n_rows * width, dtype=np.int64)
        row_offsets = (np.arange(n_rows) * width)[np.newaxis, :]
        seed_row = row_seeds[np.newaxis, :]
        tile = max(1, OLH_SUPPORT_TILE_ELEMENTS // max(1, n_rows))
        for start in range(0, n_categories, tile):
            cats = np.arange(start, min(start + tile, n_categories), dtype=np.int64)
            hashed = hash_fn(cats[:, np.newaxis], seed_row, width)
            occupancy += np.bincount(
                (hashed + row_offsets).ravel(), minlength=n_rows * width
            )
        return occupancy.reshape(n_rows, width)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


__all__ = [
    "ArrayBackend",
    "OLH_SUPPORT_TILE_ELEMENTS",
    "raise_category_range",
    "raise_sketch_range",
]
