"""Sustained-throughput benchmark for the continuous-service runtime.

Measures the windowed aggregation service (``repro.service``) on a long
attack stream and *enforces* its three load-bearing claims, exiting nonzero
if any fails:

* **Bounded memory** — the service state is sufficient statistics only, so
  peak RSS must stay flat as the cumulative population grows past 10^6
  users (last-quarter peak vs first-quarter peak).
* **Warm-started probing** — warm-starting each window's probe EMs from the
  previous window's converged weights must select the same poisoned side in
  every window as cold probing, and the steady-state (final third of the
  stream) median per-window probe time must be >= 3x faster.
* **Kill/resume bit-identity** — a service SIGKILLed mid-stream and resumed
  from its checkpoint must finish with window results bit-identical to the
  uninterrupted run (every deterministic field of every window).

Alongside the gates it records sustained ingest throughput (reports/sec and
users/sec over the whole run, checkpointing included) and steady-state
window latency.

Each full-stream measurement runs in a fresh subprocess under an
address-space cap; the kill/resume scenario SIGKILLs a live child mid-stream
(no cooperative shutdown) and resumes it in a new process.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_service.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import signal
import statistics
import subprocess
import sys
import tempfile
import time

EPSILON = 1.0
GAMMA = 0.25
SEED = 7
DEFAULT_WINDOWS = 24
DEFAULT_WINDOW_SIZE = 50_000
QUICK_WINDOWS = 8
QUICK_WINDOW_SIZE = 5_000
#: the window after which the kill/resume child is SIGKILLed
KILL_AFTER_FRACTION = 0.4

#: window fields that must be bit-identical across kill/resume
DETERMINISTIC_FIELDS = (
    "window",
    "n_users_cum",
    "n_reports_cum",
    "estimate",
    "gamma_hat",
    "poisoned_side",
    "window_gamma",
    "detector_score",
    "flagged",
    "warm",
)


def bench_spec(warm: bool, n_windows: int, window_size: int):
    from repro.service import ServiceSpec

    return ServiceSpec(
        name=f"bench_service_{'warm' if warm else 'cold'}",
        epsilon=EPSILON,
        window_size=window_size,
        n_windows=n_windows,
        dataset="Uniform",
        attack={"name": "bba", "poison_range": "[C/2,C]"},
        gamma=GAMMA,
        attack_start=0,
        seed=SEED,
        warm_probe=warm,
    )


def run_single(
    mode: str,
    n_windows: int,
    window_size: int,
    checkpoint: str,
    mem_limit_gb: float,
) -> dict:
    """Child entry point: run the full stream (resuming any checkpoint)."""
    if mem_limit_gb > 0:
        limit = int(mem_limit_gb * 1024**3)
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

    from repro.service import run_service

    spec = bench_spec(mode == "warm", n_windows, window_size)
    start = time.perf_counter()
    result = run_service(spec, checkpoint_path=checkpoint or None)
    elapsed = time.perf_counter() - start
    rows = [row.to_dict() for row in result.windows]
    computed = [row for row in rows if row["window"] >= result.resumed_from]
    return {
        "mode": mode,
        "ok": True,
        "n_windows": n_windows,
        "window_size": window_size,
        "resumed_from": result.resumed_from,
        "wall_time_s": round(elapsed, 3),
        "users_per_s": round(len(computed) * window_size / elapsed, 1),
        "reports_per_s": round(
            (rows[-1]["n_reports_cum"] - (
                rows[result.resumed_from - 1]["n_reports_cum"]
                if result.resumed_from
                else 0
            ))
            / elapsed,
            1,
        ),
        "flagged_window": result.flagged_window,
        "windows": rows,
    }


def child_command(
    mode: str, n_windows: int, window_size: int, checkpoint: str, mem_limit_gb: float
) -> list:
    return [
        sys.executable,
        __file__,
        "--single",
        mode,
        str(n_windows),
        str(window_size),
        checkpoint,
        "--mem-limit-gb",
        str(mem_limit_gb),
    ]


def run_child(
    mode: str,
    n_windows: int,
    window_size: int,
    checkpoint: str,
    mem_limit_gb: float,
    timeout_s: float,
) -> dict:
    start = time.perf_counter()
    try:
        child = subprocess.run(
            child_command(mode, n_windows, window_size, checkpoint, mem_limit_gb),
            capture_output=True,
            text=True,
            timeout=timeout_s,
        )
    except subprocess.TimeoutExpired:
        return {"mode": mode, "ok": False, "error": f"timed out after {timeout_s:g}s"}
    if child.returncode != 0:
        tail = (child.stderr or "").strip().splitlines()
        return {
            "mode": mode,
            "ok": False,
            "error": tail[-1] if tail else f"exit code {child.returncode}",
            "wall_time_s": round(time.perf_counter() - start, 3),
        }
    return json.loads(child.stdout)


def run_kill_resume(
    n_windows: int, window_size: int, mem_limit_gb: float, timeout_s: float
) -> dict:
    """SIGKILL a live service child mid-stream, then resume it to completion."""
    kill_after = max(1, int(n_windows * KILL_AFTER_FRACTION))
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = os.path.join(tmp, "bench.checkpoint.json")
        victim = subprocess.Popen(
            child_command("warm", n_windows, window_size, checkpoint, mem_limit_gb),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + timeout_s
        killed_at = None
        while time.monotonic() < deadline and victim.poll() is None:
            if os.path.exists(checkpoint):
                try:
                    with open(checkpoint) as handle:
                        progressed = json.load(handle).get("next_window", 0)
                except (ValueError, OSError):
                    progressed = 0  # mid-replace; retry
                if progressed >= kill_after:
                    victim.send_signal(signal.SIGKILL)
                    killed_at = progressed
                    break
            time.sleep(0.02)
        victim.wait()
        if killed_at is None or killed_at >= n_windows:
            return {
                "mode": "kill-resume",
                "ok": False,
                "error": (
                    "service finished before it could be killed mid-stream "
                    f"(killed_at={killed_at})"
                ),
            }
        report = run_child(
            "warm", n_windows, window_size, checkpoint, mem_limit_gb, timeout_s
        )
    report["mode"] = "kill-resume"
    report["killed_at_window"] = killed_at
    return report


def deterministic_rows(report: dict) -> list:
    return [
        {key: row[key] for key in DETERMINISTIC_FIELDS}
        for row in report.get("windows", [])
    ]


def check(condition: bool, label: str, failures: list) -> None:
    print(f"[bench_service] {'PASS' if condition else 'FAIL'}: {label}", flush=True)
    if not condition:
        failures.append(label)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--windows", type=int, default=None)
    parser.add_argument("--window-size", type=int, default=None)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke: {QUICK_WINDOWS} windows x {QUICK_WINDOW_SIZE:,} users; "
        "the >=3x warm-speedup gate is recorded but not enforced (the short "
        "stream never reaches steady state)",
    )
    parser.add_argument("--mem-limit-gb", type=float, default=4.0)
    parser.add_argument("--timeout-s", type=float, default=1800.0)
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--single",
        nargs=4,
        metavar=("MODE", "N_WINDOWS", "WINDOW_SIZE", "CHECKPOINT"),
        default=None,
    )
    args = parser.parse_args(argv)

    if args.single is not None:
        mode, n_windows, window_size, checkpoint = args.single
        try:
            report = run_single(
                mode, int(n_windows), int(window_size), checkpoint, args.mem_limit_gb
            )
        except MemoryError:
            print("MemoryError: exceeded the address-space cap", file=sys.stderr)
            return 3
        print(json.dumps(report))
        return 0

    if args.quick:
        n_windows = args.windows or QUICK_WINDOWS
        window_size = args.window_size or QUICK_WINDOW_SIZE
        timeout_s = min(args.timeout_s, 600.0)
    else:
        n_windows = args.windows or DEFAULT_WINDOWS
        window_size = args.window_size or DEFAULT_WINDOW_SIZE
        timeout_s = args.timeout_s

    results = []
    reports = {}
    for mode in ("warm", "cold"):
        print(
            f"[bench_service] {mode} stream: {n_windows} windows x "
            f"{window_size:,} users ...",
            flush=True,
        )
        with tempfile.TemporaryDirectory() as tmp:
            report = run_child(
                mode,
                n_windows,
                window_size,
                os.path.join(tmp, "bench.checkpoint.json"),
                args.mem_limit_gb,
                timeout_s,
            )
        status = (
            f"{report['wall_time_s']:.1f}s, {report['users_per_s']:,.0f} users/s"
            if report.get("ok")
            else f"FAILED ({report.get('error')})"
        )
        print(f"[bench_service]   -> {status}", flush=True)
        reports[mode] = report
        results.append(report)

    print("[bench_service] kill/resume stream ...", flush=True)
    kill_report = run_kill_resume(n_windows, window_size, args.mem_limit_gb, timeout_s)
    status = (
        f"killed at window {kill_report['killed_at_window']}, resumed from "
        f"{kill_report['resumed_from']}"
        if kill_report.get("ok")
        else f"FAILED ({kill_report.get('error')})"
    )
    print(f"[bench_service]   -> {status}", flush=True)
    results.append(kill_report)

    failures = []
    warm, cold = reports["warm"], reports["cold"]
    summary = {}
    check(bool(warm.get("ok")), "warm stream completed", failures)
    check(bool(cold.get("ok")), "cold stream completed", failures)
    check(bool(kill_report.get("ok")), "kill/resume stream completed", failures)

    if warm.get("ok"):
        rows = warm["windows"]
        quarter = max(1, len(rows) // 4)
        early = max(row["peak_rss_mb"] for row in rows[:quarter])
        late = max(row["peak_rss_mb"] for row in rows[-quarter:])
        summary["cumulative_users"] = rows[-1]["n_users_cum"]
        summary["cumulative_reports"] = rows[-1]["n_reports_cum"]
        summary["peak_rss_mb_early"] = round(early, 1)
        summary["peak_rss_mb_late"] = round(late, 1)
        summary["users_per_s"] = warm["users_per_s"]
        summary["reports_per_s"] = warm["reports_per_s"]
        if not args.quick:
            check(
                rows[-1]["n_users_cum"] >= 1_000_000,
                f"cumulative population past 10^6 users "
                f"({rows[-1]['n_users_cum']:,})",
                failures,
            )
        check(
            late <= early * 1.5 + 200.0,
            f"peak RSS bounded as the stream grows "
            f"(first-quarter max {early:.0f} MiB, last-quarter max {late:.0f} MiB)",
            failures,
        )

    if warm.get("ok") and cold.get("ok"):
        warm_sides = [row["poisoned_side"] for row in warm["windows"]]
        cold_sides = [row["poisoned_side"] for row in cold["windows"]]
        check(
            warm_sides == cold_sides,
            "warm probing selects the same side as cold in every window",
            failures,
        )
        steady = max(1, len(warm["windows"]) // 3)
        warm_probe = statistics.median(
            row["probe_seconds"] for row in warm["windows"][-steady:]
        )
        cold_probe = statistics.median(
            row["probe_seconds"] for row in cold["windows"][-steady:]
        )
        speedup = cold_probe / warm_probe if warm_probe > 0 else float("inf")
        summary["steady_state_window_latency_s"] = round(
            statistics.median(
                row["window_seconds"] for row in warm["windows"][-steady:]
            ),
            4,
        )
        summary["steady_state_probe_s_warm"] = round(warm_probe, 4)
        summary["steady_state_probe_s_cold"] = round(cold_probe, 4)
        summary["warm_probe_speedup"] = round(speedup, 2)
        label = (
            f"steady-state warm probe >= 3x faster than cold "
            f"({speedup:.1f}x: {cold_probe:.3f}s -> {warm_probe:.3f}s)"
        )
        if args.quick:
            print(
                f"[bench_service] INFO: {label} (not enforced with --quick)",
                flush=True,
            )
        else:
            check(speedup >= 3.0, label, failures)

    if warm.get("ok") and kill_report.get("ok"):
        check(
            kill_report["resumed_from"] >= kill_report["killed_at_window"],
            "resume continued from the checkpoint instead of recomputing",
            failures,
        )
        check(
            deterministic_rows(kill_report) == deterministic_rows(warm),
            "kill/resume window results bit-identical to the uninterrupted run",
            failures,
        )

    payload = {
        "benchmark": "continuous-service runtime: sustained windowed aggregation",
        "config": {
            "epsilon": EPSILON,
            "gamma": GAMMA,
            "estimator": "cemf_star",
            "attack": "bba [C/2,C]",
            "n_windows": n_windows,
            "window_size": window_size,
            "seed": SEED,
            "mem_limit_gb": args.mem_limit_gb,
            "quick": args.quick,
            "cpu_count": os.cpu_count(),
        },
        "notes": (
            "'warm'/'cold' rows run the full stream in a fresh subprocess "
            "(checkpointing every window included in the throughput numbers); "
            "'kill-resume' SIGKILLs a live child mid-stream and resumes it in "
            "a new process. The checks gate the service's claims: bounded "
            "peak RSS, warm probing >= 3x faster at steady state with "
            "identical side selections, and bit-identical kill/resume."
        ),
        "summary": summary,
        "checks_failed": failures,
        "results": results,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"[bench_service] wrote {args.out}")
    if failures:
        print(
            f"[bench_service] {len(failures)} check(s) FAILED: {failures}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
