"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        assert not np.array_equal(children[0].random(10), children[1].random(10))

    def test_reproducible_from_seed(self):
        a = [g.random(3).tolist() for g in spawn_rngs(5, 3)]
        b = [g.random(3).tolist() for g in spawn_rngs(5, 3)]
        assert a == b


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, salt=1) == derive_seed(3, salt=1)

    def test_salt_changes_seed(self):
        assert derive_seed(3, salt=1) != derive_seed(3, salt=2)

    def test_within_int32(self):
        assert 0 <= derive_seed(3) < 2**31
