"""Shuffle-protocol attack-power benchmark: local vs shuffle trust model.

The shuffle transport buys the server two things the local model cannot
offer: the adversary is **group-blind** (sender→group linkage is severed,
so poison cannot be tailored to a group's wide output domain — reports
must survive the budget ladder's domain intersection) and the server may
**condition its reconstruction** on that same contract (poison columns
restricted to the intersection, Section `repro.protocol`).  This benchmark
measures the resulting drop in attack-induced estimate shift at equal
gamma, and exits nonzero when any gate fails so CI can run it directly:

* ``bba``     — one-sided uniform poison (the paper's default BBA): the
  mean shift under ``protocol="shuffle"`` must be strictly below the
  local-model shift at the same seeds;
* ``gba_pm``  — general Byzantine attack, point mass at the domain edge
  ``C`` (the maximally damaging one-sided configuration): same gate — the
  intersection clamp physically bounds what used to be an unbounded
  outlier, so the reduction here is dramatic rather than marginal;
* ``noattack`` — sanity: both protocols must track the truth at plain-LDP
  accuracy on attack-free rounds;
* ``ledger``  — every shuffle round must carry one amplification row per
  ladder group, each matching the closed-form Feldman bound
  ``0 < eps_central <= eps_local``.

Usage::

    PYTHONPATH=src python benchmarks/bench_shuffle.py --out BENCH_shuffle.json
    PYTHONPATH=src python benchmarks/bench_shuffle.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time

EPSILON = 1.0

#: committed-artifact configuration
FULL = dict(n_normal=4_000, n_byzantine=1_333, n_seeds=24)
#: CI smoke: same pipeline and gates, a few seconds end to end
QUICK = dict(n_normal=1_500, n_byzantine=500, n_seeds=6)

#: the shuffle shift must undercut local by at least this factor per attack
#: (the measured full-config ratios are ~0.94 for bba and ~0.09 for the
#: point-mass gba; the gate only asserts a strict, reproducible reduction)
MAX_SHIFT_RATIO = 1.0
#: attack-free rounds must stay within plain-LDP accuracy for both models
NOATTACK_BUDGET = 0.25


def _attacks():
    from repro.attacks import (
        BiasedByzantineAttack,
        GeneralByzantineAttack,
        PointMassPoison,
    )

    return (
        ("bba", "one-sided uniform poison [O', C]", lambda: BiasedByzantineAttack()),
        (
            "gba_pm",
            "general attack, point mass at C",
            lambda: GeneralByzantineAttack(distribution=PointMassPoison()),
        ),
    )


def _round(protocol_name: str, seed: int, attack, config: dict):
    import numpy as np

    from repro.core.dap import DAPConfig, DAPProtocol

    protocol = DAPProtocol(
        DAPConfig(epsilon=EPSILON, estimator="cemf_star", protocol=protocol_name)
    )
    values = np.random.default_rng([seed, 0]).uniform(
        -1, 1, size=config["n_normal"]
    )
    result = protocol.run(
        values,
        attack,
        n_byzantine=config["n_byzantine"],
        rng=np.random.default_rng([seed, 1]),
    )
    return abs(result.estimate - float(values.mean())), result


def measure_attack(name: str, make_attack, config: dict) -> dict:
    import numpy as np

    shifts = {"local": [], "shuffle": []}
    for protocol_name in shifts:
        for seed in range(config["n_seeds"]):
            shift, _ = _round(protocol_name, seed, make_attack(), config)
            shifts[protocol_name].append(shift)
    local = float(np.mean(shifts["local"]))
    shuffle = float(np.mean(shifts["shuffle"]))
    return {
        "mode": name,
        "n_seeds": config["n_seeds"],
        "mean_shift_local": round(local, 6),
        "mean_shift_shuffle": round(shuffle, 6),
        "shift_ratio": round(shuffle / local, 4) if local else None,
        "shuffle_wins": int(
            sum(s < l for s, l in zip(shifts["shuffle"], shifts["local"]))
        ),
    }


def measure_noattack(config: dict) -> dict:
    import numpy as np

    from repro.attacks import NoAttack

    errors = {"local": [], "shuffle": []}
    for protocol_name in errors:
        for seed in range(config["n_seeds"]):
            shift, _ = _round(protocol_name, seed, NoAttack(), config)
            errors[protocol_name].append(shift)
    return {
        "mode": "noattack",
        "n_seeds": config["n_seeds"],
        "mean_error_local": round(float(np.mean(errors["local"])), 6),
        "mean_error_shuffle": round(float(np.mean(errors["shuffle"])), 6),
    }


def measure_ledger(config: dict) -> dict:
    from repro.attacks import NoAttack
    from repro.protocol.amplification import amplified_epsilon

    _, result = _round("shuffle", 0, NoAttack(), config)
    rows = result.amplification or []
    consistent = all(
        0.0 < row["epsilon_central"] <= row["epsilon_local"]
        and row["epsilon_central"]
        == amplified_epsilon(row["epsilon_local"], row["n_reports"])
        for row in rows
    )
    return {
        "mode": "ledger",
        "n_groups": len(rows),
        "rows": [
            {
                "epsilon_local": row["epsilon_local"],
                "epsilon_central": round(row["epsilon_central"], 6),
                "n_reports": row["n_reports"],
            }
            for row in rows
        ],
        "consistent": bool(consistent),
    }


def gate(results: dict) -> list:
    """Evaluate the hard gates; return the list of violations."""
    violations = []
    for name, _, _ in _attacks():
        row = results[name]
        ratio = row["shift_ratio"]
        if ratio is None or ratio >= MAX_SHIFT_RATIO:
            violations.append(
                f"{name}: shuffle shift {row['mean_shift_shuffle']} does not "
                f"undercut local shift {row['mean_shift_local']} "
                f"(ratio {ratio}, gate < {MAX_SHIFT_RATIO:g})"
            )
    noattack = results["noattack"]
    for protocol_name in ("local", "shuffle"):
        error = noattack[f"mean_error_{protocol_name}"]
        if error > NOATTACK_BUDGET:
            violations.append(
                f"noattack: {protocol_name} mean error {error} exceeds the "
                f"plain-LDP budget {NOATTACK_BUDGET:g}"
            )
    ledger = results["ledger"]
    if ledger["n_groups"] == 0:
        violations.append("ledger: shuffle round carried no amplification rows")
    if not ledger["consistent"]:
        violations.append(
            "ledger: amplification rows disagree with the closed-form bound"
        )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    config = dict(QUICK if args.quick else FULL)
    start = time.perf_counter()
    results = {}
    for name, description, make_attack in _attacks():
        results[name] = measure_attack(name, make_attack, config)
        results[name]["attack"] = description
    results["noattack"] = measure_noattack(config)
    results["ledger"] = measure_ledger(config)
    violations = gate(results)

    report = {
        "benchmark": "shuffle-model protocol: attack power at equal gamma",
        "config": {
            **config,
            "epsilon": EPSILON,
            "estimator": "cemf_star",
            "gamma": round(
                config["n_byzantine"]
                / (config["n_normal"] + config["n_byzantine"]),
                4,
            ),
            "quick": bool(args.quick),
        },
        "notes": (
            "mean |estimate - true mean| over the seed grid, local vs shuffle "
            "protocol at identical seeds and gamma. The shuffle rows gate a "
            "strict shift reduction; 'ledger' checks the per-group "
            "local->central amplification rows against the closed form."
        ),
        "gates_passed": not violations,
        "violations": violations,
        "wall_time_s": round(time.perf_counter() - start, 3),
        "results": list(results.values()),
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    print(text)
    return 0 if not violations else 1


if __name__ == "__main__":
    sys.exit(main())
