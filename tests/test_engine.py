"""Tests for the parallel experiment engine (spec, executor, store).

The load-bearing guarantees:

* seed pairing — every scheme sees the identical population draw per trial
  index, in the legacy runner and in both engine paths;
* worker-count invariance — the parallel executor reproduces the serial path
  bit for bit, and (for ``batched=False`` specs) the legacy serial ``sweep``;
* the columnar store round-trips records exactly and supports resume.
"""

import numpy as np
import pytest

from repro.attacks import BiasedByzantineAttack, PAPER_POISON_RANGES
from repro.datasets import uniform_dataset
from repro.engine import (
    ExperimentSpec,
    FixedDataset,
    PoisonRangeAttack,
    SchemesByName,
    draw_seed_matrix,
    load_run,
    resolve_workers,
    run_experiment,
)
from repro.engine.store import columns_to_records, records_to_columns
from repro.simulation.runner import evaluate_schemes, run_trials_batched, run_trials_from_seeds
from repro.simulation.schemes import make_scheme
from repro.simulation.sweep import SweepRecord, sweep

ATTACK = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])


@pytest.fixture(scope="module")
def dataset():
    return uniform_dataset(n_samples=3_000, low=-0.5, high=0.5, rng=1)


def make_spec(dataset, batched, epsilons=(0.5, 1.0), schemes=("Ostrich", "Trimming")):
    return ExperimentSpec(
        name="test",
        points=[{"epsilon": e, "poison_range": "[C/2,C]"} for e in epsilons],
        n_users=1_500,
        n_trials=2,
        gamma=0.25,
        scheme_factory=SchemesByName(tuple(schemes)),
        attack_factory=PoisonRangeAttack(),
        dataset_factory=FixedDataset(dataset),
        batched=batched,
    )


def record_key(records):
    return [(r.point["epsilon"], r.scheme, repr(r.mse), repr(r.bias)) for r in records]


class TestSeedPairing:
    def test_evaluate_schemes_identical_truths_across_schemes(self, dataset):
        """Every scheme must see the identical population draw per trial index."""
        schemes = [make_scheme("Ostrich", 1.0), make_scheme("Trimming", 1.0),
                   make_scheme("DAP-EMF*", 1.0, epsilon_min=1 / 4)]
        results = evaluate_schemes(schemes, dataset, ATTACK, 1_500, 0.25,
                                   n_trials=3, rng=11)
        truths = [results[s.name].truths for s in schemes]
        assert truths[0] == truths[1] == truths[2]

    def test_batched_evaluate_schemes_identical_truths(self, dataset):
        schemes = [make_scheme("Ostrich", 1.0), make_scheme("Trimming", 1.0)]
        results = evaluate_schemes(schemes, dataset, ATTACK, 1_500, 0.25,
                                   n_trials=3, rng=11, batched=True)
        assert results["Ostrich"].truths == results["Trimming"].truths

    def test_batched_and_per_trial_paths_share_populations(self, dataset):
        seeds = [5, 6, 7]
        scheme = make_scheme("Ostrich", 1.0)
        a = run_trials_from_seeds(scheme, dataset, ATTACK, 1_500, 0.25, seeds)
        b = run_trials_batched(scheme, dataset, ATTACK, 1_500, 0.25, seeds)
        assert a.truths == b.truths

    def test_seed_matrix_matches_sequential_draws(self):
        """Pre-drawing all point seeds must consume the master stream in the
        exact order the legacy serial sweep did."""
        sequential = np.random.default_rng(3)
        expected = [sequential.integers(0, 2**63 - 1, size=4, dtype=np.int64)
                    for _ in range(6)]
        matrix = draw_seed_matrix(np.random.default_rng(3), 6, 4)
        assert all((row == exp).all() for row, exp in zip(matrix, expected))


class TestExecutorEquivalence:
    def test_serial_engine_matches_legacy_sweep(self, dataset):
        points = [{"epsilon": e, "poison_range": "[C/2,C]"} for e in (0.5, 1.0)]
        legacy = sweep(
            points,
            scheme_factory=lambda pt: [make_scheme("Ostrich", pt["epsilon"]),
                                       make_scheme("Trimming", pt["epsilon"])],
            attack_factory=lambda pt: ATTACK,
            dataset_factory=lambda pt: dataset,
            n_users=1_500,
            gamma=0.25,
            n_trials=2,
            rng=0,
        )
        engine = run_experiment(make_spec(dataset, batched=False), rng=0)
        assert record_key(engine) == record_key(legacy)

    def test_parallel_reproduces_serial_bit_for_bit(self, dataset):
        spec = make_spec(dataset, batched=False)
        serial = run_experiment(spec, rng=7)
        parallel_2 = run_experiment(spec, rng=7, n_workers=2)
        parallel_4 = run_experiment(spec, rng=7, n_workers=4)
        assert record_key(parallel_2) == record_key(serial)
        assert record_key(parallel_4) == record_key(serial)

    def test_parallel_reproduces_serial_batched(self, dataset):
        spec = make_spec(dataset, batched=True)
        serial = run_experiment(spec, rng=7)
        parallel = run_experiment(spec, rng=7, n_workers=3)
        assert record_key(parallel) == record_key(serial)

    def test_unpicklable_spec_falls_back_to_serial(self, dataset):
        spec = ExperimentSpec(
            name="lambda-spec",
            points=[{"epsilon": 0.5}, {"epsilon": 1.0}],
            n_users=1_000,
            n_trials=1,
            gamma=0.25,
            scheme_factory=lambda pt: [make_scheme("Ostrich", pt["epsilon"])],
            attack_factory=lambda pt: ATTACK,
            dataset_factory=lambda pt: dataset,
            batched=False,
        )
        serial = run_experiment(spec, rng=1)
        with pytest.warns(RuntimeWarning, match="not picklable"):
            fallback = run_experiment(spec, rng=1, n_workers=2)
        assert record_key(fallback) == record_key(serial)

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers("auto") >= 1
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestFig6QuickGridEquivalence:
    def test_engine_matches_legacy_serial_path_on_fig6_grid(self):
        """Acceptance: fixed seed => engine records numerically identical to
        the seed repo's serial sweep on (a slice of) the fig6 quick grid."""
        from repro.datasets import load_dataset
        from repro.experiments.defaults import ExperimentScale
        from repro.experiments.fig6 import run_fig6

        scale = ExperimentScale(n_users=3_000, n_trials=2, gamma=0.25)
        epsilons = (0.5, 1.0)

        # the seed repo's serial path, reproduced verbatim through the legacy
        # sweep helper (which is unchanged modulo the pivot-key fix)
        rng = np.random.default_rng(0)
        dataset_cache = {
            "Taxi": load_dataset("Taxi", n_samples=scale.n_users, rng=rng)
        }
        points = [
            {"dataset": "Taxi", "poison_range": "[3C/4,C]", "epsilon": e}
            for e in epsilons
        ]
        legacy = sweep(
            points,
            scheme_factory=lambda pt: [
                make_scheme(name, epsilon=pt["epsilon"], epsilon_min=1 / 16)
                for name in ("DAP-EMF", "DAP-EMF*", "Ostrich")
            ],
            attack_factory=lambda pt: BiasedByzantineAttack(
                PAPER_POISON_RANGES[pt["poison_range"]]
            ),
            dataset_factory=lambda pt: dataset_cache[pt["dataset"]],
            n_users=scale.n_users,
            gamma=scale.gamma,
            n_trials=scale.n_trials,
            rng=rng,
        )

        for n_workers in (None, 2):
            engine = run_fig6(
                scale,
                epsilons=epsilons,
                schemes=("DAP-EMF", "DAP-EMF*", "Ostrich"),
                rng=0,
                n_workers=n_workers,
            )
            assert record_key(engine) == record_key(legacy), n_workers


class TestStore:
    def test_columns_roundtrip(self):
        records = [
            SweepRecord(point={"epsilon": 0.5}, scheme="Ostrich", mse=1.5,
                        bias=-0.2, n_trials=3),
            SweepRecord(point={"epsilon": 1.0}, scheme="Trimming", mse=0.25,
                        bias=0.1, n_trials=3),
        ]
        points, columns = records_to_columns(records, [0, 1])
        rows = columns_to_records(points, columns)
        assert [r.record for r in rows] == records
        assert [r.point_index for r in rows] == [0, 1]

    def test_save_and_load_run(self, dataset, tmp_path):
        path = tmp_path / "run.json"
        spec = make_spec(dataset, batched=False)
        records = run_experiment(spec, rng=5, store_path=path)
        assert path.exists()
        artifact = load_run(path)
        assert artifact.meta["fingerprint"]["name"] == "test"
        assert record_key(artifact.records) == record_key(records)

    def test_resume_skips_completed_units(self, dataset, tmp_path, monkeypatch):
        path = tmp_path / "run.json"
        spec = make_spec(dataset, batched=False)
        first = run_experiment(spec, rng=5, store_path=path)

        calls = []
        original = ExperimentSpec.evaluate_unit

        def counting(self, unit, seeds):
            calls.append(unit)
            return original(self, unit, seeds)

        monkeypatch.setattr(ExperimentSpec, "evaluate_unit", counting)
        resumed = run_experiment(spec, rng=5, store_path=path)
        assert calls == []  # everything served from the artifact
        assert record_key(resumed) == record_key(first)

    def test_resume_ignores_mismatched_fingerprint(self, dataset, tmp_path):
        path = tmp_path / "run.json"
        spec = make_spec(dataset, batched=False)
        run_experiment(spec, rng=5, store_path=path)
        other = make_spec(dataset, batched=False, epsilons=(0.5, 1.0, 2.0))
        records = run_experiment(other, rng=5, store_path=path)
        assert len(records) == 3 * 2  # recomputed for the new spec

    def test_resume_rejects_same_shape_different_points(self, dataset, tmp_path):
        """An artifact from another sweep of identical shape must not be
        served: the fingerprint digests the point values themselves."""
        path = tmp_path / "run.json"
        run_experiment(make_spec(dataset, batched=False, epsilons=(0.5, 1.0)),
                       rng=5, store_path=path)
        other = make_spec(dataset, batched=False, epsilons=(1.5, 2.0))
        records = run_experiment(other, rng=5, store_path=path)
        assert sorted({r.point["epsilon"] for r in records}) == [1.5, 2.0]

    def test_resume_rejects_different_schemes(self, dataset, tmp_path):
        path = tmp_path / "run.json"
        run_experiment(make_spec(dataset, batched=False), rng=5, store_path=path)
        other = make_spec(dataset, batched=False, schemes=("Ostrich", "Boxplot"))
        records = run_experiment(other, rng=5, store_path=path)
        assert {r.scheme for r in records} == {"Ostrich", "Boxplot"}

    def test_load_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a repro.engine.run"):
            load_run(path)

    def test_partial_resume_under_different_execution_path_warns(
        self, dataset, tmp_path
    ):
        """Execution knobs never gate record reuse, but resuming a *partial*
        artifact under a different collection path computes the pending
        units on a different randomness stream — flagged, not refused."""
        import dataclasses
        import json
        import warnings

        path = tmp_path / "run.json"
        spec = make_spec(dataset, batched=False, schemes=("DAP-EMF", "Ostrich"))
        first = run_experiment(spec, rng=5, store_path=path)

        # drop one scheme's column: a partial artifact, same fingerprint
        payload = json.loads(path.read_text())
        kept = [
            i for i, s in enumerate(payload["columns"]["scheme"]) if s == "Ostrich"
        ]
        payload["columns"] = {
            key: [column[i] for i in kept]
            for key, column in payload["columns"].items()
        }
        path.write_text(json.dumps(payload))

        streamed = dataclasses.replace(spec, chunk_size=256)
        with pytest.warns(RuntimeWarning, match="partial artifact"):
            resumed = run_experiment(streamed, rng=5, store_path=path)
        assert len(resumed) == len(first)
        # the completed Ostrich units were served verbatim
        ostrich = lambda records: [
            (r.point["epsilon"], repr(r.mse)) for r in records if r.scheme == "Ostrich"
        ]
        assert ostrich(resumed) == ostrich(first)

        # a complete artifact under a different path resumes silently
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_experiment(spec, rng=5, store_path=path)

    def test_partial_resume_under_different_backend_warns(self, dataset, tmp_path):
        """The backend is a collection knob: the fast samplers consume the
        RNG stream differently, so a partial artifact resumed under another
        backend is flagged exactly like a chunk-size change."""
        import dataclasses
        import json

        path = tmp_path / "run.json"
        spec = make_spec(dataset, batched=False, schemes=("Ostrich", "Trimming"))
        first = run_experiment(spec, rng=5, store_path=path)

        payload = json.loads(path.read_text())
        kept = [
            i for i, s in enumerate(payload["columns"]["scheme"]) if s == "Ostrich"
        ]
        payload["columns"] = {
            key: [column[i] for i in kept]
            for key, column in payload["columns"].items()
        }
        path.write_text(json.dumps(payload))

        fast = dataclasses.replace(spec, backend="fast")
        with pytest.warns(RuntimeWarning, match="partial artifact"):
            resumed = run_experiment(fast, rng=5, store_path=path)
        assert len(resumed) == len(first)
        ostrich = lambda records: [
            (r.point["epsilon"], repr(r.mse)) for r in records if r.scheme == "Ostrich"
        ]
        assert ostrich(resumed) == ostrich(first)

    def test_legacy_chunk_size_fingerprint_stays_resumable(
        self, dataset, tmp_path, monkeypatch
    ):
        """Artifacts written when chunk_size was (wrongly) part of the
        fingerprint, and before execution provenance existed, must still be
        served — the legacy key is stripped before comparison."""
        import dataclasses
        import json

        path = tmp_path / "run.json"
        spec = make_spec(dataset, batched=False)
        first = run_experiment(
            dataclasses.replace(spec, chunk_size=256), rng=5, store_path=path
        )
        payload = json.loads(path.read_text())
        payload["meta"]["fingerprint"]["chunk_size"] = 256  # legacy shape
        del payload["meta"]["execution"]
        path.write_text(json.dumps(payload))

        calls = []
        original = ExperimentSpec.evaluate_unit

        def counting(self, unit, seeds):
            calls.append(unit)
            return original(self, unit, seeds)

        monkeypatch.setattr(ExperimentSpec, "evaluate_unit", counting)
        resumed = run_experiment(
            dataclasses.replace(spec, chunk_size=256), rng=5, store_path=path
        )
        assert calls == []  # everything served despite the legacy fingerprint
        assert record_key(resumed) == record_key(first)


class TestSpecValidation:
    def test_missing_factories_rejected(self):
        with pytest.raises(ValueError, match="scheme_factory"):
            ExperimentSpec(
                name="bad", points=[{"epsilon": 1.0}], n_users=100, n_trials=1
            )

    def test_empty_points_rejected(self, dataset):
        with pytest.raises(ValueError, match="no sweep points"):
            ExperimentSpec(
                name="bad",
                points=[],
                n_users=100,
                n_trials=1,
                scheme_factory=SchemesByName(("Ostrich",)),
                attack_factory=PoisonRangeAttack(),
                dataset_factory=FixedDataset(dataset),
            )

    def test_point_granular_spec_needs_no_factories(self):
        class CustomSpec(ExperimentSpec):
            def evaluate_point(self, point, trial_seeds):
                return [int(trial_seeds[0]) % 97]

        spec = CustomSpec(name="custom", points=[{}, {}], n_users=10, n_trials=1)
        serial = run_experiment(spec, rng=0)
        assert len(serial) == 2
        again = run_experiment(spec, rng=0)
        assert serial == again
