"""Poisoned-side probing (Algorithm 3).

The collector does not know whether the attack pushes the mean up (right) or
down (left).  Algorithm 3 settles it by running EMF twice — once with poison
buckets on the right half of the output domain (``M_R``) and once on the left
(``M_L``) — and picking the side whose reconstructed *normal-user* histogram
``x_hat`` has the smaller variance.  Theorem 3 explains why: with the correct
side, ``x_hat`` converges towards the (near-uniform) perturbed normal
distribution; with the wrong side, all poison mass is forced into ``x_hat``
and skews it heavily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.core.emf import DEFAULT_MAX_ITER, EMFResult, run_emf, run_emf_stacked
from repro.core.transform import TransformMatrix, cached_transform_matrix

#: hypothesis-evaluation strategies shared by the probing stages:
#: ``"batched"`` evaluates all hypotheses jointly (one BLAS product per EM
#: iteration, convergence masking), ``"cold"`` is the bit-stable fallback
#: solving each hypothesis independently, exactly as the seed implementation
PROBE_STRATEGIES = ("batched", "cold")


def check_probe_strategy(strategy: str) -> str:
    """Validate a probe-strategy name (shared by every layer exposing it)."""
    if strategy not in PROBE_STRATEGIES:
        raise ValueError(
            f"probe strategy must be one of {PROBE_STRATEGIES}, got {strategy!r}"
        )
    return strategy


@dataclass
class SideProbeResult:
    """Outcome of the poisoned-side probing.

    Attributes
    ----------
    side:
        ``"left"`` or ``"right"`` — the side Algorithm 3 selects.
    variance_left, variance_right:
        Variance of the reconstructed normal histogram under each hypothesis
        (Table I reports exactly these numbers).
    emf_left, emf_right:
        The full EMF results for each hypothesis, so callers can reuse the
        winning reconstruction without re-running EM.
    """

    side: str
    variance_left: float
    variance_right: float
    emf_left: EMFResult
    emf_right: EMFResult

    @property
    def selected(self) -> EMFResult:
        """EMF result of the selected side."""
        return self.emf_left if self.side == "left" else self.emf_right

    @property
    def selected_transform(self) -> TransformMatrix:
        """Transform matrix of the selected side."""
        return self.selected.transform

    def warm_weights(self) -> Dict[str, np.ndarray]:
        """Per-side converged weight vectors, keyed ``"left"``/``"right"``.

        Exactly the ``warm_start`` mapping a later :func:`probe_poisoned_side`
        call over the same grids accepts — the windowed service feeds window
        ``w``'s probe with window ``w-1``'s converged weights.
        """
        return {
            side: np.concatenate([emf.normal_histogram, emf.poison_histogram])
            for side, emf in (("left", self.emf_left), ("right", self.emf_right))
        }


def probe_poisoned_side(
    mechanism,
    reports: np.ndarray | None,
    n_input_buckets: int,
    n_output_buckets: int,
    reference_mean: float | None = None,
    epsilon: float | None = None,
    tol: float | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    counts: np.ndarray | None = None,
    strategy: str = "batched",
    warm_start: Mapping[str, np.ndarray] | None = None,
    poison_domain: tuple[float, float] | None = None,
) -> SideProbeResult:
    """Run Algorithm 3 and return the side decision plus both EMF runs.

    Parameters
    ----------
    mechanism:
        The numerical mechanism the normal users applied (PM or SW).
    reports:
        All collected reports (normal + poison, indistinguishable).
        Mutually exclusive with ``counts``.
    n_input_buckets, n_output_buckets:
        Grid resolutions ``d`` and ``d'``.
    reference_mean:
        The pessimistic mean ``O'`` splitting the output domain (defaults to
        the domain centre).
    epsilon, tol, max_iter:
        EM convergence controls forwarded to :func:`repro.core.emf.run_emf`.
    counts:
        Pre-computed output-bucket counts (length ``n_output_buckets``), e.g.
        from a streaming :class:`~repro.collect.HistogramAccumulator`.  Both
        side hypotheses share the same output grid, so one histogram is the
        complete sufficient statistic of the probe.
    strategy:
        ``"batched"`` (default) solves both side hypotheses in one stacked EM
        over their shared normal block (:func:`repro.core.emf.run_emf_stacked`)
        — the sides reach the same maximisers and the variance comparison
        selects the same side, but iterate-level floating point differs from
        two independent solves; ``"cold"`` runs the two sides separately,
        bit-identical to the seed implementation.
    warm_start:
        Optional per-side initial weight vectors (a previous
        :meth:`SideProbeResult.warm_weights` mapping).  The likelihood is
        concave, so warm and cold starts reach the same maximisers — a warm
        start only cuts iterations, which is what makes steady-state
        incremental probing cheap.  Missing sides cold-start; a vector of the
        wrong length raises ``ValueError`` (a stale checkpoint built over
        different grids must not silently skew the probe).
    poison_domain:
        Known support of the poison values when the trust model bounds the
        adversary (see :func:`repro.core.transform.build_transform_matrix`);
        ``None`` keeps the classical whole-side hypotheses.
    """
    if (reports is None) == (counts is None):
        raise ValueError("provide exactly one of `reports` or `counts`")
    check_probe_strategy(strategy)
    if counts is not None:
        counts = np.asarray(counts, dtype=float)
        if counts.shape != (n_output_buckets,):
            raise ValueError(
                f"counts must have length n_output_buckets={n_output_buckets}, "
                f"got shape {counts.shape}"
            )
    epsilon = mechanism.epsilon if epsilon is None else epsilon

    transforms = {}
    for side in ("left", "right"):
        transforms[side] = cached_transform_matrix(
            mechanism,
            n_input_buckets=n_input_buckets,
            n_output_buckets=n_output_buckets,
            side=side,
            reference_mean=reference_mean,
            poison_domain=poison_domain,
        )
        if counts is None:
            # both sides share the output grid; bucketize once
            counts = transforms[side].output_counts(np.asarray(reports, dtype=float))

    initials: dict[str, np.ndarray | None] = {"left": None, "right": None}
    if warm_start:
        for side in ("left", "right"):
            weights = warm_start.get(side)
            if weights is None:
                continue
            weights = np.asarray(weights, dtype=float)
            expected = (
                transforms[side].n_normal_components
                + transforms[side].n_poison_components
            )
            if weights.shape != (expected,):
                raise ValueError(
                    f"warm start for side {side!r} must have length {expected} "
                    f"(current probe grids), got shape {weights.shape}; "
                    f"discard warm state accumulated over different grids"
                )
            if not np.all(np.isfinite(weights)) or np.any(weights < 0):
                raise ValueError(
                    f"warm start for side {side!r} must be finite and "
                    f"non-negative; the checkpoint is corrupt"
                )
            # EM's multiplicative update can never revive an exactly-zero
            # component; floor the warm weights so new data can still move
            # mass anywhere (the floor washes out within an iteration or two)
            initials[side] = np.maximum(weights, 1e-12)

    if strategy == "batched":
        emf_left, emf_right = run_emf_stacked(
            [transforms["left"], transforms["right"]],
            counts=counts,
            epsilon=epsilon,
            tol=tol,
            max_iter=max_iter,
            initial=[initials["left"], initials["right"]],
        )
        results = {"left": emf_left, "right": emf_right}
    else:
        results = {
            side: run_emf(
                transforms[side],
                counts=counts,
                epsilon=epsilon,
                tol=tol,
                max_iter=max_iter,
                initial=initials[side],
            )
            for side in ("left", "right")
        }

    variance_left = results["left"].normal_histogram_variance
    variance_right = results["right"].normal_histogram_variance
    side = "left" if variance_left < variance_right else "right"
    return SideProbeResult(
        side=side,
        variance_left=variance_left,
        variance_right=variance_right,
        emf_left=results["left"],
        emf_right=results["right"],
    )


__all__ = [
    "PROBE_STRATEGIES",
    "SideProbeResult",
    "check_probe_strategy",
    "probe_poisoned_side",
]
