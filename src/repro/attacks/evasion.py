"""Evasion attack against the poisoned-side probing (Section V-D, Figure 10).

Attackers aware of DAP may sacrifice a fraction ``a`` of their poison budget
to place *evasive* values on the opposite side of the poisoned side, hoping to
flip the side decision of Algorithm 3.  The paper's utility analysis
(Equations 18-20) shows the evasive mass reduces the attack's own impact by
``m * a * (C - O') / (m + n)``, so evasion is self-defeating — Figure 10
measures exactly that trade-off, which this attack reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackReport
from repro.attacks.distributions import PoisonDistribution, PoisonRange, UniformPoison
from repro.ldp.base import NumericalMechanism
from repro.registry import ATTACKS
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction


@ATTACKS.register("evasion", defaults={"evasive_fraction": 0.2})
class EvasionAttack(Attack):
    """BBA with a fraction of evasive poison values on the opposite side.

    Parameters
    ----------
    evasive_fraction:
        Fraction ``a`` of Byzantine users submitting evasive values.
    true_poison_range:
        Range of the genuine poison values on the poisoned side (the paper's
        Figure 10 uses ``[C/2, C]``).
    evasive_position:
        Location of the evasive values expressed as a fraction of the
        *opposite* domain bound (the paper places them at ``-C/2``, i.e. 0.5).
    distribution:
        Distribution of the genuine poison values over their range.
    side:
        The genuinely poisoned side (``"right"`` by default).
    """

    def __init__(
        self,
        evasive_fraction: float,
        true_poison_range: PoisonRange | None = None,
        evasive_position: float = 0.5,
        distribution: PoisonDistribution | None = None,
        side: str = "right",
    ) -> None:
        if side not in ("left", "right"):
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        self.evasive_fraction = check_fraction(evasive_fraction, "evasive_fraction")
        self.evasive_position = check_fraction(evasive_position, "evasive_position")
        self.true_poison_range = true_poison_range or PoisonRange.of_c(0.5, 1.0)
        self.distribution = distribution or UniformPoison()
        self.side = side

    def poison_reports(
        self,
        n_byzantine: int,
        mechanism: NumericalMechanism,
        reference_mean: float = 0.0,
        rng: RngLike = None,
    ) -> AttackReport:
        n = self._check_population(n_byzantine)
        rng = ensure_rng(rng)
        if n == 0:
            return AttackReport(reports=np.empty(0), poisoned_side=self.side)

        n_evasive = int(round(n * self.evasive_fraction))
        n_true = n - n_evasive
        domain_low, domain_high = mechanism.output_domain

        pieces = []
        if n_true:
            low, high = self.true_poison_range.resolve(mechanism, reference_mean, self.side)
            pieces.append(self.distribution.sample(n_true, low, high, rng))
        if n_evasive:
            if self.side == "right":
                evasive_value = domain_low * self.evasive_position
            else:
                evasive_value = domain_high * self.evasive_position
            pieces.append(np.full(n_evasive, evasive_value))

        reports = np.concatenate(pieces) if pieces else np.empty(0)
        reports = self._clip_to_domain(reports, mechanism)
        return AttackReport(reports=reports, poisoned_side=self.side)

    def utility_loss_bound(
        self,
        n_byzantine: int,
        n_normal: int,
        mechanism: NumericalMechanism,
        reference_mean: float = 0.0,
    ) -> float:
        """The paper's Equation 20: utility sacrificed by the evasive mass."""
        c_bound = mechanism.output_domain[1] if self.side == "right" else abs(
            mechanism.output_domain[0]
        )
        m, n = float(n_byzantine), float(n_normal)
        if m + n == 0:
            return 0.0
        return m * self.evasive_fraction * (c_bound - reference_mean) / (m + n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvasionAttack(a={self.evasive_fraction:g}, "
            f"range={self.true_poison_range}, side={self.side!r})"
        )


__all__ = ["EvasionAttack"]
