"""EMF with restrictions — EMF* (Algorithm 4, Theorem 4).

EMF* is a *post-processing* of EMF: it reuses the proportion of Byzantine
users ``gamma_hat`` probed by a previous (small-epsilon) EMF run and imposes

``sum(x_hat) = 1 - gamma_hat`` and ``sum(y_hat) = gamma_hat``

as hard constraints in every M-step.  Theorem 4 shows the constrained
maximiser simply renormalises the normal-user block and the poison block
separately:

``x_k = (1 - gamma) * P_xk / sum(P_x)``,  ``y_j = gamma * P_yj / sum(P_y)``.

The constraint removes infeasible poison reconstructions and noticeably
improves the poison-value histogram when the group's own epsilon is large.
"""

from __future__ import annotations

import numpy as np

from repro.core.emf import DEFAULT_MAX_ITER, EMFResult, default_tolerance
from repro.core.transform import TransformMatrix
from repro.ldp.ems import em_reconstruct
from repro.utils.validation import check_fraction


def constrained_m_step(gamma_hat: float, n_normal: int):
    """Build the EMF* M-step callback for :func:`repro.ldp.ems.em_reconstruct`.

    The callback receives the un-normalised responsibilities ``P`` (normal
    block first, poison block second) and applies Theorem 4's renormalisation.
    """
    gamma_hat = check_fraction(gamma_hat, "gamma_hat")

    def m_step(responsibilities: np.ndarray) -> np.ndarray:
        normal = responsibilities[:n_normal]
        poison = responsibilities[n_normal:]
        out = np.empty_like(responsibilities)

        normal_total = normal.sum()
        if normal_total > 0:
            out[:n_normal] = (1.0 - gamma_hat) * normal / normal_total
        else:
            out[:n_normal] = (1.0 - gamma_hat) / max(1, n_normal)

        poison_total = poison.sum()
        if poison.size == 0:
            pass
        elif gamma_hat == 0.0:
            out[n_normal:] = 0.0
        elif poison_total > 0:
            out[n_normal:] = gamma_hat * poison / poison_total
        else:
            out[n_normal:] = gamma_hat / poison.size
        return out

    return m_step


def run_emf_star(
    transform: TransformMatrix,
    gamma_hat: float,
    reports: np.ndarray | None = None,
    counts: np.ndarray | None = None,
    epsilon: float | None = None,
    tol: float | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    fixed_zero_poison: np.ndarray | None = None,
) -> EMFResult:
    """Run EMF* (Algorithm 4).

    Parameters
    ----------
    transform:
        Transform matrix for the group being post-processed.
    gamma_hat:
        The Byzantine proportion probed by a prior EMF run (typically from the
        smallest-epsilon group, where Theorem 3 makes it most accurate).
    reports, counts:
        Collected values or pre-computed output-bucket counts (exactly one).
    fixed_zero_poison:
        Optional boolean mask over the *poison* columns forcing them to zero —
        this is how CEMF* reuses this routine after bucket suppression.
    """
    if (reports is None) == (counts is None):
        raise ValueError("provide exactly one of `reports` or `counts`")
    if counts is None:
        counts = transform.output_counts(reports)
    counts = np.asarray(counts, dtype=float)
    if tol is None:
        tol = default_tolerance(epsilon)

    n_normal = transform.n_normal_components
    fixed_zero = None
    if fixed_zero_poison is not None:
        fixed_zero_poison = np.asarray(fixed_zero_poison, dtype=bool)
        if fixed_zero_poison.shape != (transform.n_poison_components,):
            raise ValueError(
                "fixed_zero_poison must have one entry per poison column, got "
                f"{fixed_zero_poison.shape}"
            )
        fixed_zero = np.concatenate(
            [np.zeros(n_normal, dtype=bool), fixed_zero_poison]
        )

    result = em_reconstruct(
        transform.matrix,
        counts,
        max_iter=max_iter,
        tol=tol,
        m_step=constrained_m_step(gamma_hat, n_normal),
        fixed_zero=fixed_zero,
        indicator_tail=transform.poison_bucket_indices,
    )
    normal, poison = transform.split_weights(result.weights)
    return EMFResult(
        normal_histogram=normal,
        poison_histogram=poison,
        transform=transform,
        log_likelihood=result.log_likelihood,
        n_iterations=result.n_iterations,
        converged=result.converged,
    )


__all__ = ["run_emf_star", "constrained_m_step"]
