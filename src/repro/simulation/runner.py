"""Trial runner: repeated collection rounds and MSE computation.

The paper reports the MSE of each scheme's mean estimate over repeated runs;
``run_trials`` performs those repetitions with independent randomness per
trial (fresh perturbation noise, fresh poison values, fresh population draw)
and ``evaluate_schemes`` aggregates them into per-scheme MSE.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.attacks.base import Attack
from repro.collect.streaming import DEFAULT_CHUNK_SIZE
from repro.datasets.base import NumericalDataset
from repro.estimators.metrics import mean_squared_error
from repro.simulation.population import build_population, stream_population
from repro.simulation.schemes import Scheme
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_integer


@dataclass
class TrialResult:
    """Estimates of one scheme across repeated trials.

    Attributes
    ----------
    scheme:
        Scheme name.
    estimates:
        Per-trial mean estimates.
    truths:
        Per-trial ground-truth means (the normal users' mean of that trial's
        population draw).
    """

    scheme: str
    estimates: List[float] = field(default_factory=list)
    truths: List[float] = field(default_factory=list)

    @property
    def mse(self) -> float:
        """Mean squared error across trials.

        Raises
        ------
        ValueError
            If no trials were recorded — an empty estimate list would
            otherwise propagate as a silent NaN through result tables.
        """
        estimates = np.asarray(self.estimates, dtype=float)
        truths = np.asarray(self.truths, dtype=float)
        if estimates.size == 0:
            raise ValueError(
                f"scheme {self.scheme!r} has no recorded trials; cannot compute mse"
            )
        return float(np.mean((estimates - truths) ** 2))

    @property
    def bias(self) -> float:
        """Mean signed error across trials.

        Raises
        ------
        ValueError
            If no trials were recorded (same contract as :attr:`mse`).
        """
        estimates = np.asarray(self.estimates, dtype=float)
        truths = np.asarray(self.truths, dtype=float)
        if estimates.size == 0:
            raise ValueError(
                f"scheme {self.scheme!r} has no recorded trials; cannot compute bias"
            )
        return float(np.mean(estimates - truths))

    def mse_against(self, truth: float) -> float:
        """MSE against one fixed ground truth (e.g. the full dataset mean)."""
        return mean_squared_error(self.estimates, truth)


def run_trials(
    scheme: Scheme,
    dataset: NumericalDataset,
    attack: Attack | None,
    n_users: int,
    gamma: float,
    n_trials: int = 5,
    rng: RngLike = None,
    input_domain: tuple[float, float] = (-1.0, 1.0),
) -> TrialResult:
    """Run ``n_trials`` independent collection rounds of one scheme."""
    check_integer(n_trials, "n_trials", minimum=1)
    rngs = spawn_rngs(rng, n_trials)
    result = TrialResult(scheme=scheme.name)
    for trial_rng in rngs:
        population = build_population(
            dataset, n_users, gamma, rng=trial_rng, input_domain=input_domain
        )
        estimate = scheme.estimate(population, attack, rng=trial_rng)
        result.estimates.append(float(estimate))
        result.truths.append(population.true_mean)
    return result


def run_trials_from_seeds(
    scheme: Scheme,
    dataset: NumericalDataset,
    attack: Attack | None,
    n_users: int,
    gamma: float,
    trial_seeds: Sequence[int],
    input_domain: tuple[float, float] = (-1.0, 1.0),
) -> TrialResult:
    """Run one trial per explicit seed (the paired-comparison primitive).

    Each trial re-seeds a fresh generator, so two calls with the same seed
    list — for different schemes, or in different worker processes — see the
    identical population draw per trial index.  This is the unit of work the
    parallel experiment engine fans out.
    """
    result = TrialResult(scheme=scheme.name)
    for seed in trial_seeds:
        trial_rng = np.random.default_rng(int(seed))
        population = build_population(
            dataset, n_users, gamma, rng=trial_rng, input_domain=input_domain
        )
        estimate = scheme.estimate(population, attack, rng=trial_rng)
        result.estimates.append(float(estimate))
        result.truths.append(population.true_mean)
    return result


def run_trials_streaming(
    scheme: Scheme,
    dataset: NumericalDataset,
    attack: Attack | None,
    n_users: int,
    gamma: float,
    trial_seeds: Sequence[int],
    input_domain: tuple[float, float] = (-1.0, 1.0),
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> TrialResult:
    """Streaming variant of :func:`run_trials_from_seeds` (bounded memory).

    Each trial's population is generated chunk by chunk and handed to
    :meth:`~repro.simulation.schemes.Scheme.estimate_stream`, so schemes with
    a chunked collection path (DAP) never materialise per-user arrays — the
    path that makes multi-million-user populations runnable.  Per-seed
    determinism is preserved (one fresh generator per trial), but the rng is
    consumed chunk-wise, so the draws differ from the in-memory path.
    """
    if not scheme.supports_streaming:
        warnings.warn(
            f"scheme {scheme.name!r} has no streaming collection path; each "
            f"trial will materialise all {n_users} users in memory (the "
            f"chunked population draw is kept, but the bounded-memory "
            f"guarantee is not)",
            RuntimeWarning,
            stacklevel=2,
        )
    result = TrialResult(scheme=scheme.name)
    for seed in trial_seeds:
        trial_rng = np.random.default_rng(int(seed))
        stream = stream_population(
            dataset,
            n_users,
            gamma,
            rng=trial_rng,
            input_domain=input_domain,
            chunk_size=chunk_size,
        )
        estimate = scheme.estimate_stream(stream, attack, rng=trial_rng)
        result.estimates.append(float(estimate))
        result.truths.append(stream.true_mean)
    return result


def run_trials_sharded(
    scheme: Scheme,
    dataset: NumericalDataset,
    attack: Attack | None,
    n_users: int,
    gamma: float,
    trial_seeds: Sequence[int],
    input_domain: tuple[float, float] = (-1.0, 1.0),
    n_shards: int = 1,
    n_workers: int | None = None,
) -> TrialResult:
    """Sharded variant of :func:`run_trials_from_seeds`.

    Populations (and hence the per-trial truths) are drawn exactly as in
    :func:`run_trials_from_seeds` — same seed, same draw — but the collection
    round goes through :meth:`~repro.simulation.schemes.Scheme.estimate_sharded`,
    which for DAP splits the round into block-seeded shards and fans them out
    over ``n_workers`` processes.  The records are bit-identical for any
    ``n_shards >= 1`` and any worker count (the shard plan's block seeds, not
    the shards, own the randomness), so both knobs are pure execution
    details.
    """
    if not scheme.supports_sharding:
        warnings.warn(
            f"scheme {scheme.name!r} has no sharded collection path; trials "
            f"will run single-process through the in-memory estimate "
            f"(n_shards/n_workers are ignored)",
            RuntimeWarning,
            stacklevel=2,
        )
    result = TrialResult(scheme=scheme.name)
    for seed in trial_seeds:
        trial_rng = np.random.default_rng(int(seed))
        population = build_population(
            dataset, n_users, gamma, rng=trial_rng, input_domain=input_domain
        )
        estimate = scheme.estimate_sharded(
            population, attack, rng=trial_rng, n_shards=n_shards, n_workers=n_workers
        )
        result.estimates.append(float(estimate))
        result.truths.append(population.true_mean)
    return result


def run_trials_batched(
    scheme: Scheme,
    dataset: NumericalDataset,
    attack: Attack | None,
    n_users: int,
    gamma: float,
    trial_seeds: Sequence[int],
    input_domain: tuple[float, float] = (-1.0, 1.0),
) -> TrialResult:
    """Batched variant of :func:`run_trials_from_seeds`.

    Populations are still drawn per trial seed (so the paired-comparison
    guarantee — identical truths across schemes per trial index — is
    preserved exactly), but the estimation side is handed to
    :meth:`~repro.simulation.schemes.Scheme.estimate_batch`, which stacks all
    trials' populations and, for single-round schemes, perturbs them with one
    mechanism call per scheme instead of one per trial.  The estimation
    randomness comes from a single stream derived from the full seed list, so
    results are deterministic but differ from the per-trial path.
    """
    populations = [
        build_population(
            dataset,
            n_users,
            gamma,
            rng=np.random.default_rng(int(seed)),
            input_domain=input_domain,
        )
        for seed in trial_seeds
    ]
    batch_rng = np.random.default_rng(
        np.random.SeedSequence([int(seed) for seed in trial_seeds])
    )
    estimates = scheme.estimate_batch(populations, attack, rng=batch_rng)
    return TrialResult(
        scheme=scheme.name,
        estimates=[float(estimate) for estimate in estimates],
        truths=[population.true_mean for population in populations],
    )


def evaluate_schemes(
    schemes: Sequence[Scheme],
    dataset: NumericalDataset,
    attack: Attack | None,
    n_users: int,
    gamma: float,
    n_trials: int = 5,
    rng: RngLike = None,
    input_domain: tuple[float, float] = (-1.0, 1.0),
    batched: bool = False,
) -> Dict[str, TrialResult]:
    """Evaluate several schemes on the *same* sequence of trial seeds.

    Using a shared seed sequence per trial index keeps the comparison paired:
    every scheme sees the same population draw and the same attack randomness,
    which reduces the variance of MSE differences between schemes.  With
    ``batched=True`` the estimation side goes through the stacked-trials path
    (same populations and truths, different perturbation stream).
    """
    rng = ensure_rng(rng)
    trial_seeds = rng.integers(0, 2**63 - 1, size=n_trials, dtype=np.int64)
    runner = run_trials_batched if batched else run_trials_from_seeds
    results: Dict[str, TrialResult] = {}
    for scheme in schemes:
        results[scheme.name] = runner(
            scheme,
            dataset,
            attack,
            n_users,
            gamma,
            trial_seeds,
            input_domain=input_domain,
        )
    return results


def summarize_mse(results: Dict[str, TrialResult]) -> Dict[str, float]:
    """Convenience: map scheme name to its MSE."""
    return {name: result.mse for name, result in results.items()}


__all__ = [
    "TrialResult",
    "run_trials",
    "run_trials_from_seeds",
    "run_trials_batched",
    "run_trials_sharded",
    "run_trials_streaming",
    "evaluate_schemes",
    "summarize_mse",
]
