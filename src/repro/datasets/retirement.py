"""Synthetic stand-in for the San Francisco Retirement compensation dataset.

The paper uses the total-compensation column of the SF employee retirement
plans (606,507 records restricted to [10000, 60000]) normalised into
``[-1, 1]``; the reported normalised mean is -0.6240 (Figure 4d), i.e. the
distribution is strongly concentrated near the lower end of the range.

The offline substitute draws compensations from a log-normal distribution
(salary-like right skew) shifted and clipped to [10000, 60000] so that the
normalised mean matches the paper's value closely.  As with the Taxi
substitute, the experiments only depend on the normalised distribution's shape
and mean (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import NumericalDataset, normalize_to_unit
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_integer

#: raw value domain used by the paper
COMPENSATION_RANGE = (10_000.0, 60_000.0)

#: log-normal parameters (of the excess over the lower bound) tuned so that the
#: clipped, normalised mean is close to the paper's -0.624
_LOGNORMAL_MEAN = 8.80
_LOGNORMAL_SIGMA = 0.85


def retirement_dataset(n_samples: int = 100_000, rng: RngLike = None) -> NumericalDataset:
    """Synthetic Retirement compensation dataset normalised into ``[-1, 1]``."""
    check_integer(n_samples, "n_samples", minimum=1)
    rng = ensure_rng(rng)
    low, high = COMPENSATION_RANGE
    excess = rng.lognormal(mean=_LOGNORMAL_MEAN, sigma=_LOGNORMAL_SIGMA, size=n_samples)
    compensation = np.clip(low + excess, low, high)
    values = normalize_to_unit(compensation, low, high)
    return NumericalDataset(
        name="Retirement",
        values=values,
        raw_domain=COMPENSATION_RANGE,
        description=(
            f"{n_samples} synthetic total-compensation records in [{low:g}, {high:g}] "
            "drawn from a clipped log-normal tuned to the paper's normalised mean of "
            "~-0.624 (substitute for the SF retirement data; see DESIGN.md)."
        ),
    )


__all__ = ["retirement_dataset", "COMPENSATION_RANGE"]
