"""Isolation-forest outlier-removal defence (Section III-A related techniques).

A from-scratch 1-D isolation forest: each tree recursively splits the value
range at uniform random cut points; values isolated after few splits are
anomalous.  The anomaly score follows Liu et al.:

``score(x) = 2 ** (-E[h(x)] / c(n))``

where ``h(x)`` is the path length and ``c(n)`` the average path length of an
unsuccessful BST search.  Reports whose score exceeds a threshold are removed
before averaging.

As with the boxplot defence, isolation forests struggle against poison values
hidden inside the legitimate (enlarged) output domain — they are included as
the "existing detection technique" comparison point the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.defenses.base import Defense, DefenseResult
from repro.ldp.base import NumericalMechanism
from repro.registry import DEFENSES
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction, check_integer


def _average_path_length(n: int) -> float:
    """``c(n)`` — average unsuccessful-search path length in a BST of size n."""
    if n <= 1:
        return 0.0
    harmonic = np.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


@dataclass
class _TreeNode:
    """One node of an isolation tree (leaf when ``split`` is ``None``)."""

    size: int
    split: Optional[float] = None
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None


def _build_tree(
    values: np.ndarray, depth: int, max_depth: int, rng: np.random.Generator
) -> _TreeNode:
    if depth >= max_depth or values.size <= 1 or values.min() == values.max():
        return _TreeNode(size=values.size)
    split = rng.uniform(values.min(), values.max())
    left_mask = values < split
    return _TreeNode(
        size=values.size,
        split=split,
        left=_build_tree(values[left_mask], depth + 1, max_depth, rng),
        right=_build_tree(values[~left_mask], depth + 1, max_depth, rng),
    )


def _path_length(node: _TreeNode, value: float, depth: int = 0) -> float:
    if node.split is None:
        return depth + _average_path_length(node.size)
    if value < node.split:
        return _path_length(node.left, value, depth + 1)
    return _path_length(node.right, value, depth + 1)


class _FlatTree:
    """An isolation tree encoded as the interval partition it induces.

    A 1-D isolation tree splits the real line into one interval per leaf:
    descending "left if ``value < split`` else right" lands ``value`` in the
    leaf whose interval contains it, and the in-order sequence of internal
    splits is exactly the sorted interval boundaries (every left-subtree
    split is strictly below its parent's, every right-subtree split at or
    above).  So the whole recursive descent collapses into one
    ``searchsorted`` against the boundaries — ``side="right"`` reproduces
    the ``value < split`` tie handling comparison-for-comparison — followed
    by a gather of the per-leaf complete path length ``depth + c(size)``.
    """

    __slots__ = ("boundaries", "leaf_values")

    def __init__(self, root: _TreeNode) -> None:
        boundaries: List[float] = []
        leaf_values: List[float] = []

        def visit(node: _TreeNode, depth: int) -> None:
            if node.split is None:
                leaf_values.append(depth + _average_path_length(node.size))
            else:
                visit(node.left, depth + 1)
                boundaries.append(node.split)
                visit(node.right, depth + 1)

        visit(root, 0)
        self.boundaries = np.asarray(boundaries, dtype=float)
        self.leaf_values = np.asarray(leaf_values, dtype=float)

    def path_lengths(self, values: np.ndarray) -> np.ndarray:
        """Path length of every value, matching :func:`_path_length` bit for bit."""
        return self.leaf_values[
            np.searchsorted(self.boundaries, values, side="right")
        ]


#: users scored per chunk: bounds the (n_trees, chunk) path-length matrix to
#: a few MiB however large the population is
SCORE_CHUNK = 1 << 16


class IsolationForest:
    """A minimal 1-D isolation forest."""

    def __init__(
        self,
        n_trees: int = 50,
        subsample_size: int = 256,
        rng: RngLike = None,
    ) -> None:
        self.n_trees = check_integer(n_trees, "n_trees", minimum=1)
        self.subsample_size = check_integer(subsample_size, "subsample_size", minimum=2)
        self._rng = ensure_rng(rng)
        self._trees: List[_TreeNode] = []
        self._flat_trees: List[_FlatTree] = []
        self._sample_size = 0

    def fit(self, values: np.ndarray) -> "IsolationForest":
        """Build the forest on ``values``."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            raise ValueError("IsolationForest requires at least one value")
        self._sample_size = min(self.subsample_size, values.size)
        max_depth = int(np.ceil(np.log2(max(2, self._sample_size))))
        self._trees = []
        for _ in range(self.n_trees):
            idx = self._rng.choice(values.size, size=self._sample_size, replace=False)
            self._trees.append(_build_tree(values[idx], 0, max_depth, self._rng))
        self._flat_trees = [_FlatTree(tree) for tree in self._trees]
        return self

    def scores(self, values: np.ndarray) -> np.ndarray:
        """Anomaly scores in (0, 1); higher means more anomalous.

        All users are scored at once: each array-encoded tree is descended
        for a whole chunk of values per step, the per-tree path lengths fill
        a ``(chunk, n_trees)`` matrix whose contiguous rows reduce with the
        same pairwise summation as the per-user loop's 1-D mean, and the
        final ``2 ** x`` uses ``np.float_power`` (the generic libm pow loop,
        matching Python's ``**``; numpy's SIMD ``np.power`` rounds a few
        results one ulp differently) — bit-identical to :meth:`scores_loop`,
        test-enforced, at array speed.
        """
        if not self._trees:
            raise RuntimeError("IsolationForest must be fit before scoring")
        values = np.asarray(values, dtype=float).ravel()
        c_n = _average_path_length(self._sample_size)
        if c_n <= 0:
            return np.full(values.size, 0.5)
        scores = np.empty(values.size)
        paths = np.empty((min(SCORE_CHUNK, max(1, values.size)), self.n_trees))
        for start in range(0, values.size, SCORE_CHUNK):
            chunk = values[start : start + SCORE_CHUNK]
            block = paths[: chunk.size]
            for column, tree in enumerate(self._flat_trees):
                block[:, column] = tree.path_lengths(chunk)
            mean_paths = np.mean(block, axis=1)
            scores[start : start + SCORE_CHUNK] = np.float_power(
                2.0, -mean_paths / c_n
            )
        return scores

    def scores_loop(self, values: np.ndarray) -> np.ndarray:
        """Reference per-user recursive scoring (the seed implementation).

        Kept as the equivalence oracle for :meth:`scores` and as the
        benchmark baseline; prefer :meth:`scores` everywhere else.
        """
        if not self._trees:
            raise RuntimeError("IsolationForest must be fit before scoring")
        values = np.asarray(values, dtype=float).ravel()
        c_n = _average_path_length(self._sample_size)
        if c_n <= 0:
            return np.full(values.size, 0.5)
        scores = np.empty(values.size)
        for i, value in enumerate(values):
            mean_path = float(
                np.mean([_path_length(tree, value) for tree in self._trees])
            )
            scores[i] = 2.0 ** (-mean_path / c_n)
        return scores


@DEFENSES.register("IsolationForest", aliases=("isolation-forest",))
class IsolationForestDefense(Defense):
    """Remove reports flagged anomalous by an isolation forest, then average."""

    name = "IsolationForest"

    def __init__(
        self,
        contamination: float = 0.1,
        n_trees: int = 50,
        subsample_size: int = 256,
    ) -> None:
        self.contamination = check_fraction(contamination, "contamination", inclusive=False)
        self.n_trees = n_trees
        self.subsample_size = subsample_size

    def estimate_mean(
        self,
        reports: np.ndarray,
        mechanism: NumericalMechanism,
        rng: RngLike = None,
    ) -> DefenseResult:
        reports = self._validate_reports(reports)
        rng = ensure_rng(rng)
        forest = IsolationForest(
            n_trees=self.n_trees, subsample_size=self.subsample_size, rng=rng
        ).fit(reports)
        scores = forest.scores(reports)
        threshold = np.quantile(scores, 1.0 - self.contamination)
        keep = scores < threshold
        kept = reports[keep]
        if kept.size == 0:
            kept = reports
            keep = np.ones(reports.size, dtype=bool)
        estimate = mechanism.estimate_mean(kept)
        low, high = mechanism.input_domain
        estimate = float(np.clip(estimate, low, high))
        return DefenseResult(
            estimate=estimate,
            kept_mask=keep,
            metadata={"score_threshold": float(threshold)},
        )


__all__ = ["IsolationForest", "IsolationForestDefense"]
