"""Scenario: product-rating fraud on a privacy-preserving review platform.

The paper's introduction motivates the threat model with review fraud:
businesses hire workers to post fake 5-star ratings while the platform
collects ratings under LDP.  This example simulates that setting:

* honest customers rate a product between 1 and 5 stars (skewed towards 3-4),
  normalise the rating into [-1, 1] and perturb it with the Piecewise
  Mechanism;
* a fraud ring controlling a fraction of accounts submits poison values that
  masquerade as maximal ratings in the *perturbed* domain (a far stronger
  attack than honestly submitting 5 stars);
* the platform estimates the product's mean rating with and without DAP, and
  also measures what the fraud ring would have achieved with the weaker
  input-manipulation strategy.

Run with::

    python examples/rating_fraud_defense.py
"""

from __future__ import annotations

import numpy as np

from repro import DAPConfig, DAPProtocol
from repro.attacks import BiasedByzantineAttack, InputManipulationAttack, PoisonRange
from repro.datasets.base import NumericalDataset, normalize_to_unit
from repro.defenses import OstrichDefense
from repro.ldp import PiecewiseMechanism


def build_rating_dataset(n_customers: int, rng: np.random.Generator) -> NumericalDataset:
    """Honest star ratings in {1..5}, skewed towards 3-4 stars."""
    stars = rng.choice([1, 2, 3, 4, 5], size=n_customers, p=[0.05, 0.10, 0.30, 0.35, 0.20])
    return NumericalDataset(
        name="ProductRatings",
        values=normalize_to_unit(stars.astype(float), 1.0, 5.0),
        raw_domain=(1.0, 5.0),
        description="Synthetic honest star ratings for one product.",
    )


def to_stars(normalised_mean: float) -> float:
    """Map a normalised mean back to the 1-5 star scale."""
    return (normalised_mean + 1.0) / 2.0 * 4.0 + 1.0


def main() -> None:
    rng = np.random.default_rng(2024)
    epsilon = 1.0
    n_customers, n_fraud = 24_000, 8_000  # 25 % of accounts are fraud bots

    dataset = build_rating_dataset(n_customers, rng)
    print(f"honest mean rating: {to_stars(dataset.true_mean):.2f} stars")

    mechanism = PiecewiseMechanism(epsilon)
    ostrich = OstrichDefense()

    scenarios = {
        "output-manipulation fraud (poison at top of perturbed domain)":
            BiasedByzantineAttack(PoisonRange.of_c(0.75, 1.0)),
        "input-manipulation fraud (honestly perturbed 5-star ratings)":
            InputManipulationAttack(poison_input=1.0),
    }

    for label, attack in scenarios.items():
        print(f"\n=== {label} ===")
        reports = np.concatenate(
            [
                mechanism.perturb(dataset.values, rng),
                attack.poison_reports(n_fraud, mechanism, 0.0, rng).reports,
            ]
        )
        undefended = ostrich(reports, mechanism, rng)
        print(f"  undefended estimate : {to_stars(undefended):.2f} stars")

        config = DAPConfig(epsilon=epsilon, epsilon_min=1 / 16, estimator="cemf_star")
        result = DAPProtocol(config).run(dataset.values, attack, n_fraud, rng=rng)
        print(
            f"  DAP-CEMF* estimate  : {to_stars(result.estimate):.2f} stars "
            f"(gamma_hat={result.gamma_hat:.3f}, side={result.poisoned_side})"
        )

    print(
        "\nAgainst output manipulation the undefended rating jumps to the "
        "maximum while DAP stays near the honest value; input manipulation is "
        "intrinsically weaker (bounded by the legal rating range) and barely "
        "moves either estimator."
    )


if __name__ == "__main__":
    main()
