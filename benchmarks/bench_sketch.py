"""Sketch-route benchmark: high-cardinality frequency at 10^6 categories.

The point of the count-sketch route is a regime the dense frequency oracles
cannot enter at all: 10^6 categories x 10^6 users under a 4 GiB
address-space cap (the dense probe's k x k transform alone would need
~8 TiB).  Each measurement runs in a fresh subprocess under the cap, and
the parent *gates* the results — this script exits nonzero when any gate
fails, so CI can run it directly:

* ``guard``  — the dense routes (FrequencyDAP, OUE, OLH) must *refuse* the
  configured cardinality instead of attempting the allocation;
* ``merge``  — sharded collection folded over 1/2/4 shards must produce
  bit-identical sketch counts;
* ``clean``  — an attack-free round must finish inside the time budget with
  every planted heavy hitter decoded within the analytic error bound
  (privacy noise + hash collisions + sampling, 6 sigma), and must flag
  nothing;
* ``attack`` — a round with 5% Byzantine users targeting planted cold
  categories must finish inside the time budget, flag exactly the targets,
  and estimate the poison fraction within a factor-of-two band.

Usage::

    PYTHONPATH=src python benchmarks/bench_sketch.py --out BENCH_sketch.json
    PYTHONPATH=src python benchmarks/bench_sketch.py --quick
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import resource
import subprocess
import sys
import time

EPSILON = 4.0
SEED = 7
TIME_BUDGET_S = 30.0
ERROR_SIGMAS = 6.0

#: full configuration: the regime the dense path cannot run
FULL = dict(
    n_categories=1_000_000,
    n_normal=1_000_000,
    n_byzantine=50_000,
    sketch_rows=4,
    sketch_width=2048,
    n_heavy_hitters=64,
    n_heavies=20,
    n_targets=5,
)

#: CI smoke: same pipeline, ~seconds instead of ~half a minute
QUICK = dict(
    n_categories=50_000,
    n_normal=100_000,
    n_byzantine=5_000,
    sketch_rows=4,
    sketch_width=1024,
    n_heavy_hitters=32,
    n_heavies=10,
    n_targets=3,
)


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (Linux: ru_maxrss is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _planted(config: dict) -> tuple[dict, list]:
    """Planted heavy-hitter frequencies and the attack's cold targets.

    Heavies are categories ``10, 20, 30, ...`` with frequencies linear from
    0.035 down to 0.015 — the floor sits well above the extreme order
    statistic of the decode noise over the whole domain, so every planted
    heavy must make the candidate set.  Targets are cold categories
    ``5, 15, 25, ...`` disjoint from the heavies.
    """
    n_heavies = config["n_heavies"]
    heavies = {
        10 * (index + 1): 0.035 - 0.020 * index / max(1, n_heavies - 1)
        for index in range(n_heavies)
    }
    targets = [10 * index + 5 for index in range(config["n_targets"])]
    return heavies, targets


def _population(config: dict, rng) -> "np.ndarray":
    import numpy as np

    heavies, _ = _planted(config)
    categories = rng.integers(0, config["n_categories"], config["n_normal"])
    total = sum(heavies.values())
    heavy = rng.random(config["n_normal"]) < total
    ids = np.array(list(heavies))
    weights = np.array(list(heavies.values())) / total
    categories[heavy] = rng.choice(ids, heavy.sum(), p=weights)
    return categories


def _dap(config: dict):
    from repro.core.sketch_frequency import SketchFrequencyDAP

    return SketchFrequencyDAP(
        epsilon=EPSILON,
        n_categories=config["n_categories"],
        sketch_rows=config["sketch_rows"],
        sketch_width=config["sketch_width"],
        n_heavy_hitters=config["n_heavy_hitters"],
    )


def _error_bound(config: dict, mechanism, heavies: dict) -> float:
    """6-sigma analytic decode error: privacy noise + collisions + sampling."""
    n_reports = config["n_normal"]
    f2_other = sum(f * f for f in heavies.values())
    noise = mechanism.frequency_stderr(n_reports)
    collision = mechanism.collision_stderr(f2_other)
    sampling = math.sqrt(0.03 * 0.97 / n_reports)
    return ERROR_SIGMAS * (noise + collision + sampling)


# ----------------------------------------------------------------------
# child modes (one fresh process per measurement, under the rlimit cap)
# ----------------------------------------------------------------------
def run_guard(config: dict) -> dict:
    """The dense routes must refuse the full-scale cardinality outright.

    Always checked at the FULL configuration's 10^6 categories (the guards
    are O(1) constructor checks, so this costs nothing in quick mode, where
    the measurement cardinality itself sits under the OUE/OLH limits).
    """
    from repro.core.frequency import FrequencyDAP
    from repro.ldp.olh import OptimizedLocalHashing
    from repro.ldp.oue import OptimizedUnaryEncoding

    cardinality = max(config["n_categories"], FULL["n_categories"])
    refused = {}
    for name, build in (
        ("frequency_dap", lambda: FrequencyDAP(EPSILON, cardinality)),
        ("oue", lambda: OptimizedUnaryEncoding(EPSILON, cardinality)),
        ("olh", lambda: OptimizedLocalHashing(EPSILON, cardinality)),
    ):
        try:
            build()
            refused[name] = False
        except ValueError as error:
            refused[name] = "count-sketch" in str(error)
    return {"mode": "guard", "ok": all(refused.values()), "refused": refused}


def run_merge(config: dict) -> dict:
    """Sharded collection must be bit-identical at any shard count."""
    import numpy as np

    _, targets = _planted(config)
    dap = _dap(config)
    digests = []
    for n_shards in (1, 2, 4):
        accumulator = dap.collect_sharded(
            _population(config, np.random.default_rng(SEED)),
            targets,
            config["n_byzantine"],
            rng=np.random.default_rng(SEED + 1),
            n_shards=n_shards,
            n_workers=1,
        )
        digests.append(hashlib.sha256(accumulator.counts.tobytes()).hexdigest())
    return {
        "mode": "merge",
        "ok": len(set(digests)) == 1,
        "shards": [1, 2, 4],
        "counts_sha256": digests[0][:16],
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def run_round(config: dict, attacked: bool) -> dict:
    """One full collection + estimation round, timed and gated."""
    import numpy as np

    from repro.utils import profiling

    heavies, targets = _planted(config)
    dap = _dap(config)
    rng = np.random.default_rng(SEED)
    categories = _population(config, rng)

    before = profiling.snapshot()
    start = time.perf_counter()
    accumulator = dap.collect_sharded(
        categories,
        targets if attacked else [],
        config["n_byzantine"] if attacked else 0,
        rng=rng,
        n_shards=2,
        n_workers=1,
    )
    result = dap.estimate_from_counts(accumulator)
    elapsed = time.perf_counter() - start
    profile = profiling.delta_since(before)

    estimates = {
        int(c): float(f) for c, f in zip(result.heavy_hitters, result.frequencies)
    }
    decoded = {
        int(c): float(d) for c, d in zip(result.heavy_hitters, result.decoded)
    }
    scale = config["n_normal"] / (config["n_normal"] + config["n_byzantine"])
    honest = {
        category: frequency * (scale if attacked else 1.0)
        for category, frequency in heavies.items()
    }
    missing = [c for c in honest if c not in decoded]
    hh_error = max(
        (abs(decoded[c] - truth) for c, truth in honest.items() if c in decoded),
        default=float("inf"),
    )
    report = {
        "mode": "attack" if attacked else "clean",
        "ok": True,
        "wall_time_s": round(elapsed, 3),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "n_reports": int(accumulator.n_reports),
        "poisoned_categories": result.poisoned_categories,
        "gamma_hat": round(result.gamma_hat, 5),
        "heavy_hitter_max_abs_error": round(hh_error, 6),
        "heavy_hitter_error_bound": round(
            _error_bound(config, dap.mechanism, heavies), 6
        ),
        "missing_heavies": missing,
        "profile": {
            name: round(seconds, 3) for name, seconds in sorted(profile.items())
        },
    }
    if attacked:
        report["targets"] = targets
        report["log_likelihood_gains"] = [
            round(gain, 2) for gain in result.log_likelihood_gains
        ]
        report["estimates_at_targets"] = {
            str(c): round(estimates.get(c, float("nan")), 5) for c in targets
        }
    return report


# ----------------------------------------------------------------------
# parent: orchestration and gating
# ----------------------------------------------------------------------
def run_child(mode: str, quick: bool, mem_limit_gb: float, timeout_s: float) -> dict:
    command = [
        sys.executable,
        __file__,
        "--single",
        mode,
        "--mem-limit-gb",
        str(mem_limit_gb),
    ]
    if quick:
        command.append("--quick")
    start = time.perf_counter()
    try:
        child = subprocess.run(
            command, capture_output=True, text=True, timeout=timeout_s
        )
    except subprocess.TimeoutExpired:
        return {"mode": mode, "ok": False, "error": f"timed out after {timeout_s:g}s"}
    elapsed = time.perf_counter() - start
    if child.returncode != 0:
        tail = (child.stderr or "").strip().splitlines()
        return {
            "mode": mode,
            "ok": False,
            "error": tail[-1] if tail else f"exit code {child.returncode}",
            "wall_time_s": round(elapsed, 3),
        }
    return json.loads(child.stdout)


def gate(results: dict, config: dict) -> list:
    """Evaluate the hard gates; return the list of violations."""
    _, targets = _planted(config)
    violations = []

    guard = results["guard"]
    if not guard.get("ok"):
        violations.append(f"dense routes did not all refuse: {guard}")

    merge = results["merge"]
    if not merge.get("ok"):
        violations.append(f"sharded sketch counts not bit-identical: {merge}")

    for mode in ("clean", "attack"):
        row = results[mode]
        if not row.get("ok"):
            violations.append(f"{mode} round failed: {row.get('error')}")
            continue
        if row["wall_time_s"] > TIME_BUDGET_S:
            violations.append(
                f"{mode} round took {row['wall_time_s']:.1f}s "
                f"(budget {TIME_BUDGET_S:g}s)"
            )
        if row["missing_heavies"]:
            violations.append(
                f"{mode} round dropped planted heavies {row['missing_heavies']} "
                f"from the candidate set"
            )
        if row["heavy_hitter_max_abs_error"] > row["heavy_hitter_error_bound"]:
            violations.append(
                f"{mode} heavy-hitter error {row['heavy_hitter_max_abs_error']} "
                f"exceeds the analytic bound {row['heavy_hitter_error_bound']}"
            )

    clean = results["clean"]
    if clean.get("ok") and clean["poisoned_categories"]:
        violations.append(
            f"clean round flagged {clean['poisoned_categories']} as poisoned"
        )

    attack = results["attack"]
    if attack.get("ok"):
        if sorted(attack["poisoned_categories"]) != sorted(targets):
            violations.append(
                f"attack round flagged {attack['poisoned_categories']}, "
                f"expected exactly {sorted(targets)}"
            )
        # sanity band only: the split between a flagged category's own column
        # and its poison column is identified only up to the flatness of the
        # candidate/poison likelihood ridge (see the sketch_frequency module
        # docstring), so gamma_hat is approximate by design — the sharp gates
        # are exact flag recovery and clean-round silence
        true_gamma = config["n_byzantine"] / (
            config["n_normal"] + config["n_byzantine"]
        )
        if not 0.05 * true_gamma < attack["gamma_hat"] < 2.5 * true_gamma:
            violations.append(
                f"gamma_hat {attack['gamma_hat']} outside the sanity band "
                f"[{0.05 * true_gamma:.4f}, {2.5 * true_gamma:.4f}]"
            )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--mem-limit-gb", type=float, default=4.0)
    parser.add_argument("--timeout-s", type=float, default=600.0)
    parser.add_argument("--out", default="BENCH_sketch.json")
    parser.add_argument(
        "--single",
        choices=["guard", "merge", "clean", "attack"],
        default=None,
        help="child entry point: one measurement, JSON on stdout",
    )
    args = parser.parse_args(argv)
    config = QUICK if args.quick else FULL

    if args.single is not None:
        if args.mem_limit_gb > 0:
            limit = int(args.mem_limit_gb * 1024**3)
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        try:
            if args.single == "guard":
                report = run_guard(config)
            elif args.single == "merge":
                report = run_merge(config)
            else:
                report = run_round(config, attacked=args.single == "attack")
        except MemoryError:
            print("MemoryError: exceeded the address-space cap", file=sys.stderr)
            return 3
        print(json.dumps(report))
        return 0

    results = {}
    for mode in ("guard", "merge", "clean", "attack"):
        print(f"[bench_sketch] {mode} ...", flush=True)
        report = run_child(mode, args.quick, args.mem_limit_gb, args.timeout_s)
        status = "ok" if report.get("ok") else f"FAILED ({report.get('error')})"
        if "wall_time_s" in report:
            status += f" ({report['wall_time_s']:.1f}s)"
        print(f"[bench_sketch]   -> {status}", flush=True)
        results[mode] = report

    violations = gate(results, config)
    payload = {
        "benchmark": "sketch-backed high-cardinality frequency (count-sketch)",
        "config": {
            **config,
            "epsilon": EPSILON,
            "seed": SEED,
            "mem_limit_gb": args.mem_limit_gb,
            "time_budget_s": TIME_BUDGET_S,
            "error_sigmas": ERROR_SIGMAS,
            "quick": args.quick,
            "cpu_count": os.cpu_count(),
        },
        "notes": (
            "Every row runs in a fresh subprocess under the address-space "
            "cap. 'guard' asserts the dense oracles refuse the cardinality; "
            "'merge' asserts 1/2/4-shard sketch counts are bit-identical; "
            "'clean'/'attack' time the full sharded-collect + estimate round "
            "and check heavy-hitter decode error against the analytic "
            "privacy+collision+sampling bound and exact recovery of the "
            "planted poison targets."
        ),
        "gates_passed": not violations,
        "violations": violations,
        "results": [results[m] for m in ("guard", "merge", "clean", "attack")],
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"[bench_sketch] wrote {args.out}")
    for violation in violations:
        print(f"[bench_sketch] GATE VIOLATION: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
