"""Single-pass numpy kernels: statistically equivalent, not bit-identical.

The reference kernels in :mod:`repro.backends.base` mirror the seed
implementation draw for draw, which costs them extra RNG passes and fancy
indexing (PM/SW sample a band mask first and then fill the two regions with
separate draws; OUE materialises a dense ``(n, k)`` float matrix just to
threshold it).  :class:`FastBackend` replaces each sampler with an
algebraically derived single-pass form over **one** uniform draw per report:

* **PM / SW** — inverse-CDF sampling.  The output density is piecewise
  constant (low / high / low), so the CDF is piecewise linear and inverts in
  closed form; one uniform ``u`` selects the region *and* the position in it.
* **OUE** — sparse flipped-bit sampling.  Column ``j`` of the report matrix
  is iid Bernoulli(q) (before the true-bit overwrite), so its number of ones
  is Binomial(n, q) and, given the count, the positions are a uniform sample
  without replacement.  Drawing ``(count, positions)`` per column touches
  O(q·n·k) cells instead of thresholding ``n*k`` doubles.
* **OLH / k-RR** — the keep-or-other decision and the "other" choice reuse
  the same uniform: conditioned on ``u >= p``, ``(u - p) / (1 - p)`` is
  again uniform on ``[0, 1)``.
* **histogram / category accumulation** — skip the redundant re-validation
  pass and replace the exact fsum feed with a pre-reduced ``values.sum()``
  per chunk (the accumulator folds it as a scalar).

Every kernel here draws *different* random numbers from the same generator
state than the reference does, so runs under this backend are statistically
equivalent but not bit-identical — exactly why ``backend`` is an execution
detail and not part of a run's fingerprint.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.backends.base import ArrayBackend, raise_category_range, raise_sketch_range

#: below this many (user x category) cells the dense OUE sampler wins — the
#: per-column python loop of the sparse sampler only pays off at scale
OUE_SPARSE_MIN_CELLS = 1 << 16


class FastBackend(ArrayBackend):
    """Pure-numpy single-pass kernels (no extra dependencies)."""

    name = "fast"

    # ------------------------------------------------------------------
    # numerical mechanism sampling
    # ------------------------------------------------------------------
    def pm_sample(
        self,
        values: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        C: float,
        high_prob: float,
        p_high: float,
        p_low: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        # CDF: mass (left + C) * p_low below the band, high_prob inside it,
        # the remainder above — each piece linear, so invert directly.
        u = rng.random(values.size)
        below_band = (left + C) * p_low
        out = np.where(
            u < below_band,
            u / p_low - C,
            np.where(
                u < below_band + high_prob,
                left + (u - below_band) / p_high,
                right + (u - below_band - high_prob) / p_low,
            ),
        )
        # the closed-form inverse hits the domain ends exactly in real
        # arithmetic; clip the float rounding so reports stay in [-C, C]
        return np.clip(out, -C, C, out=out)

    def sw_sample(
        self,
        values: np.ndarray,
        b: float,
        p_high: float,
        p_low: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        # CDF over [-b, 1+b]: mass v * p_low below the window [v-b, v+b],
        # 2*b*p_high inside it, the remainder above.
        u = rng.random(values.size)
        below_window = values * p_low
        window_mass = 2.0 * b * p_high
        out = np.where(
            u < below_window,
            u / p_low - b,
            np.where(
                u < below_window + window_mass,
                (values - b) + (u - below_window) / p_high,
                (values + b) + (u - below_window - window_mass) / p_low,
            ),
        )
        return np.clip(out, -b, 1.0 + b, out=out)

    # ------------------------------------------------------------------
    # categorical mechanism sampling
    # ------------------------------------------------------------------
    def oue_sample(
        self,
        categories: np.ndarray,
        n_categories: int,
        p: float,
        q: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = categories.size
        if n * n_categories < OUE_SPARSE_MIN_CELLS or q > 0.5:
            return super().oue_sample(categories, n_categories, p, q, rng)
        bits = np.zeros((n, n_categories), dtype=np.int8)
        # column j's ones: Binomial(n, q) many, uniformly placed — the
        # distribution of an iid Bernoulli(q) column, drawn sparsely
        flips = rng.binomial(n, q, size=n_categories)
        for column in range(n_categories):
            count = int(flips[column])
            if count:
                bits[rng.choice(n, size=count, replace=False), column] = 1
        keep_one = rng.random(n) < p
        bits[np.arange(n), categories] = keep_one
        return bits

    def olh_sample(
        self,
        categories: np.ndarray,
        domain: int,
        p: float,
        hash_fn: Callable[[np.ndarray, np.ndarray, int], np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = categories.size
        seeds = rng.integers(0, 2**32 - 1, size=n, dtype=np.uint64)
        hashed = hash_fn(categories, seeds, domain)
        u = rng.random(n)
        keep = u < p
        other = self._uniform_other(u, hashed, domain, p)
        reports = np.where(keep, hashed, other)
        return np.column_stack([seeds.astype(np.int64), reports.astype(np.int64)])

    def krr_sample(
        self,
        categories: np.ndarray,
        n_categories: int,
        p: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        u = rng.random(categories.size)
        keep = u < p
        other = self._uniform_other(u, categories, n_categories, p)
        return np.where(keep, categories, other)

    @staticmethod
    def _uniform_other(
        u: np.ndarray, kept: np.ndarray, domain: int, p: float
    ) -> np.ndarray:
        """Uniform category != ``kept`` from the tail of the keep draw.

        Conditioned on ``u >= p``, ``(u - p) / (1 - p)`` is uniform on
        ``[0, 1)`` and independent of the keep decision, so it indexes one of
        the ``domain - 1`` other categories without a second RNG pass.
        Entries with ``u < p`` are garbage, but the caller selects them away.
        """
        other = ((u - p) * ((domain - 1) / (1.0 - p))).astype(np.int64)
        np.clip(other, 0, domain - 2, out=other)
        other += other >= kept
        return other

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def histogram_chunk(self, values: np.ndarray, grid) -> Tuple[np.ndarray, Optional[float]]:
        # same assignment arithmetic as grid.assign (so counts stay identical
        # to the reference), minus its repeated finiteness pass; the chunk sum
        # is pre-reduced instead of fed value-by-value through fsum
        idx = np.floor((values - grid.low) / grid.width).astype(int)
        np.clip(idx, 0, grid.n_buckets - 1, out=idx)
        return np.bincount(idx, minlength=grid.n_buckets), float(values.sum())

    def category_chunk(self, reports: np.ndarray, n_categories: int) -> np.ndarray:
        try:
            counts = np.bincount(reports, minlength=n_categories)
        except ValueError:
            # negative report — re-raise with the accumulator family's message
            raise_category_range(reports, n_categories)
        if counts.size > n_categories:
            raise_category_range(reports, n_categories)
        return counts

    def sketch_chunk(self, reports: np.ndarray, n_rows: int, width: int) -> np.ndarray:
        rows = reports[:, 0]
        buckets = reports[:, 1]
        # buckets need an explicit range check: an out-of-range bucket paired
        # with a valid row can still land on a valid flat index.  Bad rows are
        # caught for free — negative flat indices make bincount raise, rows
        # >= n_rows overflow the minlength.
        if buckets.size and (buckets.min() < 0 or buckets.max() >= width):
            raise_sketch_range(reports, n_rows, width)
        try:
            flat = np.bincount(rows * width + buckets, minlength=n_rows * width)
        except ValueError:
            raise_sketch_range(reports, n_rows, width)
        if flat.size > n_rows * width:
            raise_sketch_range(reports, n_rows, width)
        return flat.reshape(n_rows, width)

    # ------------------------------------------------------------------
    # count-sketch
    # ------------------------------------------------------------------
    def sketch_sample(
        self,
        categories: np.ndarray,
        n_rows: int,
        width: int,
        p: float,
        hash_fn: Callable[[np.ndarray, np.ndarray, int], np.ndarray],
        row_seeds: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = categories.size
        rows = rng.integers(0, n_rows, size=n)
        hashed = hash_fn(categories, row_seeds[rows], width)
        u = rng.random(n)
        keep = u < p
        other = self._uniform_other(u, hashed, width, p)
        buckets = np.where(keep, hashed, other)
        return np.column_stack([rows.astype(np.int64), buckets.astype(np.int64)])


__all__ = ["FastBackend", "OUE_SPARSE_MIN_CELLS"]
