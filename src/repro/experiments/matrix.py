"""Cross-grid driver: attack x defense x epsilon x dataset combinations.

The paper evaluates a fixed set of (attack, scheme) pairings — BBA against the
DAP variants and two baselines, IMA only against the k-means comparison, the
evasion attack only against DAP.  This driver sweeps the *full cross product*
of registered attacks and defence-backed schemes over the budget grid and
several datasets, a workload the paper never plotted: e.g. how Boxplot or
IsolationForest hold up under input manipulation, or how the evasion attack
fares against plain Trimming.

It is built entirely on the scenario layer, so the same grid is reachable as
a JSON file through ``python -m repro run`` (see
``examples/scenario_matrix.json``), and emits the usual columnar
:class:`~repro.simulation.sweep.SweepRecord` rows / run artifacts.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.experiments.defaults import ExperimentScale, QUICK_SCALE
from repro.scenario import ScenarioSpec, format_scenario_records, run_scenario
from repro.simulation.sweep import SweepRecord
from repro.utils.rng import RngLike

#: the attack axis: every threat model in the registry, paper parameterisations
MATRIX_ATTACKS = (
    {"name": "bba", "poison_range": "[C/2,C]", "label": "BBA[C/2,C]"},
    {"name": "gba", "right_fraction": 0.8, "label": "GBA(0.8R)"},
    {"name": "ima", "label": "IMA"},
    {"name": "evasion", "evasive_fraction": 0.2, "label": "Evasion(0.2)"},
)

#: the defence axis: DAP's best variant plus every registered baseline defence
MATRIX_SCHEMES = (
    "DAP-CEMF*",
    "Ostrich",
    "Trimming",
    "K-means",
    "Boxplot",
    "IsolationForest",
)

MATRIX_DATASETS = ("Taxi", "Beta(2,5)")
MATRIX_EPSILONS = (0.5, 1.0, 2.0)


def build_matrix_scenario(
    scale: ExperimentScale = QUICK_SCALE,
    datasets: Sequence[Any] = MATRIX_DATASETS,
    attacks: Sequence[Any] = MATRIX_ATTACKS,
    schemes: Sequence[Any] = MATRIX_SCHEMES,
    epsilons: Sequence[float] = MATRIX_EPSILONS,
    epsilon_min: float = 1.0 / 16.0,
    seed: int = 0,
    batched: bool = False,
) -> ScenarioSpec:
    """Declare the cross-grid as a :class:`~repro.scenario.ScenarioSpec`."""
    return ScenarioSpec(
        name="matrix",
        description=(
            "cross grid: every attack x every defense-backed scheme x epsilon "
            "x dataset (combinations beyond the paper's figures)"
        ),
        schemes=schemes,
        epsilons=epsilons,
        attacks=attacks,
        datasets=datasets,
        n_users=scale.n_users,
        n_trials=scale.n_trials,
        gamma=scale.gamma,
        seed=seed,
        epsilon_min=epsilon_min,
        batched=batched,
    )


def run_matrix(
    scale: ExperimentScale = QUICK_SCALE,
    datasets: Sequence[Any] = MATRIX_DATASETS,
    attacks: Sequence[Any] = MATRIX_ATTACKS,
    schemes: Sequence[Any] = MATRIX_SCHEMES,
    epsilons: Sequence[float] = MATRIX_EPSILONS,
    epsilon_min: float = 1.0 / 16.0,
    seed: int = 0,
    rng: RngLike = None,
    n_workers: int | str | None = None,
    batched: bool = False,
    store_path=None,
) -> List[SweepRecord]:
    """Run the attack x defense cross-grid through the parallel executor.

    ``rng`` overrides the scenario seed (mirroring the figure drivers);
    records are bit-identical at any ``n_workers``.
    """
    scenario = build_matrix_scenario(
        scale,
        datasets=datasets,
        attacks=attacks,
        schemes=schemes,
        epsilons=epsilons,
        epsilon_min=epsilon_min,
        seed=seed,
        batched=batched,
    )
    return run_scenario(
        scenario, rng=rng, n_workers=n_workers, store_path=store_path
    )


def format_matrix(records: Sequence[SweepRecord]) -> str:
    """Render one epsilon x scheme MSE table per (dataset, attack) panel."""
    return format_scenario_records(records)


__all__ = [
    "MATRIX_ATTACKS",
    "MATRIX_SCHEMES",
    "MATRIX_DATASETS",
    "MATRIX_EPSILONS",
    "build_matrix_scenario",
    "run_matrix",
    "format_matrix",
]
