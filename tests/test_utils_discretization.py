"""Tests for repro.utils.discretization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.discretization import BucketGrid, bucket_centers, bucketize


class TestBucketGridConstruction:
    def test_edges_cover_domain(self):
        grid = BucketGrid(-1.0, 1.0, 4)
        np.testing.assert_allclose(grid.edges, [-1.0, -0.5, 0.0, 0.5, 1.0])

    def test_width(self):
        assert BucketGrid(0.0, 1.0, 10).width == pytest.approx(0.1)

    def test_centers(self):
        grid = BucketGrid(0.0, 1.0, 2)
        np.testing.assert_allclose(grid.centers, [0.25, 0.75])

    def test_invalid_domain_raises(self):
        with pytest.raises(ValueError):
            BucketGrid(1.0, -1.0, 4)

    def test_invalid_bucket_count_raises(self):
        with pytest.raises(ValueError):
            BucketGrid(0.0, 1.0, 0)

    def test_len(self):
        assert len(BucketGrid(0.0, 1.0, 7)) == 7

    def test_bucket_bounds(self):
        grid = BucketGrid(0.0, 1.0, 4)
        assert grid.bucket_bounds(1) == (0.25, 0.5)

    def test_bucket_bounds_out_of_range(self):
        with pytest.raises(IndexError):
            BucketGrid(0.0, 1.0, 4).bucket_bounds(4)


class TestAssignment:
    def test_interior_values(self):
        grid = BucketGrid(0.0, 1.0, 4)
        np.testing.assert_array_equal(grid.assign(np.array([0.1, 0.3, 0.6, 0.9])), [0, 1, 2, 3])

    def test_boundary_values_clipped(self):
        grid = BucketGrid(0.0, 1.0, 4)
        assert grid.assign(np.array([1.0]))[0] == 3
        assert grid.assign(np.array([-5.0]))[0] == 0
        assert grid.assign(np.array([5.0]))[0] == 3

    def test_counts_sum_to_n(self):
        grid = BucketGrid(-1.0, 1.0, 8)
        values = np.linspace(-1, 1, 100)
        assert grid.counts(values).sum() == 100

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_values_rejected(self, bad):
        """NaN previously went through ``astype(int)`` (undefined) and was
        clipped into bucket 0; ±inf silently landed in an edge bucket."""
        grid = BucketGrid(0.0, 1.0, 4)
        with pytest.raises(ValueError, match="finite"):
            grid.assign(np.array([0.5, bad]))
        with pytest.raises(ValueError, match="finite"):
            grid.counts(np.array([bad]))

    def test_frequencies_sum_to_one(self):
        grid = BucketGrid(-1.0, 1.0, 8)
        values = np.random.default_rng(0).uniform(-1, 1, 50)
        assert grid.frequencies(values).sum() == pytest.approx(1.0)

    def test_frequencies_of_empty_input_are_uniform(self):
        grid = BucketGrid(-1.0, 1.0, 4)
        np.testing.assert_allclose(grid.frequencies(np.array([])), 0.25)


class TestHalves:
    def test_right_half_default_split(self):
        grid = BucketGrid(-2.0, 2.0, 10)
        right = grid.right_half()
        assert right.low == 0.0 and right.high == 2.0
        assert right.n_buckets == 5

    def test_left_half_default_split(self):
        grid = BucketGrid(-2.0, 2.0, 10)
        left = grid.left_half()
        assert left.low == -2.0 and left.high == 0.0

    def test_asymmetric_split_bucket_count(self):
        grid = BucketGrid(-2.0, 2.0, 10)
        right = grid.right_half(split=1.0)
        # a quarter of the domain gets ceil(10 * 0.25) buckets
        assert right.n_buckets == 3

    def test_invalid_split_raises(self):
        grid = BucketGrid(-1.0, 1.0, 4)
        with pytest.raises(ValueError):
            grid.right_half(split=2.0)
        with pytest.raises(ValueError):
            grid.left_half(split=-2.0)


class TestConvenienceFunctions:
    def test_bucketize(self):
        np.testing.assert_array_equal(bucketize(np.array([0.1, 0.9]), 0, 1, 2), [0, 1])

    def test_bucket_centers(self):
        np.testing.assert_allclose(bucket_centers(0, 1, 2), [0.25, 0.75])


class TestPropertyBased:
    @given(
        values=st.lists(st.floats(-1, 1, allow_nan=False), min_size=1, max_size=50),
        n_buckets=st.integers(1, 30),
    )
    @settings(max_examples=50, deadline=None)
    def test_assignment_always_in_range(self, values, n_buckets):
        grid = BucketGrid(-1.0, 1.0, n_buckets)
        idx = grid.assign(np.array(values))
        assert idx.min() >= 0 and idx.max() < n_buckets

    @given(
        values=st.lists(st.floats(-1, 1, allow_nan=False), min_size=1, max_size=50),
        n_buckets=st.integers(1, 30),
    )
    @settings(max_examples=50, deadline=None)
    def test_counts_preserve_total(self, values, n_buckets):
        grid = BucketGrid(-1.0, 1.0, n_buckets)
        assert grid.counts(np.array(values)).sum() == len(values)

    @given(n_buckets=st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_centers_inside_domain(self, n_buckets):
        grid = BucketGrid(-1.0, 1.0, n_buckets)
        assert grid.centers.min() > -1.0 and grid.centers.max() < 1.0
