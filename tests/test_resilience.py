"""Fault-tolerant execution layer: the recovery ladder never changes bits.

Four families of guarantees:

* **ResilientPool** — retries, injected worker kills (real pool
  reincarnation), timeouts, straggler re-dispatch and serial degradation all
  return results bit-identical to an undisturbed run, with every recovery
  action counted in :mod:`repro.resilience.stats`;
* **fault-plan determinism (property)** — Hypothesis-drawn fault plans
  injecting kills/timeouts/raises at arbitrary ``(task, attempt)`` never
  change the collected statistics or estimates, for the mean route
  (emf / emf_star) and the k-RR frequency route at 1 / 2 / 5 shards;
* **checkpoint chain** — truncated, bit-flipped, version-bumped and
  foreign-digest checkpoints are quarantined (renamed aside) and the chain
  rolls back to the newest valid ancestor without raising, including through
  a full service re-run that replays the missing windows bit-identically;
* **store atomicity** — a SIGKILL mid-artifact-write leaves the previous
  artifact intact (temp-file + fsync + rename), so a crashed run resumes.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks import BiasedByzantineAttack, PAPER_POISON_RANGES
from repro.collect.sharding import SHARD_POOL_LABEL, run_shard_tasks
from repro.core.dap import DAPConfig, DAPProtocol
from repro.core.frequency import FrequencyDAP
from repro.engine.store import load_run, save_run
from repro.resilience import (
    FaultPlan,
    ResilientPool,
    RetryPolicy,
    TaskFailedError,
    corrupt_file,
    reset_degradation_latch,
    retry_call,
    stats,
    use_fault_plan,
    use_retry_policy,
)
from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointChain,
    QUARANTINE_SUFFIX,
    load_checkpoint,
    write_checkpoint,
)
from repro.service.runtime import run_service
from repro.service.spec import ServiceSpec
from repro.simulation.sweep import SweepRecord

#: no backoff sleeps and headroom for stacked faults on one task
FAST = RetryPolicy(max_attempts=5, backoff_base=0.0, backoff_cap=0.0)

ATTACK = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])
SHARD_COUNTS = (1, 2, 5)


# module-level workers (picklable by reference for the pool path)
def square(x):
    return x * x


def always_fails(x):
    raise RuntimeError("task is permanently broken")


@pytest.fixture(autouse=True)
def _fresh_resilience_state():
    stats.reset()
    reset_degradation_latch()
    yield


# ----------------------------------------------------------------------
# ResilientPool
# ----------------------------------------------------------------------
class TestResilientPool:
    def test_serial_and_pool_agree_in_task_order(self):
        tasks = list(range(7))
        expected = [x * x for x in tasks]
        assert ResilientPool(1, "t").run(square, tasks) == expected
        assert ResilientPool(3, "t").run(square, tasks) == expected

    def test_empty_tasks(self):
        assert ResilientPool(4, "t").run(square, []) == []

    def test_injected_kill_reincarnates_pool(self):
        plan = FaultPlan.from_mapping(
            {"faults": [{"kind": "kill", "scope": "t", "task": 0, "attempt": 0}]}
        )
        with use_fault_plan(plan) as injector, use_retry_policy(FAST):
            out = ResilientPool(2, "t").run(square, [1, 2, 3, 4])
        assert out == [1, 4, 9, 16]
        assert injector.fired == 1
        snap = stats.snapshot()
        assert snap["worker_deaths"] >= 1
        assert snap["pool_restarts"] >= 1

    def test_injected_raise_and_timeout_retry(self):
        plan = FaultPlan.from_mapping(
            {
                "faults": [
                    {"kind": "raise", "scope": "t", "task": 1, "attempt": 0},
                    {"kind": "timeout", "scope": "t", "task": 2, "attempt": 0},
                ]
            }
        )
        with use_fault_plan(plan) as injector, use_retry_policy(FAST):
            out = ResilientPool(1, "t").run(square, [1, 2, 3, 4])
        assert out == [1, 4, 9, 16]
        assert injector.fired == 2
        snap = stats.snapshot()
        assert snap["retries"] >= 1
        assert snap["timeouts"] == 1

    def test_faults_only_match_their_scope(self):
        plan = FaultPlan.from_mapping(
            {"faults": [{"kind": "raise", "scope": "other", "task": 0, "attempt": 0}]}
        )
        with use_fault_plan(plan) as injector, use_retry_policy(FAST):
            assert ResilientPool(1, "t").run(square, [3]) == [9]
        assert injector.fired == 0

    def test_permanent_failure_raises_after_max_attempts(self):
        with use_retry_policy(RetryPolicy(max_attempts=2, backoff_base=0.0)):
            with pytest.raises(TaskFailedError, match="after 2 attempts"):
                ResilientPool(1, "t").run(always_fails, [1])
        assert stats.snapshot()["retries"] == 1

    def test_watchdog_redispatches_straggler(self):
        # a real straggler needs a genuinely slow worker; keep it tiny
        policy = RetryPolicy(task_timeout=0.25, backoff_base=0.0, max_attempts=6)
        with use_retry_policy(policy):
            out = ResilientPool(2, "t").run(_sleepy, [99, 1, 2])
        assert out == [99, 1, 2]
        assert stats.snapshot()["timeouts"] >= 1

    def test_degradation_warns_once_with_unified_shape(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = ResilientPool(2, "t").run(
                square, [1, 2, 3], pickle_probe=lambda: None
            )
            second = ResilientPool(2, "t").run(
                square, [1, 2, 3], pickle_probe=lambda: None
            )
        assert first == second == [1, 4, 9]
        messages = [str(w.message) for w in caught]
        assert len(messages) == 1
        assert "resilient pool [t] degrading to serial execution" in messages[0]
        assert "not picklable" in messages[0]
        assert stats.snapshot()["serial_degradations"] == 2

        # a new run re-arms the latch
        reset_degradation_latch()
        with pytest.warns(RuntimeWarning, match="not picklable"):
            ResilientPool(2, "t").run(square, [1, 2], pickle_probe=lambda: None)

    def test_shard_harness_uses_the_same_message_shape(self):
        with pytest.warns(
            RuntimeWarning,
            match=r"resilient pool \[collect\.shard\] degrading to serial",
        ):
            out = run_shard_tasks(
                square, [1, 2, 3], n_workers=2, pickle_probe=lambda: None
            )
        assert out == [1, 4, 9]

    def test_retry_call_retries_transient_oserror(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return "done"

        with use_retry_policy(FAST):
            assert retry_call(flaky, label="t") == "done"
        assert calls["n"] == 2
        assert stats.snapshot()["retries"] == 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="task_timeout"):
            RetryPolicy(task_timeout=-1.0)
        with pytest.raises(ValueError, match="n_workers"):
            ResilientPool(0, "t")


def _sleepy(x):
    if x == 99:
        import time

        time.sleep(0.8)
    return x


# ----------------------------------------------------------------------
# FaultPlan schema
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_document_round_trips(self):
        plan = FaultPlan.from_mapping(
            {
                "name": "p",
                "faults": [
                    {"kind": "kill", "scope": "s", "task": 1, "attempt": 2},
                    {"kind": "checkpoint", "window": 3, "mode": "bitflip"},
                    {"kind": "artifact-write", "count": 2},
                ],
            }
        )
        assert FaultPlan.from_mapping(plan.document()) == plan

    @pytest.mark.parametrize(
        "entry, match",
        [
            ({"kind": "explode"}, "unknown kind"),
            ({"kind": "kill", "task": 0}, "needs a 'scope'"),
            ({"kind": "kill", "scope": "s", "window": 1}, "unknown keys"),
            ({"kind": "checkpoint", "mode": "nuke"}, "unknown corruption mode"),
            ({"kind": "kill", "scope": "s", "task": -1}, "must be >= 0"),
            ({"kind": "artifact-write", "count": 0}, "count must be >= 1"),
        ],
    )
    def test_invalid_entries_rejected(self, entry, match):
        with pytest.raises(ValueError, match=match):
            FaultPlan.from_mapping({"faults": [entry]})

    def test_each_fault_fires_at_most_once(self):
        plan = FaultPlan.from_mapping(
            {"faults": [{"kind": "raise", "scope": "s", "task": 0, "attempt": 0}]}
        )
        injector = plan.injector()
        assert injector.pool_fault("s", 0, 0) == "raise"
        assert injector.pool_fault("s", 0, 0) is None

    def test_corrupt_file_modes(self, tmp_path):
        path = str(tmp_path / "f.bin")
        original = b"0123456789abcdef"
        for mode in ("truncate", "bitflip"):
            with open(path, "wb") as handle:
                handle.write(original)
            corrupt_file(path, mode)
            with open(path, "rb") as handle:
                damaged = handle.read()
            assert damaged != original
            if mode == "truncate":
                assert damaged == original[: len(original) // 2]
            else:
                assert len(damaged) == len(original)


# ----------------------------------------------------------------------
# property: fault plans never change the records
# ----------------------------------------------------------------------
_VALUES = np.random.default_rng(42).uniform(-1.0, 1.0, size=600)
_CATEGORIES = np.random.default_rng(43).integers(0, 8, size=600)
_N_BYZANTINE = 150
_BASELINES: dict = {}


def _mean_route(estimator, n_shards, n_workers=None):
    protocol = DAPProtocol(DAPConfig(epsilon=1.0, estimator=estimator))
    accumulators = protocol.collect_sharded(
        _VALUES,
        ATTACK,
        _N_BYZANTINE,
        rng=np.random.default_rng(7),
        n_shards=n_shards,
        n_workers=n_workers,
        block_size=64,
    )
    result = protocol.aggregate_stats([acc.stats() for acc in accumulators])
    states = json.dumps([acc.state_dict() for acc in accumulators], sort_keys=True)
    return states, repr(result.estimate), repr(result.gamma_hat)


def _krr_route(n_shards, n_workers=None):
    dap = FrequencyDAP(epsilon=1.0, n_categories=8, estimator="emf_star")
    accumulator = dap.collect_sharded(
        _CATEGORIES,
        poisoned_categories=(0,),
        n_byzantine=_N_BYZANTINE,
        rng=np.random.default_rng(9),
        n_shards=n_shards,
        n_workers=n_workers,
        block_size=64,
    )
    return json.dumps(accumulator.state_dict(), sort_keys=True)


def _baseline(key, compute):
    if key not in _BASELINES:
        _BASELINES[key] = compute()
    return _BASELINES[key]


fault_entries = st.lists(
    st.builds(
        lambda kind, task, attempt: {
            "kind": kind,
            "scope": SHARD_POOL_LABEL,
            "task": task,
            "attempt": attempt,
        },
        st.sampled_from(["kill", "raise", "timeout"]),
        st.integers(0, 5),
        st.integers(0, 2),
    ),
    min_size=1,
    max_size=4,
)


class TestFaultPlansNeverChangeRecords:
    @given(entries=fault_entries)
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_mean_route_bit_identical_under_arbitrary_faults(self, entries):
        plan = FaultPlan.from_mapping({"faults": entries})
        for estimator in ("emf", "emf_star"):
            for n_shards in SHARD_COUNTS:
                clean = _baseline(
                    ("mean", estimator, n_shards),
                    lambda e=estimator, s=n_shards: _mean_route(e, s),
                )
                with use_fault_plan(plan), use_retry_policy(FAST):
                    faulted = _mean_route(estimator, n_shards)
                assert faulted == clean

    @given(entries=fault_entries)
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_krr_route_bit_identical_under_arbitrary_faults(self, entries):
        plan = FaultPlan.from_mapping({"faults": entries})
        for n_shards in SHARD_COUNTS:
            clean = _baseline(
                ("krr", n_shards), lambda s=n_shards: _krr_route(s)
            )
            with use_fault_plan(plan), use_retry_policy(FAST):
                assert _krr_route(n_shards) == clean

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_real_worker_kill_bit_identical_with_pool(self, n_shards):
        """Same invariant through an actual process pool and a real worker
        death (``os._exit`` in the child), not just the serial fallback."""
        plan = FaultPlan.from_mapping(
            {
                "faults": [
                    {
                        "kind": "kill",
                        "scope": SHARD_POOL_LABEL,
                        "task": min(1, n_shards - 1),
                        "attempt": 0,
                    },
                    {
                        "kind": "timeout",
                        "scope": SHARD_POOL_LABEL,
                        "task": 0,
                        "attempt": 0,
                    },
                ]
            }
        )
        clean = _baseline(
            ("mean", "emf_star", n_shards),
            lambda: _mean_route("emf_star", n_shards),
        )
        with use_fault_plan(plan) as injector, use_retry_policy(FAST):
            faulted = _mean_route("emf_star", n_shards, n_workers=2)
        assert faulted == clean
        assert injector.fired >= 1


# ----------------------------------------------------------------------
# checkpoint chain: quarantine + rollback
# ----------------------------------------------------------------------
def make_payload(next_window, digest="d1"):
    return {
        "version": CHECKPOINT_VERSION,
        "digest": digest,
        "next_window": next_window,
        "cumulative": [],
        "windows": [],
        "detector": {},
    }


class TestCheckpointChain:
    def chain(self, tmp_path, retain=3):
        return CheckpointChain(str(tmp_path / "svc.json"), retain=retain)

    def test_rotation_retains_the_newest_n(self, tmp_path):
        chain = self.chain(tmp_path, retain=3)
        for window in range(1, 6):
            chain.write(make_payload(window))
        assert [os.path.basename(p) for p in chain.existing()] == [
            "svc.json",
            "svc.json.1",
            "svc.json.2",
        ]
        ages = [
            load_checkpoint(path)["next_window"] for path in chain.existing()
        ]
        assert ages == [5, 4, 3]
        payload, quarantined = chain.load_latest("d1")
        assert payload["next_window"] == 5
        assert quarantined == []

    def test_empty_chain_loads_none(self, tmp_path):
        payload, quarantined = self.chain(tmp_path).load_latest("d1")
        assert payload is None and quarantined == []

    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corrupt_head_quarantined_and_rolled_back(self, tmp_path, mode):
        chain = self.chain(tmp_path)
        chain.write(make_payload(1))
        chain.write(make_payload(2))
        corrupt_file(chain.path, mode)
        with pytest.warns(RuntimeWarning, match="quarantined invalid checkpoint"):
            payload, quarantined = chain.load_latest("d1")
        assert payload["next_window"] == 1
        assert len(quarantined) == 1
        assert quarantined[0].endswith(QUARANTINE_SUFFIX)
        assert os.path.exists(quarantined[0])
        assert not os.path.exists(chain.path)
        assert stats.snapshot()["checkpoint_quarantined"] == 1

    def test_version_bumped_head_quarantined(self, tmp_path):
        chain = self.chain(tmp_path)
        chain.write(make_payload(1))
        bumped = make_payload(2)
        bumped["version"] = CHECKPOINT_VERSION + 1
        chain.write(bumped)
        with pytest.warns(RuntimeWarning, match="quarantined invalid checkpoint"):
            payload, quarantined = chain.load_latest("d1")
        assert payload["next_window"] == 1
        assert len(quarantined) == 1

    def test_foreign_digest_head_quarantined_when_ancestor_valid(self, tmp_path):
        chain = self.chain(tmp_path)
        chain.write(make_payload(1, digest="d1"))
        chain.write(make_payload(2, digest="OTHER"))
        with pytest.warns(RuntimeWarning, match="quarantined invalid checkpoint"):
            payload, quarantined = chain.load_latest("d1")
        assert payload["next_window"] == 1
        assert len(quarantined) == 1

    def test_foreign_digest_without_ancestor_still_raises(self, tmp_path):
        """An identity mismatch with nothing to roll back to is a
        configuration error, not a fault — silently starting fresh would
        hide that the caller pointed at another service's state."""
        chain = self.chain(tmp_path)
        chain.write(make_payload(1, digest="OTHER"))
        with pytest.raises(ValueError, match="different service configuration"):
            chain.load_latest("d1")
        assert os.path.exists(chain.path)  # not quarantined

    def test_whole_chain_corrupt_falls_back_to_fresh(self, tmp_path):
        chain = self.chain(tmp_path)
        chain.write(make_payload(1))
        chain.write(make_payload(2))
        for path in chain.existing():
            corrupt_file(path, "truncate")
        with pytest.warns(RuntimeWarning, match="quarantined invalid checkpoint"):
            payload, quarantined = chain.load_latest("d1")
        assert payload is None
        assert len(quarantined) == 2

    def test_checksum_catches_silent_mutation(self, tmp_path):
        """A mutation that keeps the JSON parseable (the failure mode the
        structural checks miss) must still be rejected at load time."""
        path = str(tmp_path / "c.json")
        write_checkpoint(path, make_payload(3))
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["next_window"] = 7  # stale checksum now lies about this
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError, match="integrity checksum"):
            load_checkpoint(path)


SERVICE = dict(
    name="resilience_svc",
    epsilon=1.0,
    epsilon_min=0.25,
    window_size=400,
    n_windows=4,
    dataset="Uniform",
    attack={"name": "bba", "poison_range": "[C/2,C]"},
    gamma=0.2,
    attack_start=0,
    seed=17,
    detector={"warmup": 2},
)


class TestServiceRecovery:
    def test_corrupt_head_rolls_back_and_replays_bit_identically(self, tmp_path):
        spec = ServiceSpec(**SERVICE)
        checkpoint = spec.default_checkpoint_path(str(tmp_path))
        clean = run_service(spec, checkpoint_path=checkpoint)
        corrupt_file(checkpoint, "bitflip")
        with pytest.warns(RuntimeWarning, match="quarantined invalid checkpoint"):
            recovered = run_service(spec, checkpoint_path=checkpoint)
        assert [r.deterministic_view() for r in recovered.windows] == [
            r.deterministic_view() for r in clean.windows
        ]
        # rolled back one window (retained ancestor was written at window 3)
        assert recovered.resumed_from == spec.n_windows - 1
        assert recovered.resilience.get("checkpoint_quarantined") == 1

    def test_injected_checkpoint_corruption_is_output_invisible(self, tmp_path):
        spec = ServiceSpec(**SERVICE)
        clean = run_service(
            spec, checkpoint_path=spec.default_checkpoint_path(str(tmp_path / "a"))
        )
        plan = FaultPlan.from_mapping(
            {"faults": [{"kind": "checkpoint", "window": 1, "mode": "truncate"}]}
        )
        with use_fault_plan(plan) as injector:
            faulted = run_service(
                spec,
                checkpoint_path=spec.default_checkpoint_path(str(tmp_path / "b")),
            )
        assert injector.fired == 1
        assert [r.deterministic_view() for r in faulted.windows] == [
            r.deterministic_view() for r in clean.windows
        ]
        assert faulted.resilience.get("injected_faults") == 1


# ----------------------------------------------------------------------
# store atomicity under SIGKILL
# ----------------------------------------------------------------------
def _records():
    return [
        SweepRecord(
            point={"epsilon": 1.0}, scheme="S", mse=0.5, bias=0.1, n_trials=2
        )
    ]


def _die_mid_write(path):
    """Child target: start an artifact write, then SIGKILL mid-serialise."""
    import repro.engine.store as store_module

    def dying_dump(payload, handle, **kwargs):
        handle.write('{"format": "repro.engine.run/v1", "meta": {')
        handle.flush()
        os.kill(os.getpid(), signal.SIGKILL)

    store_module.json.dump = dying_dump
    store_module.save_run(path, _records(), point_indices=[0])


class TestStoreAtomicity:
    def test_sigkill_mid_write_keeps_previous_artifact(self, tmp_path):
        path = str(tmp_path / "run.json")
        save_run(path, _records(), point_indices=[0], meta={"fingerprint": {}})
        before = load_run(path)

        context = multiprocessing.get_context("fork")
        child = context.Process(target=_die_mid_write, args=(path,))
        child.start()
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL

        after = load_run(path)  # resume path: artifact must still parse
        assert after.rows == before.rows
        assert after.meta == before.meta

    def test_injected_artifact_write_fault_is_retried(self, tmp_path):
        path = str(tmp_path / "run.json")
        plan = FaultPlan.from_mapping({"faults": [{"kind": "artifact-write"}]})
        with use_fault_plan(plan) as injector, use_retry_policy(FAST):
            retry_call(
                lambda: save_run(path, _records(), point_indices=[0]),
                label="engine.store",
                event="artifact_write_retries",
            )
        assert injector.fired == 1
        assert stats.snapshot()["artifact_write_retries"] == 1
        assert load_run(path).rows  # the retried write landed
