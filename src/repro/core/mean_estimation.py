"""Poison-corrected mean estimation (Equations 12-13).

Once the collector knows (estimates of) the Byzantine proportion and the
poison-value mean, the normal users' mean follows by removing the attackers'
aggregate contribution from the report sum:

``M_tilde = (sum(reports) - m_hat * M_poison) / (N - m_hat)``

where ``m_hat = gamma_hat * N``.  Because PM reports are unbiased estimates of
the inputs, ``M_tilde`` is (approximately) unbiased for the normal users'
mean.  The estimate is finally clipped into the mechanism's input domain — a
free post-processing step.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_fraction


def plain_mean(reports: np.ndarray) -> float:
    """The undefended estimator: average every report (the Ostrich rule)."""
    reports = np.asarray(reports, dtype=float)
    if reports.size == 0:
        raise ValueError("cannot estimate a mean from zero reports")
    return float(reports.mean())


def corrected_mean_from_stats(
    report_sum: float,
    n_reports: int,
    gamma_hat: float,
    poison_mean: float,
    input_domain: tuple[float, float] = (-1.0, 1.0),
    clip: bool = True,
) -> float:
    """Equation 12/13 on sufficient statistics (report sum and count).

    This is the streaming form of :func:`corrected_mean`: the estimate only
    ever depends on the report *sum* and *count*, so the raw reports never
    need to be materialised.

    Parameters
    ----------
    report_sum, n_reports:
        Sum and count of all reports of the batch/group being estimated.
    gamma_hat:
        Estimated fraction of poison reports in the batch.
    poison_mean:
        Estimated mean of the poison values (``M_alpha``/``M_beta``).
    input_domain:
        Domain to clip the final estimate into.
    clip:
        Disable to obtain the raw, unclipped corrected mean.
    """
    n = int(n_reports)
    if n <= 0:
        raise ValueError("cannot estimate a mean from zero reports")
    report_sum = float(report_sum)
    gamma_hat = check_fraction(gamma_hat, "gamma_hat")

    m_hat = gamma_hat * n
    denominator = n - m_hat
    if denominator <= 0:
        # the probe claims (almost) everyone is Byzantine; fall back to the
        # clipped plain mean rather than dividing by zero
        estimate = report_sum / n
    else:
        estimate = (report_sum - m_hat * poison_mean) / denominator
    if clip:
        low, high = input_domain
        estimate = float(np.clip(estimate, low, high))
    return float(estimate)


def corrected_mean(
    reports: np.ndarray,
    gamma_hat: float,
    poison_mean: float,
    input_domain: tuple[float, float] = (-1.0, 1.0),
    clip: bool = True,
) -> float:
    """Equation 12/13: subtract the estimated collective poison contribution.

    Array convenience wrapper around :func:`corrected_mean_from_stats`; see
    that function for the parameter semantics.
    """
    reports = np.asarray(reports, dtype=float)
    if reports.size == 0:
        raise ValueError("cannot estimate a mean from zero reports")
    return corrected_mean_from_stats(
        float(reports.sum()),
        reports.size,
        gamma_hat,
        poison_mean,
        input_domain=input_domain,
        clip=clip,
    )


__all__ = ["plain_mean", "corrected_mean", "corrected_mean_from_stats"]
