"""The paper's primary contribution: EMF probing and the DAP protocol.

Layered bottom-up:

* :mod:`repro.core.transform` — the transform matrix ``M`` of Figure 2, built
  from any numerical mechanism's analytic transition probabilities.
* :mod:`repro.core.emf` — the Expectation-Maximization Filter (Algorithm 2).
* :mod:`repro.core.emf_star` / :mod:`repro.core.cemf_star` — the EMF* and
  CEMF* post-processing schemes (Algorithm 4, Theorems 4-5).
* :mod:`repro.core.probing` — poisoned-side probing (Algorithm 3).
* :mod:`repro.core.features` — Byzantine feature estimation (population share,
  side, poison histogram and poison mean).
* :mod:`repro.core.initialization` — the pessimistic mean ``O'`` (Theorem 2).
* :mod:`repro.core.mean_estimation` — poison-corrected mean estimation
  (Equations 12-13).
* :mod:`repro.core.baseline_protocol` — the two-budget baseline protocol
  (Section IV).
* :mod:`repro.core.aggregation` — optimal inter-group aggregation
  (Algorithm 5, Theorem 6).
* :mod:`repro.core.dap` — the full multi-group Differential Aggregation
  Protocol (Section V).
* :mod:`repro.core.frequency` — the categorical / frequency-estimation
  extension (Section V-D).
* :mod:`repro.core.sketch_frequency` — the count-sketch high-cardinality
  frequency route (heavy-hitter probing over 10^5–10^6-category domains).
"""

from repro.core.transform import TransformMatrix, build_transform_matrix, default_bucket_counts
from repro.core.emf import EMFResult, run_emf
from repro.core.emf_star import run_emf_star
from repro.core.cemf_star import run_cemf_star, suppression_mask
from repro.core.probing import SideProbeResult, probe_poisoned_side
from repro.core.features import ByzantineFeatures, estimate_byzantine_features
from repro.core.initialization import pessimistic_mean
from repro.core.mean_estimation import (
    corrected_mean,
    corrected_mean_from_stats,
    plain_mean,
)
from repro.core.baseline_protocol import BaselineProtocol, BaselineResult
from repro.core.aggregation import aggregation_weights, aggregate_means, worst_case_group_variance
from repro.core.dap import DAPProtocol, DAPConfig, DAPResult, GroupCollection, GroupEstimate
from repro.core.frequency import FrequencyDAP, FrequencyDAPResult
from repro.core.sketch_frequency import SketchFrequencyDAP, SketchFrequencyDAPResult

__all__ = [
    "TransformMatrix",
    "build_transform_matrix",
    "default_bucket_counts",
    "EMFResult",
    "run_emf",
    "run_emf_star",
    "run_cemf_star",
    "suppression_mask",
    "SideProbeResult",
    "probe_poisoned_side",
    "ByzantineFeatures",
    "estimate_byzantine_features",
    "pessimistic_mean",
    "corrected_mean",
    "corrected_mean_from_stats",
    "plain_mean",
    "BaselineProtocol",
    "BaselineResult",
    "aggregation_weights",
    "aggregate_means",
    "worst_case_group_variance",
    "DAPProtocol",
    "DAPConfig",
    "DAPResult",
    "GroupCollection",
    "GroupEstimate",
    "FrequencyDAP",
    "FrequencyDAPResult",
    "SketchFrequencyDAP",
    "SketchFrequencyDAPResult",
]
