"""Hypothesis property tests on the library's core invariants.

These complement the per-module property tests with cross-cutting invariants:
LDP guarantees, EM mass conservation, protocol output ranges and the
equivalence invariant of Theorem 1.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks import BiasedByzantineAttack, GeneralByzantineAttack, PoisonRange
from repro.attacks.reduction import reduce_gba_to_bba, total_deviation
from repro.collect import (
    CategoryCountAccumulator,
    ExactSum,
    GroupAccumulator,
    HistogramAccumulator,
    chunk_array,
)
from repro.utils.discretization import BucketGrid
from repro.core.aggregation import aggregation_weights
from repro.core.emf import run_emf
from repro.core.emf_star import run_emf_star
from repro.core.mean_estimation import corrected_mean, corrected_mean_from_stats
from repro.core.transform import build_transform_matrix
from repro.datasets.synthetic import uniform_dataset
from repro.ldp import DuchiMechanism, KRandomizedResponse, PiecewiseMechanism
from repro.simulation.population import (
    build_population,
    population_counts,
    stream_population,
)

COMMON_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestLDPGuarantees:
    @given(
        epsilon=st.floats(0.2, 3.0),
        x1=st.floats(-1, 1),
        x2=st.floats(-1, 1),
        lo=st.floats(-0.9, 0.8),
        width=st.floats(0.05, 1.0),
    )
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_pm_interval_probabilities_respect_epsilon(self, epsilon, x1, x2, lo, width):
        """For any output interval, probabilities under two inputs differ by
        at most e^epsilon — the definition of epsilon-LDP."""
        mech = PiecewiseMechanism(epsilon)
        hi = lo + width
        p1 = mech.interval_probability(x1, lo, hi)
        p2 = mech.interval_probability(x2, lo, hi)
        if p1 > 0 and p2 > 0:
            assert p1 / p2 <= math.exp(epsilon) * (1 + 1e-9)
            assert p2 / p1 <= math.exp(epsilon) * (1 + 1e-9)

    @given(epsilon=st.floats(0.2, 3.0), k=st.integers(2, 10))
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_krr_probability_ratio_is_exactly_epsilon(self, epsilon, k):
        mech = KRandomizedResponse(epsilon, k)
        assert mech.p / mech.q == pytest.approx(math.exp(epsilon))

    @given(epsilon=st.floats(0.2, 3.0))
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_duchi_output_probabilities_respect_epsilon(self, epsilon):
        mech = DuchiMechanism(epsilon)
        p_max = float(mech.positive_probability(np.array([1.0]))[0])
        p_min = float(mech.positive_probability(np.array([-1.0]))[0])
        assert p_max / p_min <= math.exp(epsilon) * (1 + 1e-9)


class TestEMFInvariants:
    @given(
        epsilon=st.floats(0.2, 2.0),
        gamma=st.floats(0.0, 0.45),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=15, **COMMON_SETTINGS)
    def test_emf_output_is_probability_vector(self, epsilon, gamma, seed):
        rng = np.random.default_rng(seed)
        mech = PiecewiseMechanism(epsilon)
        n_normal, n_total = 1_500, 2_000
        n_byz = int(round(n_total * gamma))
        values = rng.uniform(-0.8, 0.8, n_normal)
        reports = [mech.perturb(values, rng)]
        if n_byz:
            reports.append(
                BiasedByzantineAttack(PoisonRange.of_c(0.5, 1.0)).poison_reports(
                    n_byz, mech, 0.0, rng
                ).reports
            )
        reports = np.concatenate(reports)
        transform = build_transform_matrix(mech, 8, 24, "right", 0.0)
        result = run_emf(transform, reports=reports, epsilon=epsilon)
        total = result.normal_histogram.sum() + result.poison_histogram.sum()
        assert total == pytest.approx(1.0, abs=1e-6)
        assert 0.0 <= result.gamma_hat <= 1.0
        lo, hi = mech.output_domain
        assert lo <= result.poison_mean <= hi

    @given(gamma=st.floats(0.0, 0.9), seed=st.integers(0, 500))
    @settings(max_examples=15, **COMMON_SETTINGS)
    def test_emf_star_respects_any_gamma_constraint(self, gamma, seed):
        rng = np.random.default_rng(seed)
        mech = PiecewiseMechanism(1.0)
        reports = mech.perturb(rng.uniform(-1, 1, 1_500), rng)
        transform = build_transform_matrix(mech, 8, 24, "right", 0.0)
        result = run_emf_star(transform, gamma_hat=gamma, reports=reports, epsilon=1.0)
        assert result.gamma_hat == pytest.approx(gamma, abs=1e-6)


class TestEstimatorInvariants:
    @given(
        gamma=st.floats(0, 0.9),
        poison_mean=st.floats(-5, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_corrected_mean_always_clipped(self, gamma, poison_mean, seed):
        rng = np.random.default_rng(seed)
        reports = rng.uniform(-3, 3, 200)
        estimate = corrected_mean(reports, gamma, poison_mean)
        assert -1.0 <= estimate <= 1.0

    @given(
        epsilons=st.lists(st.floats(0.2, 3.0), min_size=1, max_size=6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_aggregation_weights_are_distribution(self, epsilons, seed):
        rng = np.random.default_rng(seed)
        counts = rng.uniform(0, 200, len(epsilons))
        weights = aggregation_weights(epsilons, counts)
        assert weights.min() >= 0
        assert weights.sum() == pytest.approx(1.0, abs=1e-9)


class TestPopulationSplitInvariants:
    """Byzantine/normal splits at extreme gamma and tiny populations."""

    @given(n_users=st.integers(1, 5_000), gamma=st.floats(0.0, 1.0))
    @settings(max_examples=200, **COMMON_SETTINGS)
    def test_counts_always_sum_to_n_or_reject(self, n_users, gamma):
        try:
            n_normal, n_byzantine = population_counts(n_users, gamma)
        except ValueError:
            # only legitimate rejection: rounding leaves no normal user
            assert int(round(n_users * gamma)) >= n_users
            return
        assert n_normal + n_byzantine == n_users
        assert n_normal >= 1
        assert n_byzantine == int(round(n_users * gamma))

    @given(n_users=st.integers(1, 2_000))
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_gamma_zero_means_no_byzantine(self, n_users):
        assert population_counts(n_users, 0.0) == (n_users, 0)

    @given(n_users=st.integers(2, 2_000))
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_near_one_gamma_keeps_at_least_one_normal_or_rejects(self, n_users):
        with pytest.raises(ValueError, match="no normal users"):
            population_counts(n_users, 1.0)
        # the largest gamma that still rounds to n-1 Byzantine users works
        n_normal, n_byzantine = population_counts(n_users, (n_users - 1) / n_users)
        assert n_normal >= 1 and n_normal + n_byzantine == n_users

    @given(
        n_users=st.integers(1, 1_500),
        gamma=st.floats(0.0, 0.999),
        chunk_size=st.integers(1, 2_048),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=80, **COMMON_SETTINGS)
    def test_chunked_generator_rounds_like_in_memory(
        self, n_users, gamma, chunk_size, seed
    ):
        dataset = uniform_dataset(n_samples=200, rng=0)
        try:
            population = build_population(dataset, n_users, gamma, rng=seed)
        except ValueError:
            with pytest.raises(ValueError):
                stream_population(dataset, n_users, gamma, rng=seed)
            return
        stream = stream_population(
            dataset, n_users, gamma, rng=seed, chunk_size=chunk_size
        )
        assert stream.n_normal == population.n_normal
        assert stream.n_byzantine == population.n_byzantine
        values = np.concatenate(list(stream.chunks())) if stream.n_normal else []
        assert len(values) == stream.n_normal
        assert stream.true_mean == pytest.approx(np.mean(values))


class TestStreamingSumInvariants:
    @given(
        seed=st.integers(0, 1_000),
        n=st.integers(1, 3_000),
        chunk_a=st.integers(1, 500),
        chunk_b=st.integers(1, 500),
        scale=st.floats(1e-3, 1e6),
    )
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_exact_sum_is_chunking_invariant(self, seed, n, chunk_a, chunk_b, scale):
        values = np.random.default_rng(seed).normal(scale=scale, size=n)
        sums = set()
        for chunk_size in (chunk_a, chunk_b, n, 10**9):
            acc = ExactSum()
            for chunk in chunk_array(values, chunk_size):
                acc.add(chunk)
            sums.add(acc.value)
        assert len(sums) == 1

    @given(
        gamma=st.floats(0, 0.9),
        poison_mean=st.floats(-5, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_corrected_mean_stats_form_matches_array_form(
        self, gamma, poison_mean, seed
    ):
        reports = np.random.default_rng(seed).uniform(-3, 3, 200)
        assert corrected_mean_from_stats(
            float(reports.sum()), reports.size, gamma, poison_mean
        ) == corrected_mean(reports, gamma, poison_mean)


def _random_partition(rng: np.random.Generator, n: int, n_parts: int):
    """Random (possibly empty-part) partition of ``range(n)`` into slices."""
    cuts = np.sort(rng.integers(0, n + 1, size=max(0, n_parts - 1)))
    bounds = np.concatenate([[0], cuts, [n]])
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]


class TestShardMergeInvariants:
    """Any partition of a report stream, accumulated per shard and merged in
    any order — with a snapshot round-trip in between — is bit-identical to
    one-shot accumulation, for all four accumulators."""

    @given(
        seed=st.integers(0, 1_000),
        n=st.integers(1, 2_000),
        n_parts=st.integers(1, 12),
        scale=st.floats(1e-3, 1e6),
        snapshot=st.booleans(),
    )
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_exact_sum_partition_merge_any_order(
        self, seed, n, n_parts, scale, snapshot
    ):
        rng = np.random.default_rng(seed)
        values = rng.normal(scale=scale, size=n)
        reference = ExactSum().add(values).value
        parts = [
            ExactSum().add(values[a:b])
            for a, b in _random_partition(rng, n, n_parts)
        ]
        if snapshot:
            parts = [ExactSum.from_state(part.state_dict()) for part in parts]
        rng.shuffle(parts)
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        assert merged.value == reference

    @given(
        seed=st.integers(0, 1_000),
        n=st.integers(1, 1_500),
        n_parts=st.integers(1, 10),
        snapshot=st.booleans(),
    )
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_histogram_partition_merge_any_order(self, seed, n, n_parts, snapshot):
        rng = np.random.default_rng(seed)
        grid = BucketGrid(-2.0, 2.0, 23)
        values = rng.uniform(-2.5, 2.5, n)
        reference = HistogramAccumulator(grid, track_sum=True).update(values)
        parts = [
            HistogramAccumulator(grid, track_sum=True).update(values[a:b])
            for a, b in _random_partition(rng, n, n_parts)
        ]
        if snapshot:
            parts = [HistogramAccumulator.from_state(p.state_dict()) for p in parts]
        rng.shuffle(parts)
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        np.testing.assert_array_equal(merged.counts, reference.counts)
        assert merged.sum == reference.sum
        assert merged.n_values == reference.n_values

    @given(
        seed=st.integers(0, 1_000),
        n=st.integers(1, 1_500),
        n_parts=st.integers(1, 10),
        k=st.integers(2, 9),
        snapshot=st.booleans(),
    )
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_category_counts_partition_merge_any_order(
        self, seed, n, n_parts, k, snapshot
    ):
        rng = np.random.default_rng(seed)
        reports = rng.integers(0, k, n)
        reference = CategoryCountAccumulator(k).update(reports)
        parts = [
            CategoryCountAccumulator(k).update(reports[a:b])
            for a, b in _random_partition(rng, n, n_parts)
        ]
        if snapshot:
            parts = [
                CategoryCountAccumulator.from_state(p.state_dict()) for p in parts
            ]
        rng.shuffle(parts)
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        np.testing.assert_array_equal(merged.counts, reference.counts)

    @given(
        seed=st.integers(0, 1_000),
        n=st.integers(1, 1_500),
        n_parts=st.integers(1, 10),
        snapshot=st.booleans(),
    )
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_group_accumulator_partition_merge_any_order(
        self, seed, n, n_parts, snapshot
    ):
        rng = np.random.default_rng(seed)
        grid = BucketGrid(-3.0, 3.0, 17)
        reports = rng.uniform(-3, 3, n)
        reference = GroupAccumulator(
            0.5, grid, n_expected_reports=n, n_users=n
        ).update(reports).stats()
        partition = _random_partition(rng, n, n_parts)
        parts = [
            GroupAccumulator(0.5, grid, n_users=b - a).update(reports[a:b])
            for a, b in partition
        ]
        if snapshot:
            parts = [GroupAccumulator.from_state(p.state_dict()) for p in parts]
        rng.shuffle(parts)
        merged = GroupAccumulator(0.5, grid, n_expected_reports=n)
        for part in parts:
            merged.merge(part)
        stats = merged.stats()
        assert stats.report_sum == reference.report_sum
        assert stats.n_users == reference.n_users
        np.testing.assert_array_equal(stats.output_counts, reference.output_counts)

    @given(seed=st.integers(0, 500), n=st.integers(0, 500), scale=st.floats(1e-3, 1e9))
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_exact_sum_snapshot_round_trip_preserves_value(self, seed, n, scale):
        values = np.random.default_rng(seed).normal(scale=scale, size=n)
        acc = ExactSum().add(values)
        restored = ExactSum.from_state(acc.state_dict())
        assert restored.value == acc.value
        # a restored accumulator keeps accumulating identically
        more = np.random.default_rng(seed + 1).normal(scale=scale, size=16)
        assert restored.add(more).value == ExactSum().add(values).add(more).value


class TestTheorem1Invariant:
    @given(
        n_left=st.integers(0, 30),
        n_right=st.integers(0, 30),
        seed=st.integers(0, 1000),
        epsilon=st.floats(0.3, 2.0),
    )
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_any_gba_reduces_to_one_sided_attack(self, n_left, n_right, seed, epsilon):
        rng = np.random.default_rng(seed)
        mech = PiecewiseMechanism(epsilon)
        lo, hi = mech.output_domain
        reports = np.concatenate(
            [rng.uniform(lo, 0, n_left), rng.uniform(0, hi, n_right)]
        )
        reduced = reduce_gba_to_bba(reports, 0.0, lo, hi)
        assert total_deviation(reduced, 0.0) == pytest.approx(
            total_deviation(reports, 0.0), abs=1e-6 * max(1, abs(hi))
        )
        assert not (np.any(reduced > 1e-9) and np.any(reduced < -1e-9))
        if reduced.size:
            assert reduced.min() >= lo - 1e-9 and reduced.max() <= hi + 1e-9
