"""Figure 4 — normalised frequency histograms and true means of the datasets.

The paper plots the normalised histogram of each evaluation dataset and quotes
its true mean ``O`` (Beta(2,5): -0.3994, Beta(5,2): 0.4136, Taxi: 0.1190,
Retirement: -0.6240).  This driver regenerates the histogram and mean for each
dataset so the report can state how closely the offline substitutes match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.datasets import load_dataset
from repro.datasets.base import NumericalDataset
from repro.engine import ExperimentSpec, run_experiment
from repro.experiments.defaults import ExperimentScale, QUICK_SCALE
from repro.utils.rng import RngLike, ensure_rng

#: the paper's reported normalised means, for side-by-side comparison
PAPER_MEANS = {
    "Beta(2,5)": -0.3994,
    "Beta(5,2)": 0.4136,
    "Taxi": 0.1190,
    "Retirement": -0.6240,
}


@dataclass
class Fig4Record:
    """Summary of one dataset's normalised distribution."""

    dataset: str
    n_samples: int
    mean: float
    paper_mean: float
    variance: float
    histogram: np.ndarray


@dataclass
class Fig4Spec(ExperimentSpec):
    """Point-granular spec: one summary per (pre-loaded) dataset."""

    datasets: Dict[str, NumericalDataset] = field(default_factory=dict)
    n_buckets: int = 40

    def evaluate_point(self, point: Mapping, trial_seeds) -> Sequence[Fig4Record]:
        name = point["dataset"]
        dataset = self.datasets[name]
        histogram, _grid = dataset.histogram(self.n_buckets)
        return [
            Fig4Record(
                dataset=name,
                n_samples=dataset.n,
                mean=dataset.true_mean,
                paper_mean=PAPER_MEANS.get(name, float("nan")),
                variance=dataset.true_variance,
                histogram=histogram,
            )
        ]


def run_fig4(
    scale: ExperimentScale = QUICK_SCALE,
    datasets: Sequence[str] = tuple(PAPER_MEANS),
    n_buckets: int = 40,
    rng: RngLike = None,
    n_workers: int | str | None = None,
) -> List[Fig4Record]:
    """Regenerate the Figure 4 dataset summaries."""
    rng = ensure_rng(rng)
    loaded = {
        name: load_dataset(name, n_samples=scale.n_users, rng=rng) for name in datasets
    }
    spec = Fig4Spec(
        name="fig4",
        description="Figure 4: dataset histograms and true means",
        points=[{"dataset": name} for name in datasets],
        n_users=scale.n_users,
        n_trials=1,
        datasets=loaded,
        n_buckets=n_buckets,
    )
    return run_experiment(spec, rng=rng, n_workers=n_workers)


def format_fig4(records: Sequence[Fig4Record]) -> str:
    """Render dataset means (ours vs the paper's) plus a coarse histogram."""
    lines = [
        "dataset       n          mean       paper-mean  variance",
    ]
    for record in records:
        lines.append(
            f"{record.dataset:<13} {record.n_samples:<10} {record.mean:>9.4f}  "
            f"{record.paper_mean:>9.4f}  {record.variance:>9.4f}"
        )
    return "\n".join(lines)


__all__ = ["Fig4Record", "Fig4Spec", "run_fig4", "format_fig4", "PAPER_MEANS"]
