"""Probe benchmark: batched hypothesis EM and vectorized defense kernels.

Three sections, all compared against their seed-equivalent baselines:

* **greedy frequency probing** — ``FrequencyDAP.probe_poisoned_categories``
  on one k-RR collection round per category-grid size, once with
  ``probe_strategy="cold"`` (one cold-start EM solve per candidate per
  greedy round — the seed search) and once with ``"batched"`` (screened,
  warm-started, gap-certified batched EM).  The batched row records whether
  its selections match the cold row bit for bit (they must).
* **isolation-forest scoring** — ``IsolationForest.scores`` (array-encoded
  interval trees) vs ``scores_loop`` (per-user recursion) on the same
  fitted forest, with a bit-identity check.
* **1-D k-means** — ``kmeans_1d`` (sorted-centre ``searchsorted``
  assignment) vs an inline replica of the seed implementation (full
  ``(n, k)`` distance matrix per iteration), with a bit-identity check.

The JSON payload has the same shape as ``BENCH_shard.json`` (one
``results`` list of ``{mode, ..., ok, wall_time_s}`` rows), so the
benchmark trajectories are directly comparable.  Exit status is nonzero if
any equivalence check fails, which is what the CI ``probe-smoke`` job
asserts on its quick grid.

Usage::

    PYTHONPATH=src python benchmarks/bench_probe.py --out BENCH_probe.json
    PYTHONPATH=src python benchmarks/bench_probe.py --quick --out /tmp/p.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

EPSILON = 1.0
SEED = 7
GAMMA = 0.25
N_POISONED = 3
#: greedy-probe acceptance threshold.  The library default (2.0) is tuned
#: for the paper's ~10^4-user rounds; at the 10^5–10^6-user scale benched
#: here the log-likelihood gains of *noise* categories reach that level, so
#: a borderline gain lands within the EM iteration cap's resolution and the
#: stopping decision becomes an artifact of how far the solver happened to
#: iterate.  20.0 keeps the decision margins orders of magnitude above both
#: solvers' certified accuracy at every benchmarked scale.
MIN_LIKELIHOOD_GAIN = 20.0
DEFAULT_CATEGORIES = (16, 32, 64)
DEFAULT_PROBE_USERS = 500_000
DEFAULT_DEFENSE_SIZES = (100_000, 1_000_000)
QUICK_CATEGORIES = (8, 12)
QUICK_PROBE_USERS = 50_000
QUICK_DEFENSE_SIZES = (20_000,)
FOREST_FIT_SAMPLES = 5_000


def _timed(function, *args, **kwargs):
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def _timed_best(repeats, function, *args, **kwargs):
    """Best-of-``repeats`` wall time (the runs are deterministic)."""
    best = None
    for _ in range(repeats):
        result, elapsed = _timed(function, *args, **kwargs)
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def bench_probe(categories, n_users):
    """Greedy category probing: cold vs batched on identical counts."""
    from repro.core.frequency import FrequencyDAP

    rows = []
    for n_categories in categories:
        rng = np.random.default_rng(SEED)
        # a mildly skewed categorical population plus N_POISONED poisoned
        # categories at overall fraction GAMMA
        probabilities = 1.0 / (1.0 + np.arange(n_categories))
        probabilities /= probabilities.sum()
        n_byzantine = int(round(n_users * GAMMA))
        normal = rng.choice(n_categories, size=n_users - n_byzantine, p=probabilities)
        targets = tuple(
            rng.choice(n_categories, size=N_POISONED, replace=False).tolist()
        )

        cold = FrequencyDAP(
            EPSILON,
            n_categories,
            min_likelihood_gain=MIN_LIKELIHOOD_GAIN,
            probe_strategy="cold",
        )
        batched = FrequencyDAP(
            EPSILON,
            n_categories,
            min_likelihood_gain=MIN_LIKELIHOOD_GAIN,
            probe_strategy="batched",
        )
        reports = cold.collect(normal, targets, n_byzantine, rng=rng)
        counts = np.bincount(reports, minlength=n_categories).astype(float)

        (cold_set, _), cold_s = _timed_best(
            2, cold.probe_poisoned_categories, counts
        )
        (batched_set, _), batched_s = _timed_best(
            2, batched.probe_poisoned_categories, counts
        )
        match = cold_set == batched_set
        base = {
            "n_categories": n_categories,
            "n_users": n_users,
            "true_poisoned": sorted(targets),
        }
        rows.append(
            {
                "mode": "probe-cold",
                **base,
                "ok": True,
                "wall_time_s": round(cold_s, 3),
                "poisoned_categories": cold_set,
            }
        )
        rows.append(
            {
                "mode": "probe-batched",
                **base,
                "ok": bool(match),
                "wall_time_s": round(batched_s, 3),
                "poisoned_categories": batched_set,
                "selection_match": bool(match),
                "speedup_vs_cold": round(cold_s / max(batched_s, 1e-9), 1),
            }
        )
        print(
            f"[bench_probe] probing k={n_categories}: cold {cold_s:.2f}s, "
            f"batched {batched_s:.2f}s ({cold_s / max(batched_s, 1e-9):.1f}x), "
            f"selections {'match' if match else 'DIVERGE'}",
            flush=True,
        )
    return rows


def bench_isolation_forest(sizes):
    """Isolation-forest scoring: per-user recursion vs array-encoded trees."""
    from repro.defenses.isolation_forest import IsolationForest

    rng = np.random.default_rng(SEED)
    train = np.concatenate(
        [rng.normal(0.0, 1.0, FOREST_FIT_SAMPLES), rng.uniform(4.0, 8.0, 300)]
    )
    forest = IsolationForest(n_trees=50, subsample_size=256, rng=SEED).fit(train)

    rows = []
    for n_users in sizes:
        values = rng.normal(0.0, 2.0, n_users)
        loop_scores, loop_s = _timed(forest.scores_loop, values)
        vector_scores, vector_s = _timed(forest.scores, values)
        identical = bool(np.array_equal(loop_scores, vector_scores))
        rows.append(
            {
                "mode": "iforest-loop",
                "n_users": n_users,
                "ok": True,
                "wall_time_s": round(loop_s, 3),
            }
        )
        rows.append(
            {
                "mode": "iforest-vectorized",
                "n_users": n_users,
                "ok": identical,
                "wall_time_s": round(vector_s, 3),
                "bit_identical": identical,
                "speedup_vs_loop": round(loop_s / max(vector_s, 1e-9), 1),
            }
        )
        print(
            f"[bench_probe] iforest n={n_users:,}: loop {loop_s:.1f}s, "
            f"vectorized {vector_s:.2f}s ({loop_s / max(vector_s, 1e-9):.0f}x), "
            f"{'bit-identical' if identical else 'DIVERGE'}",
            flush=True,
        )
    return rows


def _kmeans_seed(values, n_clusters, max_iter, seed):
    """Inline replica of the seed kmeans_1d (distance matrix + argmin)."""
    rng = np.random.default_rng(seed)
    values = np.asarray(values, dtype=float).ravel()
    n_clusters = min(n_clusters, values.size)
    quantiles = np.linspace(0.0, 1.0, n_clusters + 2)[1:-1]
    centers = np.quantile(values, quantiles)
    labels = np.zeros(values.size, dtype=int)
    for _ in range(max_iter):
        distances = np.abs(values[:, None] - centers[None, :])
        new_labels = distances.argmin(axis=1)
        new_centers = centers.copy()
        for cluster in range(n_clusters):
            members = values[new_labels == cluster]
            if members.size:
                new_centers[cluster] = members.mean()
            else:
                new_centers[cluster] = values[rng.integers(0, values.size)]
        if np.array_equal(new_labels, labels) and np.allclose(new_centers, centers):
            labels, centers = new_labels, new_centers
            break
        labels, centers = new_labels, new_centers
    return labels, centers


def bench_kmeans(sizes, cluster_counts=(2, 8)):
    """1-D k-means: seed distance matrix vs searchsorted assignment.

    ``k = 2`` is the defence's configuration.  At larger ``k`` the
    ``O(n log k)`` assignment beats the ``O(n k)`` matrix per iteration, but
    the (bit-identity-constrained) per-cluster means loop both paths share
    dominates total Lloyd time, so end-to-end gains there stay modest.
    """
    from repro.defenses.kmeans import kmeans_1d

    rows = []
    for n_values in sizes:
        for n_clusters in cluster_counts:
            rng = np.random.default_rng(SEED)
            values = np.concatenate(
                [
                    rng.normal(-1.0, 0.3, int(n_values * 0.8)),
                    rng.normal(2.0, 0.4, n_values - int(n_values * 0.8)),
                ]
            )
            (brute_labels, brute_centers), brute_s = _timed(
                _kmeans_seed, values, n_clusters, 100, SEED
            )
            (fast_labels, fast_centers), fast_s = _timed(
                kmeans_1d, values, n_clusters, 100, SEED
            )
            identical = bool(
                np.array_equal(brute_labels, fast_labels)
                and np.array_equal(brute_centers, fast_centers)
            )
            base = {"n_values": n_values, "n_clusters": n_clusters}
            rows.append(
                {
                    "mode": "kmeans-brute",
                    **base,
                    "ok": True,
                    "wall_time_s": round(brute_s, 3),
                }
            )
            rows.append(
                {
                    "mode": "kmeans-searchsorted",
                    **base,
                    "ok": identical,
                    "wall_time_s": round(fast_s, 3),
                    "bit_identical": identical,
                    "speedup_vs_brute": round(brute_s / max(fast_s, 1e-9), 1),
                }
            )
            print(
                f"[bench_probe] kmeans n={n_values:,} k={n_clusters}: brute "
                f"{brute_s:.2f}s, searchsorted {fast_s:.2f}s "
                f"({brute_s / max(fast_s, 1e-9):.1f}x), "
                f"{'bit-identical' if identical else 'DIVERGE'}",
                flush=True,
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--categories", type=int, nargs="+", default=list(DEFAULT_CATEGORIES)
    )
    parser.add_argument("--probe-users", type=int, default=DEFAULT_PROBE_USERS)
    parser.add_argument(
        "--defense-sizes", type=int, nargs="+", default=list(DEFAULT_DEFENSE_SIZES)
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grids for CI smoke (overrides the size arguments)",
    )
    parser.add_argument("--out", default="BENCH_probe.json")
    args = parser.parse_args(argv)

    if args.quick:
        args.categories = list(QUICK_CATEGORIES)
        args.probe_users = QUICK_PROBE_USERS
        args.defense_sizes = list(QUICK_DEFENSE_SIZES)

    results = []
    results += bench_probe(args.categories, args.probe_users)
    results += bench_isolation_forest(args.defense_sizes)
    results += bench_kmeans(args.defense_sizes)

    payload = {
        "benchmark": "batched hypothesis EM + vectorized defense kernels",
        "config": {
            "epsilon": EPSILON,
            "gamma": GAMMA,
            "n_poisoned": N_POISONED,
            "min_likelihood_gain": MIN_LIKELIHOOD_GAIN,
            "categories": list(args.categories),
            "probe_users": args.probe_users,
            "defense_sizes": list(args.defense_sizes),
            "seed": SEED,
            "quick": bool(args.quick),
        },
        "results": results,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"[bench_probe] wrote {args.out}")

    failures = [row for row in results if not row.get("ok")]
    if failures:
        print(
            f"[bench_probe] FAILED: {len(failures)} rows diverged from the "
            f"baseline: {[row['mode'] for row in failures]}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
