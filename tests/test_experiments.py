"""Smoke + shape tests for every experiment driver (Table I, Figures 4-10).

These run each driver at a tiny scale and check the structural properties the
paper's evaluation relies on (who wins, in which direction quantities move) —
not absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_fig9_defense_comparison,
    format_fig9_frequency,
    format_fig10,
    format_table1,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9_defense_comparison,
    run_fig9_frequency,
    run_fig10,
    run_table1,
)
from repro.experiments.fig8 import run_fig8_gamma, run_fig8_mse

TINY = ExperimentScale(n_users=4_000, n_trials=1, gamma=0.25)


class TestScaleValidation:
    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ExperimentScale(n_users=1)
        with pytest.raises(ValueError):
            ExperimentScale(n_trials=0)
        with pytest.raises(ValueError):
            ExperimentScale(gamma=1.5)


class TestTable1:
    def test_right_side_variance_smaller(self):
        records = run_table1(TINY, epsilons=(0.25,), poison_ranges=("[C/2,C]",), rng=0)
        assert len(records) == 1
        record = records[0]
        assert record.variance_right < record.variance_left
        assert record.selected_side == "right"

    def test_format_contains_rows(self):
        records = run_table1(TINY, epsilons=(0.25,), poison_ranges=("[C/2,C]",), rng=0)
        text = format_table1(records)
        assert "[C/2,C]" in text and "eps=0.25" in text


class TestFig4:
    def test_means_close_to_paper(self):
        records = run_fig4(ExperimentScale(n_users=20_000, n_trials=1), rng=0)
        for record in records:
            assert record.mean == pytest.approx(record.paper_mean, abs=0.08)
            assert record.histogram.sum() == pytest.approx(1.0)
        assert "Taxi" in format_fig4(records)


class TestFig5:
    def test_gamma_error_improves_with_smaller_epsilon(self):
        records = run_fig5(
            TINY, epsilons=(1.0, 0.0625), gammas=(0.1,), poison_ranges=("[C/2,C]",),
            include_false_positive_panel=False, include_ima_panel=False, rng=0,
        )
        by_eps = {r.epsilon: r for r in records if r.panel == "a"}
        assert by_eps[0.0625].gamma_error < by_eps[1.0].gamma_error

    def test_false_positive_rate_small_at_tiny_epsilon(self):
        records = run_fig5(
            TINY, epsilons=(0.0625,), gammas=(), poison_ranges=(),
            include_false_positive_panel=True, include_ima_panel=False, rng=0,
        )
        fp = [r for r in records if r.panel == "c"][0]
        assert fp.gamma_hat < 0.1

    def test_ima_panel_reports_low_gamma(self):
        records = run_fig5(
            TINY, epsilons=(0.25,), gammas=(), poison_ranges=(),
            include_false_positive_panel=False, include_ima_panel=True, rng=0,
        )
        ima = [r for r in records if r.panel == "d"][0]
        # IMA reports are honest perturbations, so EMF sees far fewer than 25%
        assert ima.gamma_hat < 0.2

    def test_format(self):
        records = run_fig5(TINY, epsilons=(0.25,), gammas=(0.1,),
                           poison_ranges=("[C/2,C]",),
                           include_false_positive_panel=False,
                           include_ima_panel=False, rng=0)
        assert "[C/2,C]" in format_fig5(records)


class TestFig6:
    def test_dap_beats_ostrich_and_trimming(self):
        records = run_fig6(
            TINY, datasets=("Taxi",), poison_ranges=("[3C/4,C]",), epsilons=(1.0,), rng=0
        )
        mse = {r.scheme: r.mse for r in records}
        assert mse["DAP-EMF*"] < mse["Ostrich"]
        assert mse["DAP-CEMF*"] < mse["Ostrich"]
        assert mse["DAP-EMF*"] < mse["Trimming"]

    def test_format_contains_panel_header(self):
        records = run_fig6(TINY, datasets=("Taxi",), poison_ranges=("[3C/4,C]",),
                           epsilons=(1.0,), rng=0)
        assert "Taxi, Poi [3C/4,C]" in format_fig6(records)


class TestFig7:
    def test_sweeps_cover_both_panels(self):
        records = run_fig7(
            TINY, poison_ranges=("[C/2,C]",), gammas=(0.1, 0.4),
            distributions=("Uniform", "Beta(6,1)"),
            schemes=("DAP-EMF*", "Ostrich"), rng=0,
        )
        panels = {r.point["panel"] for r in records}
        assert panels == {"gamma", "distribution"}
        # DAP stays below Ostrich even at gamma = 0.4
        high_gamma = [r for r in records if r.point.get("gamma") == 0.4]
        mse = {r.scheme: r.mse for r in high_gamma}
        assert mse["DAP-EMF*"] < mse["Ostrich"]
        assert "MSE vs Byzantine proportion" in format_fig7(records)


class TestFig8:
    def test_gamma_error_improves_with_smaller_epsilon(self):
        records = run_fig8_gamma(TINY, dataset_names=("Beta(2,5)",),
                                 epsilons=(0.125, 1.0), rng=0)
        by_eps = {r.epsilon: r.value for r in records}
        assert by_eps[0.125] < by_eps[1.0] + 0.05

    def test_sw_dap_beats_ostrich(self):
        records = run_fig8_mse(TINY, dataset_names=("Beta(2,5)",), epsilons=(1.0,),
                               epsilon_min=1 / 4, rng=0)
        mse = {r.scheme: r.mse for r in records}
        assert mse["SW-EMF*"] < mse["Ostrich"]

    def test_full_driver_and_format(self):
        results = run_fig8(ExperimentScale(n_users=3_000, n_trials=1), rng=0)
        text = format_fig8(results)
        assert "Wasserstein" in text and "under SW" in text


class TestFig9:
    def test_dap_beats_kmeans_under_bba(self):
        records = run_fig9_defense_comparison(
            TINY, epsilons=(1.0,), sampling_rates=(0.1,), include_ima_panel=False, rng=0
        )
        mse = {r.scheme: r.mse for r in records}
        assert mse["DAP-EMF*"] < mse["K-means(beta=0.1)"]
        assert "DAP vs k-means" in format_fig9_defense_comparison(records)

    def test_ima_panel_runs(self):
        records = run_fig9_defense_comparison(
            ExperimentScale(n_users=2_000, n_trials=1), epsilons=(1.0,),
            sampling_rates=(0.3,), include_ima_panel=True, ima_inputs=(1.0,), rng=0,
        )
        panels = {r.point["panel"] for r in records}
        assert "b" in panels


class TestFig9Frequency:
    def test_dap_beats_ostrich_single_poisoned_group(self):
        records = run_fig9_frequency(
            ExperimentScale(n_users=6_000, n_trials=1), epsilons=(1.0,),
            panels={"c": (9,)}, rng=0,
        )
        mse = {r.scheme: r.mse for r in records}
        assert mse["DAP-EMF*"] < mse["Ostrich"]
        assert "COVID-19" in format_fig9_frequency(records)


class TestFig10:
    def test_small_evasion_keeps_mse_low(self):
        records = run_fig10(TINY, evasive_fractions=(0.0, 0.4), epsilon=0.5,
                            schemes=("DAP-EMF*",), rng=0)
        by_a = {r.point["evasive_fraction"]: r.mse for r in records}
        # with no evasion the estimate is accurate; strong evasion may or may
        # not flip the side, but the zero-evasion MSE must stay small
        assert by_a[0.0] < 0.05
        assert "evasive fraction" in format_fig10(records)
