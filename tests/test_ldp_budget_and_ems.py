"""Tests for privacy-budget accounting and the generic EM/EMS reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldp.budget import (
    PrivacyBudget,
    dap_budget_ladder,
    parallel_composition,
    sequential_composition,
)
from repro.ldp.ems import (
    em_reconstruct,
    expectation_maximization_smoothing,
    smooth_histogram,
)


class TestPrivacyBudget:
    def test_spend_and_remaining(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.3)
        assert budget.remaining == pytest.approx(0.7)
        assert budget.history == [0.3]

    def test_overspend_raises(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.9)
        with pytest.raises(ValueError):
            budget.spend(0.2)

    def test_can_spend(self):
        budget = PrivacyBudget(1.0)
        assert budget.can_spend(1.0)
        assert not budget.can_spend(1.1)

    def test_split_fractions(self):
        budget = PrivacyBudget(1.0)
        alpha, beta = budget.split([0.1, 0.9])
        assert alpha == pytest.approx(0.1)
        assert beta == pytest.approx(0.9)
        assert budget.remaining == pytest.approx(0.0)

    def test_split_requires_unit_sum(self):
        with pytest.raises(ValueError):
            PrivacyBudget(1.0).split([0.5, 0.6])

    def test_n_reports(self):
        assert PrivacyBudget(1.0).n_reports(1 / 16) == 16

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PrivacyBudget(0.0)
        with pytest.raises(ValueError):
            PrivacyBudget(1.0, spent=2.0)


class TestComposition:
    def test_sequential(self):
        assert sequential_composition([0.25, 0.75]) == pytest.approx(1.0)

    def test_parallel(self):
        assert parallel_composition([0.5, 1.0, 0.25]) == pytest.approx(1.0)

    def test_parallel_empty_raises(self):
        with pytest.raises(ValueError):
            parallel_composition([])

    def test_ladder_structure(self):
        ladder = dap_budget_ladder(1.0, 1 / 16)
        assert ladder == [1.0, 0.5, 0.25, 0.125, 0.0625]

    def test_ladder_single_group(self):
        assert dap_budget_ladder(1.0, 1.0) == [1.0]

    def test_ladder_non_power_of_two(self):
        ladder = dap_budget_ladder(1.0, 0.3)
        assert ladder[0] == 1.0
        assert ladder[-1] >= 0.3

    def test_ladder_rejects_min_above_total(self):
        with pytest.raises(ValueError):
            dap_budget_ladder(0.5, 1.0)


class TestEMReconstruct:
    def test_identity_transform_recovers_empirical(self):
        counts = np.array([10.0, 30.0, 60.0])
        result = em_reconstruct(np.eye(3), counts)
        np.testing.assert_allclose(result.weights, counts / counts.sum(), atol=1e-6)
        assert result.converged

    def test_known_mixture_recovered(self, rng):
        # two latent components observed through a noisy channel
        transform = np.array([[0.8, 0.3], [0.2, 0.7]])
        truth = np.array([0.25, 0.75])
        expected_counts = 50_000 * transform @ truth
        result = em_reconstruct(transform, expected_counts)
        np.testing.assert_allclose(result.weights, truth, atol=1e-3)

    def test_weights_always_normalised(self, rng):
        transform = rng.random((6, 4))
        transform /= transform.sum(axis=0, keepdims=True)
        counts = rng.integers(1, 100, 6).astype(float)
        result = em_reconstruct(transform, counts)
        assert result.weights.sum() == pytest.approx(1.0)
        assert result.weights.min() >= 0

    def test_fixed_zero_mask_respected(self):
        transform = np.eye(3)
        counts = np.array([10.0, 20.0, 30.0])
        result = em_reconstruct(transform, counts, fixed_zero=np.array([False, True, False]))
        assert result.weights[1] == 0.0

    def test_custom_m_step_applied(self):
        transform = np.eye(2)
        counts = np.array([40.0, 60.0])

        def pin_first(responsibilities):
            out = responsibilities / responsibilities.sum()
            out[0] = 0.5
            out[1] = 0.5
            return out

        result = em_reconstruct(transform, counts, m_step=pin_first, max_iter=5)
        np.testing.assert_allclose(result.weights, [0.5, 0.5])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            em_reconstruct(np.eye(3), np.ones(2))
        with pytest.raises(ValueError):
            em_reconstruct(np.ones(3), np.ones(3))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            em_reconstruct(np.eye(2), np.array([-1.0, 1.0]))

    def test_zero_counts_rejected(self):
        with pytest.raises(ValueError):
            em_reconstruct(np.eye(2), np.zeros(2))

    def test_log_likelihood_monotone_increasing(self):
        rng = np.random.default_rng(0)
        transform = rng.random((8, 5))
        transform /= transform.sum(axis=0, keepdims=True)
        counts = rng.integers(1, 50, 8).astype(float)
        lls = []
        for max_iter in (1, 2, 5, 20):
            lls.append(em_reconstruct(transform, counts, max_iter=max_iter, tol=0).log_likelihood)
        assert all(b >= a - 1e-9 for a, b in zip(lls, lls[1:]))


class TestIndicatorTail:
    """The split dense + gather/scatter products for one-hot tail columns."""

    @staticmethod
    def _one_hot_problem(rng, d_out=320, d_dense=24, n_tail=120):
        dense = rng.random((d_out, d_dense))
        dense /= dense.sum(axis=0, keepdims=True)
        tail_rows = rng.choice(d_out, size=n_tail, replace=False)
        tail_block = np.zeros((d_out, n_tail))
        tail_block[tail_rows, np.arange(n_tail)] = 1.0
        transform = np.hstack([dense, tail_block])
        counts = rng.integers(1, 200, d_out).astype(float)
        return transform, counts, tail_rows

    def test_matches_dense_path(self):
        transform, counts, tail = self._one_hot_problem(np.random.default_rng(1))
        assert tail.size * transform.shape[0] >= 1 << 14  # above the cutover
        dense = em_reconstruct(transform, counts, max_iter=200, tol=1e-9)
        split = em_reconstruct(
            transform, counts, max_iter=200, tol=1e-9, indicator_tail=tail
        )
        np.testing.assert_allclose(split.weights, dense.weights, rtol=1e-9, atol=1e-12)
        assert split.log_likelihood == pytest.approx(dense.log_likelihood)

    def test_small_problems_fall_back_to_dense_bit_for_bit(self):
        rng = np.random.default_rng(2)
        transform, counts, tail = self._one_hot_problem(
            rng, d_out=24, d_dense=6, n_tail=8
        )
        dense = em_reconstruct(transform, counts, max_iter=100, tol=1e-9)
        split = em_reconstruct(
            transform, counts, max_iter=100, tol=1e-9, indicator_tail=tail
        )
        np.testing.assert_array_equal(split.weights, dense.weights)
        assert split.log_likelihood == dense.log_likelihood

    def test_rejects_columns_that_are_not_one_hot(self):
        rng = np.random.default_rng(3)
        transform, counts, tail = self._one_hot_problem(rng)
        broken = transform.copy()
        broken[tail[0], transform.shape[1] - tail.size] = 0.5
        with pytest.raises(ValueError, match="indicator row"):
            em_reconstruct(broken, counts, indicator_tail=tail)

    def test_rejects_duplicate_tail_rows(self):
        rng = np.random.default_rng(4)
        transform, counts, tail = self._one_hot_problem(rng)
        tail = tail.copy()
        tail[1] = tail[0]
        with pytest.raises(ValueError, match="unique"):
            em_reconstruct(transform, counts, indicator_tail=tail)

    def test_rejects_oversized_tail(self):
        with pytest.raises(ValueError, match="only has"):
            em_reconstruct(
                np.eye(300), np.ones(300), indicator_tail=np.arange(301)
            )


class TestSmoothing:
    def test_preserves_mass(self):
        histogram = np.array([0.0, 1.0, 0.0, 0.0])
        smoothed = smooth_histogram(histogram)
        assert smoothed.sum() == pytest.approx(1.0)

    def test_spreads_mass(self):
        smoothed = smooth_histogram(np.array([0.0, 1.0, 0.0, 0.0]))
        assert smoothed[0] > 0 and smoothed[2] > 0

    def test_short_histogram_unchanged(self):
        np.testing.assert_allclose(smooth_histogram(np.array([0.4, 0.6])), [0.4, 0.6])

    def test_ems_returns_probability_vector(self, rng):
        transform = rng.random((12, 8))
        transform /= transform.sum(axis=0, keepdims=True)
        counts = rng.integers(1, 100, 12).astype(float)
        histogram = expectation_maximization_smoothing(transform, counts)
        assert histogram.sum() == pytest.approx(1.0)
        assert histogram.min() >= 0


class TestPropertyBased:
    @given(
        seed=st.integers(0, 1000),
        n_out=st.integers(3, 12),
        n_comp=st.integers(2, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_em_weights_are_distribution(self, seed, n_out, n_comp):
        rng = np.random.default_rng(seed)
        transform = rng.random((n_out, n_comp)) + 0.01
        transform /= transform.sum(axis=0, keepdims=True)
        counts = rng.integers(1, 100, n_out).astype(float)
        result = em_reconstruct(transform, counts, max_iter=200)
        assert result.weights.min() >= -1e-12
        assert result.weights.sum() == pytest.approx(1.0, abs=1e-6)
