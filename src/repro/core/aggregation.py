"""Optimal inter-group aggregation (Algorithm 5, Theorem 6).

DAP estimates one mean per group; the groups use different privacy budgets so
their estimates carry different variances.  Theorem 6 derives the linear
combination of the group means with the minimum worst-case variance: weight
each group by the inverse of

``B_t = n_hat_t * Var_worst(epsilon_t)``

where ``Var_worst(epsilon) = 1/(e^{eps/2}-1) + (e^{eps/2}+3)/(3(e^{eps/2}-1)^2)``
is PM's worst-case per-report variance (inputs at +-1) and ``n_hat_t`` is the
estimated number of *normal* users in the group.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive


def worst_case_group_variance(epsilon: float) -> float:
    """PM's worst-case per-report variance ``Var_worst`` for budget ``epsilon``."""
    epsilon = check_positive(epsilon, "epsilon")
    half = math.exp(epsilon / 2.0)
    return 1.0 / (half - 1.0) + (half + 3.0) / (3.0 * (half - 1.0) ** 2)


def aggregation_weights(
    epsilons: Sequence[float],
    n_normal_users: Sequence[float],
    per_report_variances: Sequence[float] | None = None,
) -> np.ndarray:
    """Theorem 6's minimum-variance weights.

    The proof of Theorem 6 yields ``w_t ∝ n_hat_t^2 / B_t`` with
    ``B_t = n_hat_t * Var_worst(epsilon_t)``, i.e. each group is weighted by
    the inverse of its group-mean variance ``Var_worst(epsilon_t) / n_hat_t``.
    (Algorithm 5's printed form ``w_t = (B_t * sum_i 1/B_i)^{-1}`` is the
    special case of equal-sized groups, which DAP's grouping produces; the
    general form used here also covers unequal effective group sizes.)

    Parameters
    ----------
    epsilons:
        Privacy budget of each group.
    n_normal_users:
        Estimated number of normal users per group
        (``n_hat_t = (N_t - m_hat_t) * epsilon_t / epsilon``).
    per_report_variances:
        Optional override of the per-report worst-case variance per group;
        defaults to PM's formula.  Passing a different mechanism's variances
        lets the same aggregation serve SW or Hybrid instantiations.
    """
    epsilons = [check_positive(e, "epsilon") for e in epsilons]
    n_normal = np.asarray(list(n_normal_users), dtype=float)
    if len(epsilons) != n_normal.size:
        raise ValueError("epsilons and n_normal_users must have the same length")
    if n_normal.size == 0:
        raise ValueError("at least one group is required")
    if np.any(n_normal < 0):
        raise ValueError("estimated normal-user counts must be non-negative")

    if per_report_variances is None:
        variances = np.array([worst_case_group_variance(e) for e in epsilons])
    else:
        variances = np.asarray(list(per_report_variances), dtype=float)
        if variances.size != n_normal.size:
            raise ValueError("per_report_variances must match the number of groups")

    # a group with no surviving normal users carries no information and gets
    # zero weight; otherwise weight by the inverse group-mean variance
    with np.errstate(divide="ignore", invalid="ignore"):
        inverse_variance = np.where(n_normal > 0, n_normal / variances, 0.0)
    total = inverse_variance.sum()
    if total <= 0:
        # degenerate: no group has usable data; fall back to equal weights
        return np.full(n_normal.size, 1.0 / n_normal.size)
    return inverse_variance / total


def aggregate_means(means: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted combination ``M_tilde = sum_t w_t * M_t`` (Algorithm 5, line 5)."""
    means = np.asarray(list(means), dtype=float)
    weights = np.asarray(list(weights), dtype=float)
    if means.shape != weights.shape:
        raise ValueError("means and weights must have the same length")
    if means.size == 0:
        raise ValueError("at least one group mean is required")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have positive total mass")
    return float(np.dot(means, weights) / total)


def minimal_aggregated_variance(
    epsilons: Sequence[float],
    n_normal_users: Sequence[float],
) -> float:
    """Theorem 6's minimal variance ``[sum_t n_hat_t^2 / B_t]^{-1}``.

    Note: in Theorem 6's derivation the group-mean variance is
    ``B_t / n_hat_t^2``, so the optimal combined variance is the harmonic-style
    expression returned here.  Useful for analytical comparisons and tests.
    """
    epsilons = [check_positive(e, "epsilon") for e in epsilons]
    n_normal = np.asarray(list(n_normal_users), dtype=float)
    b = np.array(
        [n * worst_case_group_variance(e) for e, n in zip(epsilons, n_normal)]
    )
    valid = (n_normal > 0) & (b > 0)
    if not np.any(valid):
        raise ValueError("no group has usable data")
    total = float(np.sum(n_normal[valid] ** 2 / b[valid]))
    return 1.0 / total


__all__ = [
    "worst_case_group_variance",
    "aggregation_weights",
    "aggregate_means",
    "minimal_aggregated_variance",
]
