"""Expectation-Maximization Filter — EMF (Algorithm 2).

Given the transform matrix ``M`` and the collected (perturbed + poison)
reports, EMF reconstructs the latent frequency histogram
``F = {x_1..x_d, y_1..y_{n_poison}}`` by maximum-likelihood EM:

* ``x`` is the frequency histogram of **normal users' original values**;
* ``y`` is the frequency histogram of **poison values** over the poison
  buckets of the output domain.

The log-likelihood (Equation 8) is concave in ``F``, so EM converges to the
global maximiser.  When ``epsilon -> 0`` Theorem 3 shows ``x`` converges to
the uniform distribution and ``y`` to the true poison-value distribution,
which is what makes the downstream feature estimation work.

The termination condition follows Section VI-A: iterate until the
log-likelihood improves by less than ``tau = 0.01 * e^epsilon`` (overridable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.transform import TransformMatrix
from repro.ldp.ems import em_reconstruct
from repro.utils.histogram import histogram_mean, histogram_variance

#: hard cap on EM iterations; generous relative to typical convergence (<100)
DEFAULT_MAX_ITER = 5_000


def default_tolerance(epsilon: float | None) -> float:
    """The paper's termination threshold ``tau = 0.01 * e^epsilon``."""
    if epsilon is None:
        return 1e-6
    return max(1e-9, 0.01 * math.exp(epsilon))


@dataclass
class EMFResult:
    """Output of EMF (and of the EMF*/CEMF* post-processing).

    Attributes
    ----------
    normal_histogram:
        ``x_hat`` — reconstructed frequency histogram of normal users over the
        input grid (sums to ``1 - gamma_hat``).
    poison_histogram:
        ``y_hat`` — reconstructed frequency histogram of poison values over
        the poison buckets (sums to ``gamma_hat``).
    transform:
        The transform matrix the reconstruction was run against.
    log_likelihood, n_iterations, converged:
        EM diagnostics.
    """

    normal_histogram: np.ndarray
    poison_histogram: np.ndarray
    transform: TransformMatrix
    log_likelihood: float
    n_iterations: int
    converged: bool

    # ------------------------------------------------------------------
    # derived Byzantine features
    # ------------------------------------------------------------------
    @property
    def gamma_hat(self) -> float:
        """Estimated proportion of Byzantine users (Equation 9)."""
        return float(self.poison_histogram.sum())

    @property
    def normal_histogram_variance(self) -> float:
        """Variance of ``x_hat`` — the side-probing criterion (Algorithm 3)."""
        return histogram_variance(self.normal_histogram)

    @property
    def poison_mean(self) -> float:
        """Mean of the reconstructed poison values (Equation 11).

        Returns the centre of the poison range when no poison mass was
        reconstructed (``gamma_hat == 0``), which keeps downstream formulas
        well defined and contributes nothing to the corrected mean.
        """
        centers = self.transform.poison_bucket_centers
        mass = self.poison_histogram.sum()
        if mass <= 0:
            return float(centers.mean()) if centers.size else 0.0
        return histogram_mean(self.poison_histogram, centers)

    def normalized_normal_histogram(self) -> np.ndarray:
        """``x_hat`` rescaled to sum to one (the normal users' distribution)."""
        total = self.normal_histogram.sum()
        if total <= 0:
            d = self.normal_histogram.size
            return np.full(d, 1.0 / d)
        return self.normal_histogram / total

    def estimated_normal_mean(self) -> float:
        """Mean of the reconstructed normal-user distribution.

        This is the distribution-estimation route to the mean (used by the
        Square Wave variant); the PM route uses
        :func:`repro.core.mean_estimation.corrected_mean` instead.
        """
        return histogram_mean(
            self.normalized_normal_histogram(), self.transform.input_grid.centers
        )


def run_emf(
    transform: TransformMatrix,
    reports: np.ndarray | None = None,
    counts: np.ndarray | None = None,
    epsilon: float | None = None,
    tol: float | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
) -> EMFResult:
    """Run EMF (Algorithm 2).

    Parameters
    ----------
    transform:
        Transform matrix built by :func:`repro.core.transform.build_transform_matrix`.
    reports:
        Collected perturbed values; mutually exclusive with ``counts``.
    counts:
        Pre-computed output-bucket counts (length ``d'``).
    epsilon:
        Privacy budget used only to derive the default tolerance
        ``tau = 0.01 e^epsilon``.
    tol, max_iter:
        EM convergence controls (``tol`` overrides the epsilon-derived value).
    """
    if (reports is None) == (counts is None):
        raise ValueError("provide exactly one of `reports` or `counts`")
    if counts is None:
        counts = transform.output_counts(reports)
    counts = np.asarray(counts, dtype=float)
    if tol is None:
        tol = default_tolerance(epsilon)

    result = em_reconstruct(
        transform.matrix,
        counts,
        max_iter=max_iter,
        tol=tol,
        indicator_tail=transform.poison_bucket_indices,
    )
    normal, poison = transform.split_weights(result.weights)
    return EMFResult(
        normal_histogram=normal,
        poison_histogram=poison,
        transform=transform,
        log_likelihood=result.log_likelihood,
        n_iterations=result.n_iterations,
        converged=result.converged,
    )


__all__ = ["EMFResult", "run_emf", "default_tolerance", "DEFAULT_MAX_ITER"]
