"""Figure 9 (c)(d) — frequency estimation on categorical data (COVID-19).

Byzantine users (gamma = 0.25) inject poison reports into the 10th age group
(panel c) or uniformly into groups 10-12 (panel d); every normal record is
perturbed with k-RR.  The paper reports the per-category MSE of the estimated
frequency vector: Ostrich stays around 1e-1 regardless of epsilon, while the
DAP variants sit below 1e-2 and improve with epsilon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.frequency import FrequencyDAP, ostrich_frequencies
from repro.datasets import covid_dataset
from repro.datasets.base import CategoricalDataset
from repro.engine import ExperimentSpec, run_experiment
from repro.estimators import frequency_mse
from repro.experiments.defaults import ExperimentScale, QUICK_SCALE, PAPER_EPSILONS
from repro.ldp import KRandomizedResponse
from repro.utils.rng import RngLike, ensure_rng

#: poisoned age-group indices of the two panels.  Panel (c) poisons one group
#: ("the 10th group", 0-based index 9).  For panel (d) the paper poisons three
#: consecutive groups; we target low-to-moderate-frequency groups so the
#: injection visibly distorts the histogram (matching the paper's regime where
#: Ostrich's error stays around 1e-1) — see DESIGN.md.
FIG9C_POISONED = (9,)
FIG9D_POISONED = (2, 3, 4)

_ESTIMATOR_OF = {
    "DAP-EMF": "emf",
    "DAP-EMF*": "emf_star",
    "DAP-CEMF*": "cemf_star",
}


@dataclass
class Fig9FreqRecord:
    """One (panel, epsilon, scheme) frequency-MSE measurement."""

    panel: str
    epsilon: float
    scheme: str
    mse: float
    poisoned_categories: tuple


@dataclass
class Fig9FreqSpec(ExperimentSpec):
    """Point-granular spec: one (panel, epsilon) cell, all schemes, all trials."""

    dataset: CategoricalDataset | None = None
    schemes: Tuple[str, ...] = ("DAP-EMF", "DAP-EMF*", "DAP-CEMF*", "Ostrich")

    def evaluate_point(self, point: Mapping, trial_seeds) -> Sequence[Fig9FreqRecord]:
        panel = point["panel"]
        epsilon = float(point["epsilon"])
        poisoned = tuple(point["poisoned"])
        n_categories = self.dataset.n_categories
        gamma = self.point_gamma(point)

        per_scheme_errors: Dict[str, List[float]] = {name: [] for name in self.schemes}
        for seed in trial_seeds:
            trial_rng = np.random.default_rng(int(seed))
            n_byzantine = int(round(self.n_users * gamma))
            n_normal = self.n_users - n_byzantine
            normal_categories = self.dataset.sample(n_normal, trial_rng)
            truth = np.bincount(normal_categories, minlength=n_categories) / n_normal

            dap = FrequencyDAP(epsilon, n_categories)
            reports = dap.collect(normal_categories, poisoned, n_byzantine, rng=trial_rng)
            for name in self.schemes:
                if name == "Ostrich":
                    mechanism = KRandomizedResponse(epsilon, n_categories)
                    estimate = ostrich_frequencies(mechanism, reports)
                else:
                    scheme_dap = FrequencyDAP(
                        epsilon, n_categories, estimator=_ESTIMATOR_OF[name]
                    )
                    estimate = scheme_dap.estimate(reports).frequencies
                per_scheme_errors[name].append(frequency_mse(estimate, truth))
        return [
            Fig9FreqRecord(
                panel=panel,
                epsilon=epsilon,
                scheme=name,
                mse=float(np.mean(per_scheme_errors[name])),
                poisoned_categories=poisoned,
            )
            for name in self.schemes
        ]


def run_fig9_frequency(
    scale: ExperimentScale = QUICK_SCALE,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    panels: Dict[str, Sequence[int]] | None = None,
    schemes: Sequence[str] = ("DAP-EMF", "DAP-EMF*", "DAP-CEMF*", "Ostrich"),
    rng: RngLike = None,
    n_workers: int | str | None = None,
) -> List[Fig9FreqRecord]:
    """Regenerate the categorical frequency-estimation experiments."""
    rng = ensure_rng(rng)
    if panels is None:
        panels = {"c": FIG9C_POISONED, "d": FIG9D_POISONED}
    dataset = covid_dataset(n_samples=scale.n_users, rng=rng)
    points = [
        {"panel": panel, "epsilon": epsilon, "poisoned": tuple(poisoned)}
        for panel, poisoned in panels.items()
        for epsilon in epsilons
    ]
    spec = Fig9FreqSpec(
        name="fig9_freq",
        description="Figure 9(c)(d): categorical frequency estimation",
        points=points,
        n_users=scale.n_users,
        n_trials=scale.n_trials,
        gamma=scale.gamma,
        dataset=dataset,
        schemes=tuple(schemes),
    )
    return run_experiment(spec, rng=rng, n_workers=n_workers)


def format_fig9_frequency(records: Sequence[Fig9FreqRecord]) -> str:
    """Render one MSE table per panel."""
    blocks = []
    for panel in sorted({r.panel for r in records}):
        panel_records = [r for r in records if r.panel == panel]
        poisoned = panel_records[0].poisoned_categories if panel_records else ()
        epsilons = sorted({r.epsilon for r in panel_records})
        schemes = []
        for record in panel_records:
            if record.scheme not in schemes:
                schemes.append(record.scheme)
        lines = [
            f"## ({panel}) COVID-19, poisoned groups {list(poisoned)} (frequency MSE)",
            "epsilon   " + "".join(s.rjust(12) for s in schemes),
        ]
        for epsilon in epsilons:
            row = [f"{epsilon:<9g}"]
            for scheme in schemes:
                match = [
                    r for r in panel_records if r.epsilon == epsilon and r.scheme == scheme
                ]
                row.append(f"{match[0].mse:.3e}".rjust(12) if match else "-".rjust(12))
            lines.append("".join(row))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


__all__ = [
    "Fig9FreqRecord",
    "Fig9FreqSpec",
    "run_fig9_frequency",
    "format_fig9_frequency",
    "FIG9C_POISONED",
    "FIG9D_POISONED",
]
