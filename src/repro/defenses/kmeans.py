"""k-means-based defence of Li et al. (Figure 9 comparison).

The defence repeatedly samples random user subsets, computes a mean estimate
per subset, clusters the subset estimates into two clusters with 1-D 2-means,
keeps the larger cluster (assumed to consist of mostly-clean subsets) and
averages its estimates.  Poisoned subsets drag their estimate away from the
clean cluster, so with enough subsets the clean cluster dominates.

The paper samples ``beta * N`` users per subset with up to one million subsets;
the subset count here is configurable (the default keeps experiments fast
while preserving the method's behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense, DefenseResult
from repro.ldp.base import NumericalMechanism
from repro.registry import DEFENSES
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction, check_integer


def kmeans_1d(
    values: np.ndarray,
    n_clusters: int = 2,
    max_iter: int = 100,
    rng: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm on one-dimensional data.

    Returns ``(labels, centers)``.  Centres are initialised at evenly spaced
    quantiles, which is deterministic and robust for 1-D data; the ``rng`` is
    only used to break ties when a cluster empties.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ValueError("kmeans_1d requires at least one value")
    n_clusters = check_integer(n_clusters, "n_clusters", minimum=1)
    n_clusters = min(n_clusters, values.size)
    rng = ensure_rng(rng)

    quantiles = np.linspace(0.0, 1.0, n_clusters + 2)[1:-1]
    centers = np.quantile(values, quantiles)
    labels = np.zeros(values.size, dtype=int)
    for _ in range(max_iter):
        distances = np.abs(values[:, None] - centers[None, :])
        new_labels = distances.argmin(axis=1)
        new_centers = centers.copy()
        for cluster in range(n_clusters):
            members = values[new_labels == cluster]
            if members.size:
                new_centers[cluster] = members.mean()
            else:
                # re-seed an empty cluster at a random value
                new_centers[cluster] = values[rng.integers(0, values.size)]
        if np.array_equal(new_labels, labels) and np.allclose(new_centers, centers):
            labels, centers = new_labels, new_centers
            break
        labels, centers = new_labels, new_centers
    return labels, centers


@DEFENSES.register("K-means", aliases=("kmeans",))
class KMeansDefense(Defense):
    """Subset-sampling + 2-means defence.

    Parameters
    ----------
    sampling_rate:
        Fraction ``beta`` of users drawn into each subset.
    n_subsets:
        Number of random subsets (the paper uses up to 10^6; the default of
        200 keeps the behaviour while staying laptop-friendly).
    """

    name = "K-means"

    def __init__(self, sampling_rate: float = 0.1, n_subsets: int = 200) -> None:
        self.sampling_rate = check_fraction(sampling_rate, "sampling_rate", inclusive=False)
        self.n_subsets = check_integer(n_subsets, "n_subsets", minimum=2)

    def estimate_mean(
        self,
        reports: np.ndarray,
        mechanism: NumericalMechanism,
        rng: RngLike = None,
    ) -> DefenseResult:
        reports = self._validate_reports(reports)
        rng = ensure_rng(rng)
        n = reports.size
        subset_size = max(1, int(round(n * self.sampling_rate)))

        subset_means = np.empty(self.n_subsets)
        for i in range(self.n_subsets):
            idx = rng.integers(0, n, size=subset_size)
            subset_means[i] = reports[idx].mean()

        labels, centers = kmeans_1d(subset_means, n_clusters=2, rng=rng)
        counts = np.bincount(labels, minlength=2)
        majority = int(np.argmax(counts))
        estimate = float(subset_means[labels == majority].mean())
        low, high = mechanism.input_domain
        estimate = float(np.clip(estimate, low, high))
        return DefenseResult(
            estimate=estimate,
            kept_mask=None,
            metadata={
                "subset_size": subset_size,
                "n_subsets": self.n_subsets,
                "cluster_centers": centers.tolist(),
                "majority_cluster_share": float(counts[majority] / self.n_subsets),
            },
        )


__all__ = ["KMeansDefense", "kmeans_1d"]
