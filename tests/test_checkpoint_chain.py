"""Property tests: chained accumulator snapshots == one-shot streaming.

The windowed service's resume guarantee reduces to one invariant: for every
accumulator type, *checkpointing* (``state_dict`` through real JSON),
*restoring* (``from_state``) and *continuing* — any number of times, at any
window boundaries — must be bit-identical to accumulating the whole stream
in one process.  Hypothesis drives the boundaries: arbitrary value streams
cut at arbitrary points, snapshot/restored between every pair of chunks.

Covered: all four accumulator types (``ExactSum``, ``HistogramAccumulator``,
``CategoryCountAccumulator``, ``GroupAccumulator``) and the k-RR frequency
path (perturbed categorical reports, counts as the sufficient statistic,
de-biased frequency estimates off the restored counts).
"""

from __future__ import annotations

import json

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collect import (
    CategoryCountAccumulator,
    ExactSum,
    GroupAccumulator,
    HistogramAccumulator,
)
from repro.ldp import KRandomizedResponse
from repro.utils.discretization import BucketGrid

COMMON_SETTINGS = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def json_round_trip(state):
    """A checkpoint's actual serialisation boundary."""
    return json.loads(json.dumps(state))


def cut_points(draw, n, max_cuts=6):
    """Sorted window boundaries inside ``[0, n]`` (possibly empty/degenerate)."""
    k = draw(st.integers(0, max_cuts))
    cuts = draw(
        st.lists(st.integers(0, n), min_size=k, max_size=k)
    )
    return sorted(cuts)


def windows(values, cuts):
    """Split ``values`` at ``cuts`` — empty windows included on purpose."""
    chunks, start = [], 0
    for cut in list(cuts) + [len(values)]:
        chunks.append(values[start:cut])
        start = cut
    return chunks


values_and_cuts = st.integers(0, 2_000_000_000).flatmap(
    lambda seed: st.integers(0, 120).flatmap(
        lambda n: st.builds(
            lambda cuts: (seed, n, cuts),
            st.lists(st.integers(0, n), min_size=0, max_size=6).map(sorted),
        )
    )
)


class TestChainedSnapshotsMatchOneShot:
    @given(params=values_and_cuts)
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_exact_sum(self, params):
        seed, n, cuts = params
        values = np.random.default_rng(seed).uniform(-1e6, 1e6, size=n)
        one_shot = ExactSum().add(values)
        chained = ExactSum()
        for chunk in windows(values, cuts):
            chained = ExactSum.from_state(json_round_trip(chained.state_dict()))
            chained.add(chunk)
        assert chained.value == one_shot.value
        assert (
            json_round_trip(chained.state_dict())
            == json_round_trip(one_shot.state_dict())
        )

    @given(params=values_and_cuts, n_buckets=st.integers(1, 32))
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_histogram(self, params, n_buckets):
        seed, n, cuts = params
        grid = BucketGrid(-1.0, 1.0, n_buckets)
        values = np.random.default_rng(seed).uniform(-1.0, 1.0, size=n)
        one_shot = HistogramAccumulator(grid, track_sum=True).update(values)
        chained = HistogramAccumulator(grid, track_sum=True)
        for chunk in windows(values, cuts):
            chained = HistogramAccumulator.from_state(
                json_round_trip(chained.state_dict())
            )
            chained.update(chunk)
        assert np.array_equal(chained.counts, one_shot.counts)
        assert chained.n_values == one_shot.n_values
        assert chained.sum == one_shot.sum

    @given(params=values_and_cuts, n_categories=st.integers(1, 16))
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_category_counts(self, params, n_categories):
        seed, n, cuts = params
        reports = np.random.default_rng(seed).integers(0, n_categories, size=n)
        one_shot = CategoryCountAccumulator(n_categories).update(reports)
        chained = CategoryCountAccumulator(n_categories)
        for chunk in windows(reports, cuts):
            chained = CategoryCountAccumulator.from_state(
                json_round_trip(chained.state_dict())
            )
            chained.update(chunk)
        assert np.array_equal(chained.counts, one_shot.counts)

    @given(params=values_and_cuts, n_buckets=st.integers(1, 32))
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_group_accumulator(self, params, n_buckets):
        seed, n, cuts = params
        grid = BucketGrid(-2.0, 2.0, n_buckets)
        reports = np.random.default_rng(seed).uniform(-2.0, 2.0, size=n)
        one_shot = GroupAccumulator(0.5, grid, n_expected_reports=None)
        one_shot.update(reports)
        chained = GroupAccumulator(0.5, grid, n_expected_reports=None)
        for chunk in windows(reports, cuts):
            chained = GroupAccumulator.from_state(
                json_round_trip(chained.state_dict())
            )
            chained.update(chunk)
        assert (
            json_round_trip(chained.state_dict())
            == json_round_trip(one_shot.state_dict())
        )
        ours, theirs = chained.stats(), one_shot.stats()
        assert ours.n_reports == theirs.n_reports
        assert ours.report_sum == theirs.report_sum
        assert np.array_equal(ours.output_counts, theirs.output_counts)

    @given(
        params=values_and_cuts,
        n_categories=st.integers(2, 12),
        epsilon=st.floats(0.2, 3.0),
    )
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_krr_frequency_path(self, params, n_categories, epsilon):
        """k-RR reports chained through snapshots give the exact sufficient
        statistic, and the de-biased frequency estimate computed from the
        restored counts is bit-identical to the one-shot estimator."""
        seed, n, cuts = params
        rng = np.random.default_rng(seed)
        mechanism = KRandomizedResponse(epsilon, n_categories)
        categories = rng.integers(0, n_categories, size=max(n, 1))
        reports = mechanism.perturb(categories, rng=rng)

        chained = CategoryCountAccumulator(n_categories)
        for chunk in windows(reports, cuts):
            chained = CategoryCountAccumulator.from_state(
                json_round_trip(chained.state_dict())
            )
            chained.update(chunk)
        assert np.array_equal(chained.counts_float(), mechanism.report_counts(reports))

        observed = chained.counts_float() / chained.n_reports
        from_counts = (observed - mechanism.q) / (mechanism.p - mechanism.q)
        assert np.array_equal(from_counts, mechanism.estimate_frequencies(reports))
