"""Benchmark: Figure 10 — robustness to evasive poison values.

Paper claim: sacrificing a small fraction ``a`` of poison reports to the
opposite side does not fool DAP (the MSE stays low); only around a ~ 20-30%
does the side decision start to flip, and by then the attack has given up a
proportional amount of its own impact (Equation 20).
"""

from repro.experiments import format_fig10, run_fig10


def test_fig10_evasion(benchmark, bench_scale_small):
    records = benchmark(
        run_fig10,
        bench_scale_small,
        datasets=("Taxi",),
        evasive_fractions=(0.0, 0.1, 0.3, 0.5),
        epsilon=0.5,
        schemes=("DAP-EMF*", "DAP-CEMF*"),
        rng=0,
    )
    print("\n" + format_fig10(records))

    mse = {
        (r.scheme, r.point["evasive_fraction"]): r.mse for r in records
    }
    # small evasive fractions leave the estimate accurate (thresholds are
    # generous because the benchmark population is ~100x smaller than the
    # paper's; at epsilon = 1/2 the per-trial noise floor is a few 1e-2)
    for scheme in ("DAP-EMF*", "DAP-CEMF*"):
        assert mse[(scheme, 0.0)] < 0.1
        assert mse[(scheme, 0.1)] < 0.2
