"""Deterministic fault injection: the chaos harness that proves the layer.

A :class:`FaultPlan` is a declarative JSON document naming exactly which
faults strike where — kill the pool worker running task ``k`` on attempt
``j``, pretend task ``k`` timed out, corrupt the checkpoint written after
window ``w``, fail the next artifact write — so a chaos run is as
reproducible as any other run: the same plan against the same spec injects
the same faults at the same points every time.

Plan document::

    {
      "name": "chaos_smoke",
      "faults": [
        {"kind": "kill",    "scope": "collect.shard", "task": 1, "attempt": 0},
        {"kind": "timeout", "scope": "engine.unit",   "task": 0, "attempt": 0},
        {"kind": "raise",   "scope": "collect.shard", "task": 2, "attempt": 1},
        {"kind": "checkpoint", "window": 3, "mode": "truncate"},
        {"kind": "artifact-write", "count": 1}
      ]
    }

``scope`` names a dispatch seam (:class:`~repro.resilience.pool.ResilientPool`
labels — ``"engine.unit"`` for experiment work units, ``"collect.shard"``
for collection shards); ``task`` and ``attempt`` are 0-based indices within
one pool run.  Each fault entry fires at most once (``artifact-write`` up to
``count`` times).

A fault plan is an **execution detail**: it changes how hard the run has to
work, never what it computes — every injected fault is recovered by a retry,
a pool reincarnation, or a checkpoint rollback, and the recovered run is
bit-identical to a fault-free run (test- and benchmark-enforced).  The plan
is therefore excluded from fingerprints and digests and recorded under
``meta.execution`` only.

The active injector is process-local state scoped by :func:`use_fault_plan`,
like :func:`repro.backends.use_backend`.  Injection decisions are made in
the process that dispatches work; a forked pool worker that starts its own
nested pool consults its inherited copy independently, which can only make a
composed run inject a fault more than once — harmless, because recovery is
invisible in the outputs.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.resilience import stats

#: fault kinds a plan may inject
FAULT_KINDS = ("kill", "raise", "timeout", "checkpoint", "artifact-write")

#: pool-seam fault kinds (matched on (scope, task, attempt))
POOL_FAULT_KINDS = ("kill", "raise", "timeout")

#: checkpoint corruption modes
CORRUPTION_MODES = ("truncate", "bitflip")


@dataclass(frozen=True)
class Fault:
    """One parsed fault entry (see the module docstring for the schema)."""

    kind: str
    scope: str | None = None
    task: int = 0
    attempt: int = 0
    window: int = 0
    mode: str = "truncate"
    count: int = 1

    def document(self) -> Dict[str, Any]:
        if self.kind in POOL_FAULT_KINDS:
            return {
                "kind": self.kind,
                "scope": self.scope,
                "task": self.task,
                "attempt": self.attempt,
            }
        if self.kind == "checkpoint":
            return {"kind": self.kind, "window": self.window, "mode": self.mode}
        return {"kind": self.kind, "count": self.count}


def _parse_fault(entry: Mapping[str, Any], index: int) -> Fault:
    if not isinstance(entry, Mapping):
        raise ValueError(f"fault entry {index} must be a mapping, got {entry!r}")
    kind = entry.get("kind")
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"fault entry {index} has unknown kind {kind!r}; known kinds: "
            f"{', '.join(FAULT_KINDS)}"
        )
    allowed = (
        {"kind", "scope", "task", "attempt"}
        if kind in POOL_FAULT_KINDS
        else {"kind", "window", "mode"}
        if kind == "checkpoint"
        else {"kind", "count"}
    )
    unknown = sorted(set(entry) - allowed)
    if unknown:
        raise ValueError(
            f"fault entry {index} ({kind}) has unknown keys {unknown}; "
            f"allowed: {sorted(allowed)}"
        )
    if kind in POOL_FAULT_KINDS:
        scope = entry.get("scope")
        if not isinstance(scope, str) or not scope:
            raise ValueError(f"fault entry {index} ({kind}) needs a 'scope' string")
        task = int(entry.get("task", 0))
        attempt = int(entry.get("attempt", 0))
        if task < 0 or attempt < 0:
            raise ValueError(
                f"fault entry {index} ({kind}) task/attempt must be >= 0"
            )
        return Fault(kind=kind, scope=scope, task=task, attempt=attempt)
    if kind == "checkpoint":
        mode = entry.get("mode", "truncate")
        if mode not in CORRUPTION_MODES:
            raise ValueError(
                f"fault entry {index} has unknown corruption mode {mode!r}; "
                f"known modes: {', '.join(CORRUPTION_MODES)}"
            )
        window = int(entry.get("window", 0))
        if window < 0:
            raise ValueError(f"fault entry {index} window must be >= 0")
        return Fault(kind=kind, window=window, mode=mode)
    count = int(entry.get("count", 1))
    if count < 1:
        raise ValueError(f"fault entry {index} count must be >= 1")
    return Fault(kind=kind, count=count)


@dataclass(frozen=True)
class FaultPlan:
    """A validated, immutable fault-injection plan."""

    name: str
    faults: tuple

    @classmethod
    def from_mapping(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"fault plan must be a mapping, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"name", "faults"})
        if unknown:
            raise ValueError(
                f"unknown fault-plan keys {unknown}; allowed: name, faults"
            )
        entries = payload.get("faults", [])
        if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
            raise ValueError("fault plan 'faults' must be a list of entries")
        faults = tuple(
            _parse_fault(entry, index) for index, entry in enumerate(entries)
        )
        return cls(name=str(payload.get("name", "fault-plan")), faults=faults)

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{os.fspath(path)}: invalid fault-plan JSON ({error})"
                ) from None
        return cls.from_mapping(payload)

    def document(self) -> Dict[str, Any]:
        """The plan as a canonical JSON-style document (for provenance)."""
        return {
            "name": self.name,
            "faults": [fault.document() for fault in self.faults],
        }

    def injector(self) -> "FaultInjector":
        """A fresh stateful injector (each fault unconsumed)."""
        return FaultInjector(self)


class FaultInjector:
    """Consumes a :class:`FaultPlan` fault by fault as execution reaches it."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._remaining: List[int] = [fault.count for fault in plan.faults]

    @property
    def fired(self) -> int:
        """How many individual faults have been injected so far."""
        return sum(
            fault.count - remaining
            for fault, remaining in zip(self.plan.faults, self._remaining)
        )

    def _consume(self, index: int) -> None:
        self._remaining[index] -= 1
        stats.record("injected_faults")

    def pool_fault(self, scope: str, task: int, attempt: int) -> Optional[str]:
        """The fault kind to inject for this dispatch, consuming it (or None)."""
        for index, fault in enumerate(self.plan.faults):
            if (
                self._remaining[index] > 0
                and fault.kind in POOL_FAULT_KINDS
                and fault.scope == scope
                and fault.task == task
                and fault.attempt == attempt
            ):
                self._consume(index)
                return fault.kind
        return None

    def checkpoint_fault(self, window: int) -> Optional[str]:
        """The corruption mode for the checkpoint after ``window`` (or None)."""
        for index, fault in enumerate(self.plan.faults):
            if (
                self._remaining[index] > 0
                and fault.kind == "checkpoint"
                and fault.window == window
            ):
                self._consume(index)
                return fault.mode
        return None

    def take_artifact_write_fault(self) -> bool:
        """Whether the next artifact write should fail, consuming one charge."""
        for index, fault in enumerate(self.plan.faults):
            if self._remaining[index] > 0 and fault.kind == "artifact-write":
                self._consume(index)
                return True
        return False


# ----------------------------------------------------------------------
# active injector (process-local, scoped like the array backend)
# ----------------------------------------------------------------------
_active: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    """The process's currently active fault injector, if any."""
    return _active


@contextmanager
def use_fault_plan(plan: FaultPlan | None) -> Iterator[FaultInjector | None]:
    """Scoped fault injection; ``None`` is a no-op passthrough.

    Builds a fresh injector per entry, so nested or repeated runs under the
    same plan each start with every fault unconsumed.
    """
    global _active
    if plan is None:
        yield _active
        return
    previous = _active
    _active = plan.injector()
    try:
        yield _active
    finally:
        _active = previous


def corrupt_file(path: str, mode: str) -> None:
    """Deliberately damage a file the way real infrastructure does.

    ``"truncate"`` keeps only the first half of the bytes (a torn write);
    ``"bitflip"`` flips one bit in the middle byte (silent media corruption).
    Both are deterministic functions of the file content.
    """
    if mode not in CORRUPTION_MODES:
        raise ValueError(
            f"unknown corruption mode {mode!r}; known: {', '.join(CORRUPTION_MODES)}"
        )
    with open(path, "rb") as handle:
        data = handle.read()
    if not data:
        return
    if mode == "truncate":
        damaged = data[: max(1, len(data) // 2)]
    else:
        middle = len(data) // 2
        damaged = data[:middle] + bytes([data[middle] ^ 0x08]) + data[middle + 1 :]
    with open(path, "wb") as handle:
        handle.write(damaged)


__all__ = [
    "CORRUPTION_MODES",
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "POOL_FAULT_KINDS",
    "active_injector",
    "corrupt_file",
    "use_fault_plan",
]
