"""Table I — variance of the reconstructed normal histogram, left vs right.

The paper injects a Biased Byzantine Attack on the right side of the Taxi
dataset and reports, for four poison ranges and five privacy budgets, the
variance of the EMF-reconstructed normal histogram when the probing transform
hosts the poison buckets on the Left vs the Right side.  The Right (correct)
side always yields the far smaller variance, which is what makes Algorithm 3's
side decision reliable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.attacks import BiasedByzantineAttack, PAPER_POISON_RANGES
from repro.core.probing import probe_poisoned_side
from repro.core.transform import default_bucket_counts
from repro.datasets import taxi_dataset
from repro.engine import ExperimentSpec, run_experiment
from repro.experiments.defaults import ExperimentScale, QUICK_SCALE
from repro.ldp import PiecewiseMechanism
from repro.utils.rng import RngLike, ensure_rng

#: the poison ranges of Table I, in the paper's row order
TABLE1_RANGES = ("[3C/4,C]", "[C/2,C]", "[O,C/2]", "[O,C]")

#: the privacy budgets of Table I's columns
TABLE1_EPSILONS = (2.0, 0.5, 0.25, 0.125, 0.0625)


@dataclass
class Table1Record:
    """One cell pair of Table I (both sides for one range and budget)."""

    poison_range: str
    epsilon: float
    variance_left: float
    variance_right: float
    selected_side: str


@dataclass
class Table1Spec(ExperimentSpec):
    """Point-granular spec: one probing round per (range, epsilon) cell."""

    values: np.ndarray = field(default_factory=lambda: np.empty(0))

    def evaluate_point(self, point: Mapping, trial_seeds) -> Sequence[Table1Record]:
        rng = np.random.default_rng(int(trial_seeds[0]))
        range_name = point["poison_range"]
        epsilon = float(point["epsilon"])
        mechanism = PiecewiseMechanism(epsilon)
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES[range_name], side="right")
        n_byzantine = int(round(self.n_users * self.point_gamma(point)))
        n_normal = self.n_users - n_byzantine
        normal_reports = mechanism.perturb(self.values[:n_normal], rng)
        poison_reports = attack.poison_reports(n_byzantine, mechanism, 0.0, rng).reports
        reports = np.concatenate([normal_reports, poison_reports])
        d_in, d_out = default_bucket_counts(reports.size, epsilon)
        probe = probe_poisoned_side(
            mechanism,
            reports,
            n_input_buckets=d_in,
            n_output_buckets=d_out,
            reference_mean=0.0,
            epsilon=epsilon,
        )
        return [
            Table1Record(
                poison_range=range_name,
                epsilon=epsilon,
                variance_left=probe.variance_left,
                variance_right=probe.variance_right,
                selected_side=probe.side,
            )
        ]


def run_table1(
    scale: ExperimentScale = QUICK_SCALE,
    epsilons: Sequence[float] = TABLE1_EPSILONS,
    poison_ranges: Sequence[str] = TABLE1_RANGES,
    rng: RngLike = None,
    n_workers: int | str | None = None,
) -> List[Table1Record]:
    """Regenerate Table I on the (synthetic) Taxi dataset."""
    rng = ensure_rng(rng)
    dataset = taxi_dataset(n_samples=scale.n_users, rng=rng)
    spec = Table1Spec(
        name="table1",
        description="Table I: reconstructed-histogram variance, left vs right",
        points=[
            {"poison_range": range_name, "epsilon": epsilon}
            for range_name in poison_ranges
            for epsilon in epsilons
        ],
        n_users=scale.n_users,
        n_trials=1,
        gamma=scale.gamma,
        values=dataset.values,
    )
    return run_experiment(spec, rng=rng, n_workers=n_workers)


def format_table1(records: Sequence[Table1Record]) -> str:
    """Render the records in the paper's row layout (L and R rows per range)."""
    epsilons = sorted({r.epsilon for r in records}, reverse=True)
    by_range: Dict[str, Dict[float, Table1Record]] = {}
    for record in records:
        by_range.setdefault(record.poison_range, {})[record.epsilon] = record

    header = ["Poi[l,r]".ljust(12), "Side".ljust(6)] + [
        f"eps={e:g}".rjust(12) for e in epsilons
    ]
    lines = ["".join(header)]
    for range_name, cells in by_range.items():
        for side in ("L", "R"):
            row = [range_name.ljust(12), side.ljust(6)]
            for epsilon in epsilons:
                record = cells.get(epsilon)
                if record is None:
                    row.append("-".rjust(12))
                    continue
                value = record.variance_left if side == "L" else record.variance_right
                row.append(f"{value:.1e}".rjust(12))
            lines.append("".join(row))
    correct = sum(1 for r in records if r.selected_side == "right")
    lines.append(f"# side decision correct in {correct}/{len(records)} cells")
    return "\n".join(lines)


__all__ = [
    "Table1Record",
    "Table1Spec",
    "run_table1",
    "format_table1",
    "TABLE1_RANGES",
    "TABLE1_EPSILONS",
]
