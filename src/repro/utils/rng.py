"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  ``ensure_rng``
normalises all three into a ``Generator`` so that experiments are reproducible
end to end when a seed is supplied and still convenient when it is not.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, a
        ``SeedSequence``, or an existing ``Generator`` (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be None, an int seed, a SeedSequence or a Generator, got {type(rng)!r}"
    )


def spawn_rngs(rng: RngLike, count: int) -> Sequence[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators.

    Useful when an experiment fans out over groups, trials or users and each
    unit needs its own stream that is still reproducible from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def derive_seed(rng: RngLike, salt: int = 0) -> int:
    """Derive a deterministic child seed from ``rng`` plus an integer salt."""
    base = ensure_rng(rng)
    return int(base.integers(0, 2**31 - 1)) ^ (salt * 2654435761 % (2**31))


__all__ = ["RngLike", "ensure_rng", "spawn_rngs", "derive_seed"]
