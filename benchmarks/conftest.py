"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through the
drivers in :mod:`repro.experiments`, prints the paper-style rows it produced
(so the run doubles as a reproduction report), and asserts the qualitative
shape the paper claims.  The scale is deliberately laptop-friendly; raise
``BENCH_SCALE`` towards :data:`repro.experiments.PAPER_SCALE` to approach the
paper's absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale

#: population / trial scale used by every benchmark
BENCH_SCALE = ExperimentScale(n_users=12_000, n_trials=2, gamma=0.25)

#: a smaller scale for the heaviest sweeps (full figure grids)
BENCH_SCALE_SMALL = ExperimentScale(n_users=6_000, n_trials=1, gamma=0.25)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_scale_small() -> ExperimentScale:
    return BENCH_SCALE_SMALL
