"""Per-table / per-figure experiment drivers.

Each module regenerates one table or figure of the paper's evaluation
(Section VI): it runs the corresponding workload through the simulation
harness and returns tidy records plus a plain-text rendering of the same rows
or series the paper reports.  The benchmark suite (``benchmarks/``) simply
invokes these drivers at a laptop-friendly scale; crank the ``n_users`` /
``n_trials`` arguments up to approach the paper's 10^6-user setting.
"""

from repro.experiments.defaults import ExperimentScale, QUICK_SCALE, PAPER_SCALE
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.fig4 import run_fig4, format_fig4
from repro.experiments.fig5 import run_fig5, format_fig5
from repro.experiments.fig6 import run_fig6, format_fig6
from repro.experiments.fig7 import run_fig7, format_fig7
from repro.experiments.fig8 import run_fig8, format_fig8
from repro.experiments.fig9 import run_fig9_defense_comparison, format_fig9_defense_comparison
from repro.experiments.fig9_freq import run_fig9_frequency, format_fig9_frequency
from repro.experiments.fig10 import run_fig10, format_fig10

__all__ = [
    "ExperimentScale",
    "QUICK_SCALE",
    "PAPER_SCALE",
    "run_table1",
    "format_table1",
    "run_fig4",
    "format_fig4",
    "run_fig5",
    "format_fig5",
    "run_fig6",
    "format_fig6",
    "run_fig7",
    "format_fig7",
    "run_fig8",
    "format_fig8",
    "run_fig9_defense_comparison",
    "format_fig9_defense_comparison",
    "run_fig9_frequency",
    "format_fig9_frequency",
    "run_fig10",
    "format_fig10",
]
