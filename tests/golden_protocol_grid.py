"""Seed grid shared by the golden generator and the local-protocol test.

The committed ``tests/data/golden_local_protocol.json`` was produced by
running :func:`compute_goldens` on the pre-refactor tree (before the
``repro/protocol`` pipeline existed).  The regression test recomputes the
same grid — once with the defaults and once with ``protocol="local"``
forced explicitly — and requires bit-identical floats, which pins the
refactored pipeline to the historical collection semantics for every
registered mechanism and scheme.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.attacks import BiasedByzantineAttack, GeneralByzantineAttack, NoAttack
from repro.registry import DATASETS
from repro.simulation.population import PopulationStream, build_population
from repro.simulation.schemes import make_scheme

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_local_protocol.json"

#: mechanisms with an interval transform matrix (the probing schemes need it)
MEAN_MECHANISMS = ("piecewise", "square-wave")
MEAN_SCHEMES = ("Baseline", "DAP-EMF", "DAP-EMF*", "DAP-CEMF*")
#: every registered numerical mechanism, covered via the defence schemes
ALL_NUMERICAL_MECHANISMS = ("piecewise", "duchi", "hybrid", "laplace", "square-wave")
DEFENSE_SCHEMES = ("Ostrich", "Trimming", "K-means", "Boxplot", "IsolationForest")

_N_USERS = 400
_GAMMA = 0.2
_EPSILON = 1.0
_DATASET = "Beta(2,5)"
_SEED = 20260808


def _attack_for(kind: str):
    if kind == "none":
        return NoAttack()
    if kind == "bba":
        return BiasedByzantineAttack()
    if kind == "gba":
        return GeneralByzantineAttack()
    raise ValueError(kind)


def _make(scheme_name: str, mechanism: str, protocol: str | None):
    scheme = make_scheme(scheme_name, epsilon=_EPSILON, mechanism_factory=mechanism)
    if protocol is not None:
        scheme = scheme.configure_protocol(protocol)
    return scheme


def compute_mean_goldens(protocol: str | None = None) -> dict:
    """Mean-estimation grid: mechanisms x schemes x attacks, plus the
    streaming and sharded collection paths for the DAP variants."""
    # the synthetic datasets draw their records at creation time, so the
    # dataset itself must be pinned for the grid to be reproducible
    dataset = DATASETS.create(_DATASET, rng=np.random.default_rng([_SEED, 999]))
    goldens: dict[str, float] = {}
    for mech_index, mechanism_name in enumerate(MEAN_MECHANISMS):
        input_domain = make_scheme(
            "DAP-EMF", epsilon=_EPSILON, mechanism_factory=mechanism_name
        ).config.mechanism_factory(_EPSILON).input_domain
        for scheme_index, scheme_name in enumerate(MEAN_SCHEMES):
            attacks = ("bba",) if scheme_name != "DAP-CEMF*" else ("none", "bba", "gba")
            for attack_kind in attacks:
                scheme = _make(scheme_name, mechanism_name, protocol)
                population = build_population(
                    dataset,
                    _N_USERS,
                    _GAMMA,
                    rng=np.random.default_rng([_SEED, mech_index, scheme_index, 0]),
                    input_domain=input_domain,
                )
                estimate = scheme.estimate(
                    population,
                    _attack_for(attack_kind),
                    rng=np.random.default_rng([_SEED, mech_index, scheme_index, 1]),
                )
                goldens[f"{mechanism_name}/{scheme_name}/{attack_kind}"] = float(estimate)
        # streaming + sharded paths (DAP only; bit-identity across paths is
        # covered elsewhere — here each path is pinned on its own RNG contract)
        scheme = _make("DAP-CEMF*", mechanism_name, protocol)
        stream = PopulationStream(
            dataset,
            _N_USERS,
            _GAMMA,
            rng=np.random.default_rng([_SEED, mech_index, 7, 0]),
            input_domain=input_domain,
            chunk_size=64,
        )
        goldens[f"{mechanism_name}/DAP-CEMF*/bba/stream"] = float(
            scheme.estimate_stream(
                stream,
                _attack_for("bba"),
                rng=np.random.default_rng([_SEED, mech_index, 7, 1]),
            )
        )
        scheme = _make("DAP-CEMF*", mechanism_name, protocol)
        population = build_population(
            dataset,
            _N_USERS,
            _GAMMA,
            rng=np.random.default_rng([_SEED, mech_index, 8, 0]),
            input_domain=input_domain,
        )
        goldens[f"{mechanism_name}/DAP-CEMF*/bba/sharded"] = float(
            scheme.estimate_sharded(
                population,
                _attack_for("bba"),
                rng=np.random.default_rng([_SEED, mech_index, 8, 1]),
                n_shards=2,
            )
        )
    for mech_index, mechanism_name in enumerate(ALL_NUMERICAL_MECHANISMS):
        input_domain = make_scheme(
            "Ostrich", epsilon=_EPSILON, mechanism_factory=mechanism_name
        ).mechanism.input_domain
        for scheme_index, scheme_name in enumerate(DEFENSE_SCHEMES):
            scheme = _make(scheme_name, mechanism_name, protocol)
            population = build_population(
                dataset,
                _N_USERS,
                _GAMMA,
                rng=np.random.default_rng([_SEED, 9, mech_index, scheme_index, 0]),
                input_domain=input_domain,
            )
            estimate = scheme.estimate(
                population,
                _attack_for("bba"),
                rng=np.random.default_rng([_SEED, 9, mech_index, scheme_index, 1]),
            )
            goldens[f"{mechanism_name}/{scheme_name}/bba"] = float(estimate)
    return goldens


def compute_frequency_goldens(protocol: str | None = None) -> dict:
    """k-RR frequency grid: every estimator, in-memory + sharded paths."""
    from repro.core.frequency import FrequencyDAP

    extra = {} if protocol is None else {"protocol": protocol}
    n_categories = 16
    rng = np.random.default_rng([_SEED, 100])
    categories = rng.integers(0, n_categories, size=600)
    goldens: dict[str, list[float]] = {}
    for estimator in ("emf", "emf_star", "cemf_star"):
        dap = FrequencyDAP(
            _EPSILON, n_categories, estimator=estimator, max_poisoned=3, **extra
        )
        result = dap.run(
            categories,
            poisoned_categories=(0, 3),
            n_byzantine=120,
            rng=np.random.default_rng([_SEED, 101]),
        )
        goldens[f"krr/{estimator}"] = [float(v) for v in result.frequencies]
    dap = FrequencyDAP(
        _EPSILON, n_categories, estimator="cemf_star", max_poisoned=3, **extra
    )
    reports = dap.collect_sharded(
        categories,
        poisoned_categories=(0, 3),
        n_byzantine=120,
        rng=np.random.default_rng([_SEED, 101]),
        n_shards=2,
    )
    goldens["krr/cemf_star/sharded"] = [
        float(v) for v in dap.estimate_from_counts(reports).frequencies
    ]
    return goldens


def compute_sketch_goldens(protocol: str | None = None) -> dict:
    """Count-sketch frequency route: heavy-hitter estimates + flags."""
    from repro.core.sketch_frequency import SketchFrequencyDAP

    extra = {} if protocol is None else {"protocol": protocol}
    n_categories = 64
    rng = np.random.default_rng([_SEED, 200])
    categories = rng.integers(0, n_categories, size=800)
    dap = SketchFrequencyDAP(
        _EPSILON,
        n_categories,
        sketch_rows=2,
        sketch_width=32,
        n_heavy_hitters=8,
        max_poisoned=2,
        **extra,
    )
    result = dap.run(
        categories,
        poisoned_categories=(1,),
        n_byzantine=160,
        rng=np.random.default_rng([_SEED, 201]),
    )
    return {
        "count-sketch/heavy_hitters": [int(c) for c in result.heavy_hitters],
        "count-sketch/frequencies": [float(v) for v in result.frequencies],
    }


def compute_goldens(protocol: str | None = None) -> dict:
    return {
        "mean": compute_mean_goldens(protocol),
        "frequency": compute_frequency_goldens(protocol),
        "sketch": compute_sketch_goldens(protocol),
    }


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(compute_goldens(), indent=1, sort_keys=True))
    print(f"wrote {GOLDEN_PATH}")
