"""Defence interface.

A defence consumes the full set of perturbed reports (normal + poison,
indistinguishable to the collector) and produces a mean estimate, optionally
reporting which reports it kept.  Every defence operates on the same inputs as
the DAP protocol so the evaluation harness can swap them freely.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ldp.base import NumericalMechanism
from repro.utils.rng import RngLike


@dataclass
class DefenseResult:
    """Outcome of running a defence on a batch of reports.

    Attributes
    ----------
    estimate:
        The defended mean estimate (in the normalised input domain).
    kept_mask:
        Optional boolean mask of reports that contributed to the estimate
        (``None`` when the defence does not prune individual reports).
    metadata:
        Free-form diagnostics (e.g. the trimming threshold used).
    """

    estimate: float
    kept_mask: Optional[np.ndarray] = None
    metadata: dict = field(default_factory=dict)

    @property
    def n_kept(self) -> Optional[int]:
        """Number of reports kept, when the defence prunes reports."""
        if self.kept_mask is None:
            return None
        return int(np.count_nonzero(self.kept_mask))


class Defense(abc.ABC):
    """Base class for mean-estimation defences."""

    #: short name used in experiment tables
    name: str = "defense"

    @abc.abstractmethod
    def estimate_mean(
        self,
        reports: np.ndarray,
        mechanism: NumericalMechanism,
        rng: RngLike = None,
    ) -> DefenseResult:
        """Estimate the normal users' mean from perturbed reports."""

    def __call__(
        self,
        reports: np.ndarray,
        mechanism: NumericalMechanism,
        rng: RngLike = None,
    ) -> float:
        """Convenience: return just the estimate."""
        return self.estimate_mean(reports, mechanism, rng).estimate

    @staticmethod
    def _validate_reports(reports: np.ndarray) -> np.ndarray:
        reports = np.asarray(reports, dtype=float).ravel()
        if reports.size == 0:
            raise ValueError("cannot run a defence on zero reports")
        return reports

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


__all__ = ["Defense", "DefenseResult"]
