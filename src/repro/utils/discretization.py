"""Bucket grids for discretising continuous value domains.

The EMF probing machinery of the paper works on two discretised domains: the
original value domain (d buckets over [-1, 1]) and the perturbed value domain
(d' buckets over [-C, C] for the Piecewise Mechanism).  :class:`BucketGrid`
captures one such uniform partition and the common operations on it —
assigning values to buckets, retrieving bucket centres ("median values" nu_j in
the paper) and widths, and slicing the grid into the left / right half used to
host poison-value buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_integer


@dataclass(frozen=True)
class BucketGrid:
    """A uniform partition of ``[low, high]`` into ``n_buckets`` buckets.

    Attributes
    ----------
    low, high:
        Domain endpoints (``low < high``).
    n_buckets:
        Number of equal-width buckets.
    """

    low: float
    high: float
    n_buckets: int
    edges: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_integer(self.n_buckets, "n_buckets", minimum=1)
        if not np.isfinite(self.low) or not np.isfinite(self.high):
            raise ValueError("Bucket grid endpoints must be finite")
        if self.high <= self.low:
            raise ValueError(
                f"high must exceed low, got low={self.low}, high={self.high}"
            )
        object.__setattr__(
            self, "edges", np.linspace(self.low, self.high, self.n_buckets + 1)
        )

    # ------------------------------------------------------------------
    # basic geometry
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """Width of each bucket."""
        return (self.high - self.low) / self.n_buckets

    @property
    def centers(self) -> np.ndarray:
        """Centre (median) value of each bucket — the paper's ``nu_j``."""
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """Return the ``(lower, upper)`` bounds of bucket ``index``."""
        if not 0 <= index < self.n_buckets:
            raise IndexError(f"bucket index {index} out of range [0, {self.n_buckets})")
        return float(self.edges[index]), float(self.edges[index + 1])

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def assign(self, values: np.ndarray) -> np.ndarray:
        """Map ``values`` to bucket indices in ``[0, n_buckets)``.

        Values outside the domain are clipped to the first / last bucket, which
        matches how the collector treats reports that sit exactly on (or just
        beyond, due to floating point) the domain boundary.

        Raises
        ------
        ValueError
            If any value is NaN or infinite.  NaN would otherwise go through
            ``astype(int)`` (an undefined conversion) and land in bucket 0,
            and ±inf would silently be clipped into an edge bucket — either
            way a corrupt report would be *counted* instead of rejected.
        """
        values = np.asarray(values, dtype=float)
        if not np.all(np.isfinite(values)):
            raise ValueError("bucket assignment requires finite values")
        idx = np.floor((values - self.low) / self.width).astype(int)
        return np.clip(idx, 0, self.n_buckets - 1)

    def counts(self, values: np.ndarray) -> np.ndarray:
        """Histogram counts of ``values`` over the grid."""
        idx = self.assign(values)
        return np.bincount(idx, minlength=self.n_buckets).astype(float)

    def frequencies(self, values: np.ndarray) -> np.ndarray:
        """Normalised histogram (sums to one) of ``values`` over the grid."""
        counts = self.counts(values)
        total = counts.sum()
        if total == 0:
            return np.full(self.n_buckets, 1.0 / self.n_buckets)
        return counts / total

    # ------------------------------------------------------------------
    # sub-grids
    # ------------------------------------------------------------------
    def sub_grid(self, low: float, high: float, n_buckets: int) -> "BucketGrid":
        """Return a new grid over ``[low, high]`` with ``n_buckets`` buckets."""
        return BucketGrid(low=low, high=high, n_buckets=n_buckets)

    def right_half(self, split: float | None = None) -> "BucketGrid":
        """Grid covering ``[split, high]`` with (roughly) half of the buckets.

        The paper hosts poison buckets on the poisoned side of the output
        domain; when ``split`` is the pessimistic mean ``O'`` this returns the
        grid for those poison buckets (Section IV-B, footnote 5).
        """
        split = 0.5 * (self.low + self.high) if split is None else float(split)
        if not self.low <= split < self.high:
            raise ValueError(f"split {split} must lie inside [{self.low}, {self.high})")
        frac = (self.high - split) / (self.high - self.low)
        n = max(1, int(np.ceil(self.n_buckets * frac)))
        return BucketGrid(low=split, high=self.high, n_buckets=n)

    def left_half(self, split: float | None = None) -> "BucketGrid":
        """Grid covering ``[low, split]`` — mirror of :meth:`right_half`."""
        split = 0.5 * (self.low + self.high) if split is None else float(split)
        if not self.low < split <= self.high:
            raise ValueError(f"split {split} must lie inside ({self.low}, {self.high}]")
        frac = (split - self.low) / (self.high - self.low)
        n = max(1, int(np.ceil(self.n_buckets * frac)))
        return BucketGrid(low=self.low, high=split, n_buckets=n)

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.n_buckets


def bucketize(values: np.ndarray, low: float, high: float, n_buckets: int) -> np.ndarray:
    """Convenience wrapper: assign ``values`` to buckets of a fresh grid."""
    return BucketGrid(low=low, high=high, n_buckets=n_buckets).assign(values)


def bucket_centers(low: float, high: float, n_buckets: int) -> np.ndarray:
    """Convenience wrapper: centres of a uniform grid over ``[low, high]``."""
    return BucketGrid(low=low, high=high, n_buckets=n_buckets).centers


__all__ = ["BucketGrid", "bucketize", "bucket_centers"]
