"""One fault-tolerant pool harness for every compute seam.

:class:`ResilientPool` generalises the three process-pool paths that grew
independently (the engine executor's work units, the sharded-collection
workers, and the service runtime's per-window collect) into one dispatcher
with an explicit recovery ladder:

1. **Retry with bounded exponential backoff** — a failed task is re-run up
   to ``max_attempts`` times, sleeping ``min(cap, base * 2**k)`` between
   attempts.  Safe by construction: every task is a pure function of its
   pre-drawn seeds, so a retried task is bit-identical to a first-try task
   (test-enforced).
2. **Timeout watchdog + straggler re-dispatch** — a task overdue past
   ``task_timeout`` is cancelled if possible; a task already running is left
   as a *straggler* and a duplicate is dispatched, first result wins (both
   compute the same bits).
3. **Pool reincarnation** — a worker death (segfault, OOM kill, injected
   ``os._exit``) breaks the whole ``ProcessPoolExecutor``; the harness
   builds a fresh pool and re-dispatches everything that was in flight, up
   to ``max_pool_restarts`` incarnations.
4. **Graceful degradation to serial** — an unpicklable payload, a pool that
   cannot start, or one that keeps dying falls back to in-process execution
   with a single per-run warning (one message shape for every seam).

The recovery ladder changes wall-clock time only, never output bits, so the
whole policy is an execution detail; recovery actions are counted in
:mod:`repro.resilience.stats` and surfaced under ``meta.execution.resilience``.
"""

from __future__ import annotations

import concurrent.futures
import os
from concurrent.futures.process import BrokenProcessPool
import pickle
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.resilience import stats
from repro.resilience.faults import FaultInjector, active_injector

#: exit code an injected "kill" fault uses in the doomed pool worker
KILL_EXIT_CODE = 86

#: pool-level failures that trigger reincarnation / serial degradation
_POOL_FAILURES = (OSError, BrokenProcessPool)


class TaskFailedError(RuntimeError):
    """A task kept failing after every allowed attempt."""


class InjectedFault(RuntimeError):
    """The deterministic exception raised by ``raise``/``kill`` fault entries."""


@dataclass(frozen=True)
class RetryPolicy:
    """The recovery knobs (execution details, never identity).

    Attributes
    ----------
    max_attempts:
        Total tries per task (first attempt included) before
        :class:`TaskFailedError`.
    task_timeout:
        Watchdog seconds per task attempt; ``None`` disables the watchdog.
        Enforced on pool dispatch only — a serial task cannot be preempted.
    backoff_base, backoff_cap:
        Bounded exponential backoff: retry ``k`` (0-based) sleeps
        ``min(backoff_cap, backoff_base * 2**k)`` seconds.
    max_pool_restarts:
        Pool incarnations allowed after worker deaths before the run
        degrades to serial execution.
    """

    max_attempts: int = 3
    task_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {self.task_timeout}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if self.max_pool_restarts < 0:
            raise ValueError(
                f"max_pool_restarts must be >= 0, got {self.max_pool_restarts}"
            )

    def backoff(self, retry_index: int) -> float:
        return min(self.backoff_cap, self.backoff_base * (2.0 ** retry_index))


DEFAULT_POLICY = RetryPolicy()

_active_policy: RetryPolicy = DEFAULT_POLICY


def active_policy() -> RetryPolicy:
    """The process's currently active retry policy."""
    return _active_policy


@contextmanager
def use_retry_policy(policy: RetryPolicy | None) -> Iterator[RetryPolicy]:
    """Scoped retry-policy selection; ``None`` keeps whatever is active."""
    global _active_policy
    if policy is None:
        yield _active_policy
        return
    previous = _active_policy
    _active_policy = policy
    try:
        yield policy
    finally:
        _active_policy = previous


# ----------------------------------------------------------------------
# one warning per run, one message shape for every seam
# ----------------------------------------------------------------------
_warned: Set[Tuple[str, str]] = set()


def reset_degradation_latch() -> None:
    """Re-arm the once-per-run degradation warning (run entry points call this)."""
    _warned.clear()


def _warn_degraded(label: str, category: str, reason: str) -> None:
    stats.record("serial_degradations")
    if (label, category) in _warned:
        return
    _warned.add((label, category))
    warnings.warn(
        f"resilient pool [{label}] degrading to serial execution: {reason}",
        RuntimeWarning,
        stacklevel=4,
    )


def _pool_entry(payload: Tuple[Callable[[Any], Any], Any, Optional[str]]) -> Any:
    """Module-level pool trampoline: runs the task, or dies/raises on command.

    The injected ``kill`` action exits the worker process the hard way
    (``os._exit``), which breaks the whole pool exactly like a segfault or an
    OOM kill would — that is the point: it exercises the same recovery path.
    """
    worker, task, action = payload
    if action == "kill":
        os._exit(KILL_EXIT_CODE)
    if action == "raise":
        raise InjectedFault("injected task failure")
    return worker(task)


class ResilientPool:
    """Run tasks serially or over a self-healing process pool, in task order.

    Parameters
    ----------
    n_workers:
        ``None`` / ``1`` for in-process execution, else the pool size
        (capped at the task count).  A pure execution detail.
    label:
        The seam name (``"engine.unit"``, ``"collect.shard"``); keys fault
        matching, the degradation warning and diagnostics.
    policy:
        Recovery knobs; defaults to the process's active
        :class:`RetryPolicy`.
    initializer, initargs:
        Forwarded to every pool incarnation (the engine ships its spec once
        per worker this way).
    """

    def __init__(
        self,
        n_workers: int | None,
        label: str,
        policy: RetryPolicy | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        n_workers = 1 if n_workers is None else int(n_workers)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.label = label
        self.policy = policy if policy is not None else active_policy()
        self.initializer = initializer
        self.initargs = initargs
        self.injector: FaultInjector | None = active_injector()

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run(
        self,
        worker: Callable[[Any], Any],
        tasks: Sequence[Any],
        pickle_probe: Any = None,
        serial_worker: Callable[[Any], Any] | None = None,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> List[Any]:
        """Run every task and return the results in task order.

        ``worker`` must be module-level (picklable by reference) for the pool
        path; ``serial_worker`` (default: ``worker``) runs in-process when the
        pool is not used — the engine passes a closure here because its pool
        worker reads process-global state installed by the initializer.
        ``pickle_probe`` is test-pickled before any pool is started, so
        unpicklable configurations degrade to serial instead of exploding
        inside a worker.  ``on_result`` fires once per completed task, in
        completion order.
        """
        tasks = list(tasks)
        serial_worker = serial_worker if serial_worker is not None else worker
        if not tasks:
            return []
        if self.n_workers <= 1 or len(tasks) <= 1:
            return self._run_serial(serial_worker, tasks, {}, on_result)
        try:
            pickle.dumps(pickle_probe if pickle_probe is not None else worker)
        except Exception as error:
            _warn_degraded(
                self.label,
                "unpicklable",
                f"task payload is not picklable ({error}); use module-level "
                f"components to enable the process pool",
            )
            return self._run_serial(serial_worker, tasks, {}, on_result)
        return self._run_pool(worker, tasks, serial_worker, on_result)

    # ------------------------------------------------------------------
    # serial path (also the degradation target)
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        worker: Callable[[Any], Any],
        tasks: Sequence[Any],
        results: Dict[int, Any],
        on_result: Callable[[int, Any], None] | None,
        attempts: Dict[int, int] | None = None,
    ) -> List[Any]:
        attempts = attempts if attempts is not None else {}
        for index, task in enumerate(tasks):
            if index in results:
                continue
            results[index] = self._run_one_serial(
                worker, task, index, attempts.get(index, 0)
            )
            if on_result is not None:
                on_result(index, results[index])
        return [results[index] for index in range(len(tasks))]

    def _run_one_serial(
        self, worker: Callable[[Any], Any], task: Any, index: int, attempt: int
    ) -> Any:
        while True:
            action = (
                self.injector.pool_fault(self.label, index, attempt)
                if self.injector is not None
                else None
            )
            try:
                if action == "timeout":
                    # no preemption in-process: an injected timeout becomes a
                    # watchdog event directly, exercising the same retry path
                    stats.record("timeouts")
                    raise TimeoutError("injected task timeout")
                if action is not None:
                    # a "kill" cannot take the dispatching process down with
                    # it in serial mode; it degrades to a raised fault
                    raise InjectedFault(f"injected {action} fault (serial mode)")
                return worker(task)
            except Exception as error:
                attempt += 1
                if attempt >= self.policy.max_attempts:
                    raise TaskFailedError(
                        f"resilient pool [{self.label}] task {index} failed "
                        f"after {attempt} attempts: {error}"
                    ) from error
                stats.record("retries")
                time.sleep(self.policy.backoff(attempt - 1))

    # ------------------------------------------------------------------
    # pool path
    # ------------------------------------------------------------------
    def _make_pool(self, n_tasks: int) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.n_workers, n_tasks),
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def _run_pool(
        self,
        worker: Callable[[Any], Any],
        tasks: Sequence[Any],
        serial_worker: Callable[[Any], Any],
        on_result: Callable[[int, Any], None] | None,
    ) -> List[Any]:
        policy = self.policy
        results: Dict[int, Any] = {}
        attempts: Dict[int, int] = {index: 0 for index in range(len(tasks))}
        pending: List[int] = list(range(len(tasks)))
        # future -> (task index, deadline or None); stragglers are futures
        # whose watchdog expired but that may still deliver a usable result
        inflight: Dict[concurrent.futures.Future, Tuple[int, Optional[float]]] = {}
        stragglers: Dict[concurrent.futures.Future, int] = {}
        restarts = 0
        pool: concurrent.futures.ProcessPoolExecutor | None = None

        def degrade(category: str, reason: str) -> List[Any]:
            _warn_degraded(self.label, category, reason)
            return self._run_serial(serial_worker, tasks, results, on_result, attempts)

        def note_retry(index: int, event: str, error: BaseException | str) -> None:
            attempts[index] += 1
            if attempts[index] >= policy.max_attempts:
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                raise TaskFailedError(
                    f"resilient pool [{self.label}] task {index} failed after "
                    f"{attempts[index]} attempts: {error}"
                )
            stats.record(event)
            time.sleep(policy.backoff(attempts[index] - 1))
            pending.append(index)

        def reincarnate(error: BaseException) -> bool:
            """Replace a broken pool; False when restarts are exhausted."""
            nonlocal pool, restarts
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
            # everything that was riding the dead pool goes back to pending
            for future, (index, _) in list(inflight.items()):
                if index not in results and index not in pending:
                    note_retry(index, "worker_deaths", error)
            inflight.clear()
            stragglers.clear()
            restarts += 1
            if restarts > policy.max_pool_restarts:
                return False
            stats.record("pool_restarts")
            return True

        try:
            pool = self._make_pool(len(tasks))
        except _POOL_FAILURES as error:
            return degrade("pool-start", f"process pool unavailable ({error})")

        try:
            while len(results) < len(tasks):
                # dispatch up to the worker count
                while pending and len(inflight) < self.n_workers:
                    index = pending.pop(0)
                    if index in results:
                        continue
                    attempt = attempts[index]
                    action = (
                        self.injector.pool_fault(self.label, index, attempt)
                        if self.injector is not None
                        else None
                    )
                    if action == "timeout":
                        # parent-side injection: the dispatch is charged as a
                        # watchdog timeout without waiting for the wall clock
                        note_retry(index, "timeouts", "injected task timeout")
                        continue
                    try:
                        future = pool.submit(
                            _pool_entry, (worker, tasks[index], action)
                        )
                    except _POOL_FAILURES as error:
                        pending.append(index)
                        if not reincarnate(error):
                            return degrade(
                                "pool-broken",
                                f"process pool kept failing ({error}); "
                                f"{restarts - 1} restarts exhausted",
                            )
                        pool = self._make_pool(len(tasks))
                        continue
                    deadline = (
                        None
                        if policy.task_timeout is None
                        else time.monotonic() + policy.task_timeout
                    )
                    inflight[future] = (index, deadline)

                if not inflight and not stragglers:
                    if not pending and len(results) < len(tasks):
                        raise RuntimeError(
                            f"resilient pool [{self.label}] lost track of "
                            f"{len(tasks) - len(results)} tasks (internal bug)"
                        )
                    continue

                deadlines = [d for _, d in inflight.values() if d is not None]
                wait_timeout = (
                    None
                    if not deadlines
                    else max(0.01, min(deadlines) - time.monotonic())
                )
                done, _ = concurrent.futures.wait(
                    set(inflight) | set(stragglers),
                    timeout=wait_timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )

                broken: BaseException | None = None
                for future in done:
                    if future in stragglers:
                        index = stragglers.pop(future)
                        if (
                            index not in results
                            and future.exception() is None
                        ):
                            # the straggler beat its replacement; identical
                            # bits either way, so first result wins
                            results[index] = future.result()
                            if on_result is not None:
                                on_result(index, results[index])
                        continue
                    if future not in inflight:
                        continue
                    index, _ = inflight.pop(future)
                    error = future.exception()
                    if error is None:
                        if index not in results:
                            results[index] = future.result()
                            if on_result is not None:
                                on_result(index, results[index])
                    elif isinstance(error, _POOL_FAILURES):
                        # a worker death poisons every future on the pool;
                        # charge this task an attempt and queue it now (it is
                        # already popped from inflight, so reincarnate() will
                        # not see it)
                        broken = error
                        note_retry(index, "worker_deaths", error)
                    else:
                        note_retry(index, "retries", error)

                if broken is not None:
                    if not reincarnate(broken):
                        return degrade(
                            "pool-broken",
                            f"process pool kept failing ({broken}); "
                            f"{restarts - 1} restarts exhausted",
                        )
                    pool = self._make_pool(len(tasks))
                    continue

                # watchdog: expire overdue futures
                now = time.monotonic()
                for future, (index, deadline) in list(inflight.items()):
                    if deadline is None or now < deadline or future.done():
                        continue
                    del inflight[future]
                    if not future.cancel():
                        # already running: keep it as a straggler while a
                        # duplicate is dispatched
                        stragglers[future] = index
                    note_retry(
                        index,
                        "timeouts",
                        f"task exceeded the {policy.task_timeout:g}s watchdog",
                    )
            return [results[index] for index in range(len(tasks))]
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)


def retry_call(
    fn: Callable[[], Any],
    label: str,
    event: str = "retries",
    retryable: tuple = (OSError,),
    policy: RetryPolicy | None = None,
) -> Any:
    """Run a side-effecting call with the pool's bounded-backoff retry.

    Used for I/O that must survive transient failure (artifact writes); the
    call must be idempotent — artifact and checkpoint writes are, because
    they go through atomic temp-file replacement.
    """
    policy = policy if policy is not None else active_policy()
    attempt = 0
    while True:
        try:
            return fn()
        except retryable as error:
            attempt += 1
            if attempt >= policy.max_attempts:
                raise
            stats.record(event)
            time.sleep(policy.backoff(attempt - 1))


__all__ = [
    "DEFAULT_POLICY",
    "InjectedFault",
    "KILL_EXIT_CODE",
    "ResilientPool",
    "RetryPolicy",
    "TaskFailedError",
    "active_policy",
    "reset_degradation_latch",
    "retry_call",
    "use_retry_policy",
]
