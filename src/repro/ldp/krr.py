"""k-ary Randomized Response (k-RR) for categorical data.

Each user holding category ``v`` reports ``v`` with probability
``p = e^eps / (e^eps + k - 1)`` and any *other* category uniformly at random
otherwise.  The collector de-biases observed report frequencies with

``f_hat_j = (c_j / n - q) / (p - q)``, ``q = 1 / (e^eps + k - 1)``.

k-RR is the mechanism used by the paper's frequency-estimation extension
(Section V-D and Figure 9 c/d): Byzantine users simply report their poisoned
category directly, and the DAP machinery probes which categories are poisoned.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backends import get_backend
from repro.ldp.base import CategoricalMechanism, MechanismError
from repro.registry import MECHANISMS
from repro.utils.rng import RngLike, ensure_rng


@MECHANISMS.register("krr", aliases=("k-rr",), kind="categorical")
class KRandomizedResponse(CategoricalMechanism):
    """k-RR mechanism over categories ``0 .. k-1``."""

    def __init__(self, epsilon: float, n_categories: int) -> None:
        super().__init__(epsilon, n_categories)
        exp_eps = math.exp(self.epsilon)
        #: probability of reporting the true category
        self.p = exp_eps / (exp_eps + self.n_categories - 1.0)
        #: probability of reporting one specific other category
        self.q = 1.0 / (exp_eps + self.n_categories - 1.0)

    def perturb(self, categories: np.ndarray, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        categories = self._validate_categories(categories)
        out = get_backend().krr_sample(
            categories.ravel(), self.n_categories, self.p, rng
        )
        return out.reshape(categories.shape)

    def report_counts(self, reports: np.ndarray) -> np.ndarray:
        """Raw counts of each category among the reports."""
        reports = self._validate_categories(reports)
        return np.bincount(reports.ravel(), minlength=self.n_categories).astype(float)

    def estimate_frequencies(self, reports: np.ndarray) -> np.ndarray:
        """Unbiased frequency estimates (may be slightly negative)."""
        reports = self._validate_categories(reports)
        n = reports.size
        if n == 0:
            raise MechanismError("cannot estimate frequencies from zero reports")
        observed = self.report_counts(reports) / n
        return (observed - self.q) / (self.p - self.q)

    def transition_matrix(self) -> np.ndarray:
        """``k x k`` matrix of ``Pr[report = i | true = j]``.

        Used by the frequency-estimation DAP to build the EMF transform matrix
        for categorical data.
        """
        k = self.n_categories
        matrix = np.full((k, k), self.q)
        np.fill_diagonal(matrix, self.p)
        return matrix

    def variance_per_report(self, frequency: float = 0.0) -> float:
        """Variance of one report's contribution to a frequency estimate."""
        n_term = self.q * (1.0 - self.q)
        f_term = frequency * (1.0 - frequency) * (self.p - self.q)
        return (n_term + f_term * (self.p + self.q - 1.0)) / (self.p - self.q) ** 2


__all__ = ["KRandomizedResponse"]
