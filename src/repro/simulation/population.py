"""User populations: split a dataset into normal and Byzantine users.

The paper parameterises every experiment by the total population ``N`` and the
Byzantine proportion ``gamma``; Byzantine users' *original* values are
irrelevant (they submit whatever the attack strategy chooses), so a population
is simply the normal users' values plus a Byzantine head-count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import NumericalDataset
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction, check_integer


@dataclass
class Population:
    """A user population for one experiment trial.

    Attributes
    ----------
    normal_values:
        Original values of the normal users (already in the mechanism's input
        domain).
    n_byzantine:
        Number of Byzantine users.
    true_mean:
        Ground truth the estimators are evaluated against: the mean of the
        *normal* users' values (the collector's goal per Section III-B).
    """

    normal_values: np.ndarray
    n_byzantine: int
    true_mean: float

    @property
    def n_normal(self) -> int:
        """Number of normal users."""
        return int(self.normal_values.size)

    @property
    def n_total(self) -> int:
        """Total number of users ``N``."""
        return self.n_normal + self.n_byzantine

    @property
    def gamma(self) -> float:
        """True Byzantine proportion ``gamma = m / N``."""
        if self.n_total == 0:
            return 0.0
        return self.n_byzantine / self.n_total


def build_population(
    dataset: NumericalDataset,
    n_users: int,
    gamma: float,
    rng: RngLike = None,
    input_domain: tuple[float, float] = (-1.0, 1.0),
) -> Population:
    """Sample a population of ``n_users`` with Byzantine proportion ``gamma``.

    Normal users' values are sampled from the dataset; when the target
    mechanism uses a different input domain (e.g. Square Wave's ``[0, 1]``),
    the values are affinely rescaled into it.
    """
    n_users = check_integer(n_users, "n_users", minimum=1)
    gamma = check_fraction(gamma, "gamma")
    rng = ensure_rng(rng)

    n_byzantine = int(round(n_users * gamma))
    n_normal = n_users - n_byzantine
    if n_normal <= 0:
        raise ValueError(
            f"gamma={gamma:g} leaves no normal users in a population of {n_users}"
        )
    values = dataset.sample(n_normal, rng)

    low, high = input_domain
    if (low, high) != (-1.0, 1.0):
        # dataset values are normalised to [-1, 1]; rescale to the target domain
        values = (values + 1.0) / 2.0 * (high - low) + low

    return Population(
        normal_values=values,
        n_byzantine=n_byzantine,
        true_mean=float(values.mean()),
    )


__all__ = ["Population", "build_population"]
