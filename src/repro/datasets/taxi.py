"""Synthetic stand-in for the NYC 2018-January Taxi pick-up-time dataset.

The paper extracts the pick-up time of day (seconds since midnight, 0-86340)
from the January 2018 New York taxi trip records (1,048,575 records) and
normalises it into ``[-1, 1]``; the reported normalised mean is 0.1190
(Figure 4c), i.e. pick-ups skew slightly towards the afternoon/evening.

We cannot download the Kaggle file offline, so this module synthesises a
pick-up-time distribution from a mixture of daily-activity components (a small
overnight tail, a morning rush, a broad midday plateau, and a strong
evening peak) whose mixture weights are tuned so the normalised mean lands
close to the paper's 0.1190.  The experiments only depend on the normalised
distribution's multi-modal shape and mean, so the substitution preserves the
behaviour being measured (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import NumericalDataset, normalize_to_unit
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_integer

#: seconds in one day minus one minute, matching the paper's 0..86340 range
SECONDS_IN_DAY = 86_340.0

#: (weight, mean hour, std hours) of each daily-activity component
_COMPONENTS = (
    (0.14, 2.0, 2.0),    # overnight trips
    (0.21, 8.5, 1.5),    # morning rush hour
    (0.30, 14.0, 3.0),   # midday / afternoon plateau
    (0.27, 19.0, 2.2),   # evening peak
    (0.08, 22.5, 1.2),   # late-night activity
)


def taxi_dataset(n_samples: int = 100_000, rng: RngLike = None) -> NumericalDataset:
    """Synthetic Taxi pick-up-time dataset normalised into ``[-1, 1]``."""
    check_integer(n_samples, "n_samples", minimum=1)
    rng = ensure_rng(rng)

    weights = np.array([c[0] for c in _COMPONENTS])
    weights = weights / weights.sum()
    means = np.array([c[1] for c in _COMPONENTS]) * 3600.0
    stds = np.array([c[2] for c in _COMPONENTS]) * 3600.0

    component = rng.choice(len(_COMPONENTS), size=n_samples, p=weights)
    seconds = rng.normal(means[component], stds[component])
    # wrap around midnight so overnight components stay realistic, then clip
    seconds = np.mod(seconds, SECONDS_IN_DAY)
    values = normalize_to_unit(seconds, 0.0, SECONDS_IN_DAY)

    return NumericalDataset(
        name="Taxi",
        values=values,
        raw_domain=(0.0, SECONDS_IN_DAY),
        description=(
            f"{n_samples} synthetic taxi pick-up times (seconds since midnight) drawn "
            "from a rush-hour mixture tuned to match the paper's normalised mean of "
            "~0.119 (substitute for the 2018-01 NYC taxi data; see DESIGN.md)."
        ),
    )


__all__ = ["taxi_dataset", "SECONDS_IN_DAY"]
