"""Square Wave (SW) mechanism of Li et al. for numerical distribution estimation.

The SW mechanism maps an input ``v`` in ``[0, 1]`` to an output in
``[-b, 1 + b]`` where

``b = (eps * e^eps - e^eps + 1) / (2 * e^eps * (e^eps - 1 - eps))``.

With probability mass concentrated on the window ``[v - b, v + b]`` (density
``p = e^eps / (2 b e^eps + 1)``) and the remaining mass spread uniformly over
the rest of the output domain (density ``q = 1 / (2 b e^eps + 1)``), the ratio
``p / q = e^eps`` gives epsilon-LDP.

SW reports are *not* unbiased estimates of the inputs, so mean estimation goes
through distribution reconstruction: the collector builds the transition
matrix over a bucket grid and runs Expectation-Maximisation with Smoothing
(:func:`repro.ldp.ems.expectation_maximization_smoothing`).  That is also how
the paper plugs SW into DAP (Section V-D, Figure 8): the EMF transform matrix
simply swaps PM's transition probabilities for SW's.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.backends import get_backend
from repro.ldp.base import NumericalMechanism
from repro.registry import MECHANISMS
from repro.utils.discretization import BucketGrid
from repro.utils.histogram import histogram_mean, normalize_histogram
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.transform_cache import cached_matrix, mechanism_cache_key


@MECHANISMS.register("square-wave", aliases=("sw", "square_wave"), kind="numerical")
class SquareWaveMechanism(NumericalMechanism):
    """Square Wave mechanism over the input domain ``[0, 1]``."""

    input_domain: Tuple[float, float] = (0.0, 1.0)

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        exp_eps = math.exp(self.epsilon)
        self._exp_eps = exp_eps
        denom = 2.0 * exp_eps * (exp_eps - 1.0 - self.epsilon)
        if denom <= 0:  # pragma: no cover - impossible for epsilon > 0
            raise ValueError("invalid epsilon for Square Wave mechanism")
        #: half-width of the high-probability window
        self.b = (self.epsilon * exp_eps - exp_eps + 1.0) / denom
        self._p_high = exp_eps / (2.0 * self.b * exp_eps + 1.0)
        self._p_low = 1.0 / (2.0 * self.b * exp_eps + 1.0)

    # ------------------------------------------------------------------
    # geometry / sampling
    # ------------------------------------------------------------------
    @property
    def output_domain(self) -> Tuple[float, float]:
        return (-self.b, 1.0 + self.b)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        values = self._validate_inputs(values)
        flat = values.ravel()
        out = get_backend().sw_sample(flat, self.b, self._p_high, self._p_low, rng)
        return out.reshape(values.shape)

    # ------------------------------------------------------------------
    # analytics
    # ------------------------------------------------------------------
    def interval_probability(self, value: float, out_low: float, out_high: float) -> float:
        """``Pr[v' in [out_low, out_high] | v = value]``."""
        lo, hi = self.output_domain
        out_low = max(out_low, lo)
        out_high = min(out_high, hi)
        if out_high <= out_low:
            return 0.0
        w_low, w_high = value - self.b, value + self.b
        high_overlap = max(0.0, min(out_high, w_high) - max(out_low, w_low))
        total = out_high - out_low
        low_overlap = total - high_overlap
        return high_overlap * self._p_high + low_overlap * self._p_low

    def interval_probability_matrix(
        self, values: np.ndarray, edges: np.ndarray
    ) -> np.ndarray:
        """Transition matrix ``(len(edges)-1, len(values))`` like PM's."""
        values = np.asarray(values, dtype=float)
        edges = np.asarray(edges, dtype=float)
        lo, hi = self.output_domain
        out_low = np.clip(edges[:-1][:, None], lo, hi)
        out_high = np.clip(edges[1:][:, None], lo, hi)
        total = np.clip(out_high - out_low, 0.0, None)
        w_low = (values - self.b)[None, :]
        w_high = (values + self.b)[None, :]
        high_overlap = np.clip(
            np.minimum(out_high, w_high) - np.maximum(out_low, w_low), 0.0, None
        )
        low_overlap = total - high_overlap
        return high_overlap * self._p_high + low_overlap * self._p_low

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def reconstruct_distribution(
        self,
        reports: np.ndarray,
        n_input_buckets: int = 256,
        n_output_buckets: int | None = None,
        smoothing: bool = True,
        max_iter: int = 1000,
        tol: float = 1e-6,
    ) -> tuple[np.ndarray, BucketGrid]:
        """Reconstruct the input distribution from SW reports via EM(S).

        Returns the normalised histogram over ``n_input_buckets`` buckets of
        ``[0, 1]`` together with the grid it lives on.
        """
        from repro.ldp.ems import expectation_maximization_smoothing

        reports = np.asarray(reports, dtype=float)
        if n_output_buckets is None:
            n_output_buckets = max(2 * n_input_buckets, 32)
        in_grid = BucketGrid(0.0, 1.0, n_input_buckets)
        out_grid = BucketGrid(*self.output_domain, n_output_buckets)
        # the EMS transition matrix depends only on (epsilon, grid sizes), so
        # repeated reconstructions in a sweep reuse the process-local cache
        transform = cached_matrix(
            mechanism_cache_key(self) + ("ems_transform", n_input_buckets, n_output_buckets),
            lambda: self.interval_probability_matrix(in_grid.centers, out_grid.edges),
        )
        counts = out_grid.counts(reports)
        histogram = expectation_maximization_smoothing(
            transform, counts, smoothing=smoothing, max_iter=max_iter, tol=tol
        )
        return histogram, in_grid

    def estimate_mean(self, reports: np.ndarray, n_input_buckets: int = 256) -> float:
        """Mean estimate via EMS distribution reconstruction."""
        histogram, grid = self.reconstruct_distribution(reports, n_input_buckets)
        return histogram_mean(normalize_histogram(histogram), grid.centers)

    def worst_case_variance(self) -> float:
        """Worst-case variance of a single raw report around its input.

        SW reports are biased towards the centre, so this is an upper bound on
        the spread used only for aggregation weighting heuristics.
        """
        lo, hi = self.output_domain
        # variance of a uniform distribution over the whole output domain
        return (hi - lo) ** 2 / 12.0


__all__ = ["SquareWaveMechanism"]
