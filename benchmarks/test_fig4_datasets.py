"""Benchmark: Figure 4 — dataset histograms and true means.

Paper claim (data description): the four numerical datasets have normalised
means of roughly -0.40, +0.41, +0.12 and -0.62; our offline substitutes must
land close so every downstream experiment measures the same regime.
"""

from repro.experiments import ExperimentScale, format_fig4, run_fig4


def test_fig4_dataset_summaries(benchmark):
    scale = ExperimentScale(n_users=50_000, n_trials=1)
    records = benchmark(run_fig4, scale, rng=0)
    print("\n" + format_fig4(records))

    for record in records:
        assert abs(record.mean - record.paper_mean) < 0.08
        assert abs(record.histogram.sum() - 1.0) < 1e-9
