"""Continuous-service runtime: windowed streaming aggregation.

The batch pipeline answers "what is the mean of this population, once?".
This package answers the production question: users keep arriving, the
collector keeps a running estimate, an attack may switch on mid-stream, and
the process must survive being killed.  See :mod:`repro.service.runtime`
for the full design notes.
"""

from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointChain,
    QUARANTINE_SUFFIX,
    load_checkpoint,
    payload_checksum,
    write_checkpoint,
)
from repro.service.detector import CusumDetector
from repro.service.runtime import (
    ServiceResult,
    WindowResult,
    WindowedAggregationService,
    format_window,
    run_service,
)
from repro.service.spec import DEFAULT_DETECTOR, SERVICE_KEYS, ServiceSpec

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointChain",
    "QUARANTINE_SUFFIX",
    "payload_checksum",
    "CusumDetector",
    "DEFAULT_DETECTOR",
    "SERVICE_KEYS",
    "ServiceResult",
    "ServiceSpec",
    "WindowResult",
    "WindowedAggregationService",
    "format_window",
    "load_checkpoint",
    "run_service",
    "write_checkpoint",
]
