"""Generic Expectation-Maximisation reconstruction (EM and EMS).

Both the Square Wave estimator (EMS, Li et al.) and the paper's EMF family are
instances of the same computation: given

* a column-stochastic *transition matrix* ``A`` of shape ``(d', K)`` where
  ``A[i, k] = Pr[report falls in output bucket i | latent component k]``, and
* observed output-bucket counts ``c`` of length ``d'``,

find the latent mixture weights ``F`` (length ``K``, summing to one) that
maximise the log-likelihood ``sum_i c_i * log((A @ F)_i)``.

The EM update is

* E-step:  ``P_k = F_k * sum_i c_i * A[i, k] / (A @ F)_i``
* M-step:  ``F_k = P_k / sum_j P_j``

EMF* and CEMF* only change the M-step (they renormalise the normal-user and
poison blocks separately), so :func:`em_reconstruct` accepts an optional
``m_step`` callback.  EMS adds a smoothing pass over the reconstructed
histogram after each M-step (binomial kernel ``[1, 2, 1] / 4``), which is what
``expectation_maximization_smoothing`` provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.backends import get_backend

MStep = Callable[[np.ndarray], np.ndarray]

#: minimum dense work saved per iteration (indicator columns x output rows)
#: before the split products beat plain BLAS; below this the gather/scatter
#: overhead dominates and the dense path is both faster and byte-stable with
#: the historical implementation
_INDICATOR_MIN_SAVINGS = 1 << 14


@dataclass
class EMResult:
    """Outcome of an EM reconstruction.

    Attributes
    ----------
    weights:
        Final latent mixture weights (length ``K``).
    log_likelihood:
        Log-likelihood at the final iterate.
    n_iterations:
        Number of EM iterations performed.
    converged:
        Whether the tolerance was reached before ``max_iter``.
    """

    weights: np.ndarray
    log_likelihood: float
    n_iterations: int
    converged: bool


def _validate_em_inputs(
    transform: np.ndarray,
    counts: np.ndarray,
    initial: Optional[np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared preamble of the scalar EM kernels.

    Validates the transform/counts geometry and returns the normalised
    initial weights (uniform when ``initial`` is ``None``), so the kernels'
    input contracts stay in lockstep.
    """
    transform = np.asarray(transform, dtype=float)
    counts = np.asarray(counts, dtype=float)
    if transform.ndim != 2:
        raise ValueError(f"transform must be 2-D, got shape {transform.shape}")
    d_out, n_components = transform.shape
    if counts.shape != (d_out,):
        raise ValueError(
            f"counts must have length {d_out} (transform rows), got {counts.shape}"
        )
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    if counts.sum() == 0:
        raise ValueError("counts must contain at least one observation")
    if initial is None:
        weights = np.full(n_components, 1.0 / n_components)
    else:
        weights = np.asarray(initial, dtype=float).copy()
        if weights.shape != (n_components,):
            raise ValueError(
                f"initial weights must have length {n_components}, got {weights.shape}"
            )
        total = weights.sum()
        if total <= 0:
            raise ValueError("initial weights must have positive mass")
        weights = weights / total
    return transform, counts, weights


def em_reconstruct(
    transform: np.ndarray,
    counts: np.ndarray,
    initial: Optional[np.ndarray] = None,
    max_iter: int = 10_000,
    tol: float = 1e-6,
    m_step: Optional[MStep] = None,
    fixed_zero: Optional[np.ndarray] = None,
    indicator_tail: Optional[np.ndarray] = None,
    gap_tol: Optional[float] = None,
) -> EMResult:
    """Run EM on a latent-mixture reconstruction problem.

    Parameters
    ----------
    transform:
        ``(d', K)`` transition matrix; every column should sum to (at most) 1.
    counts:
        Observed counts per output bucket, length ``d'``.
    initial:
        Optional initial weights; defaults to uniform over the ``K`` components.
    max_iter, tol:
        Convergence is declared when the absolute log-likelihood improvement
        drops below ``tol``.
    m_step:
        Optional replacement for the default "normalise to one" M-step.  The
        callback receives the un-normalised responsibilities ``P`` and must
        return the next weight vector.
    fixed_zero:
        Optional boolean mask of components forced to zero throughout (used by
        CEMF* bucket suppression).
    indicator_tail:
        Optional row indices declaring that the trailing ``len(indicator_tail)``
        columns of ``transform`` are one-hot indicator columns: column
        ``K - P + j`` is 1 at row ``indicator_tail[j]`` and 0 elsewhere (the
        EMF poison block and the k-RR poison columns have exactly this shape).
        Both per-iteration matrix products then split into a dense product
        over the leading columns plus a gather/scatter over the indicator
        rows, cutting the cost from ``O(d' * K)`` to ``O(d' * (K - P))`` —
        the dominant cost of large-population EMF runs, where the poison
        block holds half the output grid.  The indices must be unique and the
        declared columns genuinely one-hot (spot-checked).
    gap_tol:
        Optional optimality-gap stopping rule.  The log-likelihood is concave
        in the weights, so at any iterate ``F`` with gradient
        ``g = A^T (c / (A F))`` the optimum is bounded by
        ``LL* <= LL(F) + max_k g_k - sum_k F_k g_k`` — both terms the E-step
        already computes.  When the gap drops below ``gap_tol`` the iterate's
        likelihood is *certified* to be within ``gap_tol`` of the optimum and
        the loop stops (converged), typically long before the per-iteration
        improvement crawls under ``tol``.  ``None`` (the default) keeps the
        historical, bit-stable ``tol``-only behaviour.  Components pinned by
        ``fixed_zero`` are excluded from the gradient max; a non-default
        ``m_step`` constrains the feasible set further, which only loosens
        the (still valid) bound.

    Returns
    -------
    EMResult
    """
    transform, counts, weights = _validate_em_inputs(transform, counts, initial)
    d_out, n_components = transform.shape
    backend = get_backend()

    zero_mask = None
    if fixed_zero is not None:
        zero_mask = np.asarray(fixed_zero, dtype=bool)
        if zero_mask.shape != (n_components,):
            raise ValueError("fixed_zero mask must align with the number of components")
        weights = weights.copy()
        weights[zero_mask] = 0.0
        total = weights.sum()
        if total <= 0:
            raise ValueError("fixed_zero mask suppresses every component")
        weights /= total

    if indicator_tail is not None and (
        np.asarray(indicator_tail).size * d_out < _INDICATOR_MIN_SAVINGS
    ):
        # too small to pay for the split products; a deterministic function
        # of the problem shape, so any two runs on the same statistics still
        # take the same branch
        indicator_tail = None
    if indicator_tail is not None:
        tail = np.asarray(indicator_tail, dtype=np.intp).ravel()
        n_dense = n_components - tail.size
        if n_dense < 0:
            raise ValueError(
                f"indicator_tail declares {tail.size} indicator columns but the "
                f"transform only has {n_components}"
            )
        if tail.size and (
            tail.size != np.unique(tail).size
            or not np.all(transform[tail, np.arange(n_dense, n_components)] == 1.0)
        ):
            raise ValueError(
                "indicator_tail rows must be unique and each declared column "
                "must be 1.0 at its indicator row"
            )
        dense = np.ascontiguousarray(transform[:, :n_dense])

        def _mixture(w: np.ndarray) -> np.ndarray:
            out = backend.matvec(dense, w[:n_dense])
            if tail.size:
                out[tail] += w[n_dense:]
            return out

        def _aggregate(v: np.ndarray) -> np.ndarray:
            out = np.empty(n_components)
            out[:n_dense] = backend.rmatvec(dense, v)
            out[n_dense:] = v[tail]
            return out

    else:

        def _mixture(w: np.ndarray) -> np.ndarray:
            return backend.matvec(transform, w)

        def _aggregate(v: np.ndarray) -> np.ndarray:
            return backend.rmatvec(transform, v)

    # One matrix-vector product per iteration: the mixture computed for the
    # convergence check is exactly the mixture the next E-step needs, so it is
    # carried forward instead of being recomputed (bit-identical, ~1/3 fewer
    # BLAS calls).  The mixture is clamped once, right after it is computed —
    # the clamped values serve both the log-likelihood (clamping commutes with
    # the mask) and the next E-step division, instead of being re-clamped in
    # each place.  The log-likelihood mask is constant across iterations.
    mask = counts > 0
    masked_counts = counts[mask]
    mixture = np.maximum(_mixture(weights), 1e-300)
    prev_ll = float(np.dot(masked_counts, np.log(mixture[mask])))
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        # responsibilities aggregated over output buckets
        aggregate = _aggregate(counts / mixture)
        if gap_tol is not None:
            feasible_max = (
                aggregate.max()
                if zero_mask is None
                else aggregate[~zero_mask].max()
            )
            if feasible_max - float(np.dot(weights, aggregate)) < gap_tol:
                # certified: no feasible weights beat prev_ll by >= gap_tol
                iteration -= 1
                converged = True
                break
        responsibilities = weights * aggregate
        if zero_mask is not None:
            responsibilities[zero_mask] = 0.0
        if m_step is None:
            total = responsibilities.sum()
            if total <= 0:
                break
            weights = responsibilities / total
        else:
            weights = np.asarray(m_step(responsibilities), dtype=float)
            if zero_mask is not None:
                weights = weights.copy()
                weights[zero_mask] = 0.0
        mixture = np.maximum(_mixture(weights), 1e-300)
        ll = float(np.dot(masked_counts, np.log(mixture[mask])))
        if abs(ll - prev_ll) < tol:
            prev_ll = ll
            converged = True
            break
        prev_ll = ll

    return EMResult(
        weights=weights,
        log_likelihood=prev_ll,
        n_iterations=iteration,
        converged=converged,
    )


def em_reconstruct_accelerated(
    transform: np.ndarray,
    counts: np.ndarray,
    initial: Optional[np.ndarray] = None,
    max_iter: int = 10_000,
    tol: float = 1e-6,
    gap_tol: Optional[float] = None,
    ll_floor: Optional[float] = None,
    stall_tol: Optional[float] = None,
) -> EMResult:
    """SQUAREM-accelerated EM for the plain (normalising) M-step.

    EM's terminal phase on nearly-flat likelihood directions advances by a
    vanishing amount per iteration; squared extrapolation (Varadhan &
    Roland's SQUAREM, scheme S3) jumps along the direction two successive EM
    steps agree on: from ``F0`` take ``F1 = EM(F0)``, ``F2 = EM(F1)``, set
    ``r = F1 - F0``, ``v = (F2 - F1) - r`` and step to
    ``F0 - 2*a*r + a^2*v`` with ``a = -||r|| / ||v||``, followed by one
    stabilising EM step; whenever the extrapolated likelihood falls short of
    the plain two-step likelihood, the cycle falls back to ``F2``, so the
    iteration stays monotone and converges to the same (global, the
    likelihood being concave) maximiser as :func:`em_reconstruct` — in far
    fewer iterations on the crawl regimes where it matters.

    The counter weighs each cycle as its number of EM-equivalent steps.  Use
    for hypothesis *evaluation* (where only the converged likelihood and
    weights matter); keep :func:`em_reconstruct` where the historical
    iterate-for-iterate sequence must be preserved.
    """
    transform, counts, weights = _validate_em_inputs(transform, counts, initial)
    backend = get_backend()

    mask = counts > 0
    masked_counts = counts[mask]

    def _mixture(w: np.ndarray) -> np.ndarray:
        return np.maximum(backend.matvec(transform, w), 1e-300)

    def _log_likelihood(m: np.ndarray) -> float:
        return float(np.dot(masked_counts, np.log(m[mask])))

    def _em_step(w: np.ndarray, m: np.ndarray) -> Optional[np.ndarray]:
        out = w * backend.rmatvec(transform, counts / m)
        total = out.sum()
        if total <= 0:
            return None
        return out / total

    mixture = _mixture(weights)
    prev_ll = _log_likelihood(mixture)
    iteration = 0
    converged = False
    while iteration < max_iter:
        if gap_tol is not None:
            gradient = backend.rmatvec(transform, counts / mixture)
            gap = float(gradient.max() - np.dot(weights, gradient))
            if gap < gap_tol:
                converged = True
                break
            if ll_floor is not None and prev_ll + gap < ll_floor:
                break  # certified below the floor: unconverged lower bound
        f1 = _em_step(weights, mixture)
        if f1 is None:
            break
        m1 = _mixture(f1)
        f2 = _em_step(f1, m1)
        if f2 is None:
            weights, mixture = f1, m1
            prev_ll = _log_likelihood(m1)
            iteration += 1
            break
        iteration += 2
        best_w, best_m = f2, _mixture(f2)
        best_ll = _log_likelihood(best_m)
        r = f1 - weights
        v = (f2 - f1) - r
        vv = float(np.dot(v, v))
        if vv > 0:
            alpha = -np.sqrt(float(np.dot(r, r)) / vv)
            if alpha < -1.0:  # alpha == -1 reproduces f2 exactly
                extrapolated = weights - 2.0 * alpha * r + (alpha * alpha) * v
                # floor, don't clip: a weight extrapolated to exactly zero is
                # an absorbing state of the multiplicative EM update, and a
                # long jump that zeroes a needed coordinate would otherwise
                # park the iteration on a boundary face it can never leave
                np.maximum(extrapolated, 1e-16, out=extrapolated)
                total = extrapolated.sum()
                if total > 0:
                    stabilised = _em_step(
                        extrapolated / total, _mixture(extrapolated / total)
                    )
                    if stabilised is not None:
                        iteration += 1
                        candidate_m = _mixture(stabilised)
                        candidate_ll = _log_likelihood(candidate_m)
                        if candidate_ll >= best_ll:
                            best_w, best_m, best_ll = (
                                stabilised,
                                candidate_m,
                                candidate_ll,
                            )
        weights, mixture = best_w, best_m
        delta = abs(best_ll - prev_ll)
        prev_ll = best_ll
        if stall_tol is not None and ll_floor is not None and best_ll < ll_floor and delta < stall_tol:
            # a sub-floor hypothesis stalling: see the batched kernel's
            # stall_tol rationale
            converged = True
            break
        if delta < tol:
            if gap_tol is not None:
                # the caller asked for a certificate, so an ll-stall alone
                # does not end the solve: a near-boundary iterate can make
                # sub-tol progress for many cycles while the duality gap
                # still certifies it far from the optimum
                gradient = backend.rmatvec(transform, counts / mixture)
                if float(gradient.max() - np.dot(weights, gradient)) >= gap_tol:
                    continue
            converged = True
            break

    return EMResult(
        weights=weights,
        log_likelihood=prev_ll,
        n_iterations=min(iteration, max_iter),
        converged=converged,
    )


@dataclass
class BatchEMResult:
    """Outcome of a batched multi-hypothesis EM reconstruction.

    Attributes
    ----------
    weights:
        Final latent weights, one row per hypothesis (``(H, K)``); padded
        tail columns (see :func:`em_reconstruct_batch`) hold zeros.
    log_likelihoods:
        Log-likelihood of each hypothesis at its final iterate (``(H,)``).
    n_iterations:
        EM iterations each hypothesis performed before converging (``(H,)``).
    converged:
        Whether each hypothesis met the tolerance before ``max_iter``.
    screened:
        Whether a hypothesis was stopped early by the ``ll_floor`` screen —
        its certified optimum lies *below* the floor, so its reported
        log-likelihood is a valid lower bound that can never reach the floor.
    """

    weights: np.ndarray
    log_likelihoods: np.ndarray
    n_iterations: np.ndarray
    converged: np.ndarray
    screened: np.ndarray


def em_reconstruct_batch(
    dense: np.ndarray,
    counts: np.ndarray,
    tail_rows: np.ndarray,
    tail_mask: Optional[np.ndarray] = None,
    initial: Optional[np.ndarray] = None,
    max_iter: int = 10_000,
    tol: float = 1e-6,
    gap_tol: Optional[float] = None,
    ll_floor: Optional[float] = None,
) -> BatchEMResult:
    """Run EM on a batch of hypotheses sharing one dense transform block.

    Hypothesis ``h`` has the transition matrix ``[dense | E_h]`` where
    ``E_h`` holds one one-hot *indicator* column per entry of
    ``tail_rows[h]`` (column ``t`` is 1 at output row ``tail_rows[h, t]``).
    This is exactly the shape of the EMF poison block and of the k-RR poison
    columns, so one batch evaluates every candidate poison hypothesis of a
    greedy probing round — or both side hypotheses of Algorithm 3 — at once:
    each EM iteration advances *all* still-active hypotheses with a single
    BLAS matrix product over the shared dense block plus a gather/scatter
    over the indicator rows, instead of one full EM solve per hypothesis.

    Parameters
    ----------
    dense:
        ``(d', n_dense)`` shared dense block (each column a sub-distribution
        over the output buckets).
    counts:
        Observed output-bucket counts, length ``d'`` (shared by every
        hypothesis — they explain the same observations).
    tail_rows:
        ``(H, T)`` integer array of indicator rows, or ``(H, T, S)`` for
        *spread* tails: tail column ``t`` of hypothesis ``h`` then places
        mass ``1/S`` on each of the ``S`` distinct rows ``tail_rows[h, t]``
        (the shape of a sketch poison column, which lands on one cell per
        sketch row).  ``S = 1`` squeezes to the one-hot path bit-identically.
        Hypotheses with fewer than ``T`` real tail columns are *padded*:
        repeat any of their real rows and mark the padding ``False`` in
        ``tail_mask`` — padded components are pinned to weight zero and
        never influence the fit.
    tail_mask:
        Optional ``(H, T)`` boolean mask of real (non-padding) tail columns;
        ``None`` means every column is real.
    initial:
        Optional ``(H, K)`` initial weights (``K = n_dense + T``); defaults
        to per-hypothesis uniform over the real components.  Rows are
        normalised; padded entries are forced to zero.  Warm starts go here.
    max_iter, tol:
        Per-hypothesis convergence controls, with the same semantics as
        :func:`em_reconstruct`: a hypothesis stops when its absolute
        log-likelihood improvement drops below ``tol`` (convergence masking —
        finished hypotheses stop consuming compute while stragglers iterate).
    gap_tol:
        Optional optimality-gap stopping rule (see :func:`em_reconstruct`):
        a hypothesis whose certified gap ``max_k g_k - sum_k F_k g_k`` drops
        below ``gap_tol`` stops converged, its likelihood provably within
        ``gap_tol`` of its optimum.  EM's terminal crawl — thousands of
        iterations each improving the likelihood by less than ``tol`` — is
        exactly the regime this skips.
    ll_floor:
        Optional screening floor: a hypothesis whose certified *upper* bound
        ``LL + max_k g_k - sum_k F_k g_k`` falls below ``ll_floor`` can never
        reach the floor, so it is stopped immediately and flagged in
        ``screened``.  This is how a greedy probing round discards candidates
        that provably cannot achieve the acceptance gain, without running
        them to convergence.

    Returns
    -------
    BatchEMResult
    """
    dense = np.asarray(dense, dtype=float)
    counts = np.asarray(counts, dtype=float)
    if dense.ndim != 2:
        raise ValueError(f"dense block must be 2-D, got shape {dense.shape}")
    d_out, n_dense = dense.shape
    if counts.shape != (d_out,):
        raise ValueError(
            f"counts must have length {d_out} (dense rows), got {counts.shape}"
        )
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    if counts.sum() == 0:
        raise ValueError("counts must contain at least one observation")
    tail_rows = np.asarray(tail_rows, dtype=np.intp)
    spread = None
    if tail_rows.ndim == 3:
        if tail_rows.shape[2] == 1:
            tail_rows = tail_rows[:, :, 0]
        elif tail_rows.shape[2] > 1:
            spread = tail_rows.shape[2]
        else:
            raise ValueError("spread tail_rows need at least one row per column")
    if tail_rows.ndim != 2 and spread is None:
        raise ValueError(
            f"tail_rows must be (H, T) or (H, T, S), got shape {tail_rows.shape}"
        )
    n_hypotheses, n_tail = tail_rows.shape[:2]
    if n_hypotheses == 0:
        raise ValueError("at least one hypothesis is required")
    if n_tail and (tail_rows.min() < 0 or tail_rows.max() >= d_out):
        raise ValueError("tail_rows must index output rows of the dense block")
    if spread is not None and n_tail:
        # each spread column scatters 1/S onto its S rows with one
        # fancy-indexed add per s; duplicate rows within a column would be
        # silently lost by that add, so they are rejected up front
        sorted_rows = np.sort(tail_rows, axis=2)
        if np.any(sorted_rows[:, :, 1:] == sorted_rows[:, :, :-1]):
            raise ValueError(
                "spread tail_rows must be distinct within each tail column"
            )
    inv_spread = None if spread is None else 1.0 / spread
    if tail_mask is None:
        tail_mask = np.ones((n_hypotheses, n_tail), dtype=bool)
    else:
        tail_mask = np.asarray(tail_mask, dtype=bool)
        if tail_mask.shape != (n_hypotheses, n_tail):
            raise ValueError(
                f"tail_mask must have shape {(n_hypotheses, n_tail)}, got "
                f"{tail_mask.shape}"
            )
    n_components = n_dense + n_tail
    real_counts = n_dense + tail_mask.sum(axis=1)
    backend = get_backend()

    if initial is None:
        weights = np.repeat(1.0 / real_counts[:, None], n_components, axis=1)
        weights[:, n_dense:][~tail_mask] = 0.0
    else:
        weights = np.array(initial, dtype=float)
        if weights.shape != (n_hypotheses, n_components):
            raise ValueError(
                f"initial weights must have shape "
                f"{(n_hypotheses, n_components)}, got {weights.shape}"
            )
        weights[:, n_dense:][~tail_mask] = 0.0
        totals = weights.sum(axis=1)
        if np.any(totals <= 0):
            raise ValueError("every hypothesis needs positive initial mass")
        weights /= totals[:, None]

    mask = counts > 0
    masked_counts = counts[mask]
    full_mask = bool(mask.all())

    # The inner loop operates on *compacted* state — only the still-active
    # hypotheses — and writes a hypothesis back to the full-size output
    # arrays the moment it finishes, so converged hypotheses stop costing
    # anything (convergence masking) and the loop never pays fancy-indexed
    # scatters into the full arrays per iteration.
    def _mixtures(w: np.ndarray, rows: np.ndarray, index: np.ndarray) -> np.ndarray:
        """Clamped mixtures for the active block: one GEMM + column scatters."""
        out = backend.matmul(w[:, :n_dense], dense.T)
        # one fancy-indexed add per tail column (and per spread slot): the
        # (row, column) pairs within a single assignment are unique — across
        # hypotheses trivially, across spread slots by the distinctness
        # check — and padded columns add exact zeros
        if spread is None:
            for t in range(n_tail):
                out[index, rows[:, t]] += w[:, n_dense + t]
        else:
            for t in range(n_tail):
                share = w[:, n_dense + t] * inv_spread
                for s in range(spread):
                    out[index, rows[:, t, s]] += share
        return np.maximum(out, 1e-300)

    def _log_likelihoods(mixtures: np.ndarray) -> np.ndarray:
        if full_mask:
            return np.log(mixtures) @ masked_counts
        return np.log(mixtures[:, mask]) @ masked_counts

    log_likelihoods = np.empty(n_hypotheses)
    n_iterations = np.zeros(n_hypotheses, dtype=np.intp)
    converged = np.zeros(n_hypotheses, dtype=bool)
    screened = np.zeros(n_hypotheses, dtype=bool)

    use_bounds = gap_tol is not None or ll_floor is not None
    has_pads = not bool(tail_mask.all())

    active = np.arange(n_hypotheses)  # original hypothesis ids, compacted
    w_active = weights.copy()
    rows_active = tail_rows
    mask_active = tail_mask
    index = np.arange(n_hypotheses)
    mixtures = _mixtures(w_active, rows_active, index)
    ll_active = _log_likelihoods(mixtures)
    log_likelihoods[:] = ll_active
    # In certified mode a handful of stragglers finish on the accelerated
    # scalar solver — extrapolation beats batching once the joint fan-out is
    # gone, and the finisher also stops when a whole accelerated cycle
    # improves the likelihood by less than an eighth of ``gap_tol`` (the
    # caller's own declaration of decision-irrelevant margin), so it never
    # grinds for certification precision no decision can see.  In bit-stable
    # mode only a lone straggler leaves the joint loop, onto the plain
    # scalar kernel, continuing the same update semantics (iterate-level
    # floating point differs from the joint GEMM's summation order either
    # way — callers needing bit-stability use the scalar kernel outright).
    straggler_cutoff = 3 if gap_tol is not None else 1
    # Certified mode stops a *sub-floor* hypothesis when its per-iteration
    # improvement drops below an eighth of gap_tol: a candidate crawling
    # beneath the acceptance floor is in EM's terminal wander (deltas orders
    # of magnitude above a 1e-9 tol yet going nowhere) and would otherwise
    # pin the whole batch at max_iter.  Hypotheses currently at or above the
    # floor — the potential winners, whose converged likelihood becomes the
    # next round's baseline — keep the full tolerance.  Unlike the ll_floor
    # screen this is a stopping *heuristic*, not a certificate (a winner
    # could in principle crawl below the floor before rising); callers rely
    # on the selection-equivalence tests and the benchmark's
    # selections-match gate, not on a proof.
    stall_tol = (
        max(tol, 0.125 * gap_tol)
        if gap_tol is not None and ll_floor is not None
        else None
    )
    iteration = 0
    while active.size and iteration < max_iter:
        if active.size <= straggler_cutoff:
            for position, h in enumerate(map(int, active)):
                real = np.ones(n_components, dtype=bool)
                real[n_dense:] = tail_mask[h]
                real_rows = tail_rows[h][tail_mask[h]]
                transform = np.zeros((d_out, int(real.sum())))
                transform[:, :n_dense] = dense
                if spread is None:
                    for t, row in enumerate(real_rows):
                        transform[row, n_dense + t] = 1.0
                else:
                    for t in range(real_rows.shape[0]):
                        transform[real_rows[t], n_dense + t] = inv_spread
                budget = max_iter - iteration
                if gap_tol is not None:
                    result = em_reconstruct_accelerated(
                        transform,
                        counts,
                        initial=w_active[position][real],
                        max_iter=budget,
                        tol=tol,
                        gap_tol=gap_tol,
                        ll_floor=ll_floor,
                        stall_tol=stall_tol,
                    )
                    if (
                        ll_floor is not None
                        and not result.converged
                        and result.n_iterations < budget
                    ):
                        # the finisher stopped early without converging:
                        # that is its certified-below-the-floor break
                        screened[h] = True
                else:
                    result = em_reconstruct(
                        transform,
                        counts,
                        initial=w_active[position][real],
                        max_iter=budget,
                        tol=tol,
                        # spread columns are not one-hot, so the indicator
                        # split does not apply to them
                        indicator_tail=real_rows if spread is None else None,
                    )
                weights[h][real] = result.weights
                weights[h][~real] = 0.0
                log_likelihoods[h] = result.log_likelihood
                n_iterations[h] = iteration + result.n_iterations
                converged[h] = result.converged
            active = active[:0]
            break
        iteration += 1
        ratios = counts / mixtures  # zero counts contribute zero everywhere
        aggregates = np.empty((active.size, n_components))
        backend.matmul(ratios, dense, out=aggregates[:, :n_dense])
        if spread is None:
            for t in range(n_tail):
                aggregates[:, n_dense + t] = ratios[index, rows_active[:, t]]
        else:
            for t in range(n_tail):
                aggregates[:, n_dense + t] = inv_spread * (
                    ratios[index[:, None], rows_active[:, t, :]].sum(axis=1)
                )
        responsibilities = w_active * aggregates
        totals = responsibilities.sum(axis=1)
        if use_bounds:
            # certified optimality gap at the current iterate (see gap_tol):
            # the aggregate IS the likelihood gradient and totals its inner
            # product with the weights, so the bounds come almost for free
            if has_pads:
                feasible_max = aggregates[:, :n_dense].max(axis=1)
                for t in range(n_tail):
                    feasible_max = np.maximum(
                        feasible_max,
                        np.where(
                            mask_active[:, t],
                            aggregates[:, n_dense + t],
                            -np.inf,
                        ),
                    )
            else:
                feasible_max = aggregates.max(axis=1)
            gaps = feasible_max - totals
            stop_conv = (
                gaps < gap_tol
                if gap_tol is not None
                else np.zeros(active.size, dtype=bool)
            )
            if ll_floor is not None:
                stop_screen = ((ll_active + gaps) < ll_floor) & ~stop_conv
                halt = stop_conv | stop_screen
            else:
                stop_screen = np.zeros(active.size, dtype=bool)
                halt = stop_conv
            if np.any(halt):
                ids = active[halt]
                weights[ids] = w_active[halt]
                log_likelihoods[ids] = ll_active[halt]
                n_iterations[ids] = iteration - 1
                converged[ids] = stop_conv[halt]
                screened[ids] = stop_screen[halt]
                keep = ~halt
                active = active[keep]
                if active.size == 0:
                    break
                w_active = w_active[keep]
                rows_active = rows_active[keep]
                if has_pads:
                    mask_active = mask_active[keep]
                responsibilities = responsibilities[keep]
                totals = totals[keep]
                ll_active = ll_active[keep]
                index = index[: active.size]
        dead = totals <= 0
        if np.any(dead):
            # mirror em_reconstruct: stop before the update, unconverged
            # (prior weights and log-likelihood are already in the outputs)
            weights[active[dead]] = w_active[dead]
            log_likelihoods[active[dead]] = ll_active[dead]
            n_iterations[active[dead]] = iteration
            keep = ~dead
            active = active[keep]
            if active.size == 0:
                break
            w_active = w_active[keep]
            rows_active = rows_active[keep]
            if has_pads:
                mask_active = mask_active[keep]
            responsibilities = responsibilities[keep]
            totals = totals[keep]
            ll_active = ll_active[keep]
            index = index[: active.size]
        w_active = responsibilities / totals[:, None]
        mixtures = _mixtures(w_active, rows_active, index)
        lls = _log_likelihoods(mixtures)
        deltas = np.abs(lls - ll_active)
        done = deltas < tol
        if stall_tol is not None:
            done |= (lls < ll_floor) & (deltas < stall_tol)
        ll_active = lls
        if np.any(done):
            finished = active[done]
            weights[finished] = w_active[done]
            log_likelihoods[finished] = lls[done]
            converged[finished] = True
            n_iterations[finished] = iteration
            keep = ~done
            active = active[keep]
            w_active = w_active[keep]
            rows_active = rows_active[keep]
            if has_pads:
                mask_active = mask_active[keep]
            mixtures = mixtures[keep]
            ll_active = ll_active[keep]
            index = index[: active.size]
    if active.size:
        # max_iter exhausted with several hypotheses still running
        weights[active] = w_active
        log_likelihoods[active] = ll_active
        n_iterations[active] = max_iter

    return BatchEMResult(
        weights=weights,
        log_likelihoods=log_likelihoods,
        n_iterations=n_iterations,
        converged=converged,
        screened=screened,
    )


def smooth_histogram(histogram: np.ndarray, passes: int = 1) -> np.ndarray:
    """Apply the EMS binomial smoothing kernel ``[1, 2, 1] / 4``.

    Edge buckets use the truncated kernel re-normalised over the in-range
    entries, matching Li et al.'s implementation.
    """
    histogram = np.asarray(histogram, dtype=float)
    if histogram.size < 3 or passes <= 0:
        return histogram.copy()
    out = histogram.copy()
    for _ in range(passes):
        padded = np.empty(out.size + 2)
        padded[1:-1] = out
        padded[0] = out[0]
        padded[-1] = out[-1]
        smoothed = (padded[:-2] + 2.0 * padded[1:-1] + padded[2:]) / 4.0
        total = smoothed.sum()
        if total > 0:
            smoothed *= out.sum() / total
        out = smoothed
    return out


def expectation_maximization_smoothing(
    transform: np.ndarray,
    counts: np.ndarray,
    smoothing: bool = True,
    max_iter: int = 1000,
    tol: float = 1e-6,
) -> np.ndarray:
    """EMS reconstruction used by the Square Wave estimator.

    Runs EM with a smoothing pass folded into every M-step and returns the
    normalised reconstructed histogram.
    """

    def smoothed_m_step(responsibilities: np.ndarray) -> np.ndarray:
        total = responsibilities.sum()
        if total <= 0:
            return np.full_like(responsibilities, 1.0 / responsibilities.size)
        weights = responsibilities / total
        if smoothing:
            weights = smooth_histogram(weights)
            weights = np.clip(weights, 0.0, None)
            weights /= weights.sum()
        return weights

    result = em_reconstruct(
        transform, counts, max_iter=max_iter, tol=tol, m_step=smoothed_m_step
    )
    weights = np.clip(result.weights, 0.0, None)
    total = weights.sum()
    if total <= 0:
        return np.full_like(weights, 1.0 / weights.size)
    return weights / total


__all__ = [
    "EMResult",
    "BatchEMResult",
    "em_reconstruct",
    "em_reconstruct_batch",
    "smooth_histogram",
    "expectation_maximization_smoothing",
]
