"""Setuptools entry point.

The pyproject.toml carries all metadata; this stub exists so that editable
installs work in fully offline environments where pip cannot fetch an isolated
build backend (``pip install -e . --no-build-isolation`` or legacy mode).
"""

from setuptools import setup

setup()
