"""Estimation schemes: a uniform interface over DAP variants and baselines.

Every scheme exposes ``estimate(population, attack, rng) -> float`` so the
trial runner and the figure drivers can treat DAP-EMF, DAP-EMF*, DAP-CEMF*,
Ostrich, Trimming, the k-means defence, and any other defence interchangeably
— exactly the set of curves the paper plots.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Sequence

import numpy as np

from repro.attacks.base import Attack, NoAttack
from repro.core.baseline_protocol import BaselineProtocol
from repro.core.dap import DAPConfig, DAPProtocol
from repro.core.probing import check_probe_strategy
from repro.protocol.plan import check_protocol
from repro.defenses.base import Defense
from repro.ldp.base import NumericalMechanism
from repro.ldp.piecewise import PiecewiseMechanism
from repro.registry import DEFENSES, MECHANISMS, SCHEMES
from repro.simulation.population import Population, PopulationStream
from repro.utils.profiling import stage
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs

MechanismFactory = Callable[[float], NumericalMechanism]


class Scheme(abc.ABC):
    """A named mean-estimation scheme evaluated by the harness."""

    name: str = "scheme"

    #: whether :meth:`estimate_stream` runs in bounded memory (overridden by
    #: schemes with a native chunked collection path)
    supports_streaming: bool = False

    #: whether :meth:`estimate_sharded` actually fans the collection round
    #: out over shard workers (overridden by schemes with a sharded path)
    supports_sharding: bool = False

    @abc.abstractmethod
    def estimate(
        self, population: Population, attack: Attack | None, rng: RngLike = None
    ) -> float:
        """Run one collection round and return the mean estimate."""

    def configure_probing(self, strategy: str) -> "Scheme":
        """Set the probe-strategy execution knob, where the scheme has one.

        Schemes with a probing stage (the DAP variants, the baseline
        protocol) override this to switch between the batched and the
        bit-stable cold hypothesis evaluation
        (:data:`repro.core.probing.PROBE_STRATEGIES`); schemes without a
        probing stage validate the name and ignore it, so an experiment-wide
        override can be applied across a mixed scheme list.
        """
        check_probe_strategy(strategy)
        return self

    def configure_protocol(self, protocol: str) -> "Scheme":
        """Set the collection trust model (identity knob), where it applies.

        The DAP variants override this to lower their collection round to
        the requested :mod:`repro.protocol` pipeline (``"local"`` /
        ``"shuffle"``); schemes without a budget ladder (the single-round
        defences, the two-budget baseline with its fixed public split)
        validate the name and ignore it — shuffling cannot blind their
        adversary to a group structure they do not have — so an
        experiment-wide ``protocol`` override can be applied across a mixed
        scheme list.
        """
        check_protocol(protocol)
        return self

    def estimate_sharded(
        self,
        population: Population,
        attack: Attack | None,
        rng: RngLike = None,
        n_shards: int = 1,
        n_workers: int | None = None,
    ) -> float:
        """Run one collection round split into shards (see
        :meth:`repro.core.dap.DAPProtocol.collect_sharded`).

        Schemes with a map-reducible collection round (DAP) override this to
        process shards in parallel and fold the per-shard accumulators; the
        default runs the ordinary single-process :meth:`estimate`, which is
        correct but ignores ``n_shards`` / ``n_workers``.
        """
        return float(self.estimate(population, attack, rng=rng))

    def estimate_stream(
        self, stream: PopulationStream, attack: Attack | None, rng: RngLike = None
    ) -> float:
        """Run one collection round over a chunked population stream.

        Schemes with a chunked collection path (DAP) override this to stay in
        bounded memory; the default materialises the stream and defers to
        :meth:`estimate`, which is correct but costs the full population's
        memory — fine for the classical baselines at the scales they can run
        at anyway.
        """
        return float(self.estimate(stream.materialize(), attack, rng=rng))

    def estimate_batch(
        self,
        populations: "Sequence[Population]",
        attack: Attack | None,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Estimate a stack of trial populations, one estimate per trial.

        The default implementation spawns one child stream per trial and runs
        :meth:`estimate` in a loop; schemes whose collection round is a single
        vectorisable mechanism call override this to perturb all trials at
        once (see :meth:`SingleRoundScheme.estimate_batch`).
        """
        rngs = spawn_rngs(ensure_rng(rng), len(populations))
        return np.array(
            [
                float(self.estimate(population, attack, rng=trial_rng))
                for population, trial_rng in zip(populations, rngs)
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class DAPScheme(Scheme):
    """One of the three DAP variants (EMF / EMF* / CEMF*)."""

    def __init__(self, config: DAPConfig, name: str | None = None) -> None:
        self.config = config
        self.protocol = DAPProtocol(config)
        suffix = {"emf": "EMF", "emf_star": "EMF*", "cemf_star": "CEMF*"}[config.estimator]
        self.name = name or f"DAP-{suffix}"

    def configure_probing(self, strategy: str) -> "DAPScheme":
        """Switch the protocol's side-probe strategy (execution detail)."""
        self.config.probe_strategy = check_probe_strategy(strategy)
        return self

    def configure_protocol(self, protocol: str) -> "DAPScheme":
        """Switch the collection trust model (identity knob).

        Mutates the shared config, so the already-built ``DAPProtocol``
        picks the new plan up lazily on its next collection round.
        """
        self.config.protocol = check_protocol(protocol)
        return self

    supports_streaming = True

    def estimate(
        self, population: Population, attack: Attack | None, rng: RngLike = None
    ) -> float:
        result = self.protocol.run(
            population.normal_values,
            attack or NoAttack(),
            population.n_byzantine,
            rng=rng,
        )
        return result.estimate

    def estimate_stream(
        self, stream: PopulationStream, attack: Attack | None, rng: RngLike = None
    ) -> float:
        """Constant-memory round: chunked collection into group accumulators."""
        result = self.protocol.run_stream(
            stream.chunks(),
            stream.n_normal,
            attack or NoAttack(),
            stream.n_byzantine,
            rng=rng,
        )
        return result.estimate

    supports_sharding = True

    def estimate_sharded(
        self,
        population: Population,
        attack: Attack | None,
        rng: RngLike = None,
        n_shards: int = 1,
        n_workers: int | None = None,
    ) -> float:
        """Sharded round: per-block seeded collection, merged accumulators."""
        result = self.protocol.run_sharded(
            population.normal_values,
            attack or NoAttack(),
            population.n_byzantine,
            rng=rng,
            n_shards=n_shards,
            n_workers=n_workers,
        )
        return result.estimate


class SingleRoundScheme(Scheme):
    """A classical defence applied to one full-budget collection round.

    Normal users perturb once with the whole budget; Byzantine users submit
    one poison report each; the wrapped :class:`~repro.defenses.base.Defense`
    turns the mixed reports into an estimate.  This is how the paper runs the
    Ostrich / Trimming / k-means baselines.
    """

    def __init__(
        self,
        defense: Defense,
        epsilon: float,
        mechanism_factory: MechanismFactory = PiecewiseMechanism,
        name: str | None = None,
    ) -> None:
        self.defense = defense
        self.mechanism = mechanism_factory(epsilon)
        self.name = name or defense.name

    def estimate(
        self, population: Population, attack: Attack | None, rng: RngLike = None
    ) -> float:
        rng = ensure_rng(rng)
        attack = attack or NoAttack()
        with stage("collect"):
            with stage("collect.sample"):
                normal_reports = self.mechanism.perturb(population.normal_values, rng)
            with stage("collect.poison"):
                poison_reports = attack.poison_reports(
                    population.n_byzantine, self.mechanism, 0.0, rng
                ).reports
            reports = np.concatenate([normal_reports, poison_reports])
        with stage("defense"):
            return self.defense.estimate_mean(reports, self.mechanism, rng).estimate

    def estimate_batch(
        self,
        populations: Sequence[Population],
        attack: Attack | None,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Batched collection: one ``perturb`` call for all trials.

        All trials' normal values are stacked into a single array and
        perturbed in one mechanism call, and all trials' poison reports are
        drawn in one attack call, instead of one call per trial.  The reports
        are then split back per trial and fed to the defence.
        """
        rng = ensure_rng(rng)
        attack = attack or NoAttack()

        with stage("collect"):
            normal_sizes = np.array([p.n_normal for p in populations])
            stacked = np.concatenate([p.normal_values for p in populations])
            with stage("collect.sample"):
                perturbed = self.mechanism.perturb(stacked, rng)
            normal_reports = np.split(perturbed, np.cumsum(normal_sizes)[:-1])

            byzantine_sizes = np.array([p.n_byzantine for p in populations])
            total_byzantine = int(byzantine_sizes.sum())
            with stage("collect.poison"):
                poison_all = (
                    attack.poison_reports(
                        total_byzantine, self.mechanism, 0.0, rng
                    ).reports
                    if total_byzantine
                    else np.empty(0)
                )
            poison_reports = np.split(poison_all, np.cumsum(byzantine_sizes)[:-1])

        with stage("defense"):
            estimates = np.empty(len(populations))
            for index, (normal, poison) in enumerate(
                zip(normal_reports, poison_reports)
            ):
                reports = np.concatenate([normal, poison])
                estimates[index] = self.defense.estimate_mean(
                    reports, self.mechanism, rng
                ).estimate
            return estimates


class BaselineProtocolScheme(Scheme):
    """The Section IV two-budget baseline protocol as a scheme."""

    def __init__(
        self,
        epsilon: float,
        alpha_fraction: float = 0.1,
        evade_probing: bool = False,
        mechanism_factory: MechanismFactory = PiecewiseMechanism,
        name: str | None = None,
    ) -> None:
        self.protocol = BaselineProtocol(
            epsilon, alpha_fraction=alpha_fraction, mechanism_factory=mechanism_factory
        )
        self.evade_probing = evade_probing
        self.name = name or ("Baseline(evaded)" if evade_probing else "Baseline")

    def configure_probing(self, strategy: str) -> "BaselineProtocolScheme":
        """Switch the protocol's side-probe strategy (execution detail)."""
        self.protocol.probe_strategy = check_probe_strategy(strategy)
        return self

    def estimate(
        self, population: Population, attack: Attack | None, rng: RngLike = None
    ) -> float:
        result = self.protocol.run(
            population.normal_values,
            attack or NoAttack(),
            population.n_byzantine,
            evade_probing=self.evade_probing,
            rng=rng,
        )
        return result.estimate


#: scheme names used throughout the paper's mean-estimation figures
PAPER_SCHEMES = ("DAP-EMF", "DAP-EMF*", "DAP-CEMF*", "Ostrich", "Trimming")


# ----------------------------------------------------------------------
# registry-backed construction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _DAPBuilder:
    """Registered builder for one DAP variant (picklable, unlike a closure)."""

    estimator: str
    display: str

    def __call__(
        self,
        epsilon: float,
        epsilon_min: float = 1.0 / 16.0,
        mechanism_factory: MechanismFactory = PiecewiseMechanism,
        **kwargs,
    ) -> Scheme:
        config = DAPConfig(
            epsilon=epsilon,
            epsilon_min=epsilon_min,
            estimator=self.estimator,
            mechanism_factory=mechanism_factory,
            **kwargs,
        )
        return DAPScheme(config, name=self.display)


SCHEMES.register("DAP-EMF")(_DAPBuilder("emf", "DAP-EMF"))
SCHEMES.register("DAP-EMF*")(_DAPBuilder("emf_star", "DAP-EMF*"))
SCHEMES.register("DAP-CEMF*")(_DAPBuilder("cemf_star", "DAP-CEMF*"))


@SCHEMES.register("Baseline")
def _build_baseline(
    epsilon: float,
    epsilon_min: float = 1.0 / 16.0,
    mechanism_factory: MechanismFactory = PiecewiseMechanism,
    **kwargs,
) -> Scheme:
    """The Section IV two-budget baseline protocol (``epsilon_min`` unused)."""
    return BaselineProtocolScheme(epsilon, mechanism_factory=mechanism_factory, **kwargs)


def resolve_mechanism(mechanism: str | MechanismFactory) -> MechanismFactory:
    """Resolve a mechanism given by registered name or as a factory/class.

    Only numerical mechanisms can back a mean-estimation scheme; naming a
    categorical frequency oracle (k-RR, OUE, OLH) is rejected explicitly.
    """
    if isinstance(mechanism, str):
        entry = MECHANISMS.entry(mechanism)
        if entry.metadata.get("kind") == "categorical":
            raise ValueError(
                f"mechanism {mechanism!r} is a categorical frequency oracle; "
                f"mean-estimation schemes need a numerical mechanism"
            )
        return entry.factory
    if callable(mechanism):
        return mechanism
    raise TypeError(
        f"mechanism must be a registered name or a factory, got {mechanism!r}"
    )


def _single_round_from_defense(
    name: str,
    params: Mapping[str, Any],
    epsilon: float,
    mechanism_factory: MechanismFactory,
) -> Scheme:
    """Wrap a registered defence as a full-budget single-round scheme."""
    entry = DEFENSES.entry(name)
    return SingleRoundScheme(
        DEFENSES.create(name, **params), epsilon, mechanism_factory, name=entry.name
    )


def make_scheme(
    name: str,
    epsilon: float,
    epsilon_min: float = 1.0 / 16.0,
    mechanism_factory: str | MechanismFactory = PiecewiseMechanism,
    label: str | None = None,
    **kwargs,
) -> Scheme:
    """Instantiate a scheme by its registered (case-insensitive) name.

    Every name in the scheme registry (``DAP-EMF``, ``DAP-EMF*``,
    ``DAP-CEMF*``, ``Baseline``) is accepted, and so is every registered
    defence (``Ostrich``, ``Trimming``, ``K-means``, ``Boxplot``,
    ``IsolationForest``), which is wrapped in a full-budget
    :class:`SingleRoundScheme`.  Extra keyword arguments are forwarded to the
    underlying constructor (e.g. ``sampling_rate`` for ``K-means``);
    ``mechanism_factory`` may be a registered mechanism name or a factory;
    ``label`` overrides the display name (useful when the same scheme appears
    with several parameterisations, e.g. ``K-means(beta=0.3)``).

    Raises
    ------
    KeyError
        If the name is neither a registered scheme nor a registered defence;
        the message lists every available name.
    """
    mechanism_factory = resolve_mechanism(mechanism_factory)
    if name in SCHEMES:
        scheme = SCHEMES.create(
            name,
            epsilon=epsilon,
            epsilon_min=epsilon_min,
            mechanism_factory=mechanism_factory,
            **kwargs,
        )
    elif name in DEFENSES:
        scheme = _single_round_from_defense(name, kwargs, epsilon, mechanism_factory)
    else:
        raise KeyError(
            f"unknown scheme {name!r}; registered schemes: "
            f"{', '.join(SCHEMES.names())}; defenses usable as single-round "
            f"schemes: {', '.join(DEFENSES.names())}"
        )
    if label is not None:
        scheme.name = label
    return scheme


#: keys accepted in a declarative scheme spec mapping
SCHEME_SPEC_KEYS = ("name", "defense", "mechanism", "params", "label")


def scheme_from_spec(
    spec: str | Mapping[str, Any],
    epsilon: float,
    epsilon_min: float = 1.0 / 16.0,
    default_mechanism: str | MechanismFactory = PiecewiseMechanism,
) -> Scheme:
    """Construct a scheme from a declarative ``(mechanism, defense, params)`` spec.

    ``spec`` is either a registered scheme/defence name, or a mapping with the
    keys of :data:`SCHEME_SPEC_KEYS`:

    * ``name`` — a registered scheme or defence name, **or**
    * ``defense`` — a registered defence name, wrapped as a single-round
      scheme (exactly one of ``name`` / ``defense`` must be given);
    * ``mechanism`` — registered numerical mechanism name (default
      ``default_mechanism``);
    * ``params`` — keyword arguments for the scheme / defence constructor;
    * ``label`` — display-name override.

    This is the construction path behind scenario files and the cross-grid
    drivers: components are referenced purely by registered name, and unknown
    names raise ``KeyError`` listing what is available.
    """
    if isinstance(spec, str):
        spec = {"name": spec}
    elif isinstance(spec, Mapping):
        spec = dict(spec)
    else:
        raise TypeError(f"scheme spec must be a name or a mapping, got {spec!r}")
    unknown = sorted(set(spec) - set(SCHEME_SPEC_KEYS))
    if unknown:
        raise ValueError(
            f"unknown scheme-spec keys {unknown}; allowed: {', '.join(SCHEME_SPEC_KEYS)}"
        )
    name = spec.get("name")
    defense = spec.get("defense")
    if (name is None) == (defense is None):
        raise ValueError(
            f"scheme spec must give exactly one of 'name' or 'defense', got {spec!r}"
        )
    mechanism_factory = resolve_mechanism(spec.get("mechanism", default_mechanism))
    params = dict(spec.get("params", {}))
    label = spec.get("label")
    if defense is not None:
        scheme = _single_round_from_defense(defense, params, epsilon, mechanism_factory)
        if label is not None:
            scheme.name = label
        return scheme
    return make_scheme(
        name,
        epsilon=epsilon,
        epsilon_min=epsilon_min,
        mechanism_factory=mechanism_factory,
        label=label,
        **params,
    )


__all__ = [
    "Scheme",
    "DAPScheme",
    "SingleRoundScheme",
    "BaselineProtocolScheme",
    "make_scheme",
    "scheme_from_spec",
    "resolve_mechanism",
    "SCHEME_SPEC_KEYS",
    "PAPER_SCHEMES",
]
