"""Threat models: Byzantine attacks against LDP aggregation.

Implements the paper's threat model hierarchy:

* :class:`~repro.attacks.gba.GeneralByzantineAttack` — Definition 2: colluding
  attackers submit *arbitrary* values in the perturbation output domain.
* :class:`~repro.attacks.bba.BiasedByzantineAttack` — Definition 4: all poison
  values sit on one side of the true mean, drawn from a configurable
  distribution over a configurable sub-range (the paper's ``Poi[r_l, r_r]``).
* :class:`~repro.attacks.input_manipulation.InputManipulationAttack` — the IMA
  of Cheu et al. / Li et al.: attackers pick an input poison value ``g`` and
  then follow the LDP protocol honestly, which is weaker but harder to detect.
* :class:`~repro.attacks.evasion.EvasionAttack` — Section V-D robustness
  analysis: a fraction ``a`` of poison values is placed on the opposite side to
  fool the poisoned-side probing.
* :func:`~repro.attacks.reduction.reduce_gba_to_bba` — the constructive
  reduction of Theorem 1.
"""

from repro.attacks.base import Attack, AttackReport, NoAttack
from repro.attacks.distributions import (
    PoisonDistribution,
    UniformPoison,
    GaussianPoison,
    BetaPoison,
    PointMassPoison,
    PoisonRange,
    PAPER_POISON_RANGES,
)
from repro.attacks.gba import GeneralByzantineAttack
from repro.attacks.bba import BiasedByzantineAttack
from repro.attacks.input_manipulation import InputManipulationAttack
from repro.attacks.evasion import EvasionAttack
from repro.attacks.reduction import reduce_gba_to_bba, equivalent_bba_reports, total_deviation

__all__ = [
    "Attack",
    "AttackReport",
    "NoAttack",
    "PoisonDistribution",
    "UniformPoison",
    "GaussianPoison",
    "BetaPoison",
    "PointMassPoison",
    "PoisonRange",
    "PAPER_POISON_RANGES",
    "GeneralByzantineAttack",
    "BiasedByzantineAttack",
    "InputManipulationAttack",
    "EvasionAttack",
    "reduce_gba_to_bba",
    "equivalent_bba_reports",
    "total_deviation",
]
