"""Tests for the baseline protocol (Section IV) and the DAP protocol (Section V)."""

import numpy as np
import pytest

from repro.attacks import BiasedByzantineAttack, NoAttack, PAPER_POISON_RANGES
from repro.core.baseline_protocol import BaselineProtocol
from repro.core.dap import DAPConfig, DAPProtocol, GroupCollection
from repro.defenses import OstrichDefense
from repro.ldp import PiecewiseMechanism, SquareWaveMechanism


@pytest.fixture(scope="module")
def normal_values():
    rng = np.random.default_rng(99)
    return np.clip(rng.normal(0.15, 0.25, 6_000), -1, 1)


ATTACK = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])


class TestDAPConfig:
    def test_budget_ladder(self):
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 8)
        assert config.budget_ladder == [1.0, 0.5, 0.25, 0.125]
        assert config.n_groups == 4

    def test_single_group_when_min_equals_total(self):
        assert DAPConfig(epsilon=1.0, epsilon_min=1.0).n_groups == 1

    def test_invalid_epsilon_min(self):
        with pytest.raises(ValueError):
            DAPConfig(epsilon=0.5, epsilon_min=1.0)

    def test_invalid_estimator(self):
        with pytest.raises(ValueError):
            DAPConfig(epsilon=1.0, estimator="other")

    def test_invalid_intra_group_mean(self):
        with pytest.raises(ValueError):
            DAPConfig(epsilon=1.0, intra_group_mean="bogus")


class TestDAPCollect:
    def test_group_structure(self, normal_values):
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 4)
        protocol = DAPProtocol(config)
        groups = protocol.collect(normal_values, ATTACK, n_byzantine=2_000, rng=0)
        assert len(groups) == config.n_groups
        # every user lands in exactly one group
        assert sum(g.n_users for g in groups) == normal_values.size + 2_000

    def test_small_budget_groups_have_more_reports(self, normal_values):
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 4)
        groups = DAPProtocol(config).collect(normal_values, ATTACK, 2_000, rng=0)
        by_eps = {g.epsilon: g for g in groups}
        # reports scale like 1/epsilon_t for (roughly) equal-sized groups
        assert by_eps[0.25].n_reports > by_eps[0.5].n_reports > by_eps[1.0].n_reports

    def test_reports_within_group_output_domain(self, normal_values):
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 4)
        protocol = DAPProtocol(config)
        groups = protocol.collect(normal_values, ATTACK, 1_000, rng=0)
        for group in groups:
            mech = protocol.mechanism_for(group.epsilon)
            assert group.reports.min() >= mech.output_domain[0] - 1e-9
            assert group.reports.max() <= mech.output_domain[1] + 1e-9

    def test_no_users_rejected(self):
        protocol = DAPProtocol(DAPConfig(epsilon=1.0))
        with pytest.raises(ValueError):
            protocol.collect(np.array([]), NoAttack(), 0, rng=0)

    def test_reports_per_user_cap(self):
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 64, max_reports_per_user=4)
        assert DAPProtocol(config)._reports_per_user(1 / 64) == 4


class TestDAPAggregate:
    def test_detects_attack_and_corrects(self, normal_values):
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 16, estimator="emf_star")
        result = DAPProtocol(config).run(normal_values, ATTACK, n_byzantine=2_000, rng=1)
        assert result.poisoned_side == "right"
        assert result.gamma_hat == pytest.approx(0.25, abs=0.08)
        assert result.estimate == pytest.approx(normal_values.mean(), abs=0.15)

    def test_beats_ostrich_under_attack(self, normal_values):
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 16, estimator="cemf_star")
        dap_estimate = DAPProtocol(config).run(normal_values, ATTACK, 2_000, rng=2).estimate

        mech = PiecewiseMechanism(1.0)
        rng = np.random.default_rng(2)
        reports = np.concatenate(
            [mech.perturb(normal_values, rng), ATTACK.poison_reports(2_000, mech, 0.0, rng).reports]
        )
        ostrich_estimate = OstrichDefense()(reports, mech, rng)
        truth = normal_values.mean()
        assert abs(dap_estimate - truth) < abs(ostrich_estimate - truth)

    def test_no_attack_estimate_accurate(self, normal_values):
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 8)
        result = DAPProtocol(config).run(normal_values, NoAttack(), 0, rng=3)
        assert result.estimate == pytest.approx(normal_values.mean(), abs=0.1)
        assert result.gamma_hat < 0.1

    def test_weights_sum_to_one_and_favour_large_epsilon(self, normal_values):
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 8)
        result = DAPProtocol(config).run(normal_values, ATTACK, 2_000, rng=4)
        assert result.weights.sum() == pytest.approx(1.0)
        by_eps = sorted(result.group_estimates, key=lambda g: g.epsilon)
        assert by_eps[-1].weight == max(g.weight for g in result.group_estimates)

    def test_estimator_variants_all_run(self, normal_values):
        for estimator in ("emf", "emf_star", "cemf_star"):
            config = DAPConfig(epsilon=1.0, epsilon_min=1 / 4, estimator=estimator)
            result = DAPProtocol(config).run(normal_values, ATTACK, 1_500, rng=5)
            assert -1.0 <= result.estimate <= 1.0

    def test_aggregate_rejects_empty_groups(self):
        protocol = DAPProtocol(DAPConfig(epsilon=1.0))
        with pytest.raises(ValueError):
            protocol.aggregate([GroupCollection(epsilon=1.0, reports=np.array([]))])

    def test_aggregate_collector_only_entry_point(self, normal_values):
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 4)
        protocol = DAPProtocol(config)
        groups = protocol.collect(normal_values, ATTACK, 1_000, rng=6)
        result = protocol.aggregate(groups)
        assert len(result.group_estimates) == len(groups)

    def test_left_side_attack_detected(self, normal_values):
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"], side="left")
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 16)
        result = DAPProtocol(config).run(normal_values, attack, 2_000, rng=7)
        assert result.poisoned_side == "left"
        assert result.estimate == pytest.approx(normal_values.mean(), abs=0.2)


class TestDAPWithSquareWave:
    def test_distribution_mode_runs(self):
        # SW reconstruction needs a reasonable signal (epsilon not too small)
        # at this test scale; the paper's Figure 8 runs it on 10^6 users.
        rng = np.random.default_rng(0)
        values = rng.beta(2, 5, 6_000)  # already in [0, 1]
        config = DAPConfig(
            epsilon=2.0,
            epsilon_min=1.0,
            estimator="emf_star",
            mechanism_factory=SquareWaveMechanism,
            intra_group_mean="distribution",
        )
        result = DAPProtocol(config).run(values, NoAttack(), 0, rng=1)
        assert result.estimate == pytest.approx(values.mean(), abs=0.12)
        assert 0.0 <= result.estimate <= 1.0


class TestBaselineProtocol:
    def test_budget_split(self):
        protocol = BaselineProtocol(epsilon=1.0, alpha_fraction=0.1)
        assert protocol.epsilon_alpha == pytest.approx(0.1)
        assert protocol.epsilon_beta == pytest.approx(0.9)

    def test_estimates_mean_under_attack(self, normal_values):
        protocol = BaselineProtocol(epsilon=1.0, alpha_fraction=0.1)
        result = protocol.run(normal_values, ATTACK, n_byzantine=2_000, rng=0)
        assert result.features.side == "right"
        assert result.estimate == pytest.approx(normal_values.mean(), abs=0.25)

    def test_evading_attack_degrades_probing(self, normal_values):
        protocol = BaselineProtocol(epsilon=1.0, alpha_fraction=0.1)
        honest = protocol.run(normal_values, ATTACK, 2_000, evade_probing=False, rng=1)
        evaded = protocol.run(normal_values, ATTACK, 2_000, evade_probing=True, rng=1)
        # when attackers hide during probing, the estimated gamma drops
        assert evaded.features.gamma_hat < honest.features.gamma_hat

    def test_report_counts(self, normal_values):
        protocol = BaselineProtocol(epsilon=1.0)
        result = protocol.run(normal_values, ATTACK, 500, rng=2)
        assert result.alpha_reports.size == normal_values.size + 500
        assert result.beta_reports.size == normal_values.size + 500

    def test_invalid_alpha_fraction(self):
        with pytest.raises(ValueError):
            BaselineProtocol(epsilon=1.0, alpha_fraction=1.0)
