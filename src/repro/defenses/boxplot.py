"""Boxplot (IQR) outlier-removal defence (Section III-A related techniques).

Reports outside ``[Q1 - k * IQR, Q3 + k * IQR]`` are discarded before
averaging — the "simple more general boxplot method" of Schwertman et al. the
paper cites as an existing detection technique.  Because PM's perturbed values
legitimately span the whole enlarged output domain, boxplot removal also drops
many normal reports, which is exactly the weakness the paper's collective
approach avoids.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense, DefenseResult
from repro.ldp.base import NumericalMechanism
from repro.registry import DEFENSES
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive


@DEFENSES.register("Boxplot")
class BoxplotDefense(Defense):
    """IQR-based outlier removal followed by averaging."""

    name = "Boxplot"

    def __init__(self, whisker: float = 1.5) -> None:
        self.whisker = check_positive(whisker, "whisker")

    def estimate_mean(
        self,
        reports: np.ndarray,
        mechanism: NumericalMechanism,
        rng: RngLike = None,
    ) -> DefenseResult:
        reports = self._validate_reports(reports)
        q1, q3 = np.quantile(reports, [0.25, 0.75])
        iqr = q3 - q1
        lower = q1 - self.whisker * iqr
        upper = q3 + self.whisker * iqr
        keep = (reports >= lower) & (reports <= upper)
        kept = reports[keep]
        if kept.size == 0:
            kept = reports
            keep = np.ones(reports.size, dtype=bool)
        estimate = mechanism.estimate_mean(kept)
        low, high = mechanism.input_domain
        estimate = float(np.clip(estimate, low, high))
        return DefenseResult(
            estimate=estimate,
            kept_mask=keep,
            metadata={"lower": float(lower), "upper": float(upper)},
        )


__all__ = ["BoxplotDefense"]
