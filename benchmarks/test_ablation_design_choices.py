"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not a paper figure — these quantify how much each design ingredient of DAP
contributes:

* the EMF -> EMF* -> CEMF* ladder (the paper's own ablation, Figure 6);
* the number of groups (choice of epsilon_0);
* the minimum-variance aggregation weights of Theorem 6 vs equal weights;
* the CEMF* suppression threshold.
"""

import numpy as np

from repro.attacks import BiasedByzantineAttack, PAPER_POISON_RANGES
from repro.core.aggregation import aggregate_means
from repro.core.dap import DAPConfig, DAPProtocol
from repro.datasets import taxi_dataset
from repro.estimators import mean_squared_error

ATTACK = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])
N_NORMAL = 9_000
N_BYZ = 3_000
EPSILON = 1.0


def _dataset():
    return taxi_dataset(n_samples=N_NORMAL, rng=5)


def _run(config, dataset, seeds=(1, 2)):
    estimates = []
    for seed in seeds:
        result = DAPProtocol(config).run(dataset.values, ATTACK, N_BYZ, rng=seed)
        estimates.append(result.estimate)
    return mean_squared_error(estimates, dataset.true_mean)


def test_ablation_estimator_ladder(benchmark):
    """EMF* / CEMF* should not be worse than plain EMF (usually much better)."""
    dataset = _dataset()

    def run_all():
        return {
            estimator: _run(
                DAPConfig(epsilon=EPSILON, epsilon_min=1 / 16, estimator=estimator),
                dataset,
            )
            for estimator in ("emf", "emf_star", "cemf_star")
        }

    mse = benchmark(run_all)
    print("\nestimator ablation (MSE):", {k: f"{v:.2e}" for k, v in mse.items()})
    assert min(mse["emf_star"], mse["cemf_star"]) <= mse["emf"] * 1.5


def test_ablation_group_count(benchmark):
    """More groups (smaller epsilon_0) should not catastrophically hurt accuracy.

    The extra groups probe gamma more accurately while the weighting keeps the
    noisy small-budget groups from dominating.
    """
    dataset = _dataset()

    def run_all():
        return {
            epsilon_min: _run(
                DAPConfig(epsilon=EPSILON, epsilon_min=epsilon_min, estimator="emf_star"),
                dataset,
            )
            for epsilon_min in (1.0, 1 / 4, 1 / 16)
        }

    mse = benchmark(run_all)
    print("\ngroup-count ablation (MSE):", {k: f"{v:.2e}" for k, v in mse.items()})
    # multi-group DAP (the paper's design) beats the single-group degenerate
    # case, which cannot probe gamma at a small budget
    assert min(mse[1 / 4], mse[1 / 16]) < mse[1.0] * 2


def test_ablation_aggregation_weights(benchmark):
    """Theorem 6 weights vs equal weights over the same group estimates."""
    dataset = _dataset()
    config = DAPConfig(epsilon=EPSILON, epsilon_min=1 / 16, estimator="emf_star")

    def run_both():
        optimal, equal = [], []
        for seed in (3, 4):
            protocol = DAPProtocol(config)
            groups = protocol.collect(dataset.values, ATTACK, N_BYZ, rng=seed)
            result = protocol.aggregate(groups)
            optimal.append(result.estimate)
            means = [g.mean for g in result.group_estimates]
            equal.append(aggregate_means(means, np.ones(len(means))))
        return (
            mean_squared_error(optimal, dataset.true_mean),
            mean_squared_error(equal, dataset.true_mean),
        )

    optimal_mse, equal_mse = benchmark(run_both)
    print(f"\nweights ablation: optimal={optimal_mse:.2e} equal={equal_mse:.2e}")
    assert optimal_mse < equal_mse


def test_ablation_suppression_threshold(benchmark):
    """CEMF* suppression factor: the default 0.5 should be competitive."""
    dataset = _dataset()

    def run_all():
        return {
            factor: _run(
                DAPConfig(
                    epsilon=EPSILON,
                    epsilon_min=1 / 16,
                    estimator="cemf_star",
                    suppression_factor=factor,
                ),
                dataset,
                seeds=(7,),
            )
            for factor in (0.1, 0.5, 1.0)
        }

    mse = benchmark(run_all)
    print("\nsuppression-threshold ablation (MSE):", {k: f"{v:.2e}" for k, v in mse.items()})
    # the threshold is not a cliff: every setting keeps the estimate usable
    # (single-trial MSEs fluctuate too much to rank the factors reliably here)
    assert all(value < 0.05 for value in mse.values())
