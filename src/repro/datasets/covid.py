"""Synthetic stand-in for the CDC COVID-19 deaths-by-age dataset.

The paper's frequency-estimation experiments (Figure 9 c/d) use the number of
COVID-19 deaths of females in California as of 2022-12-14, divided into 15 age
groups, with every record perturbed by k-RR.  Mortality rises sharply with
age, so the frequency vector is heavily skewed towards the oldest groups.

The offline substitute encodes that age profile directly: per-group weights
grow roughly geometrically with age, with negligible mass below 25 and the
bulk of deaths above 65, mirroring the public CDC profile.  The experiments
only need a realistic skewed categorical frequency vector, so the substitution
preserves the measured behaviour (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import CategoricalDataset
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_integer

#: the paper's 15 age groups
AGE_GROUP_LABELS = (
    "Under 1",
    "1-4",
    "5-14",
    "15-24",
    "25-34",
    "35-44",
    "45-54",
    "55-64",
    "65-74",
    "75-84",
    "85+",
    "All ages 0-17",
    "18-29",
    "30-39",
    "40-49",
)

#: relative death-count weights per age group (older groups dominate), shaped
#: after the public CDC provisional-death age profile
_AGE_WEIGHTS = np.array(
    [
        0.0004,  # Under 1
        0.0003,  # 1-4
        0.0006,  # 5-14
        0.0020,  # 15-24
        0.0060,  # 25-34
        0.0150,  # 35-44
        0.0380,  # 45-54
        0.0900,  # 55-64
        0.1800,  # 65-74
        0.2800,  # 75-84
        0.3300,  # 85+
        0.0030,  # 0-17 aggregate bucket
        0.0090,  # 18-29
        0.0180,  # 30-39
        0.0277,  # 40-49
    ]
)


def covid_dataset(n_samples: int = 100_000, rng: RngLike = None) -> CategoricalDataset:
    """Synthetic COVID-19 deaths-by-age categorical dataset (15 groups)."""
    check_integer(n_samples, "n_samples", minimum=1)
    rng = ensure_rng(rng)
    probabilities = _AGE_WEIGHTS / _AGE_WEIGHTS.sum()
    categories = rng.choice(len(AGE_GROUP_LABELS), size=n_samples, p=probabilities)
    return CategoricalDataset(
        name="COVID-19",
        categories=categories,
        labels=AGE_GROUP_LABELS,
        description=(
            f"{n_samples} synthetic death records over 15 age groups with an "
            "age-increasing frequency profile (substitute for the CDC "
            "provisional-death data; see DESIGN.md)."
        ),
    )


__all__ = ["covid_dataset", "AGE_GROUP_LABELS"]
