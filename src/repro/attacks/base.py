"""Attack interface.

An attack models what the ``m`` colluding Byzantine users submit to the data
collector.  Because the General Byzantine Attack lets attackers choose *any*
value in the mechanism's output domain, an attack only needs the mechanism
(for its output domain and, for input-manipulation attacks, its perturbation
routine), the collector's reference mean ``O`` (which the attackers are
assumed to know or approximate), and the number of Byzantine users.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.collect.streaming import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.ldp.base import NumericalMechanism
from repro.registry import ATTACKS
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_integer


@dataclass(frozen=True)
class AttackReport:
    """The poison reports produced by one attack invocation.

    Attributes
    ----------
    reports:
        Poison values submitted to the collector, all inside the mechanism's
        output domain.
    poisoned_side:
        ``"right"``, ``"left"`` or ``"both"`` — which side of the reference
        mean the attack targets (used by experiments for bookkeeping only; the
        collector never sees it).
    """

    reports: np.ndarray
    poisoned_side: str = "right"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "reports", np.asarray(self.reports, dtype=float).ravel()
        )
        if self.poisoned_side not in ("left", "right", "both"):
            raise ValueError(
                f"poisoned_side must be 'left', 'right' or 'both', got {self.poisoned_side!r}"
            )

    @property
    def n(self) -> int:
        """Number of poison reports."""
        return int(self.reports.size)


class Attack(abc.ABC):
    """Base class for Byzantine attack strategies."""

    @abc.abstractmethod
    def poison_reports(
        self,
        n_byzantine: int,
        mechanism: NumericalMechanism,
        reference_mean: float = 0.0,
        rng: RngLike = None,
    ) -> AttackReport:
        """Produce the reports the ``n_byzantine`` colluding users submit.

        Parameters
        ----------
        n_byzantine:
            Number of Byzantine users (each submits one report per collection
            round).
        mechanism:
            The LDP mechanism in use — defines the output domain the poison
            values must live in (Definition 2).
        reference_mean:
            The attackers' knowledge of the true mean ``O`` (or the pessimistic
            ``O'``); attacks that bias one side are defined relative to it.
        rng:
            Randomness source.
        """

    def n_poison_reports(self, n_byzantine: int) -> int:
        """How many poison reports ``n_byzantine`` Byzantine users submit.

        One per user for every real attack (the default); degenerate attacks
        that stay silent (:class:`NoAttack`) override this, so the streaming
        and sharded collectors can size their accumulators — whose expected
        report counts double as consistency checks — without materialising
        the poison first.  Must be additive in ``n_byzantine`` (the sharded
        path sums per-shard expectations into the group total).
        """
        return self._check_population(n_byzantine)

    def poison_report_chunks(
        self,
        n_byzantine: int,
        mechanism: NumericalMechanism,
        reference_mean: float = 0.0,
        rng: RngLike = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> Iterator[np.ndarray]:
        """Yield the poison reports in chunks of at most ``chunk_size``.

        The streaming counterpart of :meth:`poison_reports` used by
        :meth:`repro.core.dap.DAPProtocol.collect_stream`: ``n_byzantine``
        reports are drawn through repeated :meth:`poison_reports` calls, so
        memory stays bounded by the chunk size.  Every attack in the library
        draws poison values i.i.d., which makes the chunked stream equal in
        distribution to one bulk call (the randomness is consumed
        differently, so individual draws differ for a fixed generator).
        """
        rng = ensure_rng(rng)
        n_byzantine = self._check_population(n_byzantine)
        for start, stop in iter_chunks(n_byzantine, chunk_size):
            yield self.poison_reports(
                stop - start, mechanism, reference_mean, rng
            ).reports

    def _check_population(self, n_byzantine: int) -> int:
        return check_integer(n_byzantine, "n_byzantine", minimum=0)

    def _clip_to_domain(
        self, reports: np.ndarray, mechanism: NumericalMechanism
    ) -> np.ndarray:
        low, high = mechanism.output_domain
        return np.clip(np.asarray(reports, dtype=float), low, high)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@ATTACKS.register("none", aliases=("no-attack", "noattack"))
class NoAttack(Attack):
    """Degenerate attack producing zero poison reports.

    Useful as the γ = 0 control in the false-positive experiments
    (Figure 5c) and as a neutral default in the simulation harness.
    """

    def poison_reports(
        self,
        n_byzantine: int,
        mechanism: NumericalMechanism,
        reference_mean: float = 0.0,
        rng: RngLike = None,
    ) -> AttackReport:
        self._check_population(n_byzantine)
        ensure_rng(rng)  # keep RNG consumption consistent across attack types
        return AttackReport(reports=np.empty(0), poisoned_side="right")

    def n_poison_reports(self, n_byzantine: int) -> int:
        """No attack, no reports — whatever the Byzantine head-count."""
        self._check_population(n_byzantine)
        return 0


__all__ = ["Attack", "AttackReport", "NoAttack"]
