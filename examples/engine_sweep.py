"""Parallel sweep with run artifacts: the experiment engine end to end.

Builds the Figure 6 quick grid as an :class:`~repro.engine.ExperimentSpec`,
executes it on a process pool, persists the columnar run artifact, then
demonstrates the two things the artifact buys:

* **resume** — re-running the same spec against the artifact performs no new
  computation;
* **offline analysis** — the records are reloaded from disk and pivoted into
  the paper-style table without touching the simulator.

Run with::

    PYTHONPATH=src python examples/engine_sweep.py
"""

from __future__ import annotations

import os
import time

from repro.engine import load_run, run_experiment
from repro.experiments import ExperimentScale, build_fig6_spec
from repro.experiments.fig6 import format_fig6

STORE_PATH = "runs/fig6_quick.json"


def main() -> None:
    scale = ExperimentScale(n_users=10_000, n_trials=2, gamma=0.25)
    workers = min(4, os.cpu_count() or 1)

    # the spec is the whole experiment: points, factories, scale
    spec = build_fig6_spec(scale, epsilons=(0.5, 1.0, 2.0), rng=0)
    print(f"spec {spec.name!r}: {len(spec.points)} points x "
          f"{len(spec.schemes_for(spec.points[0]))} schemes, {workers} workers")

    start = time.perf_counter()
    records = run_experiment(spec, rng=0, n_workers=workers, store_path=STORE_PATH)
    print(f"computed {len(records)} records in {time.perf_counter() - start:.2f}s "
          f"-> {STORE_PATH}")

    # resume: same spec + same artifact = no recomputation
    start = time.perf_counter()
    resumed = run_experiment(
        build_fig6_spec(scale, epsilons=(0.5, 1.0, 2.0), rng=0),
        rng=0,
        store_path=STORE_PATH,
    )
    assert [r.mse for r in resumed] == [r.mse for r in records]
    print(f"resumed from artifact in {time.perf_counter() - start:.2f}s "
          f"(no simulation re-run)")

    # offline analysis straight from the artifact
    artifact = load_run(STORE_PATH)
    print(f"\nartifact meta: {artifact.meta['fingerprint']}\n")
    print(format_fig6(artifact.records))


if __name__ == "__main__":
    main()
