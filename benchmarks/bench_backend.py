"""Backend benchmark: the DAP collection round under each array backend.

Runs one DAP-CEMF* round at scale (biased-Byzantine attack, sharded
collection) under the ``numpy`` reference backend and the ``fast``
single-pass backend, and records wall time, peak memory and — via the
``collect.*`` sub-timers — exactly where the time goes.  Two modes per
backend:

* ``collect`` — the client-side collection round alone
  (``DAPProtocol.collect_sharded``: mechanism sampling, poison drawing,
  accumulation).  This is the work the backend layer accelerates and the
  headline number: the 10^7-user sharded collection round must come in well
  under 10 s on the fast backend.
* ``full`` — the whole protocol round (collection + probe + aggregation),
  for end-to-end context.  The probe/aggregate stages are EM linear algebra
  whose wall time is set by BLAS threading, not by this layer; on a
  single-core runner they dominate the total.

The JSON payload mirrors ``bench_shard.py`` (a ``results`` list of
``{mode, backend, n_users, ok, wall_time_s, peak_rss_mb, ...}`` rows) with
an extra per-stage ``profile`` per row.  Every measurement runs in a fresh
subprocess under an address-space cap (``--mem-limit-gb``, default 4 GiB).

Usage::

    PYTHONPATH=src python benchmarks/bench_backend.py --out BENCH_backend.json
    PYTHONPATH=src python benchmarks/bench_backend.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time

EPSILON = 1.0
GAMMA = 0.25
SEED = 7
#: dataset records are sampled with replacement, so the dataset itself stays
#: small no matter the population size
DATASET_SAMPLES = 100_000
DEFAULT_SIZES = (1_000_000, 10_000_000)
DEFAULT_BACKENDS = ("numpy", "fast")
QUICK_SIZES = (200_000,)


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (Linux: ru_maxrss is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_single(mode: str, backend: str, n_users: int, mem_limit_gb: float) -> dict:
    """Child entry point: one measurement, reported as JSON on stdout."""
    if mem_limit_gb > 0:
        limit = int(mem_limit_gb * 1024**3)
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

    from repro.attacks.bba import BiasedByzantineAttack
    from repro.attacks.distributions import PAPER_POISON_RANGES
    from repro.backends import use_backend
    from repro.core.dap import DAPConfig, DAPProtocol
    from repro.datasets.synthetic import uniform_dataset
    from repro.simulation.population import build_population
    from repro.utils import profiling

    dataset = uniform_dataset(n_samples=DATASET_SAMPLES, rng=SEED)
    attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])
    protocol = DAPProtocol(DAPConfig(epsilon=EPSILON, estimator="cemf_star"))
    population = build_population(dataset, n_users, GAMMA, rng=SEED)

    before = profiling.snapshot()
    start = time.perf_counter()
    with use_backend(backend):
        if mode == "collect":
            accumulators = protocol.collect_sharded(
                population.normal_values,
                attack,
                population.n_byzantine,
                rng=SEED,
                n_shards=1,
                n_workers=1,
            )
            extra = {
                "n_reports": int(sum(a.n_reports for a in accumulators)),
            }
        elif mode == "full":
            result = protocol.run_sharded(
                population.normal_values,
                attack,
                population.n_byzantine,
                rng=SEED,
                n_shards=1,
                n_workers=1,
            )
            truth = population.true_mean
            extra = {
                "estimate": result.estimate,
                "true_mean": truth,
                "abs_error": abs(result.estimate - truth),
                "gamma_hat": result.gamma_hat,
            }
        else:
            raise ValueError(f"unknown mode {mode!r}")
    elapsed = time.perf_counter() - start
    profile = profiling.delta_since(before)

    return {
        "mode": mode,
        "backend": backend,
        "n_users": n_users,
        "ok": True,
        "wall_time_s": round(elapsed, 3),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "profile": {
            name: round(seconds, 3) for name, seconds in sorted(profile.items())
        },
        **extra,
    }


def run_child(
    mode: str, backend: str, n_users: int, mem_limit_gb: float, timeout_s: float
) -> dict:
    """Run one configuration in a fresh subprocess and parse its JSON report."""
    command = [
        sys.executable,
        __file__,
        "--single",
        mode,
        backend,
        str(n_users),
        "--mem-limit-gb",
        str(mem_limit_gb),
    ]
    start = time.perf_counter()
    try:
        child = subprocess.run(
            command, capture_output=True, text=True, timeout=timeout_s
        )
    except subprocess.TimeoutExpired:
        return {
            "mode": mode,
            "backend": backend,
            "n_users": n_users,
            "ok": False,
            "error": f"timed out after {timeout_s:g}s",
        }
    elapsed = time.perf_counter() - start
    if child.returncode != 0:
        tail = (child.stderr or "").strip().splitlines()
        return {
            "mode": mode,
            "backend": backend,
            "n_users": n_users,
            "ok": False,
            "error": tail[-1] if tail else f"exit code {child.returncode}",
            "wall_time_s": round(elapsed, 3),
        }
    return json.loads(child.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument(
        "--backends", nargs="+", default=list(DEFAULT_BACKENDS),
        help="backends to measure (numpy, fast, numba)",
    )
    parser.add_argument(
        "--modes", nargs="+", default=["collect", "full"],
        choices=["collect", "full"],
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: {QUICK_SIZES[0]:,} users, collect mode only",
    )
    parser.add_argument("--mem-limit-gb", type=float, default=4.0)
    parser.add_argument("--timeout-s", type=float, default=1800.0)
    parser.add_argument("--out", default="BENCH_backend.json")
    parser.add_argument(
        "--single", nargs=3, metavar=("MODE", "BACKEND", "N_USERS"), default=None
    )
    args = parser.parse_args(argv)

    if args.single is not None:
        mode, backend, n_users = args.single[0], args.single[1], int(args.single[2])
        try:
            report = run_single(mode, backend, n_users, args.mem_limit_gb)
        except MemoryError:
            print("MemoryError: exceeded the address-space cap", file=sys.stderr)
            return 3
        print(json.dumps(report))
        return 0

    if args.quick:
        sizes = list(QUICK_SIZES)
        modes = ["collect"]
        timeout_s = min(args.timeout_s, 300.0)
    else:
        sizes = args.sizes or list(DEFAULT_SIZES)
        modes = args.modes
        timeout_s = args.timeout_s

    results = []
    for n_users in sizes:
        for mode in modes:
            for backend in args.backends:
                print(
                    f"[bench_backend] {mode}/{backend} @ {n_users:,} users ...",
                    flush=True,
                )
                report = run_child(
                    mode, backend, n_users, args.mem_limit_gb, timeout_s
                )
                status = (
                    f"{report['wall_time_s']:.1f}s, {report['peak_rss_mb']:.0f} MiB"
                    if report.get("ok")
                    else f"FAILED ({report.get('error')})"
                )
                print(f"[bench_backend]   -> {status}", flush=True)
                results.append(report)

    payload = {
        "benchmark": "DAP collection round per array backend (sharded, 1 worker)",
        "config": {
            "epsilon": EPSILON,
            "gamma": GAMMA,
            "estimator": "cemf_star",
            "attack": "bba [C/2,C]",
            "dataset_samples": DATASET_SAMPLES,
            "mem_limit_gb": args.mem_limit_gb,
            "seed": SEED,
            "backends": list(args.backends),
            "cpu_count": os.cpu_count(),
        },
        "notes": (
            "'collect' rows time the client-side collection round alone "
            "(sampling + poison + accumulation) — the kernel families the "
            "backend layer accelerates; 'full' rows add the collector-side "
            "probe/aggregate EM, whose wall time is BLAS-threading-bound and "
            "dominates on single-core runners. Per-stage splits are in each "
            "row's 'profile'."
        ),
        "results": results,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"[bench_backend] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
