"""The protocol contract: which trust model a collection round runs under.

A :class:`ProtocolPlan` is the versioned contract the client → transport →
server pipeline lowers to.  It fixes three things:

* ``protocol`` — the trust model, an **identity** knob (it changes the
  distribution of what the server receives):

  - ``"local"`` — the classical local model.  Every report arrives tagged
    with its budget group, the transport is an identity pass-through, and
    the adversary sees the full per-group mechanism family.  This is
    bit-identical to the pre-pipeline collection paths.
  - ``"shuffle"`` — a shuffler sits between clients and server.  Reports
    lose sender→group linkage in transit (a seeded uniform permutation per
    delivery lane), the adversary can no longer aim poison at a specific
    budget group and must stay inside the *intersection* of all group
    output domains (see :mod:`repro.protocol.client`), and the server
    records a privacy-amplification ledger mapping each group's local
    epsilon to a central epsilon (:mod:`repro.protocol.amplification`).

* ``contribution_cap`` — the client gate: an upper bound on reports per
  user.  Reports beyond the cap are dropped deterministically before
  perturbation and counted into a ``skipped`` tally.  ``None`` disables
  the gate (the historical behaviour).

* ``shuffle_seed`` — an **execution detail**: it reseeds the shuffler's
  permutation lanes, which provably cannot change any accumulator
  statistic (the sufficient statistics are permutation-invariant), so it
  never enters scenario documents or fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass

#: the trust models a collection round can run under (identity axis)
PROTOCOL_NAMES = ("local", "shuffle")


def check_protocol(name: str) -> str:
    """Validate a protocol name, returning it unchanged.

    Raises
    ------
    KeyError
        If the name is not a registered protocol; the message lists every
        available name (mirrors :meth:`repro.registry.Registry.entry`).
    """
    if name not in PROTOCOL_NAMES:
        raise KeyError(
            f"unknown protocol {name!r}; available protocols: "
            f"{', '.join(PROTOCOL_NAMES)}"
        )
    return name


def check_contribution_cap(cap: int | None) -> int | None:
    """Validate a contribution cap (``None`` or a non-negative integer)."""
    if cap is None:
        return None
    cap = int(cap)
    if cap < 0:
        raise ValueError(f"contribution_cap must be >= 0, got {cap}")
    return cap


@dataclass(frozen=True)
class ProtocolPlan:
    """The immutable contract one collection round is lowered to."""

    protocol: str = "local"
    contribution_cap: int | None = None
    shuffle_seed: int = 0

    def __post_init__(self) -> None:
        check_protocol(self.protocol)
        check_contribution_cap(self.contribution_cap)

    @property
    def is_shuffle(self) -> bool:
        return self.protocol == "shuffle"

    def effective_repeats(self, repeats: int) -> int:
        """Apply the client-side contribution cap to a per-user repeat count."""
        if self.contribution_cap is None:
            return int(repeats)
        return min(int(repeats), self.contribution_cap)


__all__ = [
    "PROTOCOL_NAMES",
    "ProtocolPlan",
    "check_contribution_cap",
    "check_protocol",
]
