"""Local Differential Privacy mechanisms.

This subpackage implements every LDP primitive the paper relies on:

* :class:`~repro.ldp.piecewise.PiecewiseMechanism` — the paper's default
  numerical perturbation mechanism (Algorithm 1).
* :class:`~repro.ldp.square_wave.SquareWaveMechanism` with
  :func:`~repro.ldp.ems.expectation_maximization_smoothing` — the alternative
  mechanism of Section V-D / Figure 8.
* :class:`~repro.ldp.duchi.DuchiMechanism`,
  :class:`~repro.ldp.hybrid.HybridMechanism`,
  :class:`~repro.ldp.laplace.LaplaceMechanism` — classic numerical baselines.
* :class:`~repro.ldp.krr.KRandomizedResponse`,
  :class:`~repro.ldp.oue.OptimizedUnaryEncoding`,
  :class:`~repro.ldp.olh.OptimizedLocalHashing` — categorical frequency oracles
  used by the frequency-estimation extension (Figure 9 c/d).
* :class:`~repro.ldp.count_sketch.CountSketch` — the count-mean-sketch
  frequency oracle for high-cardinality domains (O(1) reports, ``r x w``
  mergeable counters).
* :class:`~repro.ldp.budget.PrivacyBudget` and composition helpers.
"""

from repro.ldp.base import (
    NumericalMechanism,
    DomainRestrictedMechanism,
    CategoricalMechanism,
    MechanismError,
)
from repro.ldp.budget import PrivacyBudget, sequential_composition, parallel_composition
from repro.ldp.piecewise import PiecewiseMechanism
from repro.ldp.duchi import DuchiMechanism
from repro.ldp.laplace import LaplaceMechanism
from repro.ldp.hybrid import HybridMechanism
from repro.ldp.square_wave import SquareWaveMechanism
from repro.ldp.ems import expectation_maximization_smoothing, em_reconstruct
from repro.ldp.krr import KRandomizedResponse
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.ldp.olh import OptimizedLocalHashing
from repro.ldp.count_sketch import CountSketch, sketch_row_seeds

__all__ = [
    "NumericalMechanism",
    "DomainRestrictedMechanism",
    "CategoricalMechanism",
    "MechanismError",
    "PrivacyBudget",
    "sequential_composition",
    "parallel_composition",
    "PiecewiseMechanism",
    "DuchiMechanism",
    "LaplaceMechanism",
    "HybridMechanism",
    "SquareWaveMechanism",
    "expectation_maximization_smoothing",
    "em_reconstruct",
    "KRandomizedResponse",
    "OptimizedUnaryEncoding",
    "OptimizedLocalHashing",
    "CountSketch",
    "sketch_row_seeds",
]
