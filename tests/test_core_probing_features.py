"""Tests for poisoned-side probing, feature estimation and O' initialisation."""

import numpy as np
import pytest

from repro.attacks import BiasedByzantineAttack, NoAttack, PAPER_POISON_RANGES
from repro.core.features import estimate_byzantine_features
from repro.core.initialization import pessimistic_mean, pessimistic_mean_both_sides
from repro.core.probing import probe_poisoned_side
from repro.core.transform import default_bucket_counts
from repro.ldp import PiecewiseMechanism


def _reports(rng, epsilon, side="right", n_normal=6_000, n_byz=2_000, range_name="[C/2,C]"):
    mech = PiecewiseMechanism(epsilon)
    values = np.clip(rng.normal(0.1, 0.3, n_normal), -1, 1)
    normal = mech.perturb(values, rng)
    attack = BiasedByzantineAttack(PAPER_POISON_RANGES[range_name], side=side)
    poison = attack.poison_reports(n_byz, mech, 0.0, rng).reports
    return mech, np.concatenate([normal, poison])


class TestProbePoisonedSide:
    def test_detects_right_side_attack(self, rng):
        mech, reports = _reports(rng, 0.25, side="right")
        d_in, d_out = default_bucket_counts(reports.size, 0.25)
        probe = probe_poisoned_side(mech, reports, d_in, d_out, reference_mean=0.0)
        assert probe.side == "right"
        assert probe.variance_right < probe.variance_left

    def test_detects_left_side_attack(self, rng):
        mech, reports = _reports(rng, 0.25, side="left")
        d_in, d_out = default_bucket_counts(reports.size, 0.25)
        probe = probe_poisoned_side(mech, reports, d_in, d_out, reference_mean=0.0)
        assert probe.side == "left"
        assert probe.variance_left < probe.variance_right

    def test_selected_accessor_matches_side(self, rng):
        mech, reports = _reports(rng, 0.25)
        d_in, d_out = default_bucket_counts(reports.size, 0.25)
        probe = probe_poisoned_side(mech, reports, d_in, d_out, reference_mean=0.0)
        assert probe.selected is (probe.emf_right if probe.side == "right" else probe.emf_left)
        assert probe.selected_transform.side == probe.side

    def test_correct_side_across_budgets(self, rng):
        for epsilon in (0.0625, 0.5, 2.0):
            mech, reports = _reports(rng, epsilon)
            d_in, d_out = default_bucket_counts(reports.size, epsilon)
            probe = probe_poisoned_side(mech, reports, d_in, d_out, reference_mean=0.0)
            assert probe.side == "right", f"wrong side at epsilon={epsilon}"


class TestEstimateByzantineFeatures:
    def test_gamma_and_side(self, rng):
        mech, reports = _reports(rng, 0.125)
        features = estimate_byzantine_features(mech, reports, reference_mean=0.0)
        assert features.side == "right"
        assert features.gamma_hat == pytest.approx(0.25, abs=0.06)

    def test_poison_mean_close_to_truth(self, rng):
        mech = PiecewiseMechanism(0.125)
        values = np.clip(rng.normal(0.0, 0.3, 6_000), -1, 1)
        normal = mech.perturb(values, rng)
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[3C/4,C]"])
        poison = attack.poison_reports(2_000, mech, 0.0, rng).reports
        reports = np.concatenate([normal, poison])
        features = estimate_byzantine_features(mech, reports, reference_mean=0.0)
        assert features.poison_mean == pytest.approx(float(poison.mean()), rel=0.1)

    def test_no_attack_small_gamma(self, rng):
        mech = PiecewiseMechanism(0.125)
        values = np.clip(rng.normal(0.0, 0.3, 8_000), -1, 1)
        reports = mech.perturb(values, rng)
        features = estimate_byzantine_features(mech, reports, reference_mean=0.0)
        assert features.gamma_hat < 0.08

    def test_estimated_byzantine_count(self, rng):
        mech, reports = _reports(rng, 0.25)
        features = estimate_byzantine_features(mech, reports, reference_mean=0.0)
        assert features.estimated_byzantine_count(reports.size) == pytest.approx(
            features.gamma_hat * reports.size
        )

    def test_custom_bucket_counts_respected(self, rng):
        mech, reports = _reports(rng, 0.25)
        features = estimate_byzantine_features(
            mech, reports, n_input_buckets=9, n_output_buckets=21, reference_mean=0.0
        )
        assert features.emf.transform.input_grid.n_buckets == 9
        assert features.emf.transform.output_grid.n_buckets == 21


class TestPessimisticMean:
    def test_right_side_is_lower_bound(self, rng):
        # poison inflates the top of the distribution; removing the largest
        # gamma_sup fraction must not overshoot the clean mean upwards
        clean = rng.normal(0.0, 1.0, 5_000)
        poisoned = np.concatenate([clean, np.full(1_000, 10.0)])
        estimate = pessimistic_mean(poisoned, gamma_sup=0.5, side="right")
        assert estimate <= clean.mean() + 1e-9

    def test_left_side_is_upper_bound(self, rng):
        clean = rng.normal(0.0, 1.0, 5_000)
        poisoned = np.concatenate([clean, np.full(1_000, -10.0)])
        estimate = pessimistic_mean(poisoned, gamma_sup=0.5, side="left")
        assert estimate >= clean.mean() - 1e-9

    def test_zero_gamma_sup_is_plain_mean(self, rng):
        reports = rng.normal(0, 1, 100)
        assert pessimistic_mean(reports, 0.0) == pytest.approx(reports.mean())

    def test_both_sides_ordering(self, rng):
        reports = rng.normal(0, 1, 1_000)
        low, high = pessimistic_mean_both_sides(reports, 0.3)
        assert low <= high

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            pessimistic_mean(np.array([]))

    def test_invalid_side(self, rng):
        with pytest.raises(ValueError):
            pessimistic_mean(rng.normal(0, 1, 10), side="up")
