"""Evaluation metrics used throughout the paper's experiments."""

from repro.estimators.metrics import (
    squared_error,
    mean_squared_error,
    absolute_error,
    wasserstein_distance_histograms,
    wasserstein_distance_samples,
    frequency_mse,
)

__all__ = [
    "squared_error",
    "mean_squared_error",
    "absolute_error",
    "wasserstein_distance_histograms",
    "wasserstein_distance_samples",
    "frequency_mse",
]
