"""Experiment harness: user populations, estimation schemes, trials and sweeps.

The harness glues the substrates together so each paper figure reduces to a
handful of calls:

* :mod:`repro.simulation.population` — build (normal, Byzantine) user splits
  from a dataset and an attack proportion;
* :mod:`repro.simulation.schemes` — a uniform ``Scheme`` interface wrapping
  the three DAP variants and every baseline defence;
* :mod:`repro.simulation.runner` — run repeated trials and compute MSE;
* :mod:`repro.simulation.sweep` — sweep parameters (epsilon, gamma, poison
  range, ...) and collect tidy result records.
"""

from repro.simulation.population import (
    Population,
    PopulationStream,
    build_population,
    population_counts,
    stream_population,
)
from repro.simulation.schemes import (
    Scheme,
    DAPScheme,
    SingleRoundScheme,
    BaselineProtocolScheme,
    make_scheme,
    scheme_from_spec,
    resolve_mechanism,
    PAPER_SCHEMES,
)
from repro.simulation.runner import (
    TrialResult,
    run_trials,
    run_trials_from_seeds,
    run_trials_batched,
    run_trials_streaming,
    evaluate_schemes,
)
from repro.simulation.sweep import SweepRecord, sweep, records_to_table

__all__ = [
    "run_trials_from_seeds",
    "run_trials_batched",
    "run_trials_streaming",
    "Population",
    "PopulationStream",
    "build_population",
    "population_counts",
    "stream_population",
    "Scheme",
    "DAPScheme",
    "SingleRoundScheme",
    "BaselineProtocolScheme",
    "make_scheme",
    "scheme_from_spec",
    "resolve_mechanism",
    "PAPER_SCHEMES",
    "TrialResult",
    "run_trials",
    "evaluate_schemes",
    "SweepRecord",
    "sweep",
    "records_to_table",
]
