"""Metrics: MSE for mean/frequency estimation, Wasserstein for distributions.

These are the three quantities the paper's evaluation reports:

* **MSE** of the mean estimate over repeated trials (Figures 6-10);
* **MSE** of frequency vectors for the categorical extension (Figure 9 c/d);
* the 1-D **Wasserstein distance** between the reconstructed and the true
  value distribution (Figure 8a), computed as the L1 distance between CDFs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.utils.discretization import BucketGrid
from repro.utils.histogram import normalize_histogram


def squared_error(estimate: float, truth: float) -> float:
    """``(estimate - truth)^2`` for a single trial."""
    return float((float(estimate) - float(truth)) ** 2)


def absolute_error(estimate: float, truth: float) -> float:
    """``|estimate - truth|`` for a single trial."""
    return float(abs(float(estimate) - float(truth)))


def mean_squared_error(estimates: Iterable[float], truth: float) -> float:
    """MSE of repeated estimates of the same ground truth."""
    estimates = np.asarray(list(estimates), dtype=float)
    if estimates.size == 0:
        raise ValueError("mean_squared_error requires at least one estimate")
    return float(np.mean((estimates - float(truth)) ** 2))


def frequency_mse(estimated: Sequence[float], truth: Sequence[float]) -> float:
    """Per-category MSE between two frequency vectors (Figure 9 c/d)."""
    estimated = np.asarray(list(estimated), dtype=float)
    truth = np.asarray(list(truth), dtype=float)
    if estimated.shape != truth.shape:
        raise ValueError(
            f"frequency vectors must align, got {estimated.shape} vs {truth.shape}"
        )
    if estimated.size == 0:
        raise ValueError("frequency vectors must be non-empty")
    return float(np.mean((estimated - truth) ** 2))


def wasserstein_distance_histograms(
    histogram_a: Sequence[float],
    histogram_b: Sequence[float],
    grid: BucketGrid | None = None,
) -> float:
    """1-D Wasserstein-1 distance between two histograms on the same grid.

    Computed as ``sum_i |CDF_a(i) - CDF_b(i)| * bucket_width``.  When ``grid``
    is omitted a unit-width grid is assumed (distance in "bucket units").
    """
    a = normalize_histogram(np.asarray(list(histogram_a), dtype=float))
    b = normalize_histogram(np.asarray(list(histogram_b), dtype=float))
    if a.shape != b.shape:
        raise ValueError(f"histograms must align, got {a.shape} vs {b.shape}")
    width = grid.width if grid is not None else 1.0
    cdf_a = np.cumsum(a)
    cdf_b = np.cumsum(b)
    return float(np.sum(np.abs(cdf_a - cdf_b)) * width)


def wasserstein_distance_samples(
    samples_a: Sequence[float], samples_b: Sequence[float]
) -> float:
    """1-D Wasserstein-1 distance between two empirical samples."""
    a = np.sort(np.asarray(list(samples_a), dtype=float))
    b = np.sort(np.asarray(list(samples_b), dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    # evaluate both quantile functions on a common grid of probabilities
    probabilities = np.linspace(0.0, 1.0, max(a.size, b.size), endpoint=False) + 0.5 / max(
        a.size, b.size
    )
    quantiles_a = np.quantile(a, probabilities)
    quantiles_b = np.quantile(b, probabilities)
    return float(np.mean(np.abs(quantiles_a - quantiles_b)))


__all__ = [
    "squared_error",
    "absolute_error",
    "mean_squared_error",
    "frequency_mse",
    "wasserstein_distance_histograms",
    "wasserstein_distance_samples",
]
