"""Tests for the protocol pipeline (``repro.protocol``).

The contract under test, layer by layer:

* plan — name validation with the registry-style name-listing ``KeyError``,
  the contribution-cap gate arithmetic;
* transport — the shuffler is a seeded per-lane permutation that never
  consumes the round's main RNG stream;
* client — the shuffle model hands attacks a group-blind
  ``DomainRestrictedMechanism`` over the ladder's domain intersection;
* server — the amplification ledger maps local to central epsilons with
  the Feldman-style closed form;
* end to end — ``NoAttack`` rounds are bit-identical between protocols,
  targeted attacks lose power under the shuffle model, and the
  contribution cap drops a deterministic, exactly-tallied report count;
* plumbing — scenario / service / engine specs treat ``protocol`` as an
  identity knob (in documents and fingerprints only when not ``"local"``).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.attacks import BiasedByzantineAttack, NoAttack
from repro.core.dap import DAPConfig, DAPProtocol
from repro.core.frequency import FrequencyDAP
from repro.core.sketch_frequency import SketchFrequencyDAP
from repro.ldp import DomainRestrictedMechanism, PiecewiseMechanism
from repro.protocol import (
    PROTOCOL_NAMES,
    IdentityTransport,
    ProtocolPipeline,
    ProtocolPlan,
    Shuffler,
    amplification_ledger,
    amplified_epsilon,
    check_contribution_cap,
    check_protocol,
    intersection_output_domain,
    ledger_summary,
)
from repro.registry import PROTOCOLS


class TestProtocolPlan:
    def test_known_names_pass_through(self):
        for name in PROTOCOL_NAMES:
            assert check_protocol(name) == name

    def test_unknown_name_raises_keyerror_listing_names(self):
        with pytest.raises(KeyError, match="local.*shuffle"):
            check_protocol("telepathy")

    def test_registry_lists_both_protocols(self):
        assert set(PROTOCOLS.names()) == set(PROTOCOL_NAMES)

    def test_contribution_cap_validation(self):
        assert check_contribution_cap(None) is None
        assert check_contribution_cap(3) == 3
        assert check_contribution_cap(0) == 0
        with pytest.raises(ValueError, match="contribution_cap"):
            check_contribution_cap(-1)

    def test_effective_repeats(self):
        assert ProtocolPlan().effective_repeats(7) == 7
        assert ProtocolPlan(contribution_cap=3).effective_repeats(7) == 3
        assert ProtocolPlan(contribution_cap=9).effective_repeats(7) == 7
        assert ProtocolPlan(contribution_cap=0).effective_repeats(7) == 0

    def test_plan_validates_on_construction(self):
        with pytest.raises(KeyError):
            ProtocolPlan(protocol="quantum")
        with pytest.raises(ValueError):
            ProtocolPlan(contribution_cap=-2)


class TestTransport:
    def test_identity_passes_through_same_object(self):
        reports = np.arange(5.0)
        assert IdentityTransport().deliver(reports, (0, 5)) is reports

    def test_shuffler_is_a_permutation(self):
        reports = np.arange(100.0)
        shuffled = Shuffler().deliver(reports, (0, 100))
        assert not np.array_equal(shuffled, reports)
        assert np.array_equal(np.sort(shuffled), reports)

    def test_shuffler_deterministic_per_seed_and_lane(self):
        reports = np.arange(50.0)
        a = Shuffler(shuffle_seed=4).deliver(reports, (1, 50))
        b = Shuffler(shuffle_seed=4).deliver(reports, (1, 50))
        c = Shuffler(shuffle_seed=5).deliver(reports, (1, 50))
        d = Shuffler(shuffle_seed=4).deliver(reports, (2, 50))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert not np.array_equal(a, d)

    def test_tiny_lanes_pass_through(self):
        one = np.array([3.5])
        assert Shuffler().deliver(one, (0, 1)) is one
        empty = np.empty(0)
        assert Shuffler().deliver(empty, (0, 0)) is empty

    def test_shuffler_never_consumes_main_rng(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state["state"].copy()
        Shuffler().deliver(np.arange(64.0), (0, 64))
        assert rng.bit_generator.state["state"] == before

    def test_shuffles_rows_of_2d_reports(self):
        rows = np.arange(20).reshape(10, 2)
        shuffled = Shuffler().deliver(rows, (0, 10))
        assert shuffled.shape == rows.shape
        assert sorted(map(tuple, shuffled)) == sorted(map(tuple, rows))


class TestAmplification:
    def test_closed_form_improves_on_local_for_large_n(self):
        assert amplified_epsilon(1.0, 10_000) < 0.25

    def test_monotone_in_n(self):
        values = [amplified_epsilon(1.0, n) for n in (100, 1_000, 10_000, 100_000)]
        assert values == sorted(values, reverse=True)

    def test_never_worse_than_local(self):
        for n in (1, 2, 5, 10):
            assert amplified_epsilon(2.0, n) <= 2.0

    def test_degenerate_inputs_return_local(self):
        assert amplified_epsilon(1.0, 0) == 1.0
        assert amplified_epsilon(0.0, 1_000) == 0.0

    def test_input_validation(self):
        with pytest.raises(ValueError, match="epsilon_local"):
            amplified_epsilon(-0.5, 100)
        with pytest.raises(ValueError, match="delta"):
            amplified_epsilon(1.0, 100, delta=2.0)

    def test_ledger_rows_and_summary(self):
        ledger = amplification_ledger([1.0, 0.5], [4_000, 2_000])
        assert len(ledger) == 2
        for row in ledger:
            assert row["epsilon_central"] <= row["epsilon_local"]
            assert row["amplification_factor"] >= 1.0
        summary = ledger_summary(ledger)
        assert summary["n_groups"] == 2
        assert summary["epsilon_local_max"] == 1.0
        assert summary["epsilon_central_max"] <= 1.0

    def test_ledger_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="one count per budget"):
            amplification_ledger([1.0], [10, 20])


class TestAdversaryView:
    def test_local_view_is_the_group_mechanism(self):
        config = DAPConfig(epsilon=4.0)
        protocol = DAPProtocol(config)
        eps = config.budget_ladder[0]
        assert protocol.adversary_mechanism(eps) is protocol.mechanism_for(eps)

    def test_shuffle_view_is_domain_restricted_to_intersection(self):
        config = DAPConfig(epsilon=4.0, protocol="shuffle")
        protocol = DAPProtocol(config)
        ladder = config.budget_ladder
        assert len(ladder) > 1
        intersection = intersection_output_domain(
            [protocol.mechanism_for(eps) for eps in ladder]
        )
        # the smallest-budget group perturbs the most, so its own domain is
        # wider than the intersection and the adversary view must shrink
        view = protocol.adversary_mechanism(ladder[-1])
        assert isinstance(view, DomainRestrictedMechanism)
        assert view.output_domain == intersection
        # the widest-epsilon group's domain *is* the intersection (nested
        # domains), so its view needs no wrapper
        assert protocol.adversary_mechanism(ladder[0]) is protocol.mechanism_for(
            ladder[0]
        )

    def test_restricted_view_validates_containment(self):
        from repro.ldp.base import MechanismError

        narrow = PiecewiseMechanism(4.0)
        with pytest.raises(MechanismError, match="inside the base domain"):
            DomainRestrictedMechanism(narrow, (-100.0, 100.0))

    def test_intersection_requires_mechanisms(self):
        with pytest.raises(ValueError, match="at least one"):
            intersection_output_domain([])


def _run(protocol_name: str, attack, seed: int = 5, **config_kwargs):
    config = DAPConfig(
        epsilon=1.0, estimator="cemf_star", protocol=protocol_name, **config_kwargs
    )
    protocol = DAPProtocol(config)
    values = np.random.default_rng([seed, 0]).uniform(-1, 1, size=1_500)
    return protocol.run(
        values, attack, n_byzantine=500, rng=np.random.default_rng([seed, 1])
    )


class TestEndToEnd:
    def test_noattack_round_accurate_under_both_protocols(self):
        # the shuffle server conditions its reconstruction on the trust
        # model's poison support (restricted transform columns), so the
        # estimate is not bit-identical to the local pipeline even with no
        # attack — but both must track the truth at plain-LDP accuracy
        errors = {"local": [], "shuffle": []}
        for seed in range(4):
            values = np.random.default_rng([seed, 0]).uniform(-1, 1, size=1_500)
            truth = float(values.mean())
            for name in errors:
                result = _run(name, NoAttack(), seed=seed)
                errors[name].append(abs(result.estimate - truth))
        assert float(np.mean(errors["local"])) < 0.25
        assert float(np.mean(errors["shuffle"])) < 0.25

    def test_shuffle_reduces_bba_power(self):
        # single rounds are noisy, so compare the mean attack-induced shift
        # over a handful of seeded rounds (the committed BENCH_shuffle.json
        # gates the effect size at scale)
        def mean_shift(protocol_name):
            shifts = []
            for seed in range(6):
                truth = float(
                    np.mean(
                        np.random.default_rng([seed, 0]).uniform(-1, 1, size=1_500)
                    )
                )
                result = _run(protocol_name, BiasedByzantineAttack(), seed=seed)
                shifts.append(abs(result.estimate - truth))
            return float(np.mean(shifts))

        assert mean_shift("shuffle") < mean_shift("local")

    def test_local_result_has_no_ledger(self):
        result = _run("local", NoAttack())
        assert result.amplification is None

    def test_shuffle_result_carries_one_ledger_row_per_group(self):
        result = _run("shuffle", NoAttack())
        config = DAPConfig(epsilon=1.0, protocol="shuffle")
        assert result.amplification is not None
        assert len(result.amplification) == len(config.budget_ladder)
        for row in result.amplification:
            assert 0.0 < row["epsilon_central"] <= row["epsilon_local"]
            assert row["n_reports"] > 0

    def test_shuffle_seed_is_an_execution_detail(self):
        a = _run("shuffle", BiasedByzantineAttack(), shuffle_seed=0)
        b = _run("shuffle", BiasedByzantineAttack(), shuffle_seed=991)
        assert a.estimate == b.estimate


class TestContributionCap:
    N = 1_200

    def _protocol(self, cap):
        return DAPProtocol(DAPConfig(epsilon=1.0, contribution_cap=cap))

    def _expected_skipped(self, protocol, n_total):
        sizes = protocol.group_sizes(n_total)
        plan = protocol.plan
        return sum(
            size * (reps - plan.effective_repeats(reps))
            for size, reps in zip(
                sizes,
                (
                    protocol._uncapped_reports_per_user(eps)
                    for eps in protocol.config.budget_ladder
                ),
            )
        )

    def test_uncapped_round_skips_nothing(self):
        protocol = self._protocol(None)
        assert protocol.contribution_summary(self.N) == 0
        values = np.random.default_rng(1).uniform(-1, 1, size=self.N)
        result = protocol.run(values, rng=np.random.default_rng(2))
        assert result.skipped_reports == 0

    def test_cap_zero_drops_every_report(self):
        protocol = self._protocol(0)
        total = sum(
            size * reps
            for size, reps in zip(
                protocol.group_sizes(self.N),
                (
                    protocol._uncapped_reports_per_user(eps)
                    for eps in protocol.config.budget_ladder
                ),
            )
        )
        assert protocol.contribution_summary(self.N) == total
        values = np.random.default_rng(1).uniform(-1, 1, size=self.N)
        groups = protocol.collect(values, rng=np.random.default_rng(2))
        assert all(group.reports.size == 0 for group in groups)

    def test_cap_one_tally_matches_arithmetic(self):
        protocol = self._protocol(1)
        assert protocol.contribution_summary(self.N) == self._expected_skipped(
            protocol, self.N
        )
        assert protocol.contribution_summary(self.N) > 0
        values = np.random.default_rng(1).uniform(-1, 1, size=self.N)
        result = protocol.run(values, rng=np.random.default_rng(2))
        assert result.skipped_reports == protocol.contribution_summary(self.N)
        assert np.isfinite(result.estimate)

    def test_generous_cap_is_a_no_op(self):
        capped = self._protocol(10_000)
        uncapped = self._protocol(None)
        values = np.random.default_rng(1).uniform(-1, 1, size=self.N)
        a = capped.run(values, rng=np.random.default_rng(2))
        b = uncapped.run(values, rng=np.random.default_rng(2))
        assert a.estimate == b.estimate
        assert a.skipped_reports == 0

    def test_frequency_cap(self):
        capped = FrequencyDAP(1.0, 8, contribution_cap=0)
        assert capped.contribution_summary(500) == 500
        categories = np.random.default_rng(3).integers(0, 8, size=500)
        assert capped.collect(categories, rng=np.random.default_rng(4)).size == 0
        uncapped = FrequencyDAP(1.0, 8, contribution_cap=1)
        assert uncapped.contribution_summary(500) == 0
        result = uncapped.run(categories, rng=np.random.default_rng(4))
        assert result.skipped_reports == 0

    def test_sketch_cap(self):
        capped = SketchFrequencyDAP(1.0, 32, sketch_rows=2, sketch_width=16,
                                    contribution_cap=0)
        assert capped.contribution_summary(400) == 400
        categories = np.random.default_rng(3).integers(0, 32, size=400)
        assert len(capped.collect(categories, rng=np.random.default_rng(4))) == 0


class TestSpecPlumbing:
    def test_scenario_document_includes_protocol_only_when_set(self):
        from repro.scenario import ScenarioSpec

        base = dict(name="s", schemes=("Ostrich",), epsilons=(1.0,))
        local = ScenarioSpec(**base)
        shuffle = ScenarioSpec(**base, protocol="shuffle")
        assert "protocol" not in local.document()
        assert shuffle.document()["protocol"] == "shuffle"
        assert local.digest() != shuffle.digest()
        with pytest.raises(KeyError, match="available protocols"):
            ScenarioSpec(**base, protocol="nope")

    def test_scenario_from_dict_accepts_protocol(self):
        from repro.scenario import ScenarioSpec

        spec = ScenarioSpec.from_dict(
            {"name": "s", "schemes": ["Ostrich"], "epsilons": [1.0],
             "protocol": "shuffle"}
        )
        assert spec.protocol == "shuffle"

    def test_experiment_fingerprint_carries_protocol_only_when_set(self):
        from repro.scenario import ScenarioSpec

        base = dict(name="s", schemes=("DAP-CEMF*",), epsilons=(1.0,),
                    n_users=100, n_trials=1)
        local_fp = ScenarioSpec(**base).to_experiment_spec().fingerprint()
        shuffle_fp = (
            ScenarioSpec(**base, protocol="shuffle").to_experiment_spec().fingerprint()
        )
        assert "protocol" not in local_fp
        assert shuffle_fp["protocol"] == "shuffle"

    def test_execution_details_record_protocol_and_amplification(self):
        from repro.engine.executor import _execution_details
        from repro.scenario import ScenarioSpec

        spec = ScenarioSpec(
            name="s", schemes=("DAP-CEMF*",), epsilons=(0.5, 1.0),
            n_users=1_000, n_trials=1, protocol="shuffle",
        ).to_experiment_spec()
        details = _execution_details(spec)
        assert details["protocol"] == "shuffle"
        central = details["amplification"]["epsilon_central"]
        assert set(central) == {"0.5", "1"}
        assert central["1"] < 1.0

    def test_service_document_includes_protocol_only_when_set(self):
        from repro.service import ServiceSpec

        local = ServiceSpec(name="svc")
        shuffle = ServiceSpec(name="svc", protocol="shuffle")
        assert "protocol" not in local.document()
        assert shuffle.document()["protocol"] == "shuffle"
        assert local.digest() != shuffle.digest()
        with pytest.raises(KeyError, match="available protocols"):
            ServiceSpec(name="svc", protocol="nope")

    def test_scheme_configure_protocol(self):
        from repro.simulation.schemes import make_scheme

        dap = make_scheme("DAP-CEMF*", epsilon=1.0)
        assert dap.configure_protocol("shuffle") is dap
        assert dap.config.protocol == "shuffle"
        # schemes without a budget ladder validate and ignore
        ostrich = make_scheme("Ostrich", epsilon=1.0)
        assert ostrich.configure_protocol("shuffle") is ostrich
        with pytest.raises(KeyError, match="available protocols"):
            ostrich.configure_protocol("nope")
