"""Tests for repro.utils.histogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.discretization import BucketGrid
from repro.utils.histogram import (
    cumulative_distribution,
    histogram_counts,
    histogram_mean,
    histogram_variance,
    normalize_histogram,
    rebin_histogram,
)


class TestNormalizeHistogram:
    def test_sums_to_one(self):
        assert normalize_histogram(np.array([1.0, 3.0])).sum() == pytest.approx(1.0)

    def test_zero_histogram_becomes_uniform(self):
        np.testing.assert_allclose(normalize_histogram(np.zeros(4)), 0.25)

    def test_negative_entries_clipped(self):
        out = normalize_histogram(np.array([-1.0, 1.0]))
        assert out.min() >= 0.0
        assert out.sum() == pytest.approx(1.0)


class TestHistogramMean:
    def test_simple_mean(self):
        freq = np.array([0.5, 0.5])
        centers = np.array([-1.0, 1.0])
        assert histogram_mean(freq, centers) == pytest.approx(0.0)

    def test_weighted_mean(self):
        freq = np.array([0.25, 0.75])
        centers = np.array([0.0, 1.0])
        assert histogram_mean(freq, centers) == pytest.approx(0.75)

    def test_unnormalised_frequencies_handled(self):
        freq = np.array([1.0, 3.0])
        centers = np.array([0.0, 1.0])
        assert histogram_mean(freq, centers) == pytest.approx(0.75)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            histogram_mean(np.array([1.0]), np.array([0.0, 1.0]))


class TestHistogramVariance:
    def test_uniform_histogram_has_zero_frequency_variance(self):
        assert histogram_variance(np.full(10, 0.1)) == pytest.approx(0.0)

    def test_concentrated_histogram_has_larger_variance(self):
        uniform = histogram_variance(np.full(10, 0.1))
        spiked = histogram_variance(np.array([0.91] + [0.01] * 9))
        assert spiked > uniform

    def test_value_variance_with_centers(self):
        freq = np.array([0.5, 0.5])
        centers = np.array([-1.0, 1.0])
        assert histogram_variance(freq, centers) == pytest.approx(1.0)


class TestRebinHistogram:
    def test_identity_rebin(self):
        grid = BucketGrid(0.0, 1.0, 4)
        freq = np.array([0.1, 0.2, 0.3, 0.4])
        np.testing.assert_allclose(rebin_histogram(freq, grid, grid), freq)

    def test_mass_preserved_when_coarsening(self):
        fine = BucketGrid(0.0, 1.0, 8)
        coarse = BucketGrid(0.0, 1.0, 2)
        freq = np.full(8, 0.125)
        out = rebin_histogram(freq, fine, coarse)
        assert out.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            rebin_histogram(np.ones(3), BucketGrid(0, 1, 4), BucketGrid(0, 1, 2))


class TestHistogramCountsAndCdf:
    def test_histogram_counts(self, rng):
        grid = BucketGrid(-1.0, 1.0, 10)
        values = rng.uniform(-1, 1, 200)
        assert histogram_counts(values, grid).sum() == 200

    def test_cumulative_distribution_monotone(self):
        cdf = cumulative_distribution(np.array([1.0, 2.0, 3.0]))
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)


class TestPropertyBased:
    @given(
        counts=st.lists(st.floats(0, 100, allow_nan=False), min_size=2, max_size=30)
    )
    @settings(max_examples=50, deadline=None)
    def test_normalize_output_is_probability_vector(self, counts):
        out = normalize_histogram(np.array(counts))
        assert out.min() >= 0
        assert out.sum() == pytest.approx(1.0, abs=1e-9)

    @given(
        freq=st.lists(st.floats(0.01, 1, allow_nan=False), min_size=2, max_size=20)
    )
    @settings(max_examples=50, deadline=None)
    def test_mean_within_center_range(self, freq):
        freq = np.array(freq)
        centers = np.linspace(-1, 1, freq.size)
        mean = histogram_mean(freq, centers)
        assert -1.0 <= mean <= 1.0
