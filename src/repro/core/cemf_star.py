"""EMF* with concentration — CEMF* (Theorem 5).

When Byzantine users concentrate their poison values on a small sub-range,
EMF/EMF* smear the reconstructed poison histogram over the whole poisoned
side.  CEMF* *suppresses* poison buckets whose EMF-reconstructed mass is below
a threshold — treating them as if no poison value could be there — and reruns
the constrained EM with those buckets pinned at zero.  Theorem 5 shows the
reconstruction monotonically improves as more genuinely-empty poison buckets
are suppressed.

The suppression threshold follows Section VI-C: a poison bucket survives only
if its EMF mass exceeds ``0.5 * gamma_hat / n_poison_buckets`` (i.e. half of
the mass it would hold if poison values were spread uniformly).
"""

from __future__ import annotations

import numpy as np

from repro.core.emf import DEFAULT_MAX_ITER, EMFResult
from repro.core.emf_star import run_emf_star
from repro.core.transform import TransformMatrix
from repro.utils.validation import check_positive

#: the paper's default: keep buckets holding at least half the uniform share
DEFAULT_SUPPRESSION_FACTOR = 0.5


def suppression_mask(
    poison_histogram: np.ndarray,
    gamma_hat: float,
    factor: float = DEFAULT_SUPPRESSION_FACTOR,
) -> np.ndarray:
    """Boolean mask of poison buckets to suppress (True = force to zero).

    A bucket is suppressed when its reconstructed mass is below
    ``factor * gamma_hat / n_poison_buckets``.  When every bucket would be
    suppressed (e.g. ``gamma_hat`` is 0), nothing is suppressed so the
    downstream EM stays well defined.
    """
    check_positive(factor, "factor")
    poison_histogram = np.asarray(poison_histogram, dtype=float)
    n_buckets = poison_histogram.size
    if n_buckets == 0:
        return np.zeros(0, dtype=bool)
    threshold = factor * gamma_hat / n_buckets
    mask = poison_histogram < threshold
    if mask.all():
        return np.zeros(n_buckets, dtype=bool)
    return mask


def run_cemf_star(
    transform: TransformMatrix,
    emf_result: EMFResult,
    gamma_hat: float | None = None,
    reports: np.ndarray | None = None,
    counts: np.ndarray | None = None,
    epsilon: float | None = None,
    tol: float | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    suppression_factor: float = DEFAULT_SUPPRESSION_FACTOR,
) -> EMFResult:
    """Run CEMF*: suppress weak poison buckets, then rerun EMF*.

    Parameters
    ----------
    transform:
        Transform matrix for the group being post-processed.
    emf_result:
        A prior EMF (or EMF*) result on the *same* transform — its poison
        histogram decides which buckets are suppressed.
    gamma_hat:
        Byzantine proportion to constrain to; defaults to the proportion
        carried by ``emf_result``.
    reports, counts, epsilon, tol, max_iter:
        Same as :func:`repro.core.emf_star.run_emf_star`.
    suppression_factor:
        Multiplier on the uniform per-bucket share used as the threshold.
    """
    if emf_result.transform.n_poison_components != transform.n_poison_components:
        raise ValueError(
            "emf_result was computed on a transform with a different number of "
            "poison buckets"
        )
    if gamma_hat is None:
        gamma_hat = emf_result.gamma_hat
    mask = suppression_mask(
        emf_result.poison_histogram, gamma_hat, factor=suppression_factor
    )
    return run_emf_star(
        transform,
        gamma_hat=gamma_hat,
        reports=reports,
        counts=counts,
        epsilon=epsilon,
        tol=tol,
        max_iter=max_iter,
        fixed_zero_poison=mask,
    )


__all__ = ["run_cemf_star", "suppression_mask", "DEFAULT_SUPPRESSION_FACTOR"]
