"""Benchmark: Figure 9 (a)(b) — DAP vs the k-means-based defence.

Paper claims: (a) under a Biased Byzantine Attack the DAP variants beat the
k-means defence by several orders of magnitude; (b) under an input
manipulation attack, combining the EMF machinery with the k-means defence
("EMF-based") improves on plain k-means by roughly 30%.
"""

from repro.experiments import (
    format_fig9_defense_comparison,
    run_fig9_defense_comparison,
)


def test_fig9_kmeans_comparison(benchmark, bench_scale_small):
    records = benchmark(
        run_fig9_defense_comparison,
        bench_scale_small,
        epsilons=(1.0, 2.0),
        sampling_rates=(0.1, 0.5),
        include_ima_panel=True,
        ima_inputs=(1.0,),
        rng=0,
    )
    print("\n" + format_fig9_defense_comparison(records))

    # (a): every DAP variant beats every k-means parameterisation under BBA
    for epsilon in (1.0, 2.0):
        mse = {
            r.scheme: r.mse
            for r in records
            if r.point.get("panel") == "a" and r.point["epsilon"] == epsilon
        }
        best_kmeans = min(v for k, v in mse.items() if k.startswith("K-means"))
        for dap in ("DAP-EMF*", "DAP-CEMF*"):
            assert mse[dap] < best_kmeans, (epsilon, dap)

    # (b): the EMF-based integration stays in the same ballpark as plain
    # k-means under an input manipulation attack.  The paper's ~30% gain is
    # measured at 10^6 users with 10^6 sampled subsets; at this benchmark
    # scale the two estimators are dominated by sampling noise, so we only
    # check that the integration does not blow up.
    panel_b = [r for r in records if r.point.get("panel") == "b"]
    for rate in (0.1, 0.5):
        mse = {
            r.scheme: r.mse for r in panel_b if r.point["sampling_rate"] == rate
        }
        emf_based = mse[f"EMF-based(beta={rate:g})"]
        plain = mse[f"K-means(beta={rate:g})"]
        assert emf_based < max(10 * plain, 0.1)
