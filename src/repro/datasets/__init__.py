"""Datasets used in the paper's evaluation (Section VI, Figure 4).

The two synthetic datasets — Beta(2,5) and Beta(5,2) — are generated exactly
as described.  The two real-world datasets (NYC Taxi pick-up times and San
Francisco Retirement compensation) and the categorical COVID-19 dataset are
not redistributable and not downloadable offline, so this package ships
*synthetic equivalents* whose normalised distributions match the shape and
mean reported in the paper (see ``DESIGN.md`` for the substitution rationale).

All numerical datasets expose values normalised into ``[-1, 1]`` — the input
domain of the Piecewise Mechanism — plus the raw domain for documentation.
"""

from repro.datasets.base import NumericalDataset, CategoricalDataset, normalize_to_unit
from repro.datasets.synthetic import beta_dataset, uniform_dataset, gaussian_dataset
from repro.datasets.taxi import taxi_dataset
from repro.datasets.retirement import retirement_dataset
from repro.datasets.covid import covid_dataset
from repro.datasets.registry import load_dataset, available_datasets, PAPER_DATASETS

__all__ = [
    "NumericalDataset",
    "CategoricalDataset",
    "normalize_to_unit",
    "beta_dataset",
    "uniform_dataset",
    "gaussian_dataset",
    "taxi_dataset",
    "retirement_dataset",
    "covid_dataset",
    "load_dataset",
    "available_datasets",
    "PAPER_DATASETS",
]
