"""Pessimistic initialisation of the true mean ``O'`` (Theorem 2).

The Biased Byzantine Attack is defined relative to the true mean ``O``, which
the collector does not know.  Theorem 2 gives a *pessimistic* initial guess:
remove the largest ``ceil(gamma_sup * N)`` reports (the worst the attackers
could have contributed) and average the rest; the result ``O'`` is guaranteed
not to overshoot towards the poisoned side, so the BBA poison range built on
``O'`` always contains the true poison range.

The paper then simplifies to ``O' = 0`` for its experiments; both the exact
pessimistic estimate and that simplification are available here.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_fraction

#: the BFT bound on the Byzantine proportion used when nothing else is known
DEFAULT_GAMMA_SUP = 0.5


def pessimistic_mean(
    reports: np.ndarray,
    gamma_sup: float = DEFAULT_GAMMA_SUP,
    side: str = "right",
) -> float:
    """Theorem 2's pessimistic initialisation ``O'``.

    Parameters
    ----------
    reports:
        All collected reports.
    gamma_sup:
        Upper bound on the Byzantine proportion (0.5 by default, per the BFT
        assumption; smaller with prior knowledge — footnote 4).
    side:
        The hypothesised poisoned side.  For ``"right"`` the *largest*
        ``ceil(gamma_sup * N)`` reports are discarded so ``O' <= O``; for
        ``"left"`` the smallest are discarded so ``O' >= O``.
    """
    reports = np.asarray(reports, dtype=float).ravel()
    if reports.size == 0:
        raise ValueError("cannot initialise O' from zero reports")
    gamma_sup = check_fraction(gamma_sup, "gamma_sup")
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    n = reports.size
    n_remove = min(n - 1, int(math.ceil(gamma_sup * n)))
    if n_remove <= 0:
        return float(reports.mean())
    ordered = np.sort(reports)
    if side == "right":
        kept = ordered[: n - n_remove]
    else:
        kept = ordered[n_remove:]
    return float(kept.mean())


def pessimistic_mean_both_sides(
    reports: np.ndarray, gamma_sup: float = DEFAULT_GAMMA_SUP
) -> tuple[float, float]:
    """Pessimistic means for both hypothesised sides ``(right, left)``."""
    return (
        pessimistic_mean(reports, gamma_sup, side="right"),
        pessimistic_mean(reports, gamma_sup, side="left"),
    )


__all__ = ["pessimistic_mean", "pessimistic_mean_both_sides", "DEFAULT_GAMMA_SUP"]
