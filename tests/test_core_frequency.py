"""Tests for the categorical frequency-estimation extension (Section V-D)."""

import numpy as np
import pytest

from repro.core.frequency import FrequencyDAP, ostrich_frequencies
from repro.datasets import covid_dataset
from repro.estimators import frequency_mse
from repro.ldp import KRandomizedResponse


@pytest.fixture(scope="module")
def covid():
    return covid_dataset(n_samples=12_000, rng=3)


class TestOstrichFrequencies:
    def test_clean_reports_recover_frequencies(self, covid, rng):
        mech = KRandomizedResponse(2.0, covid.n_categories)
        reports = mech.perturb(covid.categories, rng)
        estimate = ostrich_frequencies(mech, reports)
        assert estimate.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(estimate, covid.true_frequencies, atol=0.03)

    def test_unclipped_variant(self, covid, rng):
        mech = KRandomizedResponse(2.0, covid.n_categories)
        reports = mech.perturb(covid.categories, rng)
        estimate = ostrich_frequencies(mech, reports, clip=False)
        assert estimate.sum() == pytest.approx(1.0, abs=0.05)


class TestFrequencyDAPCollection:
    def test_report_count(self, covid, rng):
        dap = FrequencyDAP(1.0, covid.n_categories)
        reports = dap.collect(covid.categories[:2_000], (9,), 500, rng=rng)
        assert reports.size == 2_500

    def test_byzantine_requires_targets(self, covid, rng):
        dap = FrequencyDAP(1.0, covid.n_categories)
        with pytest.raises(ValueError):
            dap.collect(covid.categories[:100], (), 10, rng=rng)

    def test_poison_reports_hit_targets(self, covid, rng):
        dap = FrequencyDAP(1.0, covid.n_categories)
        reports = dap.collect(covid.categories[:0], (3, 4), 1_000, rng=rng)
        assert set(np.unique(reports)) <= {3, 4}


class TestFrequencyDAPEstimation:
    def test_detects_single_poisoned_category(self, covid, rng):
        dap = FrequencyDAP(1.0, covid.n_categories)
        n_byz = 2_000
        normal = covid.categories[:6_000]
        reports = dap.collect(normal, (3,), n_byz, rng=rng)
        result = dap.estimate(reports)
        assert 3 in result.poisoned_categories
        assert result.gamma_hat == pytest.approx(n_byz / reports.size, abs=0.08)

    def test_beats_ostrich_under_attack(self, covid, rng):
        epsilon = 1.0
        n_byz = 2_000
        normal = covid.categories[:6_000]
        truth = np.bincount(normal, minlength=covid.n_categories) / normal.size
        dap = FrequencyDAP(epsilon, covid.n_categories)
        reports = dap.collect(normal, (3,), n_byz, rng=rng)
        dap_mse = frequency_mse(dap.estimate(reports).frequencies, truth)
        mech = KRandomizedResponse(epsilon, covid.n_categories)
        ostrich_mse = frequency_mse(ostrich_frequencies(mech, reports), truth)
        assert dap_mse < ostrich_mse

    def test_no_attack_flags_nothing_catastrophic(self, covid, rng):
        dap = FrequencyDAP(1.0, covid.n_categories, min_likelihood_gain=10.0)
        normal = covid.categories[:6_000]
        reports = dap.collect(normal, (), 0, rng=rng)
        result = dap.estimate(reports)
        assert result.gamma_hat < 0.15
        assert result.frequencies.sum() == pytest.approx(1.0)

    def test_estimator_variants_run(self, covid, rng):
        normal = covid.categories[:4_000]
        for estimator in ("emf", "emf_star", "cemf_star"):
            dap = FrequencyDAP(1.0, covid.n_categories, estimator=estimator)
            reports = dap.collect(normal, (3,), 1_000, rng=rng)
            result = dap.estimate(reports)
            assert result.frequencies.sum() == pytest.approx(1.0)
            assert result.frequencies.min() >= 0

    def test_multiple_poisoned_categories(self, covid, rng):
        dap = FrequencyDAP(2.0, covid.n_categories)
        normal = covid.categories[:6_000]
        reports = dap.collect(normal, (2, 3), 3_000, rng=rng)
        result = dap.estimate(reports)
        assert set(result.poisoned_categories) & {2, 3}

    def test_run_end_to_end(self, covid, rng):
        dap = FrequencyDAP(1.0, covid.n_categories)
        result = dap.run(covid.categories[:3_000], (5,), 800, rng=rng)
        assert result.frequencies.size == covid.n_categories

    def test_empty_reports_rejected(self, covid):
        with pytest.raises(ValueError):
            FrequencyDAP(1.0, covid.n_categories).estimate(np.array([], dtype=int))

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            FrequencyDAP(1.0, 1)
        with pytest.raises(ValueError):
            FrequencyDAP(1.0, 5, estimator="bogus")
        with pytest.raises(ValueError):
            FrequencyDAP(0.0, 5)
