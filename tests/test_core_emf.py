"""Tests for EMF, EMF* and CEMF* (Algorithms 2 and 4, Theorems 3-5)."""

import numpy as np
import pytest

from repro.attacks import BiasedByzantineAttack, PAPER_POISON_RANGES
from repro.core.cemf_star import run_cemf_star, suppression_mask
from repro.core.emf import default_tolerance, run_emf
from repro.core.emf_star import constrained_m_step, run_emf_star
from repro.core.transform import build_transform_matrix, default_bucket_counts
from repro.ldp import PiecewiseMechanism


@pytest.fixture
def attacked(rng):
    mech = PiecewiseMechanism(0.25)
    values = np.clip(rng.normal(0.1, 0.3, 6_000), -1, 1)
    normal = mech.perturb(values, rng)
    attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])
    poison = attack.poison_reports(2_000, mech, 0.0, rng).reports
    reports = np.concatenate([normal, poison])
    d_in, d_out = default_bucket_counts(reports.size, 0.25)
    transform = build_transform_matrix(mech, d_in, d_out, "right", 0.0)
    return {
        "mechanism": mech,
        "transform": transform,
        "reports": reports,
        "gamma": 2_000 / reports.size,
        "poison_mean": float(poison.mean()),
        "values": values,
    }


class TestDefaultTolerance:
    def test_matches_paper_formula(self):
        assert default_tolerance(1.0) == pytest.approx(0.01 * np.e)

    def test_none_gives_small_default(self):
        assert default_tolerance(None) == pytest.approx(1e-6)


class TestEMF:
    def test_histograms_form_distribution(self, attacked):
        result = run_emf(attacked["transform"], reports=attacked["reports"], epsilon=0.25)
        total = result.normal_histogram.sum() + result.poison_histogram.sum()
        assert total == pytest.approx(1.0, abs=1e-6)
        assert result.normal_histogram.min() >= 0
        assert result.poison_histogram.min() >= 0

    def test_gamma_estimate_close_to_truth(self, attacked):
        result = run_emf(attacked["transform"], reports=attacked["reports"], epsilon=0.25)
        assert result.gamma_hat == pytest.approx(attacked["gamma"], abs=0.08)

    def test_poison_mean_close_to_truth(self, attacked):
        result = run_emf(attacked["transform"], reports=attacked["reports"], epsilon=0.25)
        assert result.poison_mean == pytest.approx(attacked["poison_mean"], rel=0.15)

    def test_counts_and_reports_paths_agree(self, attacked):
        from_reports = run_emf(attacked["transform"], reports=attacked["reports"], epsilon=0.25)
        counts = attacked["transform"].output_counts(attacked["reports"])
        from_counts = run_emf(attacked["transform"], counts=counts, epsilon=0.25)
        np.testing.assert_allclose(
            from_reports.normal_histogram, from_counts.normal_histogram
        )

    def test_requires_exactly_one_input(self, attacked):
        with pytest.raises(ValueError):
            run_emf(attacked["transform"])
        with pytest.raises(ValueError):
            run_emf(attacked["transform"], reports=attacked["reports"], counts=np.ones(3))

    def test_no_attack_gives_small_gamma(self, rng):
        mech = PiecewiseMechanism(0.125)
        values = np.clip(rng.normal(0.0, 0.3, 8_000), -1, 1)
        reports = mech.perturb(values, rng)
        d_in, d_out = default_bucket_counts(reports.size, 0.125)
        transform = build_transform_matrix(mech, d_in, d_out, "right", 0.0)
        result = run_emf(transform, reports=reports, epsilon=0.125)
        assert result.gamma_hat < 0.08

    def test_small_epsilon_normal_histogram_near_uniform(self, rng):
        # Theorem 3: as epsilon -> 0 the reconstructed normal histogram tends
        # to uniform, so its variance is tiny even under attack.
        mech = PiecewiseMechanism(0.0625)
        values = np.clip(rng.normal(0.3, 0.2, 8_000), -1, 1)
        normal = mech.perturb(values, rng)
        poison = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"]).poison_reports(
            2_000, mech, 0.0, rng
        ).reports
        reports = np.concatenate([normal, poison])
        d_in, d_out = default_bucket_counts(reports.size, 0.0625)
        transform = build_transform_matrix(mech, d_in, d_out, "right", 0.0)
        result = run_emf(transform, reports=reports, epsilon=0.0625)
        normalized = result.normalized_normal_histogram()
        assert np.var(normalized) < 1e-3

    def test_estimated_normal_mean_reasonable(self, attacked):
        result = run_emf(attacked["transform"], reports=attacked["reports"], epsilon=0.25)
        assert result.estimated_normal_mean() == pytest.approx(
            attacked["values"].mean(), abs=0.25
        )

    def test_empty_poison_histogram_gives_zero_gamma(self):
        mech = PiecewiseMechanism(1.0)
        transform = build_transform_matrix(mech, 8, 16, "right", 0.0)
        counts = np.ones(16)
        result = run_emf(transform, counts=counts, epsilon=1.0)
        assert 0.0 <= result.gamma_hat <= 1.0


class TestEMFStar:
    def test_gamma_constraint_enforced(self, attacked):
        result = run_emf_star(
            attacked["transform"], gamma_hat=attacked["gamma"],
            reports=attacked["reports"], epsilon=0.25,
        )
        assert result.poison_histogram.sum() == pytest.approx(attacked["gamma"], abs=1e-6)
        assert result.normal_histogram.sum() == pytest.approx(1 - attacked["gamma"], abs=1e-6)

    def test_zero_gamma_means_no_poison_mass(self, attacked):
        result = run_emf_star(
            attacked["transform"], gamma_hat=0.0, reports=attacked["reports"], epsilon=0.25
        )
        assert result.poison_histogram.sum() == pytest.approx(0.0, abs=1e-9)

    def test_poison_mean_not_worse_than_emf(self, attacked):
        emf = run_emf(attacked["transform"], reports=attacked["reports"], epsilon=0.25)
        emf_star = run_emf_star(
            attacked["transform"], gamma_hat=attacked["gamma"],
            reports=attacked["reports"], epsilon=0.25,
        )
        truth = attacked["poison_mean"]
        assert abs(emf_star.poison_mean - truth) <= abs(emf.poison_mean - truth) + 0.35

    def test_invalid_gamma(self, attacked):
        with pytest.raises(ValueError):
            run_emf_star(attacked["transform"], gamma_hat=1.5, reports=attacked["reports"])

    def test_fixed_zero_poison_mask(self, attacked):
        n_poison = attacked["transform"].n_poison_components
        mask = np.zeros(n_poison, dtype=bool)
        mask[: n_poison // 2] = True
        result = run_emf_star(
            attacked["transform"], gamma_hat=attacked["gamma"],
            reports=attacked["reports"], epsilon=0.25, fixed_zero_poison=mask,
        )
        np.testing.assert_allclose(result.poison_histogram[mask], 0.0)

    def test_fixed_zero_wrong_shape(self, attacked):
        with pytest.raises(ValueError):
            run_emf_star(
                attacked["transform"], gamma_hat=0.2, reports=attacked["reports"],
                fixed_zero_poison=np.array([True]),
            )

    def test_constrained_m_step_splits_mass(self):
        m_step = constrained_m_step(0.3, n_normal=2)
        out = m_step(np.array([1.0, 1.0, 2.0, 2.0]))
        assert out[:2].sum() == pytest.approx(0.7)
        assert out[2:].sum() == pytest.approx(0.3)


class TestCEMFStar:
    def test_suppression_mask_threshold(self):
        histogram = np.array([0.001, 0.10, 0.002, 0.12])
        mask = suppression_mask(histogram, gamma_hat=0.22, factor=0.5)
        np.testing.assert_array_equal(mask, [True, False, True, False])

    def test_suppression_never_removes_everything(self):
        mask = suppression_mask(np.zeros(5), gamma_hat=0.2)
        assert not mask.any()

    def test_empty_histogram(self):
        assert suppression_mask(np.array([]), 0.2).size == 0

    def test_concentrated_poison_reconstruction_improves(self, rng):
        # poison concentrated on a narrow range: CEMF* should localise it at
        # least as well as EMF (Theorem 5's motivation)
        mech = PiecewiseMechanism(0.25)
        values = np.clip(rng.normal(0.0, 0.3, 6_000), -1, 1)
        normal = mech.perturb(values, rng)
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[3C/4,C]"])
        poison = attack.poison_reports(2_000, mech, 0.0, rng).reports
        reports = np.concatenate([normal, poison])
        gamma = 2_000 / reports.size
        d_in, d_out = default_bucket_counts(reports.size, 0.25)
        transform = build_transform_matrix(mech, d_in, d_out, "right", 0.0)
        emf = run_emf(transform, reports=reports, epsilon=0.25)
        cemf = run_cemf_star(
            transform, emf_result=emf, gamma_hat=gamma, reports=reports, epsilon=0.25
        )
        truth = float(poison.mean())
        assert abs(cemf.poison_mean - truth) <= abs(emf.poison_mean - truth) + 0.2
        # suppressed buckets hold no mass
        mask = suppression_mask(emf.poison_histogram, gamma)
        np.testing.assert_allclose(cemf.poison_histogram[mask], 0.0, atol=1e-12)

    def test_mismatched_transform_rejected(self, attacked):
        emf = run_emf(attacked["transform"], reports=attacked["reports"], epsilon=0.25)
        other = build_transform_matrix(attacked["mechanism"], 8, 18, "right", 0.0)
        with pytest.raises(ValueError):
            run_cemf_star(other, emf_result=emf, reports=attacked["reports"])

    def test_gamma_defaults_to_emf_estimate(self, attacked):
        emf = run_emf(attacked["transform"], reports=attacked["reports"], epsilon=0.25)
        cemf = run_cemf_star(
            attacked["transform"], emf_result=emf, reports=attacked["reports"], epsilon=0.25
        )
        assert cemf.gamma_hat == pytest.approx(emf.gamma_hat, abs=1e-6)
