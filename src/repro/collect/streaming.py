"""Chunk planning helpers for streaming collection paths."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.utils.validation import check_integer

#: default report-chunk size used by the streaming paths (reports per chunk)
DEFAULT_CHUNK_SIZE = 65_536


def iter_chunks(n: int, chunk_size: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` bounds covering ``range(n)`` in chunks.

    The final chunk is short when ``n % chunk_size != 0``; nothing is yielded
    for ``n == 0``.
    """
    n = check_integer(n, "n", minimum=0)
    chunk_size = check_integer(chunk_size, "chunk_size", minimum=1)
    for start in range(0, n, chunk_size):
        yield start, min(n, start + chunk_size)


def chunk_array(values: np.ndarray, chunk_size: int) -> Iterator[np.ndarray]:
    """Yield views of ``values`` in chunks of ``chunk_size``.

    Feeding the yielded chunks through any accumulator in
    :mod:`repro.collect.accumulators` produces the same statistics as one
    call on the full array.
    """
    values = np.asarray(values)
    for start, stop in iter_chunks(values.shape[0], chunk_size):
        yield values[start:stop]


__all__ = ["DEFAULT_CHUNK_SIZE", "chunk_array", "iter_chunks"]
