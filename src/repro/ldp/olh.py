"""Optimized Local Hashing (OLH) frequency oracle of Wang et al.

Each user hashes their category into a small domain of size
``g = round(e^eps) + 1`` with a per-user hash function and applies k-RR over
the hashed domain.  The collector counts, for each candidate category, how
many users' reports are consistent with that category under the user's hash
function, then de-biases:

``f_hat_j = (support_j / n - 1/g) / (p - 1/g)``, ``p = e^eps / (e^eps + g - 1)``.

The per-user hash is implemented with a seeded integer mixing function so the
whole pipeline stays deterministic under a fixed RNG seed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backends import get_backend
from repro.ldp.base import CategoricalMechanism, MechanismError
from repro.registry import MECHANISMS
from repro.utils.rng import RngLike, ensure_rng

#: large odd multipliers for integer hash mixing (splitmix-style)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)

#: OLH decoding compares every candidate category against every user's hash;
#: the O(k * n) support pass makes larger domains impractical
OLH_MAX_CATEGORIES = 1 << 17


def _hash_categories(categories: np.ndarray, seeds: np.ndarray, domain: int) -> np.ndarray:
    """Hash each ``(seed, category)`` pair into ``[0, domain)``."""
    x = (seeds.astype(np.uint64) << np.uint64(32)) ^ categories.astype(np.uint64)
    x = (x ^ (x >> np.uint64(30))) * _MIX_1
    x = (x ^ (x >> np.uint64(27))) * _MIX_2
    x = x ^ (x >> np.uint64(31))
    return (x % np.uint64(domain)).astype(np.int64)


@MECHANISMS.register("olh", kind="categorical")
class OptimizedLocalHashing(CategoricalMechanism):
    """OLH mechanism over categories ``0 .. k-1``."""

    def __init__(self, epsilon: float, n_categories: int) -> None:
        super().__init__(epsilon, n_categories)
        if self.n_categories > OLH_MAX_CATEGORIES:
            raise ValueError(
                f"n_categories={self.n_categories} exceeds the OLH limit "
                f"({OLH_MAX_CATEGORIES}): decoding scans every (category, "
                f"user) pair; use the 'count-sketch' mechanism for "
                f"high-cardinality domains"
            )
        exp_eps = math.exp(self.epsilon)
        #: hashed domain size
        self.g = max(2, int(round(exp_eps)) + 1)
        self.p = exp_eps / (exp_eps + self.g - 1.0)
        self.q = 1.0 / self.g

    def perturb(self, categories: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb categories into ``(n, 2)`` arrays of ``(hash_seed, report)``."""
        rng = ensure_rng(rng)
        categories = self._validate_categories(categories).ravel()
        return get_backend().olh_sample(
            categories, self.g, self.p, _hash_categories, rng
        )

    def estimate_frequencies(self, reports: np.ndarray) -> np.ndarray:
        """Unbiased frequency estimates from ``(seed, report)`` pairs."""
        reports = np.asarray(reports)
        if reports.ndim != 2 or reports.shape[1] != 2:
            raise MechanismError(
                f"OLH reports must have shape (n, 2), got {reports.shape}"
            )
        n = reports.shape[0]
        if n == 0:
            raise MechanismError("cannot estimate frequencies from zero reports")
        seeds = reports[:, 0].astype(np.uint64)
        observed = reports[:, 1].astype(np.int64)
        # support counting compares each user's report against the hash of
        # every candidate category; the backend tiles the (category, user)
        # grid over bounded user chunks, so memory stays O(k * tile) instead
        # of the k x n broadcast (count-identical whatever the tile size)
        support = get_backend().olh_support(
            seeds, observed, self.n_categories, self.g, _hash_categories
        ).astype(float)
        support /= n
        return (support - self.q) / (self.p - self.q)

    def variance_per_report(self, frequency: float = 0.0) -> float:
        """Per-user variance of a frequency estimate."""
        return (
            self.q * (1.0 - self.q) / (self.p - self.q) ** 2
            + frequency * (1.0 - frequency)
        )


__all__ = ["OptimizedLocalHashing", "OLH_MAX_CATEGORIES"]
