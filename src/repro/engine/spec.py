"""Declarative experiment specifications.

An :class:`ExperimentSpec` is a complete, self-contained description of one
paper experiment: the sweep points, the factories producing schemes / attack /
dataset per point, the population scale, and the trial count.  The figure
drivers in :mod:`repro.experiments` are thin builders of these specs; the
executor in :mod:`repro.engine.executor` turns a spec into
:class:`~repro.simulation.sweep.SweepRecord` rows, either serially or fanned
out over a process pool.

Two properties make specs parallelisable without changing results:

* **pre-drawn seeds** — the executor draws one seed per (point, trial) from
  the master generator up front, in the same order the legacy serial
  ``sweep`` consumed it, so every work unit depends only on its own seeds and
  results are bit-identical regardless of worker count (or of whether a pool
  is used at all);
* **picklable factories** — factories are small frozen dataclasses (not
  closures), so a spec can be shipped to worker processes.

Experiments that are not scheme sweeps (Table I, the probing panels of
Figures 5 and 8, the frequency-estimation panels) subclass the spec and
override :meth:`ExperimentSpec.evaluate_point`; the executor then fans out
whole points instead of (point, scheme) units.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.attacks.base import Attack
from repro.backends import check_backend, use_backend
from repro.core.probing import check_probe_strategy
from repro.datasets.base import NumericalDataset
from repro.protocol.plan import check_protocol
from repro.simulation.runner import (
    run_trials_batched,
    run_trials_from_seeds,
    run_trials_sharded,
    run_trials_streaming,
)
from repro.simulation.schemes import Scheme
from repro.simulation.sweep import SweepRecord
from repro.utils.validation import check_integer

#: a sweep point: a flat mapping of swept parameter values
PointSpec = Mapping[str, Any]

#: a work unit: ``(point index, scheme index)`` (scheme index 0 for
#: point-granular specs)
Unit = Tuple[int, int]


@dataclass
class ExperimentSpec:
    """Declarative description of one experiment.

    Attributes
    ----------
    name:
        Identifier used in run artifacts (e.g. ``"fig6"``).
    points:
        The sweep points; each factory receives the point so every aspect of
        the experiment can depend on the swept parameters.
    n_users, n_trials:
        Population size per trial and trials per point.
    gamma:
        Byzantine proportion — a constant or a per-point callable.
    scheme_factory, attack_factory, dataset_factory:
        Point -> schemes / attack / dataset.  Required unless the subclass
        overrides :meth:`evaluate_point`.
    input_domain:
        Mechanism input domain — a constant or a per-point callable.
    batched:
        Use the stacked-trials estimation path (one ``perturb`` per scheme
        per point).  The default ``False`` reproduces the legacy serial
        ``sweep`` output bit for bit; ``True`` opts into the fast path.
    chunk_size:
        Run trials through the streaming collection path with this report
        chunk size (see :func:`repro.simulation.runner.run_trials_streaming`)
        — populations are generated and collected chunk by chunk, so memory
        is bounded by the chunk size instead of ``n_users``.  Mutually
        exclusive with ``batched``; ``None`` (default) keeps the in-memory
        path.
    collect_workers:
        Run trials through the sharded collection path
        (:func:`repro.simulation.runner.run_trials_sharded`) with this many
        shard workers per collection round.  A pure execution detail — the
        shard plan's block seeds own the randomness, so records are
        bit-identical for any positive value — and therefore *not* part of
        :meth:`fingerprint`.  Mutually exclusive with ``batched`` and
        ``chunk_size``.
    probe_strategy:
        Override the probe-strategy execution knob on every scheme that has
        a probing stage (``"batched"`` / ``"cold"``, see
        :data:`repro.core.probing.PROBE_STRATEGIES`); ``None`` keeps each
        scheme's own default.  An execution detail like ``chunk_size`` and
        ``collect_workers`` — probe selections are strategy-invariant — so
        it is recorded in artifact provenance but excluded from
        :meth:`fingerprint`.
    backend:
        Array-compute backend every work unit runs under (see
        :data:`repro.backends.BACKENDS`); ``None`` keeps the process default
        (the bit-stable ``"numpy"`` reference).  An execution detail like
        ``probe_strategy`` — excluded from :meth:`fingerprint`, recorded in
        ``meta.execution`` — but note the fast backends consume the RNG
        stream differently, so a seeded run's records are statistically
        equivalent rather than bit-identical across backends.
    protocol:
        Trust-model identity axis applied to every scheme (see
        :data:`repro.protocol.PROTOCOL_NAMES`); ``None`` keeps each scheme's
        own default (the classical ``"local"`` model).  Unlike the execution
        knobs above this *changes what the adversary can observe*, so when it
        is set it enters :meth:`fingerprint` — an artifact collected under
        the shuffle model can never be resumed as a local-model run.
    seed:
        Default master seed used when the executor is not handed an explicit
        generator.
    description:
        Free-form provenance recorded in run artifacts.
    fingerprint_extra:
        Extra identity merged into :meth:`fingerprint` — for builders whose
        configuration is not visible in the points/schemes (e.g. the scenario
        layer digests its whole document here so a resumed artifact can never
        serve records from an edited scenario file).
    """

    name: str
    points: Sequence[PointSpec]
    n_users: int
    n_trials: int
    gamma: float | Callable[[PointSpec], float] = 0.25
    scheme_factory: Callable[[PointSpec], Sequence[Scheme]] | None = None
    attack_factory: Callable[[PointSpec], Attack | None] | None = None
    dataset_factory: Callable[[PointSpec], NumericalDataset] | None = None
    input_domain: Tuple[float, float] | Callable[[PointSpec], Tuple[float, float]] = (
        -1.0,
        1.0,
    )
    batched: bool = False
    chunk_size: int | None = None
    collect_workers: int | None = None
    probe_strategy: str | None = None
    backend: str | None = None
    protocol: str | None = None
    seed: int | None = None
    description: str = ""
    fingerprint_extra: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        self.points = tuple(dict(point) for point in self.points)
        if not self.points:
            raise ValueError(f"spec {self.name!r} has no sweep points")
        check_integer(self.n_users, "n_users", minimum=1)
        check_integer(self.n_trials, "n_trials", minimum=1)
        if self.chunk_size is not None:
            check_integer(self.chunk_size, "chunk_size", minimum=1)
            if self.batched:
                raise ValueError(
                    f"spec {self.name!r} sets both batched and chunk_size; the "
                    f"stacked-trials and streaming paths are mutually exclusive"
                )
            if self.is_point_granular():
                raise ValueError(
                    f"spec {self.name!r} overrides evaluate_point, which runs "
                    f"outside the trial runners; chunk_size is never honoured"
                )
        if self.collect_workers is not None:
            check_integer(self.collect_workers, "collect_workers", minimum=1)
            if self.batched or self.chunk_size is not None:
                raise ValueError(
                    f"spec {self.name!r} sets collect_workers alongside "
                    f"batched/chunk_size; the sharded, stacked-trials and "
                    f"streaming paths are mutually exclusive"
                )
            if self.is_point_granular():
                raise ValueError(
                    f"spec {self.name!r} overrides evaluate_point, which runs "
                    f"outside the trial runners; collect_workers is never "
                    f"honoured"
                )
        if self.probe_strategy is not None:
            check_probe_strategy(self.probe_strategy)
        if self.backend is not None:
            check_backend(self.backend)
        if self.protocol is not None:
            check_protocol(self.protocol)
        if not self.is_point_granular():
            missing = [
                label
                for label, factory in (
                    ("scheme_factory", self.scheme_factory),
                    ("attack_factory", self.attack_factory),
                    ("dataset_factory", self.dataset_factory),
                )
                if factory is None
            ]
            if missing:
                raise ValueError(
                    f"spec {self.name!r} must provide {', '.join(missing)} or "
                    f"override evaluate_point()"
                )

    # ------------------------------------------------------------------
    # per-point accessors
    # ------------------------------------------------------------------
    def point_gamma(self, point: PointSpec) -> float:
        """The Byzantine proportion at one sweep point."""
        return self.gamma(point) if callable(self.gamma) else self.gamma

    def point_domain(self, point: PointSpec) -> Tuple[float, float]:
        """The mechanism input domain at one sweep point."""
        return (
            self.input_domain(point) if callable(self.input_domain) else self.input_domain
        )

    def schemes_for(self, point: PointSpec) -> List[Scheme]:
        """Instantiate the schemes evaluated at one sweep point."""
        if self.scheme_factory is None:
            raise ValueError(f"spec {self.name!r} has no scheme factory")
        schemes = list(self.scheme_factory(point))
        if self.probe_strategy is not None:
            for scheme in schemes:
                scheme.configure_probing(self.probe_strategy)
        if self.protocol is not None:
            for scheme in schemes:
                scheme.configure_protocol(self.protocol)
        return schemes

    # ------------------------------------------------------------------
    # execution interface (consumed by the executor)
    # ------------------------------------------------------------------
    def is_point_granular(self) -> bool:
        """Whether work units are whole points (custom ``evaluate_point``)."""
        return type(self).evaluate_point is not ExperimentSpec.evaluate_point

    def units(self) -> List[Unit]:
        """Independent work units, in canonical (serial) order."""
        if self.is_point_granular():
            return [(index, 0) for index in range(len(self.points))]
        return [
            (point_index, scheme_index)
            for point_index, point in enumerate(self.points)
            for scheme_index in range(len(self.schemes_for(point)))
        ]

    def evaluate_unit(self, unit: Unit, trial_seeds: np.ndarray) -> List[Any]:
        """Evaluate one work unit and return its result records."""
        with use_backend(self.backend):
            return self._evaluate_unit(unit, trial_seeds)

    def _evaluate_unit(self, unit: Unit, trial_seeds: np.ndarray) -> List[Any]:
        point_index, scheme_index = unit
        point = self.points[point_index]
        if self.is_point_granular():
            return list(self.evaluate_point(point, trial_seeds))
        scheme = self.schemes_for(point)[scheme_index]
        kwargs: dict = {}
        if self.chunk_size is not None:
            runner = run_trials_streaming
            kwargs["chunk_size"] = self.chunk_size
        elif self.collect_workers is not None:
            # n_shards tracks the worker count for scheduling, but the
            # records do not depend on it (block seeds own the randomness)
            runner = run_trials_sharded
            kwargs["n_shards"] = self.collect_workers
            kwargs["n_workers"] = self.collect_workers
        elif self.batched:
            runner = run_trials_batched
        else:
            runner = run_trials_from_seeds
        result = runner(
            scheme,
            self.dataset_factory(point),
            self.attack_factory(point),
            n_users=self.n_users,
            gamma=self.point_gamma(point),
            trial_seeds=trial_seeds,
            input_domain=self.point_domain(point),
            **kwargs,
        )
        return [
            SweepRecord(
                point=dict(point),
                scheme=result.scheme,
                mse=result.mse,
                bias=result.bias,
                n_trials=len(trial_seeds),
            )
        ]

    def evaluate_point(self, point: PointSpec, trial_seeds: np.ndarray) -> Sequence[Any]:
        """Hook for non-scheme experiments: evaluate one whole point.

        Subclasses override this to run arbitrary per-point measurements
        (probing rounds, frequency estimation, ...).  All randomness must be
        derived from ``trial_seeds`` so the point stays reproducible and
        placeable on any worker.
        """
        raise NotImplementedError(
            "scheme-based specs are evaluated per (point, scheme) unit"
        )

    # ------------------------------------------------------------------
    # provenance
    # ------------------------------------------------------------------
    def fingerprint(self) -> dict:
        """Identity of the spec for artifact validation / resume.

        Includes a digest of the sweep-point values and the scheme names, so
        an artifact from a *different* sweep of the same shape (e.g. other
        epsilons, or other schemes) can never be mistaken for this one.

        Execution details — ``chunk_size``, ``collect_workers``,
        ``probe_strategy``, ``backend``, and the executor's worker count — are
        deliberately *not* part of the identity: the accumulators behind the
        streaming and sharded paths are chunking/merge-invariant and the
        probe strategies select the same hypotheses, so completed records
        are reusable verbatim whatever path computes the remaining ones, and
        a run must stay resumable when only its execution knobs change (e.g.
        resuming an in-memory run with ``--chunk-size`` to fit a bigger
        machine's memory budget, or with ``--probe-strategy cold`` to
        reproduce the seed implementation's exact arithmetic).  The
        ``protocol`` trust model is the exception: it changes what the
        adversary observes, so it joins the identity whenever it is set.
        """
        gamma = self.gamma if isinstance(self.gamma, (int, float)) else "per-point"
        points_digest = hashlib.sha256(
            json.dumps(list(self.points), sort_keys=True, default=str).encode()
        ).hexdigest()[:16]
        schemes = (
            None
            if self.is_point_granular()
            else [scheme.name for scheme in self.schemes_for(self.points[0])]
        )
        fingerprint = {
            "name": self.name,
            "n_points": len(self.points),
            "points_digest": points_digest,
            "schemes": schemes,
            "n_users": int(self.n_users),
            "n_trials": int(self.n_trials),
            "gamma": gamma,
            "batched": bool(self.batched),
            "granularity": "point" if self.is_point_granular() else "scheme",
        }
        # identity axis, not an execution knob — but only when set, so every
        # historical local-model fingerprint stays byte-identical
        if self.protocol is not None:
            fingerprint["protocol"] = self.protocol
        if self.fingerprint_extra:
            fingerprint.update(self.fingerprint_extra)
        return fingerprint


__all__ = ["ExperimentSpec", "PointSpec", "Unit"]
