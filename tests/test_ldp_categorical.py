"""Tests for the categorical frequency oracles (k-RR, OUE, OLH)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldp.base import MechanismError
from repro.ldp.krr import KRandomizedResponse
from repro.ldp.olh import OptimizedLocalHashing
from repro.ldp.oue import OptimizedUnaryEncoding


def _skewed_categories(rng, n, k):
    probabilities = np.arange(1, k + 1, dtype=float)
    probabilities /= probabilities.sum()
    return rng.choice(k, size=n, p=probabilities), probabilities


class TestKRR:
    def test_probabilities(self):
        mech = KRandomizedResponse(1.0, 5)
        assert mech.p == pytest.approx(math.e / (math.e + 4))
        assert mech.q == pytest.approx(1 / (math.e + 4))
        assert mech.p + (mech.n_categories - 1) * mech.q == pytest.approx(1.0)

    def test_reports_in_range(self, rng):
        mech = KRandomizedResponse(1.0, 7)
        out = mech.perturb(rng.integers(0, 7, 500), rng)
        assert out.min() >= 0 and out.max() < 7

    def test_keep_probability_empirical(self, rng):
        mech = KRandomizedResponse(2.0, 4)
        out = mech.perturb(np.zeros(40_000, dtype=int), rng)
        assert np.mean(out == 0) == pytest.approx(mech.p, abs=0.01)

    def test_frequency_estimation_unbiased(self, rng):
        k = 6
        mech = KRandomizedResponse(1.5, k)
        categories, probabilities = _skewed_categories(rng, 60_000, k)
        reports = mech.perturb(categories, rng)
        estimate = mech.estimate_frequencies(reports)
        np.testing.assert_allclose(estimate, probabilities, atol=0.02)

    def test_invalid_category_rejected(self, rng):
        mech = KRandomizedResponse(1.0, 3)
        with pytest.raises(MechanismError):
            mech.perturb(np.array([3]), rng)

    def test_transition_matrix_structure(self):
        mech = KRandomizedResponse(1.0, 4)
        matrix = mech.transition_matrix()
        assert matrix.shape == (4, 4)
        np.testing.assert_allclose(np.diag(matrix), mech.p)
        np.testing.assert_allclose(matrix.sum(axis=0), 1.0)

    def test_estimate_from_zero_reports_raises(self):
        with pytest.raises(MechanismError):
            KRandomizedResponse(1.0, 3).estimate_frequencies(np.array([], dtype=int))

    def test_requires_at_least_two_categories(self):
        with pytest.raises(ValueError):
            KRandomizedResponse(1.0, 1)


class TestOUE:
    def test_report_shape(self, rng):
        mech = OptimizedUnaryEncoding(1.0, 5)
        reports = mech.perturb(rng.integers(0, 5, 100), rng)
        assert reports.shape == (100, 5)
        assert set(np.unique(reports)) <= {0, 1}

    def test_frequency_estimation_unbiased(self, rng):
        k = 5
        mech = OptimizedUnaryEncoding(1.0, k)
        categories, probabilities = _skewed_categories(rng, 50_000, k)
        reports = mech.perturb(categories, rng)
        estimate = mech.estimate_frequencies(reports)
        np.testing.assert_allclose(estimate, probabilities, atol=0.02)

    def test_bad_report_shape_rejected(self):
        mech = OptimizedUnaryEncoding(1.0, 5)
        with pytest.raises(MechanismError):
            mech.estimate_frequencies(np.zeros((10, 4)))

    def test_flip_probabilities(self):
        mech = OptimizedUnaryEncoding(2.0, 5)
        assert mech.p == 0.5
        assert mech.q == pytest.approx(1 / (math.exp(2.0) + 1))


class TestOLH:
    def test_report_shape(self, rng):
        mech = OptimizedLocalHashing(1.0, 8)
        reports = mech.perturb(rng.integers(0, 8, 100), rng)
        assert reports.shape == (100, 2)
        assert reports[:, 1].min() >= 0 and reports[:, 1].max() < mech.g

    def test_hash_domain_size(self):
        assert OptimizedLocalHashing(1.0, 10).g == int(round(math.e)) + 1

    def test_frequency_estimation_unbiased(self, rng):
        k = 5
        mech = OptimizedLocalHashing(2.0, k)
        categories, probabilities = _skewed_categories(rng, 40_000, k)
        reports = mech.perturb(categories, rng)
        estimate = mech.estimate_frequencies(reports)
        np.testing.assert_allclose(estimate, probabilities, atol=0.03)

    def test_bad_report_shape_rejected(self):
        with pytest.raises(MechanismError):
            OptimizedLocalHashing(1.0, 5).estimate_frequencies(np.zeros((10, 3)))

    @pytest.mark.parametrize("epsilon,k", [(0.5, 3), (1.0, 8), (3.0, 16)])
    def test_broadcast_support_matches_per_category_loop(self, epsilon, k):
        """The vectorised support counting equals the legacy per-category pass."""
        from repro.ldp.olh import _hash_categories

        rng = np.random.default_rng(2024)
        mech = OptimizedLocalHashing(epsilon, k)
        categories = rng.integers(0, k, 4_000)
        reports = mech.perturb(categories, rng)
        estimate = mech.estimate_frequencies(reports)

        seeds = reports[:, 0].astype(np.uint64)
        observed = reports[:, 1].astype(np.int64)
        n = reports.shape[0]
        support = np.zeros(k, dtype=float)
        for category in range(k):
            hashed = _hash_categories(
                np.full(n, category, dtype=np.int64), seeds, mech.g
            )
            support[category] = float(np.count_nonzero(hashed == observed))
        reference = (support / n - mech.q) / (mech.p - mech.q)
        np.testing.assert_array_equal(estimate, reference)


class TestPropertyBased:
    @given(
        epsilon=st.floats(0.3, 4.0),
        k=st.integers(2, 12),
        seed=st.integers(0, 9999),
    )
    @settings(max_examples=30, deadline=None)
    def test_krr_estimates_sum_to_about_one(self, epsilon, k, seed):
        rng = np.random.default_rng(seed)
        mech = KRandomizedResponse(epsilon, k)
        categories = rng.integers(0, k, 2_000)
        reports = mech.perturb(categories, rng)
        estimate = mech.estimate_frequencies(reports)
        assert estimate.sum() == pytest.approx(1.0, abs=1e-6)

    @given(epsilon=st.floats(0.3, 4.0), k=st.integers(2, 10))
    @settings(max_examples=30, deadline=None)
    def test_krr_p_greater_than_q(self, epsilon, k):
        mech = KRandomizedResponse(epsilon, k)
        assert mech.p > mech.q
