"""Tests for the baseline defences (Ostrich, Trimming, k-means, boxplot, iforest)."""

import numpy as np
import pytest

from repro.attacks import BiasedByzantineAttack, PAPER_POISON_RANGES
from repro.defenses import (
    BoxplotDefense,
    IsolationForest,
    IsolationForestDefense,
    KMeansDefense,
    OstrichDefense,
    TrimmingDefense,
    kmeans_1d,
)
from repro.ldp import PiecewiseMechanism


@pytest.fixture
def attacked_reports(rng):
    """Reports from 4000 normal users (mean ~0.2) plus 1000 poison values."""
    mech = PiecewiseMechanism(1.0)
    values = np.clip(rng.normal(0.2, 0.2, 4_000), -1, 1)
    normal = mech.perturb(values, rng)
    poison = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"]).poison_reports(
        1_000, mech, 0.0, rng
    ).reports
    return np.concatenate([normal, poison]), mech, float(values.mean())


class TestOstrich:
    def test_clean_reports_unbiased(self, rng):
        mech = PiecewiseMechanism(1.0)
        values = np.clip(rng.normal(0.1, 0.2, 20_000), -1, 1)
        reports = mech.perturb(values, rng)
        estimate = OstrichDefense()(reports, mech, rng)
        assert estimate == pytest.approx(values.mean(), abs=0.05)

    def test_attacked_reports_biased_towards_poison(self, attacked_reports, rng):
        reports, mech, true_mean = attacked_reports
        estimate = OstrichDefense()(reports, mech, rng)
        assert estimate > true_mean + 0.2

    def test_clipping_flag(self, rng):
        mech = PiecewiseMechanism(1.0)
        # reports whose raw average exceeds the input domain
        reports = np.full(100, 2.5)
        clipped = OstrichDefense(clip_to_input_domain=True)(reports, mech, rng)
        raw = OstrichDefense(clip_to_input_domain=False)(reports, mech, rng)
        assert clipped == 1.0
        assert raw == pytest.approx(2.5)

    def test_zero_reports_rejected(self, rng):
        with pytest.raises(ValueError):
            OstrichDefense().estimate_mean(np.array([]), PiecewiseMechanism(1.0), rng)


class TestTrimming:
    def test_removes_requested_fraction(self, attacked_reports, rng):
        reports, mech, _ = attacked_reports
        result = TrimmingDefense(0.5).estimate_mean(reports, mech, rng)
        assert result.n_kept == reports.size - int(0.5 * reports.size)

    def test_right_trim_reduces_attack_bias(self, attacked_reports, rng):
        reports, mech, true_mean = attacked_reports
        trimmed = TrimmingDefense(0.5, side="right")(reports, mech, rng)
        ostrich = OstrichDefense()(reports, mech, rng)
        assert abs(trimmed - true_mean) != abs(ostrich - true_mean)
        assert trimmed < ostrich

    def test_left_and_both_sides(self, rng):
        mech = PiecewiseMechanism(1.0)
        reports = rng.normal(0, 1, 1_000)
        left = TrimmingDefense(0.2, side="left").estimate_mean(reports, mech, rng)
        both = TrimmingDefense(0.2, side="both").estimate_mean(reports, mech, rng)
        assert left.n_kept == 800
        assert both.n_kept == 800

    def test_full_trim_falls_back_to_all(self, rng):
        mech = PiecewiseMechanism(1.0)
        reports = rng.normal(0, 1, 10)
        result = TrimmingDefense(1.0).estimate_mean(reports, mech, rng)
        assert result.n_kept == 10

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            TrimmingDefense(side="up")


class TestKMeans1D:
    def test_separates_two_clusters(self):
        values = np.concatenate([np.full(50, 0.0), np.full(30, 10.0)])
        labels, centers = kmeans_1d(values, 2, rng=0)
        assert len(set(labels.tolist())) == 2
        assert sorted(np.round(centers, 6).tolist()) == [0.0, 10.0]

    def test_single_cluster(self):
        labels, centers = kmeans_1d(np.array([1.0, 1.1, 0.9]), 1, rng=0)
        assert set(labels.tolist()) == {0}
        assert centers[0] == pytest.approx(1.0, abs=0.1)

    def test_more_clusters_than_points(self):
        labels, centers = kmeans_1d(np.array([1.0, 2.0]), 5, rng=0)
        assert centers.size == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([]), 2)


class TestKMeansDefense:
    def test_not_much_worse_than_ostrich_under_attack(self, attacked_reports, rng):
        # with poison mass in every subset the k-means defence cannot separate
        # clean from poisoned subsets, so it tracks the Ostrich estimate; the
        # contract we rely on (and the paper's Figure 9a shows) is only that it
        # never collapses entirely
        reports, mech, true_mean = attacked_reports
        result = KMeansDefense(sampling_rate=0.1, n_subsets=60).estimate_mean(reports, mech, rng)
        ostrich = OstrichDefense()(reports, mech, rng)
        assert abs(result.estimate - true_mean) <= abs(ostrich - true_mean) + 0.2
        assert result.metadata["majority_cluster_share"] >= 0.5

    def test_separates_point_mass_poisoned_subsets(self, rng):
        # when only a few subsets are poisoned (small sampling of a point-mass
        # attack), clustering isolates them and the estimate improves
        mech = PiecewiseMechanism(2.0)
        values = np.clip(rng.normal(0.0, 0.1, 5_000), -1, 1)
        clean_reports = mech.perturb(values, rng)
        estimate = KMeansDefense(sampling_rate=0.05, n_subsets=80)(clean_reports, mech, rng)
        assert estimate == pytest.approx(values.mean(), abs=0.1)

    def test_metadata_populated(self, attacked_reports, rng):
        reports, mech, _ = attacked_reports
        result = KMeansDefense(0.2, 30).estimate_mean(reports, mech, rng)
        assert result.metadata["n_subsets"] == 30
        assert 0 < result.metadata["majority_cluster_share"] <= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KMeansDefense(sampling_rate=0.0)
        with pytest.raises(ValueError):
            KMeansDefense(n_subsets=1)


class TestBoxplot:
    def test_removes_extreme_outliers(self, rng):
        mech = PiecewiseMechanism(1.0)
        reports = np.concatenate([rng.normal(0, 0.1, 1_000), np.full(20, 50.0)])
        result = BoxplotDefense().estimate_mean(reports, mech, rng)
        assert result.n_kept < reports.size
        assert result.estimate == pytest.approx(0.0, abs=0.1)

    def test_keeps_everything_when_no_outliers(self, rng):
        mech = PiecewiseMechanism(1.0)
        reports = rng.uniform(-0.1, 0.1, 500)
        result = BoxplotDefense(whisker=10.0).estimate_mean(reports, mech, rng)
        assert result.n_kept == 500


class TestIsolationForest:
    def test_scores_flag_outliers(self, rng):
        inliers = rng.normal(0, 0.5, 400)
        data = np.concatenate([inliers, np.array([30.0, -30.0])])
        forest = IsolationForest(n_trees=30, subsample_size=128, rng=rng).fit(data)
        scores = forest.scores(data)
        assert scores[-1] > np.median(scores[:-1])
        assert scores[-2] > np.median(scores[:-1])

    def test_scores_in_unit_interval(self, rng):
        data = rng.normal(0, 1, 200)
        forest = IsolationForest(n_trees=10, subsample_size=64, rng=rng).fit(data)
        scores = forest.scores(data)
        assert scores.min() > 0 and scores.max() < 1

    def test_fit_before_score_required(self):
        with pytest.raises(RuntimeError):
            IsolationForest().scores(np.array([1.0]))

    def test_defense_reduces_extreme_outlier_impact(self, rng):
        mech = PiecewiseMechanism(1.0)
        reports = np.concatenate([rng.normal(0.0, 0.3, 2_000), np.full(100, 4.0)])
        defended = IsolationForestDefense(contamination=0.1)(reports, mech, rng)
        undefended = OstrichDefense()(reports, mech, rng)
        assert abs(defended) <= abs(undefended) + 1e-9

    def test_defense_empty_raises(self, rng):
        with pytest.raises(ValueError):
            IsolationForestDefense().estimate_mean(np.array([]), PiecewiseMechanism(1.0), rng)
