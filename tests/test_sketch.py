"""Integration tests for the sketch-backed high-cardinality frequency route.

Covers the pieces the property tests (``test_sketch_properties.py``) do not:

* the dense-route memory guards that redirect high-cardinality domains to
  the sketch path;
* the mechanism-registry and spec/CLI wiring of the sketch identity knobs;
* shard-count invariance of the full collection pipeline;
* the probe end to end — planted targeted poison is flagged exactly, a
  clean round is never flagged, honest heavy hitters stay accurate;
* the ``probe.decode`` / ``probe.em`` stage timers;
* the dense probe's frozen-poison-set transform cache.

The end-to-end configuration (k = 20_000, n = 40_000 + 2_000 Byzantine,
4 x 1024 sketch, seed 7) was validated across seeds 7/11/23: the min-decode
flag statistic separates targets (~0.24+) from honest heavies (~0.07) by
more than 3x, and the joint-likelihood verification gains are ~30 against a
2.0 bar.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collect import SketchAccumulator
from repro.core.frequency import DENSE_MAX_CATEGORIES, FrequencyDAP
from repro.core.sketch_frequency import SketchFrequencyDAP
from repro.ldp.count_sketch import CountSketch
from repro.ldp.olh import OLH_MAX_CATEGORIES, OptimizedLocalHashing
from repro.ldp.oue import OUE_MAX_CATEGORIES, OptimizedUnaryEncoding
from repro.registry import MECHANISMS
from repro.scenario import ScenarioSpec
from repro.service import ServiceSpec
from repro.utils import profiling

# ----------------------------------------------------------------------
# shared end-to-end round (validated configuration; see module docstring)
# ----------------------------------------------------------------------
K = 20_000
N_NORMAL = 40_000
N_BYZANTINE = 2_000
TARGETS = (999, 20)
HEAVIES = {10: 0.08, 20: 0.06, 30: 0.04}
SEED = 7


def _dap() -> SketchFrequencyDAP:
    return SketchFrequencyDAP(
        epsilon=4.0,
        n_categories=K,
        sketch_rows=4,
        sketch_width=1024,
        n_heavy_hitters=12,
    )


def _population(rng: np.random.Generator) -> np.ndarray:
    categories = rng.integers(0, K, N_NORMAL)
    heavy = rng.random(N_NORMAL) < sum(HEAVIES.values())
    ids = np.array(list(HEAVIES))
    weights = np.array(list(HEAVIES.values())) / sum(HEAVIES.values())
    categories[heavy] = rng.choice(ids, heavy.sum(), p=weights)
    return categories


@pytest.fixture(scope="module")
def attack_round():
    rng = np.random.default_rng(SEED)
    categories = _population(rng)
    dap = _dap()
    reports = dap.collect(categories, list(TARGETS), N_BYZANTINE, rng)
    return dap, dap.estimate(reports)


@pytest.fixture(scope="module")
def clean_round():
    rng = np.random.default_rng(SEED)
    categories = _population(rng)
    dap = _dap()
    return dap, dap.estimate(dap.collect(categories, rng=rng))


def _estimates(result) -> dict:
    return {
        int(c): float(f) for c, f in zip(result.heavy_hitters, result.frequencies)
    }


# ----------------------------------------------------------------------
# dense-route memory guards
# ----------------------------------------------------------------------
class TestDenseGuards:
    def test_dense_probe_guard_points_to_sketch_route(self):
        with pytest.raises(ValueError, match="count-sketch"):
            FrequencyDAP(1.0, DENSE_MAX_CATEGORIES + 1)
        FrequencyDAP(1.0, DENSE_MAX_CATEGORIES)  # at the limit is fine

    def test_oue_category_guard(self):
        with pytest.raises(ValueError, match="count-sketch"):
            OptimizedUnaryEncoding(1.0, OUE_MAX_CATEGORIES + 1)

    def test_oue_report_cells_guard(self):
        mechanism = OptimizedUnaryEncoding(1.0, OUE_MAX_CATEGORIES)
        too_many = (1 << 27) // OUE_MAX_CATEGORIES + 1
        with pytest.raises(ValueError, match="count-sketch"):
            mechanism.perturb(np.zeros(too_many, dtype=int))

    def test_olh_category_guard(self):
        with pytest.raises(ValueError, match="count-sketch"):
            OptimizedLocalHashing(1.0, OLH_MAX_CATEGORIES + 1)

    def test_sketch_route_accepts_what_dense_rejects(self):
        k = DENSE_MAX_CATEGORIES * 4
        dap = SketchFrequencyDAP(1.0, k, sketch_rows=2, sketch_width=64)
        assert dap.n_categories == k


# ----------------------------------------------------------------------
# registry / spec / CLI identity knobs
# ----------------------------------------------------------------------
class TestWiring:
    @pytest.mark.parametrize("name", ["count-sketch", "count_sketch", "cms"])
    def test_mechanism_registry_aliases(self, name):
        assert MECHANISMS.get(name) is CountSketch

    def test_scenario_digest_pins_sketch_geometry(self):
        base = ScenarioSpec(name="s", schemes=["Ostrich"], epsilons=[1.0])
        sketched = ScenarioSpec(
            name="s",
            schemes=["Ostrich"],
            epsilons=[1.0],
            sketch_rows=4,
            sketch_width=1024,
        )
        assert "sketch_rows" not in base.document()
        assert sketched.document()["sketch_width"] == 1024
        assert base.digest() != sketched.digest()

    def test_service_digest_pins_sketch_geometry(self):
        base = ServiceSpec(name="svc", window_size=100, n_windows=2)
        sketched = ServiceSpec(
            name="svc",
            window_size=100,
            n_windows=2,
            sketch_rows=4,
            sketch_width=512,
        )
        assert "sketch_rows" not in base.document()
        assert sketched.document()["sketch_rows"] == 4
        assert base.digest() != sketched.digest()

    def test_sketch_width_validated(self):
        with pytest.raises(ValueError, match="sketch_width"):
            ServiceSpec(name="svc", window_size=100, n_windows=2, sketch_width=1)
        with pytest.raises(ValueError, match="sketch_rows"):
            ScenarioSpec(
                name="s", schemes=["Ostrich"], epsilons=[1.0], sketch_rows=0
            )


# ----------------------------------------------------------------------
# collection invariance (the merge gates the benchmark asserts at scale)
# ----------------------------------------------------------------------
class TestShardedCollection:
    def test_shard_count_invariance(self):
        dap = SketchFrequencyDAP(2.0, 5_000, sketch_rows=3, sketch_width=128)
        categories = np.random.default_rng(0).integers(0, 5_000, 3_000)
        folds = [
            dap.collect_sharded(
                categories, [7], 200, np.random.default_rng(1), n_shards=shards
            ).counts
            for shards in (1, 2, 4)
        ]
        np.testing.assert_array_equal(folds[0], folds[1])
        np.testing.assert_array_equal(folds[0], folds[2])
        assert int(folds[0].sum()) == 3_200

    def test_estimate_accepts_accumulator(self):
        dap = SketchFrequencyDAP(2.0, 2_000, sketch_rows=2, sketch_width=64)
        categories = np.random.default_rng(3).integers(0, 2_000, 1_000)
        accumulator = dap.collect_sharded(
            categories, rng=np.random.default_rng(4), n_shards=2
        )
        direct = dap.estimate_from_counts(accumulator.counts)
        wrapped = dap.estimate_from_counts(accumulator)
        np.testing.assert_array_equal(direct.frequencies, wrapped.frequencies)

    def test_geometry_mismatch_rejected(self):
        dap = SketchFrequencyDAP(2.0, 2_000, sketch_rows=2, sketch_width=64)
        with pytest.raises(ValueError, match="geometry"):
            dap.estimate_from_counts(SketchAccumulator(2, 128))


# ----------------------------------------------------------------------
# probe end to end
# ----------------------------------------------------------------------
class TestProbe:
    def test_attack_flags_exactly_the_targets(self, attack_round):
        _, result = attack_round
        assert sorted(result.poisoned_categories) == sorted(TARGETS)

    def test_attack_gains_clear_the_verification_bar(self, attack_round):
        dap, result = attack_round
        assert len(result.log_likelihood_gains) == len(TARGETS)
        for gain in result.log_likelihood_gains:
            assert gain > dap.min_likelihood_gain

    def test_attack_gamma_hat_in_range(self, attack_round):
        _, result = attack_round
        true_gamma = N_BYZANTINE / (N_NORMAL + N_BYZANTINE)
        assert 0.4 * true_gamma < result.gamma_hat < 1.6 * true_gamma

    def test_attack_keeps_honest_heavies_accurate(self, attack_round):
        _, result = attack_round
        estimates = _estimates(result)
        scale = N_NORMAL / (N_NORMAL + N_BYZANTINE)
        for category in (10, 30):  # the honest heavies that are not targets
            assert estimates[category] == pytest.approx(
                HEAVIES[category] * scale, abs=0.02
            )

    def test_frequencies_and_background_form_a_distribution(self, attack_round):
        _, result = attack_round
        total = float(result.frequencies.sum()) + result.background_mass
        assert total == pytest.approx(1.0, abs=1e-9)
        assert np.all(result.frequencies >= 0.0)

    def test_clean_round_never_flagged(self, clean_round):
        _, result = clean_round
        assert result.poisoned_categories == []
        assert result.gamma_hat == 0.0
        assert result.log_likelihood_gains == []

    def test_clean_round_estimates_accurate(self, clean_round):
        _, result = clean_round
        estimates = _estimates(result)
        for category, frequency in HEAVIES.items():
            assert estimates[category] == pytest.approx(frequency, abs=0.02)

    def test_heavy_hitters_contain_planted_heavies(self, clean_round):
        _, result = clean_round
        candidates = [int(c) for c in result.heavy_hitters]
        assert set(HEAVIES) <= set(candidates)
        # ranking is by median decode, so the planted heavies lead the list
        assert set(candidates[: len(HEAVIES)]) == set(HEAVIES)
        decoded = {int(c): float(d) for c, d in zip(candidates, result.decoded)}
        for category, frequency in HEAVIES.items():
            assert decoded[category] == pytest.approx(frequency, abs=0.02)

    def test_probe_stage_timers_nest_under_probe(self):
        dap = _dap()
        rng = np.random.default_rng(SEED)
        before = profiling.snapshot()
        reports = dap.collect(_population(rng), list(TARGETS), N_BYZANTINE, rng)
        dap.estimate(reports)
        profile = profiling.delta_since(before)
        assert profile["probe.decode"] > 0.0
        assert profile["probe.em"] > 0.0
        # sub-timers attribute the probe total without adding to it
        assert (
            profile["probe.decode"] + profile["probe.em"]
            <= profile["probe"] + 1e-6
        )
        assert profile["collect"] > 0.0


# ----------------------------------------------------------------------
# dense probe transform cache (frozen poison set)
# ----------------------------------------------------------------------
class TestDenseTransformCache:
    def test_repeat_poison_set_reuses_the_matrix(self):
        dap = FrequencyDAP(1.0, 16)
        first = dap._build_transform([3, 5])
        assert dap._build_transform([3, 5]) is first

    def test_changed_poison_set_rebuilds(self):
        dap = FrequencyDAP(1.0, 16)
        first = dap._build_transform([3, 5])
        second = dap._build_transform([3, 7])
        assert second is not first
        np.testing.assert_array_equal(
            second, FrequencyDAP(1.0, 16)._build_transform([3, 7])
        )

    def test_normal_block_cached_and_correct(self):
        dap = FrequencyDAP(1.0, 16)
        block = dap._transition_matrix()
        assert dap._transition_matrix() is block
        np.testing.assert_array_equal(block, dap.mechanism.transition_matrix())
