"""GBA -> BBA reduction (Theorem 1).

Two attacks are *equivalent* for mean estimation (Definition 3) when their
poison values have the same total deviation from the true mean
``sum(v' - O)``.  Theorem 1 shows any General Byzantine Attack can be reduced
to a Biased Byzantine Attack with all poison values on one side.

This module provides

* :func:`total_deviation` — the equivalence invariant;
* :func:`equivalent_bba_reports` — the cheapest equivalent BBA (all values at
  a single point on the majority side), useful for analysis and testing;
* :func:`reduce_gba_to_bba` — the constructive elimination procedure that
  follows the proof of Theorem 1 step by step (repeatedly replacing the
  largest minority-side value plus a subset of majority-side values with a
  single merged majority-side value, preserving the invariant at each step).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_in_interval


def total_deviation(reports: np.ndarray, reference_mean: float) -> float:
    """``sum(v' - O)`` — the quantity preserved by equivalent attacks."""
    reports = np.asarray(reports, dtype=float)
    return float(np.sum(reports - reference_mean))


def equivalent_bba_reports(
    reports: np.ndarray,
    reference_mean: float,
    domain_low: float,
    domain_high: float,
) -> np.ndarray:
    """The smallest one-sided report set with the same total deviation.

    Values are placed on the side of the net deviation; the count is the
    minimum needed so each value stays inside the output domain.
    """
    deviation = total_deviation(reports, reference_mean)
    if deviation == 0.0:
        return np.empty(0)
    if deviation > 0:
        reach = domain_high - reference_mean
    else:
        reach = reference_mean - domain_low
    if reach <= 0:
        raise ValueError(
            "reference mean must lie strictly inside the output domain to host "
            "one-sided poison values"
        )
    count = int(np.ceil(abs(deviation) / reach))
    per_value = deviation / count
    return np.full(count, reference_mean + per_value)


def reduce_gba_to_bba(
    reports: np.ndarray,
    reference_mean: float,
    domain_low: float,
    domain_high: float,
) -> np.ndarray:
    """Constructive reduction following the proof of Theorem 1.

    The proof's elimination step (for a net-left attack): take the largest
    right-side value ``y_r``, pick left-side values ``Y_L`` until their joint
    deviation absorbs ``y_r``'s, and replace ``{y_r} U Y_L`` with the single
    merged left-side value ``y'_l = O + sum(Y_L - O) + (y_r - O)``.  Each step
    removes one minority-side value while preserving the total deviation;
    repeating until the minority side is empty yields a Biased Byzantine
    Attack.  The symmetric procedure handles net-right attacks.

    Returns the reduced poison-value array (all values on one side of
    ``reference_mean``); the total deviation is preserved exactly.
    """
    reports = np.asarray(reports, dtype=float).ravel()
    if reports.size == 0:
        return reports.copy()
    check_in_interval(reference_mean, domain_low, domain_high, "reference_mean")

    deviation = total_deviation(reports, reference_mean)
    left = sorted(reports[reports < reference_mean].tolist())
    right = sorted(reports[reports >= reference_mean].tolist())

    if deviation >= 0:
        # net-right attack: eliminate the left side (mirror of the proof)
        majority, minority = right, left
        sign = 1.0
    else:
        majority, minority = left, right
        sign = -1.0

    # Work in "deviation magnitude" space on the majority side so one loop
    # handles both directions: dev(v) = sign * (v - O) >= 0 for majority values.
    majority_dev = [sign * (v - reference_mean) for v in majority]
    minority_dev = [sign * (v - reference_mean) for v in minority]  # all <= 0

    while minority_dev:
        # largest-magnitude minority value (the proof's y_r)
        minority_dev.sort()
        worst = minority_dev.pop(0)  # most negative
        absorbed = worst
        # absorb majority values until the merged deviation becomes >= 0
        majority_dev.sort(reverse=True)
        taken = []
        while absorbed < 0 and majority_dev:
            value = majority_dev.pop(0)
            taken.append(value)
            absorbed += value
        if absorbed < 0:
            # not enough majority mass left (can only happen through floating
            # point round-off at the very end); fold the remainder into the
            # closest-to-mean value so the invariant still holds exactly
            majority_dev.append(absorbed)
            break
        # the merged value y'_l goes back to the majority side
        majority_dev.append(absorbed)

    reduced_dev = np.asarray(majority_dev, dtype=float)
    reduced = reference_mean + sign * reduced_dev
    # clip tiny numerical excursions back into the domain
    reduced = np.clip(reduced, domain_low, domain_high)
    return reduced


__all__ = ["total_deviation", "equivalent_bba_reports", "reduce_gba_to_bba"]
