"""The EMF transform matrix ``M`` (Figure 2 of the paper).

``M`` is a ``d' x (d + n_poison)`` matrix whose rows index output (perturbed
value) buckets and whose columns index latent components:

* the first ``d`` columns describe **normal users**: column ``k`` holds
  ``Pr[report in output bucket i | input in original bucket k]``, computed
  from the mechanism's analytic transition probabilities evaluated at the
  bucket centre;
* the remaining ``n_poison`` columns describe **poison values**: Byzantine
  users submit their chosen value directly, so column ``j`` is the indicator
  of the output bucket hosting that poison bucket (``M[i, y_j] = 1`` iff
  ``i`` is the j-th poison bucket).

Poison buckets are the output buckets lying on the *poisoned side* of the
reference mean ``O'`` (right side by default), matching footnote 5: when
``O' != 0`` the poisoned side simply receives proportionally more or fewer
output buckets.

The default bucket counts follow Section VI-A: ``d' = floor(sqrt(N))`` output
buckets and ``d = floor(d' * (e^{eps/2} - 1) / (e^{eps/2} + 1))`` input
buckets (at least 2 of each).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Tuple

import numpy as np

from repro.utils.discretization import BucketGrid
from repro.utils.transform_cache import cached_matrix, mechanism_cache_key
from repro.utils.validation import check_integer


class _SupportsTransitionMatrix(Protocol):
    """Any mechanism exposing analytic interval transition probabilities."""

    input_domain: Tuple[float, float]

    @property
    def output_domain(self) -> Tuple[float, float]: ...  # pragma: no cover

    def interval_probability_matrix(
        self, values: np.ndarray, edges: np.ndarray
    ) -> np.ndarray: ...  # pragma: no cover


MIN_INPUT_BUCKETS = 8
MIN_OUTPUT_BUCKETS = 16


def default_bucket_counts(n_reports: int, epsilon: float) -> tuple[int, int]:
    """Paper defaults ``(d, d')`` for ``n_reports`` collected values.

    ``d' = floor(sqrt(N))`` and ``d = floor(d' (e^{eps/2}-1)/(e^{eps/2}+1))``.
    The paper's populations are around one million users, for which these
    formulas give comfortable resolutions (``d' = 1000``, ``d >= 15`` even at
    ``eps = 1/16``); at the smaller scales this library also supports, the raw
    formulas can collapse to one or two input buckets and make the
    poisoned-side variance comparison meaningless, so both counts are clamped
    to sane minima (``d >= 8``, ``d' >= 16``).
    """
    check_integer(n_reports, "n_reports", minimum=1)
    d_out = max(MIN_OUTPUT_BUCKETS, int(math.floor(math.sqrt(n_reports))))
    half = math.exp(epsilon / 2.0)
    d_in = int(math.floor(d_out * (half - 1.0) / (half + 1.0)))
    d_in = max(MIN_INPUT_BUCKETS, d_in)
    return d_in, d_out


@dataclass(frozen=True)
class TransformMatrix:
    """The transform matrix together with the grids it was built on.

    Attributes
    ----------
    matrix:
        ``(d', d + n_poison)`` array.
    input_grid:
        Grid over the original value domain (``d`` buckets).
    output_grid:
        Grid over the perturbed value domain (``d'`` buckets).
    poison_bucket_indices:
        Output-bucket index of each poison column (length ``n_poison``).
    side:
        Which side of ``reference_mean`` hosts the poison buckets.
    reference_mean:
        The ``O'`` used to split the output domain.
    poison_domain:
        Support the poison values are known to lie in, when the trust model
        bounds the adversary (the shuffle protocol's ladder-wide domain
        intersection); ``None`` means the whole poisoned side (the classical
        local-model assumption).
    poison_values:
        The value ``nu_j`` each poison column represents; defaults to the
        poison buckets' centres, clipped into ``poison_domain`` when one is
        set (a wide group's coarse buckets can dwarf a narrow known support).
    """

    matrix: np.ndarray
    input_grid: BucketGrid
    output_grid: BucketGrid
    poison_bucket_indices: np.ndarray
    side: str
    reference_mean: float
    poison_domain: Tuple[float, float] | None = None
    poison_values: np.ndarray | None = None

    # ------------------------------------------------------------------
    # shapes
    # ------------------------------------------------------------------
    @property
    def n_normal_components(self) -> int:
        """Number of normal-user columns ``d``."""
        return self.input_grid.n_buckets

    @property
    def n_poison_components(self) -> int:
        """Number of poison columns."""
        return int(self.poison_bucket_indices.size)

    @property
    def n_components(self) -> int:
        """Total number of latent components ``d + n_poison``."""
        return self.matrix.shape[1]

    @property
    def poison_bucket_centers(self) -> np.ndarray:
        """The value each poison column represents (the paper's ``nu_j``).

        Bucket centres in the local model; centres clipped into the known
        poison support when the trust model provides one.
        """
        if self.poison_values is not None:
            return self.poison_values
        return self.output_grid.centers[self.poison_bucket_indices]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def split_weights(self, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a latent weight vector into ``(normal, poison)`` parts."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n_components,):
            raise ValueError(
                f"weights must have length {self.n_components}, got {weights.shape}"
            )
        d = self.n_normal_components
        return weights[:d].copy(), weights[d:].copy()

    def output_counts(self, reports: np.ndarray) -> np.ndarray:
        """Histogram counts of perturbed reports on the output grid."""
        return self.output_grid.counts(np.asarray(reports, dtype=float))


def build_transform_matrix(
    mechanism: _SupportsTransitionMatrix,
    n_input_buckets: int,
    n_output_buckets: int,
    side: str = "right",
    reference_mean: float | None = None,
    poison_domain: Tuple[float, float] | None = None,
    use_cache: bool = False,
) -> TransformMatrix:
    """Build the transform matrix ``M`` for a mechanism.

    Parameters
    ----------
    mechanism:
        A numerical mechanism exposing ``interval_probability_matrix`` (PM and
        SW both do).
    n_input_buckets, n_output_buckets:
        The paper's ``d`` and ``d'``.
    side:
        ``"right"`` or ``"left"`` — which side of ``reference_mean`` hosts the
        poison buckets (Algorithm 3 probes both).
    reference_mean:
        The pessimistic mean ``O'`` splitting the output domain; defaults to
        the centre of the output domain (0 for PM, 0.5 for SW), matching the
        paper's simplification ``O' = 0``.
    poison_domain:
        When the trust model bounds the adversary's values (the shuffle
        protocol restricts poison to the budget ladder's output-domain
        intersection), only output buckets overlapping this interval host
        poison columns, and each column's ``nu_j`` is the bucket centre
        clipped into the interval.  ``None`` (the local model) keeps the
        classical whole-side support — bit-identical to the historical
        transform.
    use_cache:
        Serve the normal block from the process-local transform cache.  The
        block depends only on ``(mechanism type, epsilon, d, d')``, so sweeps
        that rebuild the same matrix per trial hit the cache after the first
        build; a fresh copy is returned on every call.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    check_integer(n_input_buckets, "n_input_buckets", minimum=1)
    check_integer(n_output_buckets, "n_output_buckets", minimum=2)

    in_low, in_high = mechanism.input_domain
    out_low, out_high = mechanism.output_domain
    if reference_mean is None:
        reference_mean = 0.5 * (out_low + out_high)
    if not out_low < reference_mean < out_high:
        raise ValueError(
            f"reference_mean {reference_mean} must lie strictly inside the output "
            f"domain [{out_low}, {out_high}]"
        )

    input_grid = BucketGrid(in_low, in_high, n_input_buckets)
    output_grid = BucketGrid(out_low, out_high, n_output_buckets)

    if use_cache:
        key = mechanism_cache_key(mechanism) + (
            "normal_block", n_input_buckets, n_output_buckets
        )
        normal_block = cached_matrix(
            key,
            lambda: mechanism.interval_probability_matrix(
                input_grid.centers, output_grid.edges
            ),
        )
    else:
        normal_block = mechanism.interval_probability_matrix(
            input_grid.centers, output_grid.edges
        )

    centers = output_grid.centers
    if side == "right":
        poison_indices = np.flatnonzero(centers >= reference_mean)
    else:
        poison_indices = np.flatnonzero(centers <= reference_mean)
    poison_values: np.ndarray | None = None
    if poison_domain is not None:
        domain_low, domain_high = float(poison_domain[0]), float(poison_domain[1])
        if domain_low > domain_high:
            raise ValueError(
                f"poison_domain low must not exceed high, got {poison_domain}"
            )
        # keep buckets *overlapping* the known support (a wide group's coarse
        # buckets can be broader than the whole support), then pin each
        # column's value inside it
        edges = output_grid.edges
        overlaps = (edges[poison_indices] < domain_high) & (
            edges[poison_indices + 1] > domain_low
        )
        poison_indices = poison_indices[overlaps]
        poison_values = np.clip(centers[poison_indices], domain_low, domain_high)
    if poison_indices.size == 0:
        raise ValueError(
            "no output buckets fall on the requested poisoned side; increase "
            "n_output_buckets or adjust reference_mean / poison_domain"
        )

    # single allocation instead of a poison block + hstack copy: at paper
    # scale the matrix is tens of MB, and this build sits on the per-trial
    # hot path (the poison columns are one-hot, so a scatter fills them)
    matrix = np.zeros((n_output_buckets, n_input_buckets + poison_indices.size))
    matrix[:, :n_input_buckets] = normal_block
    matrix[poison_indices, n_input_buckets + np.arange(poison_indices.size)] = 1.0
    return TransformMatrix(
        matrix=matrix,
        input_grid=input_grid,
        output_grid=output_grid,
        poison_bucket_indices=poison_indices,
        side=side,
        reference_mean=float(reference_mean),
        poison_domain=(
            None
            if poison_domain is None
            else (float(poison_domain[0]), float(poison_domain[1]))
        ),
        poison_values=poison_values,
    )


def cached_transform_matrix(
    mechanism: _SupportsTransitionMatrix,
    n_input_buckets: int,
    n_output_buckets: int,
    side: str = "right",
    reference_mean: float | None = None,
    poison_domain: Tuple[float, float] | None = None,
) -> TransformMatrix:
    """:func:`build_transform_matrix` backed by the process-local cache.

    Numerically identical to an uncached build; the expensive normal block
    (the mechanism's interval-probability matrix over the grids) is computed
    once per ``(mechanism type, epsilon, d, d')`` per process — the poison
    columns are rebuilt per call, so ``poison_domain`` needs no cache key.
    The returned ``TransformMatrix`` owns its arrays — callers may mutate
    them freely.
    """
    return build_transform_matrix(
        mechanism,
        n_input_buckets=n_input_buckets,
        n_output_buckets=n_output_buckets,
        side=side,
        reference_mean=reference_mean,
        poison_domain=poison_domain,
        use_cache=True,
    )


__all__ = [
    "TransformMatrix",
    "build_transform_matrix",
    "cached_transform_matrix",
    "default_bucket_counts",
]
