"""Client stage: what the adversary can aim at under each trust model.

In the **local** model the adversary knows which budget group each
compromised user was assigned to, so poison targets that group's mechanism
directly — its full output domain, its poison-range geometry.

In the **shuffle** model the shuffler strips sender→group linkage before
the server sees anything, so poison aimed at one group's extreme domain
would land detectably outside other groups' domains once mixed.  A
group-blind adversary therefore constrains poison to the *intersection* of
every group's output domain — which is the **narrowest** domain on the
budget ladder (the largest epsilon perturbs least, e.g. the Piecewise
Mechanism's ``C = (e^{eps/2}+1)/(e^{eps/2}-1)`` shrinks as epsilon grows).
Attacks receive a :class:`~repro.ldp.base.DomainRestrictedMechanism` view
carrying that intersection; honest clients are untouched, so a round with
``NoAttack`` is bit-identical between the two protocols.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.ldp.base import DomainRestrictedMechanism, NumericalMechanism

from repro.protocol.plan import ProtocolPlan


def intersection_output_domain(
    mechanisms: Sequence[NumericalMechanism],
) -> tuple[float, float]:
    """The intersection of every mechanism's output domain.

    For the paper's mechanism families the domains are nested (all centred,
    width monotone in epsilon), so the intersection is simply the narrowest
    one; taking max-of-lows / min-of-highs keeps this correct for
    non-nested families too.
    """
    if not mechanisms:
        raise ValueError("need at least one mechanism to intersect domains")
    lows, highs = zip(*(m.output_domain for m in mechanisms))
    low, high = max(lows), min(highs)
    if low > high:
        raise ValueError(
            f"output domains have empty intersection: [{low:.4g}, {high:.4g}]"
        )
    return (float(low), float(high))


def adversary_view(
    mechanism: NumericalMechanism,
    plan: ProtocolPlan,
    ladder_mechanisms: Mapping[float, NumericalMechanism] | None = None,
) -> NumericalMechanism:
    """The mechanism an attack is allowed to see for one budget group.

    Local protocol: the group's own mechanism (historical behaviour).
    Shuffle protocol: a domain-restricted view over the full ladder's
    intersection, since the adversary cannot tell groups apart in transit.
    """
    if not plan.is_shuffle or ladder_mechanisms is None:
        return mechanism
    domain = intersection_output_domain(tuple(ladder_mechanisms.values()))
    if domain == tuple(mechanism.output_domain):
        return mechanism
    return DomainRestrictedMechanism(mechanism, domain)


__all__ = ["adversary_view", "intersection_output_domain"]
