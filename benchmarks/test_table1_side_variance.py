"""Benchmark: Table I — reconstructed-histogram variance, left vs right probing.

Paper claim: the variance of the EMF-reconstructed normal histogram is orders
of magnitude smaller when the poison buckets sit on the true poisoned side, so
Algorithm 3's side decision is reliable across budgets and poison ranges.
"""

from repro.experiments import format_table1, run_table1
from repro.experiments.table1 import TABLE1_RANGES


def test_table1_side_variance(benchmark, bench_scale):
    records = benchmark(
        run_table1,
        bench_scale,
        epsilons=(2.0, 0.5, 0.125),
        poison_ranges=TABLE1_RANGES,
        rng=0,
    )
    print("\n" + format_table1(records))

    # shape check: the correct (right) side always has the smaller variance
    for record in records:
        assert record.variance_right < record.variance_left
        assert record.selected_side == "right"
