"""Process-local cache for mechanism transition matrices.

Sweeps rebuild the same deterministic matrices — the Square Wave / Piecewise
interval-probability blocks and the EMF transform assembled from them — once
per trial, even though they depend only on ``(mechanism type, epsilon, grid
sizes)``.  This module provides the shared memo behind
:func:`repro.core.transform.cached_transform_matrix` and the Square Wave EMS
reconstruction so each distinct matrix is computed once per process.

The cache is process-local by design: the parallel experiment executor forks
one cache per worker, so no locking is needed and workers stay independent.
Every lookup returns a *fresh copy* of the stored array — mutating a returned
matrix can never poison the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Tuple

import numpy as np

#: maximum number of matrices kept per process (LRU eviction beyond this)
CACHE_CAPACITY = 256

_CACHE: "OrderedDict[Tuple[Hashable, ...], np.ndarray]" = OrderedDict()
_HITS = 0
_MISSES = 0


def mechanism_cache_key(mechanism) -> Tuple[Hashable, ...]:
    """The ``(mechanism type, epsilon)`` prefix every matrix key starts with.

    Mechanism instances are fully determined by their class and budget (all
    other coefficients — PM's ``C``, SW's ``b`` — are derived from epsilon),
    so this prefix is sufficient to identify the transition kernel.
    """
    return (type(mechanism).__module__, type(mechanism).__qualname__,
            float(mechanism.epsilon))


def cached_matrix(
    key: Tuple[Hashable, ...], builder: Callable[[], np.ndarray]
) -> np.ndarray:
    """Return a copy of the matrix for ``key``, building it on first use.

    ``builder`` is only invoked on a miss; its result is stored read-only and
    every caller (including the first) receives an independent copy.
    """
    global _HITS, _MISSES
    master = _CACHE.get(key)
    if master is None:
        _MISSES += 1
        master = np.asarray(builder(), dtype=float)
        master.setflags(write=False)
        _CACHE[key] = master
        while len(_CACHE) > CACHE_CAPACITY:
            _CACHE.popitem(last=False)
    else:
        _HITS += 1
        _CACHE.move_to_end(key)
    return master.copy()


def clear_transform_cache() -> None:
    """Drop every cached matrix and reset the hit/miss counters."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


def transform_cache_stats() -> dict:
    """Current cache statistics: ``{"size", "hits", "misses"}``."""
    return {"size": len(_CACHE), "hits": _HITS, "misses": _MISSES}


__all__ = [
    "CACHE_CAPACITY",
    "cached_matrix",
    "mechanism_cache_key",
    "clear_transform_cache",
    "transform_cache_stats",
]
