"""``python -m repro`` — run declarative scenarios from the command line.

Four subcommands:

* ``run <scenario.json>`` — execute a scenario file through the parallel
  executor, persist a resumable run artifact and print the result tables;
* ``resume <scenario.json>`` — continue an interrupted run from its artifact
  (the artifact must exist; completed units are reused);
* ``serve <service.json>`` — run a windowed continuous-aggregation service
  (:mod:`repro.service`): ingest report windows, keep a running DAP
  estimate with warm-started incremental probing, checkpoint after each
  window, and resume bit-identically after a kill;
* ``list-components`` — print every registered mechanism, attack, defense,
  scheme and dataset name the scenario schema accepts.

Exit status: ``0`` on success, ``1`` on scenario/component errors, ``2`` if a
run unexpectedly produced no records.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import os
import sys
import time
from typing import List, Sequence

from repro.backends import BACKENDS
from repro.core.probing import PROBE_STRATEGIES
from repro.protocol.plan import PROTOCOL_NAMES
from repro.registry import ALL_REGISTRIES
from repro.resilience import (
    DEFAULT_POLICY,
    FaultPlan,
    use_fault_plan,
    use_retry_policy,
)
from repro.scenario import ScenarioSpec, format_scenario_records, run_scenario


def _workers(value: str) -> int | str:
    """Parse ``--workers``: a positive integer or ``auto`` (one per CPU)."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--workers must be an integer or 'auto', got {value!r}"
        ) from None


def _positive_int(flag: str):
    """Build an argparse type callable for a positive-integer flag."""

    def parse(value: str) -> int:
        try:
            parsed = int(value)
        except ValueError:
            parsed = 0
        if parsed < 1:
            raise argparse.ArgumentTypeError(
                f"{flag} must be a positive integer, got {value!r}"
            )
        return parsed

    return parse


_chunk_size = _positive_int("--chunk-size")
_collect_workers = _positive_int("--collect-workers")
_sketch_rows = _positive_int("--sketch-rows")


def _sketch_width(value: str) -> int:
    parsed = _positive_int("--sketch-width")(value)
    if parsed < 2:
        raise argparse.ArgumentTypeError(
            f"--sketch-width must be at least 2, got {value!r}"
        )
    return parsed


def _window_size(value: str) -> int:
    parsed = _positive_int("--window-size")(value)
    if parsed < 2:
        raise argparse.ArgumentTypeError(
            f"--window-size must be at least 2, got {value!r}"
        )
    return parsed


def _positive_float(flag: str):
    """Build an argparse type callable for a positive-float flag."""

    def parse(value: str) -> float:
        try:
            parsed = float(value)
        except ValueError:
            parsed = 0.0
        if parsed <= 0:
            raise argparse.ArgumentTypeError(
                f"{flag} must be a positive number, got {value!r}"
            )
        return parsed

    return parse


def _default_store(scenario: ScenarioSpec) -> str:
    return os.path.join("runs", f"{scenario.name}.json")


def _resilience_context(args: argparse.Namespace):
    """The fault-plan + retry-policy scope a command's run executes under.

    Both are execution details: they never enter a scenario or service digest,
    so a chaos run stays resumable into (and bit-identical with) a clean one.
    Returns ``(context, plan)`` — the plan is surfaced so ``--results-out``
    payloads can record what was injected.
    """
    stack = contextlib.ExitStack()
    plan = None
    if getattr(args, "fault_plan", None) is not None:
        plan = FaultPlan.from_file(args.fault_plan)
        stack.enter_context(use_fault_plan(plan))
    overrides = {}
    if getattr(args, "task_retries", None) is not None:
        overrides["max_attempts"] = args.task_retries
    if getattr(args, "task_timeout", None) is not None:
        overrides["task_timeout"] = args.task_timeout
    if overrides:
        stack.enter_context(
            use_retry_policy(dataclasses.replace(DEFAULT_POLICY, **overrides))
        )
    return stack, plan


class _ProgressPrinter:
    """Throttled ``completed/total`` work-unit progress on stderr.

    Prints at most every ``interval`` seconds (plus always the final unit),
    so long streaming runs show a heartbeat without flooding short ones.
    """

    def __init__(self, name: str, interval: float = 5.0) -> None:
        self.name = name
        self.interval = interval
        self._last = 0.0

    def __call__(self, completed: int, total: int) -> None:
        now = time.monotonic()
        if completed < total and now - self._last < self.interval:
            return
        self._last = now
        print(
            f"{self.name}: {completed}/{total} work units completed",
            file=sys.stderr,
            flush=True,
        )


def _execute(args: argparse.Namespace, resume: bool, require_artifact: bool) -> int:
    scenario = ScenarioSpec.from_file(args.scenario)
    overrides = {}
    if args.chunk_size is not None:
        overrides["chunk_size"] = args.chunk_size
    if args.collect_workers is not None:
        overrides["collect_workers"] = args.collect_workers
    if args.probe_strategy is not None:
        overrides["probe_strategy"] = args.probe_strategy
    if args.backend is not None:
        overrides["backend"] = args.backend
    # sketch geometry and trust model are identity: overriding them changes
    # the document digest, so a run recorded under one adversary model or
    # sketch geometry cannot silently resume into another
    if args.protocol is not None:
        overrides["protocol"] = args.protocol
    if args.sketch_rows is not None:
        overrides["sketch_rows"] = args.sketch_rows
    if args.sketch_width is not None:
        overrides["sketch_width"] = args.sketch_width
    if overrides:
        # rebuild (rather than mutate) so the spec's own validation runs on
        # the overrides; the execution-detail knobs are excluded from the
        # document digest, so an existing artifact stays resumable
        scenario = dataclasses.replace(scenario, **overrides)
    store = args.store or _default_store(scenario)
    if require_artifact and not os.path.exists(store):
        print(
            f"error: no run artifact at {store!r} to resume from; "
            f"use 'run' to start it",
            file=sys.stderr,
        )
        return 1
    profile = args.profile or args.profile_out is not None
    context, _plan = _resilience_context(args)
    with context:
        records = run_scenario(
            scenario,
            n_workers=args.workers,
            store_path=store,
            resume=resume,
            progress=None if args.quiet else _ProgressPrinter(scenario.name),
            profile=profile,
        )
    if not records:
        print(f"error: scenario {scenario.name!r} produced no records", file=sys.stderr)
        return 2
    if profile:
        stage_totals = _load_profile(store)
        _print_profile(stage_totals)
        if args.profile_out is not None:
            _write_profile(args.profile_out, stage_totals)
    print(
        f"{scenario.name}: {len(records)} records "
        f"({len(set(str(r.point) for r in records))} grid points x "
        f"{len(set(r.scheme for r in records))} schemes), artifact: {store}"
    )
    if not args.quiet:
        print()
        print(format_scenario_records(records))
    return 0


def _load_profile(store: str) -> dict:
    """The per-stage wall times recorded in the run artifact."""
    from repro.engine import load_run

    return (load_run(store).meta.get("execution") or {}).get("profile") or {}


def _print_profile(stage_totals: dict) -> None:
    from repro.utils.profiling import format_profile

    rendered = (
        format_profile(stage_totals) if stage_totals else "(no freshly computed units)"
    )
    print(f"profile: {rendered}", file=sys.stderr)


def _write_profile(path: str, stage_totals: dict) -> None:
    """Write the per-stage profile dict as a JSON document."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stage_totals, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_run(args: argparse.Namespace) -> int:
    return _execute(args, resume=not args.fresh, require_artifact=False)


def _cmd_resume(args: argparse.Namespace) -> int:
    return _execute(args, resume=True, require_artifact=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceSpec, WindowedAggregationService, format_window

    spec = ServiceSpec.from_file(args.service)
    overrides = {}
    # identity overrides (change the stream, hence the checkpoint digest) ...
    if args.windows is not None:
        overrides["n_windows"] = args.windows
    if args.window_size is not None:
        overrides["window_size"] = args.window_size
    if args.probe_strategy is not None:
        overrides["probe_strategy"] = args.probe_strategy
    if args.protocol is not None:
        overrides["protocol"] = args.protocol
    if args.sketch_rows is not None:
        overrides["sketch_rows"] = args.sketch_rows
    if args.sketch_width is not None:
        overrides["sketch_width"] = args.sketch_width
    # ... and execution details (same stream, different machinery)
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.collect_shards is not None:
        overrides["collect_shards"] = args.collect_shards
    if args.collect_workers is not None:
        overrides["collect_workers"] = args.collect_workers
    if args.checkpoint_every is not None:
        overrides["checkpoint_every"] = args.checkpoint_every
    if args.checkpoint_retain is not None:
        overrides["checkpoint_retain"] = args.checkpoint_retain
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    checkpoint_dir = args.checkpoint_dir or os.path.join("runs", "service")
    checkpoint_path = spec.default_checkpoint_path(checkpoint_dir)
    service = WindowedAggregationService(spec, checkpoint_path=checkpoint_path)

    def progress(row) -> None:
        print(format_window(row, spec.n_windows), file=sys.stderr, flush=True)

    context, plan = _resilience_context(args)
    with context:
        result = service.run(
            resume=not args.fresh, progress=None if args.quiet else progress
        )
    final = result.windows[-1]
    flagged = result.flagged_window
    print(
        f"{spec.name}: {len(result.windows)} windows x {spec.window_size} users, "
        f"estimate={final.estimate:+.6f} gamma_hat={final.gamma_hat:.4f} "
        f"(resumed from window {result.resumed_from}), "
        f"checkpoint: {checkpoint_path}"
    )
    print(
        "attack flagged at window "
        + (str(flagged) if flagged is not None else "- (never)")
    )
    if args.profile or args.profile_out is not None:
        _print_profile(result.profile)
        if args.profile_out is not None:
            _write_profile(args.profile_out, result.profile)
    if args.results_out is not None:
        execution = spec.execution_details()
        execution["resilience"] = {
            event: count for event, count in sorted(result.resilience.items())
        }
        if plan is not None:
            execution["fault_plan"] = plan.document()
        payload = {
            "spec": spec.document(),
            "digest": spec.digest(),
            "execution": execution,
            "resumed_from": result.resumed_from,
            "estimate": final.estimate,
            "flagged_window": flagged,
            "windows": [row.to_dict() for row in result.windows],
        }
        directory = os.path.dirname(os.path.abspath(args.results_out))
        os.makedirs(directory, exist_ok=True)
        with open(args.results_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return 0


def _cmd_list_components(args: argparse.Namespace) -> int:
    for group, registry in ALL_REGISTRIES.items():
        print(f"{group}:")
        for entry in registry.entries():
            notes = []
            if entry.aliases:
                notes.append(f"aliases: {', '.join(entry.aliases)}")
            kind = entry.metadata.get("kind")
            if kind:
                notes.append(kind)
            if entry.defaults:
                notes.append(
                    "defaults: "
                    + ", ".join(f"{k}={v!r}" for k, v in entry.defaults.items())
                )
            suffix = f"  ({'; '.join(notes)})" if notes else ""
            print(f"  {entry.name}{suffix}")
        print()
    print("(every defense is also accepted as a single-round scheme name)")
    return 0


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance knobs shared by run / resume / serve."""
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="inject deterministic faults from a JSON fault plan (worker "
        "kills, task timeouts, checkpoint corruption, artifact-write "
        "failures); an execution detail — the recovered run is bit-identical "
        "to a fault-free one and the plan is recorded under meta.execution "
        "only",
    )
    parser.add_argument(
        "--task-retries",
        type=_positive_int("--task-retries"),
        default=None,
        help="total attempts per pool task before the run fails "
        f"(default: {DEFAULT_POLICY.max_attempts}); retried tasks are "
        "bit-identical to first-try tasks",
    )
    parser.add_argument(
        "--task-timeout",
        type=_positive_float("--task-timeout"),
        default=None,
        metavar="SECONDS",
        help="per-task watchdog: a pool task running longer is re-dispatched "
        "(straggler mitigation; first result wins and both compute the same "
        "bits); default: no watchdog",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative attack x defense x epsilon x dataset scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute a scenario file")
    run_parser.add_argument("scenario", help="path to a scenario JSON file")
    run_parser.add_argument(
        "--workers",
        type=_workers,
        default=None,
        help="process-pool size, or 'auto' for one worker per CPU (default: serial)",
    )
    run_parser.add_argument(
        "--chunk-size",
        type=_chunk_size,
        default=None,
        help="run trials through the constant-memory streaming collection "
        "path with this report chunk size (overrides the scenario's "
        "'chunk_size'; default: the scenario's setting, else in-memory)",
    )
    run_parser.add_argument(
        "--collect-workers",
        type=_collect_workers,
        default=None,
        help="fan each collection round out over this many shard workers "
        "(records are bit-identical for any value; overrides the scenario's "
        "'collect_workers')",
    )
    run_parser.add_argument(
        "--probe-strategy",
        choices=PROBE_STRATEGIES,
        default=None,
        help="hypothesis-evaluation strategy for probing schemes: 'batched' "
        "(fast, selection-identical) or 'cold' (the seed implementation's "
        "bit-stable arithmetic); default: each scheme's own default",
    )
    run_parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="array-compute backend for the hot kernels: 'numpy' (the "
        "bit-stable reference), 'fast' (single-pass pure-numpy rewrites, "
        "statistically equivalent) or 'numba' (JIT loops when numba is "
        "installed, else falls back to numpy with a warning); overrides the "
        "scenario's 'backend'; default: the scenario's setting, else numpy",
    )
    run_parser.add_argument(
        "--protocol",
        choices=PROTOCOL_NAMES,
        default=None,
        help="trust model the collection runs under: 'local' (classical "
        "local model) or 'shuffle' (a shuffler breaks the sender-to-group "
        "linkage and the artifact carries a privacy-amplification ledger); "
        "identity: enters the scenario digest when not 'local'; overrides "
        "the scenario's 'protocol'",
    )
    run_parser.add_argument(
        "--sketch-rows",
        type=_sketch_rows,
        default=None,
        help="count-sketch hash rows for sketch-backed categorical "
        "components (identity: enters the scenario digest when set; "
        "overrides the scenario's 'sketch_rows')",
    )
    run_parser.add_argument(
        "--sketch-width",
        type=_sketch_width,
        default=None,
        help="count-sketch buckets per row (identity, like --sketch-rows; "
        "overrides the scenario's 'sketch_width')",
    )
    run_parser.add_argument(
        "--store",
        default=None,
        help="run-artifact path (default: runs/<scenario name>.json)",
    )
    run_parser.add_argument(
        "--fresh",
        action="store_true",
        help="ignore any existing artifact and recompute every unit",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-stage wall times (collect / probe / aggregate / "
        "defense) into the artifact's meta.execution.profile and print them",
    )
    run_parser.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="also write the per-stage profile dict as JSON to PATH "
        "(implies --profile)",
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    _add_resilience_flags(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    resume_parser = sub.add_parser(
        "resume", help="continue an interrupted run from its artifact"
    )
    resume_parser.add_argument("scenario", help="path to a scenario JSON file")
    resume_parser.add_argument("--workers", type=_workers, default=None)
    resume_parser.add_argument("--chunk-size", type=_chunk_size, default=None)
    resume_parser.add_argument(
        "--collect-workers", type=_collect_workers, default=None
    )
    resume_parser.add_argument(
        "--probe-strategy", choices=PROBE_STRATEGIES, default=None
    )
    resume_parser.add_argument("--backend", choices=BACKENDS, default=None)
    resume_parser.add_argument("--protocol", choices=PROTOCOL_NAMES, default=None)
    resume_parser.add_argument("--sketch-rows", type=_sketch_rows, default=None)
    resume_parser.add_argument("--sketch-width", type=_sketch_width, default=None)
    resume_parser.add_argument("--store", default=None)
    resume_parser.add_argument("--profile", action="store_true")
    resume_parser.add_argument("--profile-out", default=None, metavar="PATH")
    resume_parser.add_argument("--quiet", action="store_true")
    _add_resilience_flags(resume_parser)
    resume_parser.set_defaults(func=_cmd_resume)

    serve_parser = sub.add_parser(
        "serve",
        help="run a windowed continuous-aggregation service from a service "
        "JSON file (checkpointed; re-running resumes bit-identically)",
    )
    serve_parser.add_argument("service", help="path to a service JSON file")
    serve_parser.add_argument(
        "--windows",
        type=_positive_int("--windows"),
        default=None,
        help="override the service's 'n_windows' horizon (identity: a "
        "different horizon is a different stream with its own checkpoint)",
    )
    serve_parser.add_argument(
        "--window-size",
        type=_window_size,
        default=None,
        help="override the service's 'window_size' (identity, like --windows)",
    )
    serve_parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="directory for the service checkpoint file "
        "(default: runs/service/<name>.checkpoint.json)",
    )
    serve_parser.add_argument(
        "--checkpoint-every",
        type=_positive_int("--checkpoint-every"),
        default=None,
        help="checkpoint after every N completed windows (default: the "
        "service's setting, else 1)",
    )
    serve_parser.add_argument(
        "--checkpoint-retain",
        type=_positive_int("--checkpoint-retain"),
        default=None,
        help="keep this many last-good checkpoint ancestors for chain "
        "recovery (corrupt heads are quarantined and the service rolls back "
        "to the newest valid ancestor; default: the service's setting, "
        "else 3)",
    )
    serve_parser.add_argument(
        "--fresh",
        action="store_true",
        help="ignore any existing checkpoint and recompute from window 0",
    )
    serve_parser.add_argument(
        "--probe-strategy",
        choices=PROBE_STRATEGIES,
        default=None,
        help="probe hypothesis-evaluation strategy (identity for services: "
        "it is pinned by the checkpoint digest)",
    )
    serve_parser.add_argument(
        "--protocol",
        choices=PROTOCOL_NAMES,
        default=None,
        help="trust model the windows collect under (identity: a shuffle "
        "stream keeps its own checkpoint digest)",
    )
    serve_parser.add_argument(
        "--sketch-rows",
        type=_sketch_rows,
        default=None,
        help="count-sketch hash rows for sketch-backed collection "
        "(identity: pinned by the checkpoint digest when set)",
    )
    serve_parser.add_argument(
        "--sketch-width",
        type=_sketch_width,
        default=None,
        help="count-sketch buckets per row (identity, like --sketch-rows)",
    )
    serve_parser.add_argument("--backend", choices=BACKENDS, default=None)
    serve_parser.add_argument(
        "--collect-shards",
        type=_positive_int("--collect-shards"),
        default=None,
        help="shards per window's collection round (bit-identical for any "
        "value)",
    )
    serve_parser.add_argument(
        "--collect-workers", type=_collect_workers, default=None
    )
    serve_parser.add_argument("--profile", action="store_true")
    serve_parser.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="write the per-stage profile dict (this run's freshly computed "
        "windows) as JSON to PATH (implies --profile)",
    )
    serve_parser.add_argument(
        "--results-out",
        default=None,
        metavar="PATH",
        help="write the full window-by-window results as JSON to PATH",
    )
    serve_parser.add_argument("--quiet", action="store_true")
    _add_resilience_flags(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    list_parser = sub.add_parser(
        "list-components", help="list every registered component name"
    )
    list_parser.set_defaults(func=_cmd_list_components)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except OSError as error:
        # str(OSError) includes strerror + filename; args[0] is a bare errno
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 1


__all__ = ["main", "build_parser"]
