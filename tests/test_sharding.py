"""Sharded collection: plan determinism and the bit-identity contract.

The sharded path rests on two guarantees, both enforced here:

* **plan invariance** — the block-seed streams drawn by
  :func:`repro.collect.build_shard_plan` do not depend on ``n_shards``, so
  the merged accumulators of ``collect_sharded`` are bit-identical at any
  shard count and any worker count;
* **accumulate/merge equivalence** — sharding a report stream into
  contiguous slices, accumulating each independently and folding with
  ``merge()`` yields statistics bit-identical to the one-shot chunked
  (``collect_stream``-style) accumulation and to the in-memory
  ``DAPProtocol.aggregate`` on the same reports, for all three estimators
  and the k-RR frequency route.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import BiasedByzantineAttack, PoisonRange
from repro.collect import (
    CategoryCountAccumulator,
    GroupAccumulator,
    build_shard_plan,
    chunk_array,
)
from repro.core.dap import DAPConfig, DAPProtocol
from repro.core.frequency import FrequencyDAP
from repro.datasets.synthetic import uniform_dataset
from repro.simulation.runner import run_trials_from_seeds, run_trials_sharded
from repro.simulation.schemes import make_scheme

ATTACK = BiasedByzantineAttack(PoisonRange.of_c(0.5, 1.0))
SHARD_COUNTS = (1, 2, 5)


class TestShardPlan:
    def test_seeds_do_not_depend_on_shard_count(self):
        plans = [
            build_shard_plan([1_000, 900], [100, 50], n_shards=k, rng=7, block_size=64)
            for k in SHARD_COUNTS
        ]
        for plan in plans[1:]:
            assert plan.normal_seeds == plans[0].normal_seeds
            assert plan.byzantine_seeds == plans[0].byzantine_seeds

    def test_shards_cover_every_block_exactly_once(self):
        plan = build_shard_plan([1_000, 77], [130, 0], n_shards=4, rng=3, block_size=32)
        for group, (n_normal, n_byz) in enumerate(zip([1_000, 77], [130, 0])):
            normal_ranges, byz_users, normal_seeds, byz_seeds = [], 0, [], []
            for shard in plan.shards():
                for piece in shard:
                    if piece.group_index != group:
                        continue
                    if piece.n_normal:
                        normal_ranges.append((piece.normal_start, piece.normal_stop))
                    normal_seeds.extend(piece.normal_seeds)
                    byz_users += piece.n_byzantine
                    byz_seeds.extend(piece.byzantine_seeds)
            covered = sorted(normal_ranges)
            assert sum(stop - start for start, stop in covered) == n_normal
            # contiguous, non-overlapping, in order
            position = 0
            for start, stop in covered:
                assert start == position
                position = stop
            assert byz_users == n_byz
            assert tuple(normal_seeds) == plan.normal_seeds[group]
            assert tuple(byz_seeds) == plan.byzantine_seeds[group]

    def test_block_ranges_match_array_split(self):
        from repro.collect.sharding import _shard_block_range

        for n_blocks in (0, 1, 7, 16):
            for n_shards in (1, 3, 5, 16):
                pieces = np.array_split(np.arange(n_blocks), n_shards)
                for index, piece in enumerate(pieces):
                    start, stop = _shard_block_range(n_blocks, n_shards, index)
                    np.testing.assert_array_equal(np.arange(start, stop), piece)

    def test_rejects_misaligned_groups(self):
        with pytest.raises(ValueError, match="align"):
            build_shard_plan([10], [1, 2], n_shards=1, rng=0)


class TestDAPShardedBitIdentity:
    @pytest.mark.parametrize(
        "estimator, seed", [("emf", 11), ("emf_star", 22), ("cemf_star", 33)]
    )
    def test_invariant_to_shard_and_worker_count(self, estimator, seed):
        protocol = DAPProtocol(DAPConfig(epsilon=1.0, estimator=estimator))
        rng = np.random.default_rng(seed)
        values = rng.uniform(-0.8, 0.8, 6_000)
        reference = None
        for n_shards in SHARD_COUNTS:
            result = protocol.run_sharded(
                values,
                ATTACK,
                2_000,
                rng=np.random.default_rng(seed),
                n_shards=n_shards,
                block_size=512,
            )
            if reference is None:
                reference = result
                continue
            assert result.estimate == reference.estimate
            assert result.gamma_hat == reference.gamma_hat
            assert result.poisoned_side == reference.poisoned_side
            np.testing.assert_array_equal(result.weights, reference.weights)
        pooled = protocol.run_sharded(
            values,
            ATTACK,
            2_000,
            rng=np.random.default_rng(seed),
            n_shards=5,
            n_workers=2,
            block_size=512,
        )
        assert pooled.estimate == reference.estimate
        assert pooled.gamma_hat == reference.gamma_hat

    @pytest.mark.parametrize(
        "estimator, seed", [("emf", 101), ("emf_star", 202), ("cemf_star", 303)]
    )
    def test_shard_merge_matches_stream_and_in_memory_aggregation(
        self, estimator, seed
    ):
        """Contiguous shards of the same reports, accumulated independently
        and merged, aggregate bit-identically to the chunked
        (``collect_stream``-style) accumulation and to the in-memory path."""
        protocol = DAPProtocol(DAPConfig(epsilon=1.0, estimator=estimator))
        rng = np.random.default_rng(seed)
        values = rng.uniform(-0.8, 0.8, 4_000)
        groups = protocol.collect(values, ATTACK, 1_500, rng=rng)
        in_memory = protocol.aggregate(groups)

        def fresh(group):
            return protocol.group_accumulator(
                group.epsilon, group.n_reports, n_users=group.n_users
            )

        # collect_stream-style accumulation: one accumulator fed in chunks
        streamed = [
            fresh(group).update_stream(chunk_array(group.reports, 997))
            for group in groups
        ]
        stream_result = protocol.aggregate_accumulated(streamed)

        for n_shards in SHARD_COUNTS:
            merged = []
            for group in groups:
                accumulator = fresh(group)
                for piece in np.array_split(group.reports, n_shards):
                    shard_acc = GroupAccumulator(
                        group.epsilon, accumulator.output_grid
                    )
                    shard_acc.update(piece)
                    accumulator.merge(
                        GroupAccumulator.from_state(shard_acc.state_dict())
                    )
                merged.append(accumulator)
            sharded = protocol.aggregate_accumulated(merged)
            for result in (stream_result, sharded):
                assert result.estimate == in_memory.estimate
                assert result.gamma_hat == in_memory.gamma_hat
                assert result.poisoned_side == in_memory.poisoned_side
                np.testing.assert_array_equal(result.weights, in_memory.weights)

    def test_group_composition_matches_collect(self):
        protocol = DAPProtocol(DAPConfig(epsilon=1.0))
        values = np.random.default_rng(8).uniform(-0.5, 0.5, 3_210)
        accumulators = protocol.collect_sharded(
            values, ATTACK, 1_111, rng=np.random.default_rng(8), n_shards=3,
            block_size=256,
        )
        groups = protocol.collect(values, ATTACK, 1_111, rng=np.random.default_rng(8))
        assert [a.n_users for a in accumulators] == [g.n_users for g in groups]
        assert [a.n_reports for a in accumulators] == [g.n_reports for g in groups]

    def test_silent_attack_with_byzantine_users_completes(self):
        """NoAttack submits zero reports however many Byzantine users exist
        (the gamma-control configuration); the expected-report sizing must
        ask the attack instead of assuming one report per user."""
        from repro.attacks.base import NoAttack

        protocol = DAPProtocol(DAPConfig(epsilon=0.5))
        values = np.random.default_rng(0).uniform(-0.5, 0.5, 225)
        accumulators = protocol.collect_sharded(
            values, NoAttack(), 75, rng=1, n_shards=2, block_size=64
        )
        repeats = [
            protocol._reports_per_user(eps) for eps in protocol.config.budget_ladder
        ]
        normal_users = sum(a.n_users for a in accumulators) - 75
        assert sum(a.n_reports // r for a, r in zip(accumulators, repeats)) == normal_users
        protocol.aggregate_accumulated(accumulators)  # finalises cleanly

    def test_estimate_lands_near_truth(self):
        protocol = DAPProtocol(DAPConfig(epsilon=2.0, estimator="cemf_star"))
        values = np.random.default_rng(9).uniform(0.1, 0.5, 20_000)
        result = protocol.run_sharded(
            values, ATTACK, 5_000, rng=9, n_shards=4, block_size=4_096
        )
        assert abs(result.estimate - values.mean()) < 0.1
        assert 0.1 < result.gamma_hat < 0.35


class TestFrequencySharded:
    def test_counts_invariant_to_shard_and_worker_count(self):
        dap = FrequencyDAP(epsilon=1.0, n_categories=8, estimator="emf_star")
        normal = np.random.default_rng(5).integers(0, 8, 4_000)
        reference = dap.collect_sharded(
            normal, (3,), 900, rng=np.random.default_rng(0), n_shards=1,
            block_size=512,
        )
        for n_shards in SHARD_COUNTS[1:]:
            counts = dap.collect_sharded(
                normal, (3,), 900, rng=np.random.default_rng(0),
                n_shards=n_shards, block_size=512,
            )
            np.testing.assert_array_equal(counts.counts, reference.counts)
        pooled = dap.collect_sharded(
            normal, (3,), 900, rng=np.random.default_rng(0), n_shards=5,
            n_workers=2, block_size=512,
        )
        np.testing.assert_array_equal(pooled.counts, reference.counts)
        assert reference.n_reports == 4_900

    def test_sharded_counts_estimate_matches_report_path(self):
        """Sharding the counts of a fixed report stream changes nothing:
        the estimate is bit-identical to ``estimate`` on the raw reports."""
        rng = np.random.default_rng(6)
        dap = FrequencyDAP(epsilon=1.0, n_categories=6)
        reports = dap.collect(rng.integers(0, 6, 3_000), (2,), 700, rng=rng)
        reference = dap.estimate(reports)
        for n_shards in SHARD_COUNTS:
            accumulator = CategoryCountAccumulator(6)
            for piece in np.array_split(reports, n_shards):
                shard = CategoryCountAccumulator(6).update(piece)
                accumulator.merge(CategoryCountAccumulator.from_state(shard.state_dict()))
            result = dap.estimate_from_counts(accumulator)
            np.testing.assert_array_equal(result.frequencies, reference.frequencies)
            assert result.poisoned_categories == reference.poisoned_categories
            assert result.gamma_hat == reference.gamma_hat

    def test_requires_targets_with_byzantine_users(self):
        dap = FrequencyDAP(epsilon=1.0, n_categories=4)
        with pytest.raises(ValueError, match="poisoned_categories"):
            dap.collect_sharded(np.zeros(10, dtype=int), (), 5, rng=0)


class TestShardedTrialPath:
    def test_truths_match_the_in_memory_runner_exactly(self):
        dataset = uniform_dataset(n_samples=2_000, rng=0)
        scheme = make_scheme("DAP-EMF", epsilon=1.0)
        sharded = run_trials_sharded(
            scheme, dataset, ATTACK, n_users=2_000, gamma=0.25,
            trial_seeds=[11, 22], n_shards=3,
        )
        in_memory = run_trials_from_seeds(
            scheme, dataset, ATTACK, n_users=2_000, gamma=0.25,
            trial_seeds=[11, 22],
        )
        # same seeds, same population draw: the ground truths pair exactly
        assert sharded.truths == in_memory.truths
        assert sharded.mse < 1.0

    def test_records_invariant_to_worker_count(self):
        dataset = uniform_dataset(n_samples=1_500, rng=0)
        scheme = make_scheme("DAP-CEMF*", epsilon=1.0)
        results = [
            run_trials_sharded(
                scheme, dataset, ATTACK, n_users=1_500, gamma=0.2,
                trial_seeds=[7], n_shards=shards, n_workers=workers,
            )
            for shards, workers in ((1, None), (4, None), (4, 2))
        ]
        assert results[0].estimates == results[1].estimates == results[2].estimates

    def test_non_sharding_scheme_warns(self):
        dataset = uniform_dataset(n_samples=500, rng=0)
        scheme = make_scheme("Trimming", epsilon=1.0)
        assert not scheme.supports_sharding
        with pytest.warns(RuntimeWarning, match="no sharded collection path"):
            run_trials_sharded(
                scheme, dataset, None, n_users=500, gamma=0.0,
                trial_seeds=[1], n_shards=4,
            )

    def test_fallback_matches_in_memory_runner(self):
        dataset = uniform_dataset(n_samples=1_000, rng=0)
        scheme = make_scheme("Ostrich", epsilon=1.0)
        with pytest.warns(RuntimeWarning, match="no sharded collection path"):
            fallback = run_trials_sharded(
                scheme, dataset, None, n_users=1_000, gamma=0.0,
                trial_seeds=[5, 6], n_shards=4,
            )
        in_memory = run_trials_from_seeds(
            scheme, dataset, None, n_users=1_000, gamma=0.0, trial_seeds=[5, 6]
        )
        # the default estimate_sharded defers to estimate: identical records
        assert fallback.estimates == in_memory.estimates
        assert fallback.truths == in_memory.truths
