"""Hypothesis property tests on the library's core invariants.

These complement the per-module property tests with cross-cutting invariants:
LDP guarantees, EM mass conservation, protocol output ranges and the
equivalence invariant of Theorem 1.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks import BiasedByzantineAttack, GeneralByzantineAttack, PoisonRange
from repro.attacks.reduction import reduce_gba_to_bba, total_deviation
from repro.collect import ExactSum, chunk_array
from repro.core.aggregation import aggregation_weights
from repro.core.emf import run_emf
from repro.core.emf_star import run_emf_star
from repro.core.mean_estimation import corrected_mean, corrected_mean_from_stats
from repro.core.transform import build_transform_matrix
from repro.datasets.synthetic import uniform_dataset
from repro.ldp import DuchiMechanism, KRandomizedResponse, PiecewiseMechanism
from repro.simulation.population import (
    build_population,
    population_counts,
    stream_population,
)

COMMON_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestLDPGuarantees:
    @given(
        epsilon=st.floats(0.2, 3.0),
        x1=st.floats(-1, 1),
        x2=st.floats(-1, 1),
        lo=st.floats(-0.9, 0.8),
        width=st.floats(0.05, 1.0),
    )
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_pm_interval_probabilities_respect_epsilon(self, epsilon, x1, x2, lo, width):
        """For any output interval, probabilities under two inputs differ by
        at most e^epsilon — the definition of epsilon-LDP."""
        mech = PiecewiseMechanism(epsilon)
        hi = lo + width
        p1 = mech.interval_probability(x1, lo, hi)
        p2 = mech.interval_probability(x2, lo, hi)
        if p1 > 0 and p2 > 0:
            assert p1 / p2 <= math.exp(epsilon) * (1 + 1e-9)
            assert p2 / p1 <= math.exp(epsilon) * (1 + 1e-9)

    @given(epsilon=st.floats(0.2, 3.0), k=st.integers(2, 10))
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_krr_probability_ratio_is_exactly_epsilon(self, epsilon, k):
        mech = KRandomizedResponse(epsilon, k)
        assert mech.p / mech.q == pytest.approx(math.exp(epsilon))

    @given(epsilon=st.floats(0.2, 3.0))
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_duchi_output_probabilities_respect_epsilon(self, epsilon):
        mech = DuchiMechanism(epsilon)
        p_max = float(mech.positive_probability(np.array([1.0]))[0])
        p_min = float(mech.positive_probability(np.array([-1.0]))[0])
        assert p_max / p_min <= math.exp(epsilon) * (1 + 1e-9)


class TestEMFInvariants:
    @given(
        epsilon=st.floats(0.2, 2.0),
        gamma=st.floats(0.0, 0.45),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=15, **COMMON_SETTINGS)
    def test_emf_output_is_probability_vector(self, epsilon, gamma, seed):
        rng = np.random.default_rng(seed)
        mech = PiecewiseMechanism(epsilon)
        n_normal, n_total = 1_500, 2_000
        n_byz = int(round(n_total * gamma))
        values = rng.uniform(-0.8, 0.8, n_normal)
        reports = [mech.perturb(values, rng)]
        if n_byz:
            reports.append(
                BiasedByzantineAttack(PoisonRange.of_c(0.5, 1.0)).poison_reports(
                    n_byz, mech, 0.0, rng
                ).reports
            )
        reports = np.concatenate(reports)
        transform = build_transform_matrix(mech, 8, 24, "right", 0.0)
        result = run_emf(transform, reports=reports, epsilon=epsilon)
        total = result.normal_histogram.sum() + result.poison_histogram.sum()
        assert total == pytest.approx(1.0, abs=1e-6)
        assert 0.0 <= result.gamma_hat <= 1.0
        lo, hi = mech.output_domain
        assert lo <= result.poison_mean <= hi

    @given(gamma=st.floats(0.0, 0.9), seed=st.integers(0, 500))
    @settings(max_examples=15, **COMMON_SETTINGS)
    def test_emf_star_respects_any_gamma_constraint(self, gamma, seed):
        rng = np.random.default_rng(seed)
        mech = PiecewiseMechanism(1.0)
        reports = mech.perturb(rng.uniform(-1, 1, 1_500), rng)
        transform = build_transform_matrix(mech, 8, 24, "right", 0.0)
        result = run_emf_star(transform, gamma_hat=gamma, reports=reports, epsilon=1.0)
        assert result.gamma_hat == pytest.approx(gamma, abs=1e-6)


class TestEstimatorInvariants:
    @given(
        gamma=st.floats(0, 0.9),
        poison_mean=st.floats(-5, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_corrected_mean_always_clipped(self, gamma, poison_mean, seed):
        rng = np.random.default_rng(seed)
        reports = rng.uniform(-3, 3, 200)
        estimate = corrected_mean(reports, gamma, poison_mean)
        assert -1.0 <= estimate <= 1.0

    @given(
        epsilons=st.lists(st.floats(0.2, 3.0), min_size=1, max_size=6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_aggregation_weights_are_distribution(self, epsilons, seed):
        rng = np.random.default_rng(seed)
        counts = rng.uniform(0, 200, len(epsilons))
        weights = aggregation_weights(epsilons, counts)
        assert weights.min() >= 0
        assert weights.sum() == pytest.approx(1.0, abs=1e-9)


class TestPopulationSplitInvariants:
    """Byzantine/normal splits at extreme gamma and tiny populations."""

    @given(n_users=st.integers(1, 5_000), gamma=st.floats(0.0, 1.0))
    @settings(max_examples=200, **COMMON_SETTINGS)
    def test_counts_always_sum_to_n_or_reject(self, n_users, gamma):
        try:
            n_normal, n_byzantine = population_counts(n_users, gamma)
        except ValueError:
            # only legitimate rejection: rounding leaves no normal user
            assert int(round(n_users * gamma)) >= n_users
            return
        assert n_normal + n_byzantine == n_users
        assert n_normal >= 1
        assert n_byzantine == int(round(n_users * gamma))

    @given(n_users=st.integers(1, 2_000))
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_gamma_zero_means_no_byzantine(self, n_users):
        assert population_counts(n_users, 0.0) == (n_users, 0)

    @given(n_users=st.integers(2, 2_000))
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_near_one_gamma_keeps_at_least_one_normal_or_rejects(self, n_users):
        with pytest.raises(ValueError, match="no normal users"):
            population_counts(n_users, 1.0)
        # the largest gamma that still rounds to n-1 Byzantine users works
        n_normal, n_byzantine = population_counts(n_users, (n_users - 1) / n_users)
        assert n_normal >= 1 and n_normal + n_byzantine == n_users

    @given(
        n_users=st.integers(1, 1_500),
        gamma=st.floats(0.0, 0.999),
        chunk_size=st.integers(1, 2_048),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=80, **COMMON_SETTINGS)
    def test_chunked_generator_rounds_like_in_memory(
        self, n_users, gamma, chunk_size, seed
    ):
        dataset = uniform_dataset(n_samples=200, rng=0)
        try:
            population = build_population(dataset, n_users, gamma, rng=seed)
        except ValueError:
            with pytest.raises(ValueError):
                stream_population(dataset, n_users, gamma, rng=seed)
            return
        stream = stream_population(
            dataset, n_users, gamma, rng=seed, chunk_size=chunk_size
        )
        assert stream.n_normal == population.n_normal
        assert stream.n_byzantine == population.n_byzantine
        values = np.concatenate(list(stream.chunks())) if stream.n_normal else []
        assert len(values) == stream.n_normal
        assert stream.true_mean == pytest.approx(np.mean(values))


class TestStreamingSumInvariants:
    @given(
        seed=st.integers(0, 1_000),
        n=st.integers(1, 3_000),
        chunk_a=st.integers(1, 500),
        chunk_b=st.integers(1, 500),
        scale=st.floats(1e-3, 1e6),
    )
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_exact_sum_is_chunking_invariant(self, seed, n, chunk_a, chunk_b, scale):
        values = np.random.default_rng(seed).normal(scale=scale, size=n)
        sums = set()
        for chunk_size in (chunk_a, chunk_b, n, 10**9):
            acc = ExactSum()
            for chunk in chunk_array(values, chunk_size):
                acc.add(chunk)
            sums.add(acc.value)
        assert len(sums) == 1

    @given(
        gamma=st.floats(0, 0.9),
        poison_mean=st.floats(-5, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_corrected_mean_stats_form_matches_array_form(
        self, gamma, poison_mean, seed
    ):
        reports = np.random.default_rng(seed).uniform(-3, 3, 200)
        assert corrected_mean_from_stats(
            float(reports.sum()), reports.size, gamma, poison_mean
        ) == corrected_mean(reports, gamma, poison_mean)


class TestTheorem1Invariant:
    @given(
        n_left=st.integers(0, 30),
        n_right=st.integers(0, 30),
        seed=st.integers(0, 1000),
        epsilon=st.floats(0.3, 2.0),
    )
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_any_gba_reduces_to_one_sided_attack(self, n_left, n_right, seed, epsilon):
        rng = np.random.default_rng(seed)
        mech = PiecewiseMechanism(epsilon)
        lo, hi = mech.output_domain
        reports = np.concatenate(
            [rng.uniform(lo, 0, n_left), rng.uniform(0, hi, n_right)]
        )
        reduced = reduce_gba_to_bba(reports, 0.0, lo, hi)
        assert total_deviation(reduced, 0.0) == pytest.approx(
            total_deviation(reports, 0.0), abs=1e-6 * max(1, abs(hi))
        )
        assert not (np.any(reduced > 1e-9) and np.any(reduced < -1e-9))
        if reduced.size:
            assert reduced.min() >= lo - 1e-9 and reduced.max() <= hi + 1e-9
