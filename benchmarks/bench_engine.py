"""Engine timing benchmark: serial vs parallel on the fig6 quick grid.

Writes a ``BENCH_engine.json`` artifact recording wall-clock timings of the
unified experiment engine on the Figure 6 quick grid (Taxi, Poi [3C/4,C],
five budgets, QUICK_SCALE population), so the performance trajectory is
tracked across commits and CI runs:

* ``serial_seconds`` / ``parallel_seconds`` — the engine's exact
  (``batched=False``) path, one process vs a pool of ``--workers``;
* ``batched_serial_seconds`` / ``batched_parallel_seconds`` — the
  stacked-trials fast path;
* ``parallel_speedup`` — serial / parallel (bounded by ``n_cpus``: on a
  single-CPU host this hovers around 1x; the records are still verified
  identical);
* ``records_identical`` — bit-equality of the serial and parallel records.

Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py --workers 4 --out BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

from repro.engine import run_experiment
from repro.experiments.defaults import ExperimentScale, QUICK_SCALE
from repro.experiments.fig6 import build_fig6_spec


def record_key(records):
    return [(tuple(sorted(r.point.items())), r.scheme, r.mse, r.bias) for r in records]


def time_run(spec, seed, n_workers=None):
    start = time.perf_counter()
    records = run_experiment(spec, rng=seed, n_workers=n_workers)
    return time.perf_counter() - start, records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4, help="pool size for the parallel runs")
    parser.add_argument("--out", default="BENCH_engine.json", help="artifact path")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--users", type=int, default=QUICK_SCALE.n_users,
        help="population per trial (default: the fig6 quick grid's)",
    )
    parser.add_argument(
        "--trials", type=int, default=QUICK_SCALE.n_trials,
        help="trials per sweep point (default: the fig6 quick grid's)",
    )
    parser.add_argument(
        "--baseline-seconds", type=float, default=None,
        help="wall-clock of a reference implementation on the same grid and "
             "host (e.g. the pre-engine serial sweep), recorded for the "
             "perf trajectory",
    )
    args = parser.parse_args()
    scale = ExperimentScale(n_users=args.users, n_trials=args.trials, gamma=QUICK_SCALE.gamma)

    def spec(batched):
        # dataset sampling consumes the master stream before the sweep, as the
        # drivers do, so every timed run sees the identical workload
        return build_fig6_spec(scale, rng=args.seed, batched=batched)

    print(f"fig6 quick grid: n_users={scale.n_users}, n_trials={scale.n_trials}, "
          f"5 epsilons x 5 schemes; workers={args.workers}, cpus={os.cpu_count()}")

    serial_s, serial_records = time_run(spec(batched=False), args.seed)
    print(f"engine serial          : {serial_s:8.2f}s")
    parallel_s, parallel_records = time_run(spec(batched=False), args.seed, args.workers)
    print(f"engine parallel ({args.workers:2d})   : {parallel_s:8.2f}s")
    batched_serial_s, _ = time_run(spec(batched=True), args.seed)
    print(f"batched serial         : {batched_serial_s:8.2f}s")
    batched_parallel_s, _ = time_run(spec(batched=True), args.seed, args.workers)
    print(f"batched parallel ({args.workers:2d})  : {batched_parallel_s:8.2f}s")

    identical = record_key(serial_records) == record_key(parallel_records)
    artifact = {
        "benchmark": "fig6_quick_grid",
        "grid": {
            "datasets": ["Taxi"],
            "poison_ranges": ["[3C/4,C]"],
            "epsilons": [0.25, 0.5, 1.0, 1.5, 2.0],
            "n_users": scale.n_users,
            "n_trials": scale.n_trials,
            "n_schemes": 5,
        },
        "host": {
            "n_cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "workers": args.workers,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "batched_serial_seconds": round(batched_serial_s, 3),
        "batched_parallel_seconds": round(batched_parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3),
        "records_identical": identical,
    }
    if args.baseline_seconds is not None:
        artifact["baseline_seconds"] = round(args.baseline_seconds, 3)
        artifact["speedup_vs_baseline"] = round(
            args.baseline_seconds / min(serial_s, parallel_s, batched_parallel_s), 3
        )
    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=1)
        handle.write("\n")
    print(f"speedup {artifact['parallel_speedup']}x, records identical: {identical}; "
          f"wrote {args.out}")
    if not identical:
        raise SystemExit("parallel records diverged from serial records")


if __name__ == "__main__":
    main()
