"""Scenario: can attackers evade DAP by poisoning both sides?

Section V-D of the paper analyses the obvious counter-strategy: attackers who
know DAP is deployed sacrifice a fraction ``a`` of their reports to the
opposite side, hoping to flip the poisoned-side probing.  Equation 20 bounds
what that costs them.  This example sweeps ``a`` and reports, for each value,

* the MSE of the DAP estimate (does the evasion fool the defence?), and
* the attack's own achieved shift of the undefended mean (what the evasion
  costs the attacker), next to the analytical utility-loss bound.

Run with::

    python examples/evasion_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import DAPConfig, DAPProtocol
from repro.attacks import EvasionAttack, PoisonRange
from repro.datasets import retirement_dataset
from repro.defenses import OstrichDefense
from repro.ldp import PiecewiseMechanism


def main() -> None:
    rng = np.random.default_rng(31)
    epsilon = 0.5
    n_normal, n_byzantine = 18_000, 6_000
    dataset = retirement_dataset(n_samples=n_normal, rng=rng)
    truth = dataset.true_mean
    mechanism = PiecewiseMechanism(epsilon)
    print(f"dataset: {dataset.name}, true mean = {truth:+.4f}, epsilon = {epsilon}")
    print(f"{'a':>5} {'DAP error':>12} {'attack shift':>14} {'utility-loss bound':>20}")

    for a in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5):
        attack = EvasionAttack(
            evasive_fraction=a, true_poison_range=PoisonRange.of_c(0.5, 1.0)
        )

        # what the defence sees
        config = DAPConfig(epsilon=epsilon, epsilon_min=1 / 16, estimator="emf_star")
        result = DAPProtocol(config).run(dataset.values, attack, n_byzantine, rng=rng)
        dap_error = abs(result.estimate - truth)

        # what the attack achieves against an undefended collector
        reports = np.concatenate(
            [
                mechanism.perturb(dataset.values, rng),
                attack.poison_reports(n_byzantine, mechanism, 0.0, rng).reports,
            ]
        )
        shift = OstrichDefense()(reports, mechanism, rng) - truth
        bound = attack.utility_loss_bound(n_byzantine, n_normal, mechanism, 0.0)

        print(f"{a:>5.1f} {dap_error:>12.4f} {shift:>+14.4f} {bound:>20.4f}")

    print(
        "\nSmall evasive fractions neither fool DAP nor help the attacker; as "
        "a grows the attack gives up its own impact roughly as fast as the "
        "analytical bound predicts."
    )


if __name__ == "__main__":
    main()
