"""Atomic JSON checkpoints for the windowed service, with chain recovery.

One checkpoint *chain* per service: the newest checkpoint lives at ``path``,
its ancestors at ``path.1`` (one write ago), ``path.2``, ... up to the
retention limit.  Every write is atomic (temp file in the same directory,
fsync, then ``os.replace``), so a SIGKILL at any instant leaves either the
previous or the new checkpoint — never a torn file.  The payload carries
only sufficient statistics and probe state (accumulator snapshots, converged
EM weights, detector state), so its size is bounded by the grid geometry,
not by how many users the stream has absorbed.

Atomic writes cannot protect a file *after* it lands — disks corrupt, ops
truncate, backups restore partially.  Recovery is
:meth:`CheckpointChain.load_latest`: walk the chain newest-first, quarantine
every invalid member (renamed aside with a ``.quarantined`` suffix, never
deleted — it is evidence), and resume from the newest member that still
validates; the service then replays the missing windows bit-identically,
because each window's randomness is derived from the spec seed, not from
run history.  Each payload embeds a SHA-256 ``checksum`` over its canonical
JSON (checked when present, so pre-checksum checkpoints stay loadable): a
flipped bit deep inside a float array still parses as valid JSON, and only
the checksum catches it at load time.

Python's ``json`` round-trips finite floats exactly (``repr`` emits the
shortest representation that parses back to the same double), which is what
makes resume *bit*-identical rather than merely close.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.resilience import stats

#: bump when the checkpoint layout changes incompatibly
CHECKPOINT_VERSION = 1

#: suffix quarantined (invalid) chain members are renamed aside with
QUARANTINE_SUFFIX = ".quarantined"

#: ancestors retained alongside the newest checkpoint by default
DEFAULT_RETAIN = 3


def payload_checksum(payload: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON of everything except ``checksum``."""
    canonical = json.dumps(
        {key: value for key, value in payload.items() if key != "checksum"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_checkpoint(path: str, payload: Mapping[str, Any]) -> None:
    """Atomically write a checkpoint payload (checksum-stamped) to ``path``."""
    payload = dict(payload)
    payload["checksum"] = payload_checksum(payload)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path: str, expected_digest: str | None = None) -> Dict[str, Any]:
    """Load and structurally validate a checkpoint.

    Raises ``ValueError`` when the file is not a checkpoint of the expected
    version, or — when ``expected_digest`` is given — when it belongs to a
    different service identity (changed window boundaries, seed, probe
    knobs, ...).  A mismatched checkpoint must never be silently resumed:
    the resulting stream would be neither the old one nor the new one.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"checkpoint {path!r} is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"checkpoint {path!r} must hold a JSON object")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path!r} has version {version!r}, expected "
            f"{CHECKPOINT_VERSION}"
        )
    for key in ("digest", "next_window", "cumulative", "windows", "detector"):
        if key not in payload:
            raise ValueError(f"checkpoint {path!r} is missing key {key!r}")
    stored_checksum = payload.pop("checksum", None)
    if stored_checksum is not None and stored_checksum != payload_checksum(payload):
        # absent in pre-checksum checkpoints (still loadable); present but
        # wrong means silent corruption that survived the JSON parse
        raise ValueError(
            f"checkpoint {path!r} failed its integrity checksum (the file "
            f"parses but its bytes were altered after writing)"
        )
    if expected_digest is not None and payload["digest"] != expected_digest:
        raise ValueError(
            f"checkpoint {path!r} belongs to a different service configuration "
            f"(digest {payload['digest']!r}, expected {expected_digest!r}); "
            f"delete it or restore the original spec"
        )
    return payload


class CheckpointChain:
    """A rotating last-good chain of checkpoints with quarantine recovery.

    ``path`` holds the newest checkpoint; each :meth:`write` first shifts the
    existing members one slot deeper (``path`` → ``path.1`` → ``path.2`` ...),
    dropping the member past ``retain - 1`` ancestors.  ``retain`` is an
    execution detail: it bounds how far back recovery can reach, never what a
    healthy run computes.

    :meth:`load_latest` walks the chain newest-first and returns the newest
    member that validates, renaming every invalid member it walked past to
    ``<name>.quarantined`` (``.quarantined.1``, ... on collision) — kept, not
    deleted, because a corrupt checkpoint is evidence worth inspecting.  One
    deliberate asymmetry: a checkpoint that is *valid but belongs to a
    different service identity* (digest mismatch) is only quarantined when a
    valid same-identity ancestor exists to roll back to.  With nothing to
    roll back to, the mismatch is a configuration error — the caller pointed
    one service at another service's state — and silently starting fresh
    would hide it, so the original ``ValueError`` is re-raised instead.
    """

    def __init__(self, path: str, retain: int = DEFAULT_RETAIN) -> None:
        retain = int(retain)
        if retain < 1:
            raise ValueError(f"checkpoint retain must be >= 1, got {retain}")
        self.path = os.fspath(path)
        self.retain = retain

    def member_paths(self) -> List[str]:
        """Every chain slot, newest first (files may not all exist)."""
        return [self.path] + [
            f"{self.path}.{age}" for age in range(1, self.retain)
        ]

    def existing(self) -> List[str]:
        """The chain members currently on disk, newest first."""
        return [path for path in self.member_paths() if os.path.exists(path)]

    def write(self, payload: Mapping[str, Any]) -> None:
        """Rotate the chain one slot deeper and write the new head."""
        members = self.member_paths()
        for age in range(len(members) - 1, 0, -1):
            if os.path.exists(members[age - 1]):
                os.replace(members[age - 1], members[age])
        write_checkpoint(self.path, payload)

    def _quarantine(self, path: str) -> str:
        target = path + QUARANTINE_SUFFIX
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = f"{path}{QUARANTINE_SUFFIX}.{suffix}"
        os.replace(path, target)
        stats.record("checkpoint_quarantined")
        return target

    def load_latest(
        self, expected_digest: str | None = None
    ) -> Tuple[Optional[Dict[str, Any]], List[str]]:
        """The newest valid payload and the quarantined members walked past.

        Returns ``(None, quarantined)`` when no member validates (fresh
        start), re-raising the digest mismatch instead when the only failure
        mode was a foreign identity (see the class docstring).
        """
        failures: List[Tuple[str, ValueError, bool]] = []
        chosen: Optional[Dict[str, Any]] = None
        for path in self.existing():
            try:
                chosen = load_checkpoint(path, expected_digest)
                break
            except ValueError as error:
                foreign = "different service configuration" in str(error)
                failures.append((path, error, foreign))
        if chosen is None and failures and all(f[2] for f in failures):
            raise failures[0][1]
        quarantined: List[str] = []
        for path, error, _foreign in failures:
            target = self._quarantine(path)
            quarantined.append(target)
            warnings.warn(
                f"quarantined invalid checkpoint {path!r} -> {target!r}: "
                f"{error}",
                RuntimeWarning,
                stacklevel=3,
            )
        return chosen, quarantined


__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointChain",
    "DEFAULT_RETAIN",
    "QUARANTINE_SUFFIX",
    "load_checkpoint",
    "payload_checksum",
    "write_checkpoint",
]
