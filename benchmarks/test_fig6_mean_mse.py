"""Benchmark: Figure 6 — MSE of mean estimation (DAP variants vs baselines).

Paper claim: across datasets, poison ranges and budgets, the three DAP
variants achieve an MSE orders of magnitude below Ostrich and Trimming, with
the EMF*/CEMF* post-processing beating plain EMF in most configurations.

The benchmark sweeps two representative panels (Taxi and Beta(5,2), poison
range [3C/4, C]) across three budgets; pass ``datasets=FIG6_DATASETS`` and
``poison_ranges=FIG6_RANGES`` to the driver to regenerate the full 16-panel
grid.
"""

from repro.experiments import format_fig6, run_fig6


def test_fig6_mean_estimation_mse(benchmark, bench_scale):
    records = benchmark(
        run_fig6,
        bench_scale,
        datasets=("Taxi", "Beta(5,2)"),
        poison_ranges=("[3C/4,C]",),
        epsilons=(0.5, 1.0, 2.0),
        rng=0,
    )
    print("\n" + format_fig6(records))

    for dataset in ("Taxi", "Beta(5,2)"):
        for epsilon in (0.5, 1.0, 2.0):
            mse = {
                r.scheme: r.mse
                for r in records
                if r.point["dataset"] == dataset and r.point["epsilon"] == epsilon
            }
            # every DAP variant beats both baselines on this far-range attack
            for dap in ("DAP-EMF", "DAP-EMF*", "DAP-CEMF*"):
                assert mse[dap] < mse["Ostrich"], (dataset, epsilon, dap)
                assert mse[dap] < mse["Trimming"], (dataset, epsilon, dap)
            # the gap is large (the paper reports many orders of magnitude)
            assert mse["DAP-EMF*"] * 5 < mse["Ostrich"]
