"""Tests for the corrected mean (Eq. 12-13) and the optimal aggregation (Thm. 6)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    aggregate_means,
    aggregation_weights,
    minimal_aggregated_variance,
    worst_case_group_variance,
)
from repro.core.mean_estimation import corrected_mean, plain_mean
from repro.ldp import PiecewiseMechanism


class TestPlainMean:
    def test_average(self):
        assert plain_mean(np.array([1.0, 3.0])) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            plain_mean(np.array([]))


class TestCorrectedMean:
    def test_exact_correction_recovers_truth(self, rng):
        normal = rng.normal(0.2, 0.1, 8_000)
        poison = np.full(2_000, 4.0)
        reports = np.concatenate([normal, poison])
        gamma = 0.2
        estimate = corrected_mean(reports, gamma, poison_mean=4.0, clip=False)
        assert estimate == pytest.approx(normal.mean(), abs=0.01)

    def test_zero_gamma_is_plain_mean(self, rng):
        reports = rng.normal(0.1, 0.2, 1_000)
        assert corrected_mean(reports, 0.0, 0.0, clip=False) == pytest.approx(
            plain_mean(reports)
        )

    def test_clipping_to_input_domain(self):
        reports = np.full(100, 5.0)
        assert corrected_mean(reports, 0.0, 0.0) == 1.0
        assert corrected_mean(reports, 0.0, 0.0, input_domain=(0.0, 2.0)) == 2.0

    def test_gamma_one_falls_back_to_plain_mean(self):
        reports = np.array([0.5, 0.7])
        assert corrected_mean(reports, 1.0, 10.0) == pytest.approx(0.6)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            corrected_mean(np.array([1.0]), -0.1, 0.0)

    def test_empty_reports(self):
        with pytest.raises(ValueError):
            corrected_mean(np.array([]), 0.1, 0.0)

    def test_under_correction_leaves_positive_bias(self, rng):
        normal = rng.normal(0.0, 0.1, 8_000)
        poison = np.full(2_000, 4.0)
        reports = np.concatenate([normal, poison])
        # underestimate gamma -> residual positive bias
        estimate = corrected_mean(reports, 0.1, 4.0, clip=False)
        assert estimate > normal.mean()


class TestWorstCaseVariance:
    def test_matches_pm_formula(self):
        for epsilon in (0.25, 1.0, 2.0):
            assert worst_case_group_variance(epsilon) == pytest.approx(
                PiecewiseMechanism(epsilon).worst_case_variance()
            )

    def test_decreasing_in_epsilon(self):
        assert worst_case_group_variance(0.25) > worst_case_group_variance(2.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            worst_case_group_variance(0.0)


class TestAggregationWeights:
    def test_weights_sum_to_one(self):
        weights = aggregation_weights([1.0, 0.5, 0.25], [100, 100, 100])
        assert weights.sum() == pytest.approx(1.0)

    def test_larger_epsilon_gets_larger_weight(self):
        weights = aggregation_weights([2.0, 0.25], [100, 100])
        assert weights[0] > weights[1]

    def test_matches_theorem6_formula(self):
        # the proof's general form: w_t proportional to n_t^2 / B_t
        epsilons = [1.0, 0.5]
        n_normal = [120.0, 80.0]
        b = [n * worst_case_group_variance(e) for e, n in zip(epsilons, n_normal)]
        expected = np.array([n**2 / bi for n, bi in zip(n_normal, b)])
        expected /= expected.sum()
        np.testing.assert_allclose(aggregation_weights(epsilons, n_normal), expected)

    def test_equal_group_sizes_match_algorithm5_printed_form(self):
        # with equal n_t the general form reduces to w_t = (B_t sum 1/B_i)^-1
        epsilons = [1.0, 0.5, 0.25]
        n_normal = [100.0, 100.0, 100.0]
        b = np.array([n * worst_case_group_variance(e) for e, n in zip(epsilons, n_normal)])
        expected = (1 / b) / (1 / b).sum()
        np.testing.assert_allclose(aggregation_weights(epsilons, n_normal), expected)

    def test_empty_group_gets_zero_weight(self):
        weights = aggregation_weights([1.0, 0.5], [100, 0])
        assert weights[1] == 0.0
        assert weights[0] == pytest.approx(1.0)

    def test_all_empty_groups_fall_back_to_equal(self):
        np.testing.assert_allclose(aggregation_weights([1.0, 0.5], [0, 0]), [0.5, 0.5])

    def test_custom_variances_override(self):
        weights = aggregation_weights([1.0, 1.0], [100, 100], per_report_variances=[1.0, 3.0])
        assert weights[0] == pytest.approx(0.75)
        assert weights[1] == pytest.approx(0.25)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            aggregation_weights([1.0], [100, 200])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            aggregation_weights([1.0], [-5])


class TestAggregateMeans:
    def test_weighted_combination(self):
        assert aggregate_means([0.0, 1.0], [0.25, 0.75]) == pytest.approx(0.75)

    def test_unnormalised_weights_are_renormalised(self):
        assert aggregate_means([0.0, 1.0], [1.0, 3.0]) == pytest.approx(0.75)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            aggregate_means([1.0], [0.5, 0.5])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            aggregate_means([1.0, 2.0], [0.0, 0.0])


class TestMinimalVariance:
    def test_formula(self):
        epsilons = [1.0, 0.5]
        counts = [100.0, 100.0]
        expected = 1.0 / sum(
            n**2 / (n * worst_case_group_variance(e)) for e, n in zip(epsilons, counts)
        )
        assert minimal_aggregated_variance(epsilons, counts) == pytest.approx(expected)

    def test_more_groups_reduce_variance(self):
        one = minimal_aggregated_variance([1.0], [100.0])
        two = minimal_aggregated_variance([1.0, 1.0], [100.0, 100.0])
        assert two < one

    def test_no_usable_groups(self):
        with pytest.raises(ValueError):
            minimal_aggregated_variance([1.0], [0.0])


class TestOptimalityProperty:
    @given(
        epsilons=st.lists(st.floats(0.2, 3.0), min_size=2, max_size=5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_theorem6_weights_beat_equal_weights(self, epsilons, seed):
        """The Theorem 6 weights minimise the worst-case combined variance."""
        rng = np.random.default_rng(seed)
        counts = rng.uniform(50, 500, len(epsilons))
        optimal = aggregation_weights(epsilons, counts)
        equal = np.full(len(epsilons), 1.0 / len(epsilons))

        def combined_variance(weights):
            return sum(
                w**2 * worst_case_group_variance(e) / n
                for w, e, n in zip(weights, epsilons, counts)
            )

        assert combined_variance(optimal) <= combined_variance(equal) + 1e-12
