"""Benchmark: Figure 9 (c)(d) — frequency estimation on categorical data.

Paper claim: with k-RR perturbation on the COVID-19 age-group data and poison
reports injected into one (panel c) or three (panel d) categories, the DAP
schemes achieve a frequency MSE well below Ostrich, and the gap persists
across budgets.
"""

from repro.experiments import format_fig9_frequency, run_fig9_frequency


def test_fig9_frequency_estimation(benchmark, bench_scale_small):
    records = benchmark(
        run_fig9_frequency,
        bench_scale_small,
        epsilons=(0.5, 1.0, 2.0),
        panels={"c": (9,), "d": (2, 3, 4)},
        rng=0,
    )
    print("\n" + format_fig9_frequency(records))

    # DAP beats Ostrich for the single-category attack at every budget
    for epsilon in (0.5, 1.0, 2.0):
        mse = {r.scheme: r.mse for r in records if r.panel == "c" and r.epsilon == epsilon}
        assert mse["DAP-EMF*"] < mse["Ostrich"]

    # and for the multi-category attack at the larger budgets
    for epsilon in (1.0, 2.0):
        mse = {r.scheme: r.mse for r in records if r.panel == "d" and r.epsilon == epsilon}
        assert min(mse["DAP-EMF*"], mse["DAP-CEMF*"]) < mse["Ostrich"]
