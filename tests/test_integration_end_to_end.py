"""Integration tests across modules: full pipelines on realistic workloads."""

import numpy as np
import pytest

from repro import DAPConfig, DAPProtocol
from repro.attacks import (
    BiasedByzantineAttack,
    GeneralByzantineAttack,
    InputManipulationAttack,
    PAPER_POISON_RANGES,
    reduce_gba_to_bba,
)
from repro.core.baseline_protocol import BaselineProtocol
from repro.core.mean_estimation import corrected_mean
from repro.datasets import load_dataset
from repro.defenses import OstrichDefense, TrimmingDefense
from repro.ldp import PiecewiseMechanism
from repro.simulation import build_population, evaluate_schemes, make_scheme


class TestMeanEstimationPipelines:
    """End-to-end: datasets -> attack -> protocol -> estimate."""

    @pytest.mark.parametrize("dataset_name", ["Taxi", "Beta(5,2)", "Retirement"])
    def test_dap_accuracy_across_datasets(self, dataset_name):
        dataset = load_dataset(dataset_name, n_samples=9_000, rng=1)
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 16, estimator="emf_star")
        result = DAPProtocol(config).run(dataset.values[:6_000], attack, 2_000, rng=2)
        truth = dataset.values[:6_000].mean()
        assert abs(result.estimate - truth) < 0.15

    def test_all_three_dap_variants_beat_both_baselines(self):
        dataset = load_dataset("Taxi", n_samples=8_000, rng=3)
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[3C/4,C]"])
        schemes = [
            make_scheme(name, epsilon=1.0)
            for name in ("DAP-EMF", "DAP-EMF*", "DAP-CEMF*", "Ostrich", "Trimming")
        ]
        results = evaluate_schemes(schemes, dataset, attack, n_users=8_000, gamma=0.25,
                                   n_trials=2, rng=4)
        for dap_name in ("DAP-EMF", "DAP-EMF*", "DAP-CEMF*"):
            assert results[dap_name].mse < results["Ostrich"].mse
            assert results[dap_name].mse < results["Trimming"].mse

    def test_gba_reduction_then_correction(self):
        """Theorem 1 in practice: a two-sided GBA has the same aggregate effect
        as its BBA reduction, so correcting with either yields the same mean."""
        rng = np.random.default_rng(5)
        mech = PiecewiseMechanism(1.0)
        values = np.clip(rng.normal(0.1, 0.2, 6_000), -1, 1)
        normal_reports = mech.perturb(values, rng)
        gba = GeneralByzantineAttack(right_fraction=0.7)
        poison = gba.poison_reports(2_000, mech, 0.0, rng).reports
        reduced = reduce_gba_to_bba(poison, 0.0, *mech.output_domain)

        full = np.concatenate([normal_reports, poison])
        equivalent = np.concatenate([normal_reports, reduced])
        assert full.sum() == pytest.approx(equivalent.sum(), rel=1e-9)

    def test_baseline_protocol_vs_dap_under_evasion_of_probing(self):
        """The motivating flaw: attackers that hide during the baseline's
        probing round hurt the baseline protocol more than DAP."""
        dataset = load_dataset("Taxi", n_samples=8_000, rng=6)
        values = dataset.values[:6_000]
        truth = values.mean()
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])

        baseline = BaselineProtocol(epsilon=1.0, alpha_fraction=0.1)
        baseline_result = baseline.run(values, attack, 2_000, evade_probing=True, rng=7)

        dap = DAPProtocol(DAPConfig(epsilon=1.0, epsilon_min=1 / 16, estimator="emf_star"))
        dap_result = dap.run(values, attack, 2_000, rng=7)

        assert abs(dap_result.estimate - truth) < abs(baseline_result.estimate - truth)

    def test_ima_is_weak_but_undetected(self):
        """An input-manipulation attack barely moves the mean but also barely
        registers in gamma_hat — matching the paper's Figure 5(d) narrative."""
        dataset = load_dataset("Taxi", n_samples=8_000, rng=8)
        values = dataset.values[:6_000]
        attack = InputManipulationAttack(1.0)
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 16)
        result = DAPProtocol(config).run(values, attack, 2_000, rng=9)
        assert result.gamma_hat < 0.15
        # even uncorrected, the IMA can only shift the mean by ~gamma * (1 - O)
        assert abs(result.estimate - values.mean()) < 0.35


class TestDefenseComparisonsOnPerturbedData:
    def test_trimming_overkills_clean_data(self):
        """Trimming half the reports on clean data biases the estimate, which
        is one of the drawbacks the paper lists in the introduction."""
        rng = np.random.default_rng(10)
        mech = PiecewiseMechanism(1.0)
        dataset = load_dataset("Beta(5,2)", n_samples=10_000, rng=10)
        reports = mech.perturb(dataset.values, rng)
        trimmed = TrimmingDefense(0.5)(reports, mech, rng)
        ostrich = OstrichDefense()(reports, mech, rng)
        truth = dataset.true_mean
        assert abs(ostrich - truth) < abs(trimmed - truth)

    def test_corrected_mean_with_oracle_features_is_nearly_exact(self):
        rng = np.random.default_rng(11)
        mech = PiecewiseMechanism(2.0)
        dataset = load_dataset("Retirement", n_samples=12_000, rng=11)
        values = dataset.values[:9_000]
        normal_reports = mech.perturb(values, rng)
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])
        poison = attack.poison_reports(3_000, mech, 0.0, rng).reports
        reports = np.concatenate([normal_reports, poison])
        estimate = corrected_mean(reports, gamma_hat=0.25, poison_mean=float(poison.mean()))
        assert estimate == pytest.approx(values.mean(), abs=0.05)


class TestPrivacyAccountingIntegration:
    def test_dap_groups_respect_total_budget(self):
        """Every user's total spent budget equals epsilon regardless of group."""
        config = DAPConfig(epsilon=1.0, epsilon_min=1 / 8)
        protocol = DAPProtocol(config)
        for epsilon_t in config.budget_ladder:
            reports = protocol._reports_per_user(epsilon_t)
            assert reports * epsilon_t == pytest.approx(1.0)

    def test_population_and_collection_sizes_consistent(self):
        dataset = load_dataset("Beta(2,5)", n_samples=4_000, rng=12)
        population = build_population(dataset, 4_000, 0.25, rng=12)
        config = DAPConfig(epsilon=0.5, epsilon_min=1 / 4)
        protocol = DAPProtocol(config)
        groups = protocol.collect(
            population.normal_values, BiasedByzantineAttack(), population.n_byzantine, rng=13
        )
        assert sum(g.n_users for g in groups) == population.n_total
        for group in groups:
            repeats = protocol._reports_per_user(group.epsilon)
            assert group.n_reports == group.n_users * repeats
