"""Property tests for the protocol pipeline (hypothesis).

The shuffle transport must be an execution detail at the statistics layer:
a group's accumulator state is a multiset statistic (exact bucket counts
plus an order-exact compensated report sum), so any permutation of the
group's delivered reports — any shuffle seed — must produce bit-identical
state.  The block-seeded collection design extends the same guarantee to
sharded runs (merges at any shard count are a pure fold), and the windowed
service under ``protocol="shuffle"`` keeps the seed repo's kill/resume
bit-identity.
"""

from __future__ import annotations

import json

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks import BiasedByzantineAttack, NoAttack
from repro.backends import use_backend
from repro.core.dap import DAPConfig, DAPProtocol
from repro.service import (
    ServiceSpec,
    WindowedAggregationService,
    run_service,
    write_checkpoint,
)

COMMON_SETTINGS = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

N_NORMAL = 400
N_BYZANTINE = 100


def _protocol(**overrides) -> DAPProtocol:
    config = DAPConfig(
        epsilon=1.0, epsilon_min=0.25, protocol="shuffle", **overrides
    )
    return DAPProtocol(config)


def _accumulator_states(protocol: DAPProtocol, groups) -> list:
    """JSON round-tripped accumulator snapshots (the checkpoint boundary)."""
    states = []
    for group in groups:
        accumulator = protocol.group_accumulator(
            group.epsilon, group.n_reports, n_users=group.n_users
        )
        accumulator.update(group.reports)
        states.append(json.loads(json.dumps(accumulator.state_dict())))
    return states


class TestShuffleSeedInvariance:
    @given(
        data_seed=st.integers(0, 2**20),
        seeds=st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1)),
    )
    @settings(max_examples=15, **COMMON_SETTINGS)
    def test_accumulator_state_invariant_to_shuffle_seed(self, data_seed, seeds):
        values = np.random.default_rng([data_seed, 0]).uniform(-1, 1, size=N_NORMAL)
        states = []
        for shuffle_seed in seeds:
            protocol = _protocol(shuffle_seed=shuffle_seed)
            groups = protocol.collect(
                values,
                BiasedByzantineAttack(),
                n_byzantine=N_BYZANTINE,
                rng=np.random.default_rng([data_seed, 1]),
            )
            states.append(_accumulator_states(protocol, groups))
        assert states[0] == states[1]

    @given(data_seed=st.integers(0, 2**20), shuffle_seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, **COMMON_SETTINGS)
    def test_shuffle_delivers_a_permutation_of_the_local_stream(
        self, data_seed, shuffle_seed
    ):
        # with no Byzantine users the client stage is identical between trust
        # models, so the shuffled round must deliver exactly the local
        # round's reports, reordered — same multiset, group by group
        values = np.random.default_rng([data_seed, 0]).uniform(-1, 1, size=N_NORMAL)

        def rounds(protocol):
            return protocol.collect(
                values, NoAttack(), rng=np.random.default_rng([data_seed, 1])
            )

        local = rounds(DAPProtocol(DAPConfig(epsilon=1.0, epsilon_min=0.25)))
        shuffled = rounds(_protocol(shuffle_seed=shuffle_seed))
        for ours, theirs in zip(shuffled, local):
            assert ours.epsilon == theirs.epsilon
            assert np.array_equal(np.sort(ours.reports), np.sort(theirs.reports))


class TestShardedShuffleMerges:
    @given(data_seed=st.integers(0, 2**20), n_shards=st.sampled_from([2, 5]))
    @settings(max_examples=8, **COMMON_SETTINGS)
    def test_merges_bit_identical_at_any_shard_count(self, data_seed, n_shards):
        values = np.random.default_rng([data_seed, 0]).uniform(-1, 1, size=N_NORMAL)

        def states(shards):
            protocol = _protocol()
            accumulators = protocol.collect_sharded(
                values,
                BiasedByzantineAttack(),
                n_byzantine=N_BYZANTINE,
                rng=np.random.default_rng([data_seed, 1]),
                n_shards=shards,
            )
            return [
                json.loads(json.dumps(accumulator.state_dict()))
                for accumulator in accumulators
            ]

        assert states(n_shards) == states(1)


class TestShuffledServiceResume:
    SPEC = dict(
        name="svc_shuffle_props",
        epsilon=1.0,
        epsilon_min=0.25,
        window_size=400,
        n_windows=4,
        dataset="Uniform",
        attack={"name": "bba", "poison_range": "[C/2,C]"},
        gamma=0.2,
        attack_start=0,
        seed=13,
        detector={"warmup": 2},
        protocol="shuffle",
    )

    def test_kill_resume_bit_identical(self, tmp_path):
        spec = ServiceSpec(**self.SPEC)
        full = run_service(spec)

        checkpoint = spec.default_checkpoint_path(str(tmp_path))
        # simulated SIGKILL: run two windows, checkpoint, abandon the process
        service = WindowedAggregationService(spec, checkpoint_path=checkpoint)
        service._fresh_state()
        with use_backend(spec.backend):
            for window in range(2):
                service._windows.append(service._run_window(window))
                service._next_window = window + 1
        write_checkpoint(checkpoint, service._checkpoint_payload())

        resumed = run_service(spec, checkpoint_path=checkpoint)
        assert resumed.resumed_from == 2
        assert [row.deterministic_view() for row in resumed.windows] == [
            row.deterministic_view() for row in full.windows
        ]
