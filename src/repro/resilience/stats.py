"""Process-local resilience event counters.

The fault-tolerant execution layer records every recovery action it takes —
task retries, timeout re-dispatches, worker-pool reincarnations, serial
degradations, checkpoint quarantines — into one process-local counter
registry, mirroring the stage timers of :mod:`repro.utils.profiling`.

The counters are *diagnostics, never identity*: a retried task is
bit-identical to a first-try task (every task is a pure function of
pre-drawn seeds), so two runs of the same spec may legitimately differ in
their counters while agreeing on every output bit.  Run entry points
snapshot the registry before the run and record the delta under
``meta.execution.resilience``.

Counters live in the process that *dispatches* work: retries, watchdog
timeouts and pool restarts all happen on the dispatching side, so nothing
needs to cross a process boundary for the common one-level pool.  When pools
compose (an engine worker running its own shard pool), the engine executor
ships each worker's delta back with the unit results, exactly like the
profiling timers.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Mapping

#: every event name the execution layer records (fixed vocabulary so
#: downstream tooling can rely on the keys that appear)
EVENTS = (
    "retries",
    "timeouts",
    "worker_deaths",
    "pool_restarts",
    "serial_degradations",
    "injected_faults",
    "checkpoint_quarantined",
    "artifact_write_retries",
)

_counters: Counter = Counter()


def record(event: str, n: int = 1) -> None:
    """Count ``n`` occurrences of ``event`` (must be a known event name)."""
    if event not in EVENTS:
        raise ValueError(f"unknown resilience event {event!r}; known: {EVENTS}")
    _counters[event] += int(n)


def snapshot() -> Dict[str, int]:
    """A copy of the current cumulative counters."""
    return dict(_counters)


def delta_since(before: Mapping[str, int]) -> Dict[str, int]:
    """Events recorded since ``before`` (zero-delta events omitted)."""
    delta = {}
    for event, count in _counters.items():
        diff = count - int(before.get(event, 0))
        if diff:
            delta[event] = diff
    return delta


def merge(into: Dict[str, int], delta: Mapping[str, int]) -> None:
    """Fold a shipped-back worker delta into an accumulating dict."""
    for event, count in delta.items():
        into[event] = into.get(event, 0) + int(count)


def reset() -> None:
    """Zero every counter (test hook)."""
    _counters.clear()


__all__ = ["EVENTS", "delta_since", "merge", "record", "reset", "snapshot"]
