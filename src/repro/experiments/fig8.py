"""Figure 8 — generalisation to the Square Wave mechanism.

Four panels, all on the Beta datasets rescaled to SW's ``[0, 1]`` input domain
(the paper quotes the raw means 0.3003 and 0.7068):

* (a) distribution-estimation accuracy (Wasserstein distance between the
  reconstructed and the true input distribution) for EMF / EMF* / CEMF*
  against Ostrich (plain EMS that ignores the poison values);
* (b) ``|gamma_hat - gamma|`` vs epsilon under SW;
* (c)(d) MSE of mean estimation under SW for the DAP variants vs Ostrich and
  Trimming, with poison values on ``[1 + b/2, 1 + b]``.

Expected shape: the EMF family beats Ostrich on distribution estimation, the
gamma estimate sharpens as epsilon shrinks, and the SW-DAP variants win the
mean-estimation comparison for most budgets.

All three panel groups are :class:`~repro.engine.ExperimentSpec` definitions:
the MSE panels as a scheme sweep, the probe panels (a)(b) as point-granular
specs whose randomness derives entirely from the pre-drawn point seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.attacks import BiasedByzantineAttack, PoisonRange
from repro.core import (
    DAPConfig,
    build_transform_matrix,
    default_bucket_counts,
    estimate_byzantine_features,
    run_cemf_star,
    run_emf,
    run_emf_star,
)
from repro.datasets import load_dataset
from repro.engine import DatasetLookup, ExperimentSpec, FixedAttack, run_experiment
from repro.estimators import wasserstein_distance_histograms
from repro.experiments.defaults import ExperimentScale, QUICK_SCALE, PAPER_EPSILONS
from repro.ldp import SquareWaveMechanism
from repro.simulation.schemes import DAPScheme, Scheme, make_scheme
from repro.simulation.sweep import SweepRecord, format_table, records_to_table
from repro.utils.rng import RngLike, ensure_rng

#: the paper's SW poison range [1 + b/2, 1 + b] expressed symbolically
#: (output-domain bound C = 1 + b, so 1 + b/2 = 0.5 + 0.5 * C)
SW_POISON_RANGE = PoisonRange.affine(0.5, 0.5, 1.0, 0.0)


@dataclass
class Fig8ProbeRecord:
    """Panel (a)/(b) measurement: distribution error and gamma error."""

    panel: str
    dataset: str
    epsilon: float
    scheme: str
    value: float


def _sw_values(dataset) -> np.ndarray:
    """Rescale a normalised dataset from [-1, 1] into SW's [0, 1] domain."""
    return (dataset.values + 1.0) / 2.0


def _sw_poisoned_reports(
    values: np.ndarray, epsilon: float, gamma: float, rng: np.random.Generator
) -> tuple[SquareWaveMechanism, np.ndarray]:
    """One SW collection round with right-side poison at proportion gamma."""
    mechanism = SquareWaveMechanism(epsilon)
    attack = BiasedByzantineAttack(SW_POISON_RANGE, side="right")
    n_byzantine = int(round(values.size * gamma / (1 - gamma)))
    reports = np.concatenate(
        [
            mechanism.perturb(values, rng),
            attack.poison_reports(n_byzantine, mechanism, 0.5, rng).reports,
        ]
    )
    return mechanism, reports


@dataclass
class Fig8DistributionSpec(ExperimentSpec):
    """Panel (a): Wasserstein distance of the reconstructed distribution."""

    values: np.ndarray = field(default_factory=lambda: np.empty(0))
    dataset_name: str = ""

    def evaluate_point(self, point: Mapping, trial_seeds) -> Sequence[Fig8ProbeRecord]:
        rng = np.random.default_rng(int(trial_seeds[0]))
        epsilon = float(point["epsilon"])
        mechanism, reports = _sw_poisoned_reports(
            self.values, epsilon, self.point_gamma(point), rng
        )
        d_in, d_out = default_bucket_counts(reports.size, epsilon)
        transform = build_transform_matrix(
            mechanism, d_in, d_out, side="right", use_cache=True
        )
        counts = transform.output_counts(reports)
        emf = run_emf(transform, counts=counts, epsilon=epsilon)
        emf_star = run_emf_star(
            transform, gamma_hat=emf.gamma_hat, counts=counts, epsilon=epsilon
        )
        cemf_star = run_cemf_star(
            transform, emf_result=emf, counts=counts, epsilon=epsilon
        )
        # ground-truth histogram on the same input grid
        truth_grid = transform.input_grid
        truth = truth_grid.frequencies(self.values)
        # Ostrich: plain EMS on all reports (poison included)
        ostrich_hist, ostrich_grid = mechanism.reconstruct_distribution(
            reports, n_input_buckets=truth_grid.n_buckets
        )
        schemes = {
            "EMF": emf.normalized_normal_histogram(),
            "EMF*": emf_star.normalized_normal_histogram(),
            "CEMF*": cemf_star.normalized_normal_histogram(),
            "Ostrich": ostrich_hist,
        }
        records = []
        for name, histogram in schemes.items():
            grid = truth_grid if name != "Ostrich" else ostrich_grid
            records.append(
                Fig8ProbeRecord(
                    panel="a",
                    dataset=self.dataset_name,
                    epsilon=epsilon,
                    scheme=name,
                    value=wasserstein_distance_histograms(histogram, truth, grid),
                )
            )
        return records


@dataclass
class Fig8GammaSpec(ExperimentSpec):
    """Panel (b): ``|gamma_hat - gamma|`` under SW."""

    values_by_dataset: Dict[str, np.ndarray] = field(default_factory=dict)

    def evaluate_point(self, point: Mapping, trial_seeds) -> Sequence[Fig8ProbeRecord]:
        rng = np.random.default_rng(int(trial_seeds[0]))
        epsilon = float(point["epsilon"])
        gamma = self.point_gamma(point)
        values = self.values_by_dataset[point["dataset"]]
        mechanism, reports = _sw_poisoned_reports(values, epsilon, gamma, rng)
        features = estimate_byzantine_features(mechanism, reports, epsilon=epsilon)
        return [
            Fig8ProbeRecord(
                panel="b",
                dataset=point["dataset"],
                epsilon=epsilon,
                scheme="EMF",
                value=abs(features.gamma_hat - gamma),
            )
        ]


def run_fig8_distribution(
    scale: ExperimentScale = QUICK_SCALE,
    dataset_name: str = "Beta(2,5)",
    epsilons: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    gamma: float = 0.25,
    rng: RngLike = None,
    n_workers: int | str | None = None,
) -> List[Fig8ProbeRecord]:
    """Panel (a): Wasserstein distance of the reconstructed distribution."""
    rng = ensure_rng(rng)
    dataset = load_dataset(dataset_name, n_samples=scale.n_users, rng=rng)
    spec = Fig8DistributionSpec(
        name="fig8a",
        description="Figure 8(a): Wasserstein distance under SW",
        points=[{"epsilon": epsilon} for epsilon in epsilons],
        n_users=scale.n_users,
        n_trials=1,
        gamma=gamma,
        values=_sw_values(dataset),
        dataset_name=dataset_name,
    )
    return run_experiment(spec, rng=rng, n_workers=n_workers)


def run_fig8_gamma(
    scale: ExperimentScale = QUICK_SCALE,
    dataset_names: Sequence[str] = ("Beta(2,5)", "Beta(5,2)"),
    epsilons: Sequence[float] = (0.0625, 0.125, 0.25, 0.5, 1.0, 2.0),
    gamma: float = 0.25,
    rng: RngLike = None,
    n_workers: int | str | None = None,
) -> List[Fig8ProbeRecord]:
    """Panel (b): ``|gamma_hat - gamma|`` under SW."""
    rng = ensure_rng(rng)
    values_by_dataset = {
        name: _sw_values(load_dataset(name, n_samples=scale.n_users, rng=rng))
        for name in dataset_names
    }
    spec = Fig8GammaSpec(
        name="fig8b",
        description="Figure 8(b): |gamma_hat - gamma| under SW",
        points=[
            {"dataset": name, "epsilon": epsilon}
            for name in dataset_names
            for epsilon in epsilons
        ],
        n_users=scale.n_users,
        n_trials=1,
        gamma=gamma,
        values_by_dataset=values_by_dataset,
    )
    return run_experiment(spec, rng=rng, n_workers=n_workers)


@dataclass(frozen=True)
class SWSchemes:
    """SW-DAP variants plus the SW Ostrich / Trimming baselines."""

    epsilon_min: float = 1.0 / 4.0

    def __call__(self, point: Mapping) -> Sequence[Scheme]:
        epsilon = float(point["epsilon"])
        schemes: List[Scheme] = []
        for estimator, label in (
            ("emf", "SW-EMF"),
            ("emf_star", "SW-EMF*"),
            ("cemf_star", "SW-CEMF*"),
        ):
            config = DAPConfig(
                epsilon=epsilon,
                epsilon_min=self.epsilon_min,
                estimator=estimator,
                mechanism_factory=SquareWaveMechanism,
                intra_group_mean="distribution",
            )
            schemes.append(DAPScheme(config, name=label))
        schemes.append(
            make_scheme("Ostrich", epsilon, mechanism_factory=SquareWaveMechanism)
        )
        schemes.append(
            make_scheme("Trimming", epsilon, mechanism_factory=SquareWaveMechanism)
        )
        return schemes


def build_fig8_mse_spec(
    scale: ExperimentScale = QUICK_SCALE,
    dataset_names: Sequence[str] = ("Beta(2,5)", "Beta(5,2)"),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    epsilon_min: float = 1.0 / 4.0,
    rng: RngLike = None,
    batched: bool = False,
) -> ExperimentSpec:
    """Build the panels (c)(d) spec: mean-estimation MSE under SW."""
    rng = ensure_rng(rng)
    dataset_cache = {
        name: load_dataset(name, n_samples=scale.n_users, rng=rng)
        for name in dataset_names
    }
    points = [
        {"dataset": name, "epsilon": epsilon}
        for name in dataset_names
        for epsilon in epsilons
    ]
    return ExperimentSpec(
        name="fig8cd",
        description="Figure 8(c)(d): mean-estimation MSE under SW",
        points=points,
        n_users=scale.n_users,
        n_trials=scale.n_trials,
        gamma=scale.gamma,
        scheme_factory=SWSchemes(epsilon_min=epsilon_min),
        attack_factory=FixedAttack(BiasedByzantineAttack(SW_POISON_RANGE, side="right")),
        dataset_factory=DatasetLookup(dataset_cache),
        input_domain=(0.0, 1.0),
        batched=batched,
    )


def run_fig8_mse(
    scale: ExperimentScale = QUICK_SCALE,
    dataset_names: Sequence[str] = ("Beta(2,5)", "Beta(5,2)"),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    epsilon_min: float = 1.0 / 4.0,
    rng: RngLike = None,
    n_workers: int | str | None = None,
    batched: bool = False,
) -> List[SweepRecord]:
    """Panels (c)(d): mean-estimation MSE under SW."""
    rng = ensure_rng(rng)
    spec = build_fig8_mse_spec(
        scale,
        dataset_names=dataset_names,
        epsilons=epsilons,
        epsilon_min=epsilon_min,
        rng=rng,
        batched=batched,
    )
    return run_experiment(spec, rng=rng, n_workers=n_workers)


def run_fig8(
    scale: ExperimentScale = QUICK_SCALE,
    rng: RngLike = None,
    n_workers: int | str | None = None,
) -> dict:
    """Run all Figure 8 panels and return them keyed by panel."""
    rng = ensure_rng(rng)
    return {
        "a": run_fig8_distribution(scale, rng=rng, n_workers=n_workers),
        "b": run_fig8_gamma(scale, rng=rng, n_workers=n_workers),
        "cd": run_fig8_mse(scale, rng=rng, n_workers=n_workers),
    }


def format_fig8(results: dict) -> str:
    """Render the three panel groups."""
    blocks = []
    if results.get("a"):
        lines = ["## (a) Wasserstein distance, Beta(2,5) under SW", "epsilon  scheme    distance"]
        for record in results["a"]:
            lines.append(f"{record.epsilon:<8g} {record.scheme:<9} {record.value:.4f}")
        blocks.append("\n".join(lines))
    if results.get("b"):
        lines = ["## (b) |gamma_hat - gamma| under SW", "dataset     epsilon   error"]
        for record in results["b"]:
            lines.append(f"{record.dataset:<11} {record.epsilon:<8g} {record.value:.4f}")
        blocks.append("\n".join(lines))
    if results.get("cd"):
        for dataset in sorted({r.point["dataset"] for r in results["cd"]}):
            panel_records = [r for r in results["cd"] if r.point["dataset"] == dataset]
            table = records_to_table(panel_records, row_key="epsilon")
            blocks.append(
                f"## (c/d) {dataset} under SW (MSE per scheme)\n"
                + format_table(table, row_label="epsilon")
            )
    return "\n\n".join(blocks)


__all__ = [
    "SW_POISON_RANGE",
    "Fig8ProbeRecord",
    "Fig8DistributionSpec",
    "Fig8GammaSpec",
    "SWSchemes",
    "build_fig8_mse_spec",
    "run_fig8",
    "run_fig8_distribution",
    "run_fig8_gamma",
    "run_fig8_mse",
    "format_fig8",
]
