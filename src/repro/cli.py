"""``python -m repro`` — run declarative scenarios from the command line.

Three subcommands:

* ``run <scenario.json>`` — execute a scenario file through the parallel
  executor, persist a resumable run artifact and print the result tables;
* ``resume <scenario.json>`` — continue an interrupted run from its artifact
  (the artifact must exist; completed units are reused);
* ``list-components`` — print every registered mechanism, attack, defense,
  scheme and dataset name the scenario schema accepts.

Exit status: ``0`` on success, ``1`` on scenario/component errors, ``2`` if a
run unexpectedly produced no records.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from typing import List, Sequence

from repro.backends import BACKENDS
from repro.core.probing import PROBE_STRATEGIES
from repro.registry import ALL_REGISTRIES
from repro.scenario import ScenarioSpec, format_scenario_records, run_scenario


def _workers(value: str) -> int | str:
    """Parse ``--workers``: a positive integer or ``auto`` (one per CPU)."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--workers must be an integer or 'auto', got {value!r}"
        ) from None


def _positive_int(flag: str):
    """Build an argparse type callable for a positive-integer flag."""

    def parse(value: str) -> int:
        try:
            parsed = int(value)
        except ValueError:
            parsed = 0
        if parsed < 1:
            raise argparse.ArgumentTypeError(
                f"{flag} must be a positive integer, got {value!r}"
            )
        return parsed

    return parse


_chunk_size = _positive_int("--chunk-size")
_collect_workers = _positive_int("--collect-workers")


def _default_store(scenario: ScenarioSpec) -> str:
    return os.path.join("runs", f"{scenario.name}.json")


class _ProgressPrinter:
    """Throttled ``completed/total`` work-unit progress on stderr.

    Prints at most every ``interval`` seconds (plus always the final unit),
    so long streaming runs show a heartbeat without flooding short ones.
    """

    def __init__(self, name: str, interval: float = 5.0) -> None:
        self.name = name
        self.interval = interval
        self._last = 0.0

    def __call__(self, completed: int, total: int) -> None:
        now = time.monotonic()
        if completed < total and now - self._last < self.interval:
            return
        self._last = now
        print(
            f"{self.name}: {completed}/{total} work units completed",
            file=sys.stderr,
            flush=True,
        )


def _execute(args: argparse.Namespace, resume: bool, require_artifact: bool) -> int:
    scenario = ScenarioSpec.from_file(args.scenario)
    overrides = {}
    if args.chunk_size is not None:
        overrides["chunk_size"] = args.chunk_size
    if args.collect_workers is not None:
        overrides["collect_workers"] = args.collect_workers
    if args.probe_strategy is not None:
        overrides["probe_strategy"] = args.probe_strategy
    if args.backend is not None:
        overrides["backend"] = args.backend
    if overrides:
        # rebuild (rather than mutate) so the spec's own validation runs on
        # the overrides; all these knobs are execution details, excluded from
        # the document digest, so an existing artifact stays resumable
        scenario = dataclasses.replace(scenario, **overrides)
    store = args.store or _default_store(scenario)
    if require_artifact and not os.path.exists(store):
        print(
            f"error: no run artifact at {store!r} to resume from; "
            f"use 'run' to start it",
            file=sys.stderr,
        )
        return 1
    records = run_scenario(
        scenario,
        n_workers=args.workers,
        store_path=store,
        resume=resume,
        progress=None if args.quiet else _ProgressPrinter(scenario.name),
        profile=args.profile,
    )
    if not records:
        print(f"error: scenario {scenario.name!r} produced no records", file=sys.stderr)
        return 2
    if args.profile:
        _print_profile(store)
    print(
        f"{scenario.name}: {len(records)} records "
        f"({len(set(str(r.point) for r in records))} grid points x "
        f"{len(set(r.scheme for r in records))} schemes), artifact: {store}"
    )
    if not args.quiet:
        print()
        print(format_scenario_records(records))
    return 0


def _print_profile(store: str) -> None:
    """Print the per-stage wall times recorded in the run artifact."""
    from repro.engine import load_run
    from repro.utils.profiling import format_profile

    profile = (load_run(store).meta.get("execution") or {}).get("profile") or {}
    rendered = format_profile(profile) if profile else "(no freshly computed units)"
    print(f"profile: {rendered}", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    return _execute(args, resume=not args.fresh, require_artifact=False)


def _cmd_resume(args: argparse.Namespace) -> int:
    return _execute(args, resume=True, require_artifact=True)


def _cmd_list_components(args: argparse.Namespace) -> int:
    for group, registry in ALL_REGISTRIES.items():
        print(f"{group}:")
        for entry in registry.entries():
            notes = []
            if entry.aliases:
                notes.append(f"aliases: {', '.join(entry.aliases)}")
            kind = entry.metadata.get("kind")
            if kind:
                notes.append(kind)
            if entry.defaults:
                notes.append(
                    "defaults: "
                    + ", ".join(f"{k}={v!r}" for k, v in entry.defaults.items())
                )
            suffix = f"  ({'; '.join(notes)})" if notes else ""
            print(f"  {entry.name}{suffix}")
        print()
    print("(every defense is also accepted as a single-round scheme name)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative attack x defense x epsilon x dataset scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute a scenario file")
    run_parser.add_argument("scenario", help="path to a scenario JSON file")
    run_parser.add_argument(
        "--workers",
        type=_workers,
        default=None,
        help="process-pool size, or 'auto' for one worker per CPU (default: serial)",
    )
    run_parser.add_argument(
        "--chunk-size",
        type=_chunk_size,
        default=None,
        help="run trials through the constant-memory streaming collection "
        "path with this report chunk size (overrides the scenario's "
        "'chunk_size'; default: the scenario's setting, else in-memory)",
    )
    run_parser.add_argument(
        "--collect-workers",
        type=_collect_workers,
        default=None,
        help="fan each collection round out over this many shard workers "
        "(records are bit-identical for any value; overrides the scenario's "
        "'collect_workers')",
    )
    run_parser.add_argument(
        "--probe-strategy",
        choices=PROBE_STRATEGIES,
        default=None,
        help="hypothesis-evaluation strategy for probing schemes: 'batched' "
        "(fast, selection-identical) or 'cold' (the seed implementation's "
        "bit-stable arithmetic); default: each scheme's own default",
    )
    run_parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="array-compute backend for the hot kernels: 'numpy' (the "
        "bit-stable reference), 'fast' (single-pass pure-numpy rewrites, "
        "statistically equivalent) or 'numba' (JIT loops when numba is "
        "installed, else falls back to numpy with a warning); overrides the "
        "scenario's 'backend'; default: the scenario's setting, else numpy",
    )
    run_parser.add_argument(
        "--store",
        default=None,
        help="run-artifact path (default: runs/<scenario name>.json)",
    )
    run_parser.add_argument(
        "--fresh",
        action="store_true",
        help="ignore any existing artifact and recompute every unit",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-stage wall times (collect / probe / aggregate / "
        "defense) into the artifact's meta.execution.profile and print them",
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    run_parser.set_defaults(func=_cmd_run)

    resume_parser = sub.add_parser(
        "resume", help="continue an interrupted run from its artifact"
    )
    resume_parser.add_argument("scenario", help="path to a scenario JSON file")
    resume_parser.add_argument("--workers", type=_workers, default=None)
    resume_parser.add_argument("--chunk-size", type=_chunk_size, default=None)
    resume_parser.add_argument(
        "--collect-workers", type=_collect_workers, default=None
    )
    resume_parser.add_argument(
        "--probe-strategy", choices=PROBE_STRATEGIES, default=None
    )
    resume_parser.add_argument("--backend", choices=BACKENDS, default=None)
    resume_parser.add_argument("--store", default=None)
    resume_parser.add_argument("--profile", action="store_true")
    resume_parser.add_argument("--quiet", action="store_true")
    resume_parser.set_defaults(func=_cmd_resume)

    list_parser = sub.add_parser(
        "list-components", help="list every registered component name"
    )
    list_parser.set_defaults(func=_cmd_list_components)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except OSError as error:
        # str(OSError) includes strerror + filename; args[0] is a bare errno
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 1


__all__ = ["main", "build_parser"]
