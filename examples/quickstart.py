"""Quickstart: collusion-robust mean estimation with DAP.

A data collector wants the mean of a sensitive numerical attribute (here the
Taxi pick-up time) under Local Differential Privacy, but 25 % of the reports
come from colluding Byzantine users who push poison values towards the top of
the perturbation output domain.  This script compares the undefended
estimator (Ostrich), robust-statistics trimming, and the three DAP variants.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DAPConfig, DAPProtocol
from repro.attacks import BiasedByzantineAttack, PAPER_POISON_RANGES
from repro.datasets import taxi_dataset
from repro.defenses import OstrichDefense, TrimmingDefense
from repro.ldp import PiecewiseMechanism


def main() -> None:
    rng = np.random.default_rng(7)

    # --- the population ------------------------------------------------------
    n_normal, n_byzantine = 30_000, 10_000          # 25 % Byzantine users
    epsilon = 1.0
    dataset = taxi_dataset(n_samples=n_normal, rng=rng)
    print(f"dataset: {dataset.name}, true mean of normal users = {dataset.true_mean:+.4f}")

    # --- the attack -----------------------------------------------------------
    # colluding attackers inject values uniformly on the top half of the
    # perturbation output domain [C/2, C] (they know the protocol and epsilon)
    attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])

    # --- undefended and trimmed baselines -------------------------------------
    mechanism = PiecewiseMechanism(epsilon)
    reports = np.concatenate(
        [
            mechanism.perturb(dataset.values, rng),
            attack.poison_reports(n_byzantine, mechanism, 0.0, rng).reports,
        ]
    )
    ostrich = OstrichDefense()(reports, mechanism, rng)
    trimmed = TrimmingDefense(0.5)(reports, mechanism, rng)
    print(f"Ostrich  (no defence)      : {ostrich:+.4f}")
    print(f"Trimming (drop largest 50%) : {trimmed:+.4f}")

    # --- DAP -------------------------------------------------------------------
    for estimator in ("emf", "emf_star", "cemf_star"):
        config = DAPConfig(epsilon=epsilon, epsilon_min=1 / 16, estimator=estimator)
        result = DAPProtocol(config).run(dataset.values, attack, n_byzantine, rng=rng)
        label = {"emf": "DAP-EMF ", "emf_star": "DAP-EMF*", "cemf_star": "DAP-CEMF*"}[estimator]
        print(
            f"{label:<27}: {result.estimate:+.4f}   "
            f"(probed side={result.poisoned_side}, gamma_hat={result.gamma_hat:.3f})"
        )

    print(
        "\nThe DAP variants recover the normal users' mean to within a few "
        "hundredths while the undefended estimate is pushed all the way to the "
        "domain boundary."
    )


if __name__ == "__main__":
    main()
