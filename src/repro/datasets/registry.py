"""Dataset registry: load any paper dataset by name.

``load_dataset("Taxi", n_samples=100_000, rng=0)`` is the single entry point
used by the experiment drivers and the benchmarks so that every figure can be
regenerated with one consistent call per dataset.  The names live in the
shared component registry (:data:`repro.registry.DATASETS`), which also backs
the scenario layer and the ``python -m repro`` CLI.
"""

from __future__ import annotations

from typing import Union

from repro.datasets.base import CategoricalDataset, NumericalDataset
from repro.datasets.covid import covid_dataset
from repro.datasets.retirement import retirement_dataset
from repro.datasets.synthetic import beta_dataset, gaussian_dataset, uniform_dataset
from repro.datasets.taxi import taxi_dataset
from repro.registry import DATASETS
from repro.utils.rng import RngLike

Dataset = Union[NumericalDataset, CategoricalDataset]

#: the four numerical datasets + one categorical dataset used in the paper
PAPER_DATASETS = ("Beta(2,5)", "Beta(5,2)", "Taxi", "Retirement", "COVID-19")

DATASETS.register("Beta(2,5)", defaults={"a": 2.0, "b": 5.0}, kind="numerical")(
    beta_dataset
)
DATASETS.register("Beta(5,2)", defaults={"a": 5.0, "b": 2.0}, kind="numerical")(
    beta_dataset
)
DATASETS.register("Taxi", kind="numerical")(taxi_dataset)
DATASETS.register("Retirement", kind="numerical")(retirement_dataset)
DATASETS.register("COVID-19", aliases=("covid",), kind="categorical")(covid_dataset)
DATASETS.register("Uniform", kind="numerical")(uniform_dataset)
DATASETS.register("Gaussian", kind="numerical")(gaussian_dataset)


def available_datasets() -> tuple[str, ...]:
    """Names accepted by :func:`load_dataset` (case-insensitive)."""
    return DATASETS.names()


def load_dataset(name: str, n_samples: int = 100_000, rng: RngLike = None) -> Dataset:
    """Instantiate a dataset by (case-insensitive) name.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` — e.g. ``"Taxi"`` or ``"Beta(2,5)"``.
    n_samples:
        Number of records to generate.
    rng:
        Seed or generator for reproducibility.
    """
    return DATASETS.create(name, n_samples=n_samples, rng=rng)


__all__ = ["load_dataset", "available_datasets", "PAPER_DATASETS", "Dataset"]
