"""Figure 4 — normalised frequency histograms and true means of the datasets.

The paper plots the normalised histogram of each evaluation dataset and quotes
its true mean ``O`` (Beta(2,5): -0.3994, Beta(5,2): 0.4136, Taxi: 0.1190,
Retirement: -0.6240).  This driver regenerates the histogram and mean for each
dataset so the report can state how closely the offline substitutes match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.datasets import load_dataset
from repro.experiments.defaults import ExperimentScale, QUICK_SCALE
from repro.utils.rng import RngLike, ensure_rng

#: the paper's reported normalised means, for side-by-side comparison
PAPER_MEANS = {
    "Beta(2,5)": -0.3994,
    "Beta(5,2)": 0.4136,
    "Taxi": 0.1190,
    "Retirement": -0.6240,
}


@dataclass
class Fig4Record:
    """Summary of one dataset's normalised distribution."""

    dataset: str
    n_samples: int
    mean: float
    paper_mean: float
    variance: float
    histogram: np.ndarray


def run_fig4(
    scale: ExperimentScale = QUICK_SCALE,
    datasets: Sequence[str] = tuple(PAPER_MEANS),
    n_buckets: int = 40,
    rng: RngLike = None,
) -> List[Fig4Record]:
    """Regenerate the Figure 4 dataset summaries."""
    rng = ensure_rng(rng)
    records: List[Fig4Record] = []
    for name in datasets:
        dataset = load_dataset(name, n_samples=scale.n_users, rng=rng)
        histogram, _grid = dataset.histogram(n_buckets)
        records.append(
            Fig4Record(
                dataset=name,
                n_samples=dataset.n,
                mean=dataset.true_mean,
                paper_mean=PAPER_MEANS.get(name, float("nan")),
                variance=dataset.true_variance,
                histogram=histogram,
            )
        )
    return records


def format_fig4(records: Sequence[Fig4Record]) -> str:
    """Render dataset means (ours vs the paper's) plus a coarse histogram."""
    lines = [
        "dataset       n          mean       paper-mean  variance",
    ]
    for record in records:
        lines.append(
            f"{record.dataset:<13} {record.n_samples:<10} {record.mean:>9.4f}  "
            f"{record.paper_mean:>9.4f}  {record.variance:>9.4f}"
        )
    return "\n".join(lines)


__all__ = ["Fig4Record", "run_fig4", "format_fig4", "PAPER_MEANS"]
