"""k-means-based defence of Li et al. (Figure 9 comparison).

The defence repeatedly samples random user subsets, computes a mean estimate
per subset, clusters the subset estimates into two clusters with 1-D 2-means,
keeps the larger cluster (assumed to consist of mostly-clean subsets) and
averages its estimates.  Poisoned subsets drag their estimate away from the
clean cluster, so with enough subsets the clean cluster dominates.

The paper samples ``beta * N`` users per subset with up to one million subsets;
the subset count here is configurable (the default keeps experiments fast
while preserving the method's behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense, DefenseResult
from repro.ldp.base import NumericalMechanism
from repro.registry import DEFENSES
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction, check_integer

#: elements per vectorised subset-sampling block (index + gather arrays stay
#: a few MiB regardless of the population size)
SUBSET_BLOCK_ELEMENTS = 1 << 20


def _nearest_center_labels_brute(
    values: np.ndarray, centers: np.ndarray
) -> np.ndarray:
    """Reference assignment: full ``(n, k)`` distance matrix + ``argmin``."""
    distances = np.abs(values[:, None] - centers[None, :])
    return distances.argmin(axis=1)


def _nearest_center_labels(values: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Nearest-centre assignment, bit-identical to the brute-force matrix.

    With strictly increasing centres the nearest one is always at
    ``searchsorted`` position ``p`` or ``p - 1``, so the assignment needs one
    ``O(n log k)`` search plus a distance comparison per value — built from
    exactly the same ``|value - center|`` subtractions the ``(n, k)`` matrix
    uses — instead of materialising ``n * k`` distances.  ``argmin`` breaks
    ties by lowest index over *computed* distances, whose rounding can tie
    centres far from the value (a centre more than an ulp below the value
    subtracts to the value itself), so the minimal-distance plateau may
    extend left of the adjacent candidate; rounding is monotone, hence the
    computed distances stay non-strictly unimodal and a vectorised binary
    search over the non-increasing left segment recovers the leftmost tied
    index — the exact ``argmin`` answer.  Unsorted or duplicated centres
    (possible after an empty-cluster reseed) fall back to the brute-force
    matrix.
    """
    if centers.size > 1 and not np.all(np.diff(centers) > 0):
        return _nearest_center_labels_brute(values, centers)
    if centers.size == 2:
        # the defence's configuration: one comparison of the same two
        # distances argmin would compute (strict <, so ties pick centre 0)
        return (
            np.abs(values - centers[1]) < np.abs(values - centers[0])
        ).astype(np.intp)
    position = np.searchsorted(centers, values)
    lower = np.maximum(position - 1, 0)
    upper = np.minimum(position, centers.size - 1)
    below = np.abs(values - centers[lower])
    above = np.abs(values - centers[upper])
    labels = np.where(below <= above, lower, upper)
    minimal = np.minimum(below, above)
    # a plateau requires an *exact* computed-distance tie with the centre
    # left of the winner — essentially never true for real data, so one
    # gather+compare gates the whole tie resolution
    neighbor = np.maximum(labels - 1, 0)
    tied = (labels > 0) & (np.abs(values - centers[neighbor]) <= minimal)
    if tied.any():
        # leftmost index whose computed distance equals the minimum: binary
        # search on the monotone predicate |value - center_j| <= minimum
        # over the non-increasing segment j in [0, labels - 1]
        index = np.flatnonzero(tied)
        tied_values = values[index]
        tied_minimal = minimal[index]
        leftmost = np.zeros(index.size, dtype=labels.dtype)
        ceiling = labels[index] - 1
        while True:
            unresolved = leftmost < ceiling
            if not unresolved.any():
                break
            midpoint = (leftmost + ceiling) // 2
            hit = np.abs(tied_values - centers[midpoint]) <= tied_minimal
            ceiling = np.where(unresolved & hit, midpoint, ceiling)
            leftmost = np.where(unresolved & ~hit, midpoint + 1, leftmost)
        labels[index] = ceiling
    return labels


def kmeans_1d(
    values: np.ndarray,
    n_clusters: int = 2,
    max_iter: int = 100,
    rng: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm on one-dimensional data.

    Returns ``(labels, centers)``.  Centres are initialised at evenly spaced
    quantiles, which is deterministic and robust for 1-D data; the ``rng`` is
    only used to break ties when a cluster empties.  Assignment uses the
    sorted-centre ``searchsorted`` path of :func:`_nearest_center_labels`
    (bit-identical to the historical distance matrix, test-enforced), so one
    iteration is ``O(n log k)`` time and ``O(n)`` memory instead of
    ``O(n k)`` for both.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ValueError("kmeans_1d requires at least one value")
    n_clusters = check_integer(n_clusters, "n_clusters", minimum=1)
    n_clusters = min(n_clusters, values.size)
    rng = ensure_rng(rng)

    quantiles = np.linspace(0.0, 1.0, n_clusters + 2)[1:-1]
    centers = np.quantile(values, quantiles)
    labels = np.zeros(values.size, dtype=int)
    for _ in range(max_iter):
        new_labels = _nearest_center_labels(values, centers)
        new_centers = centers.copy()
        for cluster in range(n_clusters):
            members = values[new_labels == cluster]
            if members.size:
                new_centers[cluster] = members.mean()
            else:
                # re-seed an empty cluster at a random value
                new_centers[cluster] = values[rng.integers(0, values.size)]
        if np.array_equal(new_labels, labels) and np.allclose(new_centers, centers):
            labels, centers = new_labels, new_centers
            break
        labels, centers = new_labels, new_centers
    return labels, centers


@DEFENSES.register("K-means", aliases=("kmeans",))
class KMeansDefense(Defense):
    """Subset-sampling + 2-means defence.

    Parameters
    ----------
    sampling_rate:
        Fraction ``beta`` of users drawn into each subset.
    n_subsets:
        Number of random subsets (the paper uses up to 10^6; the default of
        200 keeps the behaviour while staying laptop-friendly).
    """

    name = "K-means"

    def __init__(self, sampling_rate: float = 0.1, n_subsets: int = 200) -> None:
        self.sampling_rate = check_fraction(sampling_rate, "sampling_rate", inclusive=False)
        self.n_subsets = check_integer(n_subsets, "n_subsets", minimum=2)

    def estimate_mean(
        self,
        reports: np.ndarray,
        mechanism: NumericalMechanism,
        rng: RngLike = None,
    ) -> DefenseResult:
        reports = self._validate_reports(reports)
        rng = ensure_rng(rng)
        n = reports.size
        subset_size = max(1, int(round(n * self.sampling_rate)))

        # Subsets are drawn and averaged in 2-D blocks: a (rows, subset_size)
        # integer draw consumes the bit stream exactly like successive 1-D
        # draws (row-major fill), and a row-wise mean reduces each contiguous
        # row like the historical per-subset mean — bit-identical results,
        # one vectorised gather instead of n_subsets Python iterations, and
        # peak memory bounded by the block size however large the
        # population-scaled subsets get.
        subset_means = np.empty(self.n_subsets)
        rows = max(1, SUBSET_BLOCK_ELEMENTS // subset_size)
        for start in range(0, self.n_subsets, rows):
            stop = min(start + rows, self.n_subsets)
            idx = rng.integers(0, n, size=(stop - start, subset_size))
            subset_means[start:stop] = reports[idx].mean(axis=1)

        labels, centers = kmeans_1d(subset_means, n_clusters=2, rng=rng)
        counts = np.bincount(labels, minlength=2)
        majority = int(np.argmax(counts))
        estimate = float(subset_means[labels == majority].mean())
        low, high = mechanism.input_domain
        estimate = float(np.clip(estimate, low, high))
        return DefenseResult(
            estimate=estimate,
            kept_mask=None,
            metadata={
                "subset_size": subset_size,
                "n_subsets": self.n_subsets,
                "cluster_centers": centers.tolist(),
                "majority_cluster_share": float(counts[majority] / self.n_subsets),
            },
        )


__all__ = ["KMeansDefense", "kmeans_1d"]
