"""Tests for the EMF transform matrix."""

import numpy as np
import pytest

from repro.core.transform import (
    MIN_INPUT_BUCKETS,
    MIN_OUTPUT_BUCKETS,
    build_transform_matrix,
    default_bucket_counts,
)
from repro.ldp import PiecewiseMechanism, SquareWaveMechanism


class TestDefaultBucketCounts:
    def test_paper_formula_at_scale(self):
        d_in, d_out = default_bucket_counts(1_000_000, 2.0)
        assert d_out == 1000
        # (e - 1) / (e + 1) ~= 0.4621
        assert d_in == int(1000 * (np.e - 1) / (np.e + 1))

    def test_minimums_enforced(self):
        d_in, d_out = default_bucket_counts(20, 0.0625)
        assert d_in >= MIN_INPUT_BUCKETS
        assert d_out >= MIN_OUTPUT_BUCKETS

    def test_more_reports_more_buckets(self):
        assert default_bucket_counts(100_000, 1.0)[1] > default_bucket_counts(10_000, 1.0)[1]

    def test_invalid_reports(self):
        with pytest.raises(ValueError):
            default_bucket_counts(0, 1.0)


class TestBuildTransformMatrixPM:
    @pytest.fixture
    def transform(self):
        return build_transform_matrix(
            PiecewiseMechanism(1.0), n_input_buckets=10, n_output_buckets=40,
            side="right", reference_mean=0.0,
        )

    def test_shape(self, transform):
        assert transform.n_normal_components == 10
        # half of the 40 output buckets lie right of 0
        assert transform.n_poison_components == 20
        assert transform.matrix.shape == (40, 30)

    def test_normal_columns_sum_to_one(self, transform):
        sums = transform.matrix[:, :10].sum(axis=0)
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_poison_columns_are_indicators(self, transform):
        poison_block = transform.matrix[:, 10:]
        assert set(np.unique(poison_block)) <= {0.0, 1.0}
        np.testing.assert_allclose(poison_block.sum(axis=0), 1.0)
        # indicator rows match the recorded poison bucket indices
        rows = np.argmax(poison_block, axis=0)
        np.testing.assert_array_equal(rows, transform.poison_bucket_indices)

    def test_poison_buckets_on_right(self, transform):
        centers = transform.output_grid.centers[transform.poison_bucket_indices]
        assert centers.min() >= 0.0

    def test_poison_bucket_centers_property(self, transform):
        np.testing.assert_allclose(
            transform.poison_bucket_centers,
            transform.output_grid.centers[transform.poison_bucket_indices],
        )

    def test_split_weights(self, transform):
        weights = np.arange(30, dtype=float)
        normal, poison = transform.split_weights(weights)
        assert normal.size == 10 and poison.size == 20
        np.testing.assert_array_equal(normal, np.arange(10))

    def test_split_weights_wrong_length(self, transform):
        with pytest.raises(ValueError):
            transform.split_weights(np.ones(5))

    def test_output_counts(self, transform, rng):
        reports = rng.uniform(-2, 2, 500)
        counts = transform.output_counts(reports)
        assert counts.sum() == 500


class TestBuildTransformMatrixVariants:
    def test_left_side(self):
        transform = build_transform_matrix(
            PiecewiseMechanism(1.0), 8, 20, side="left", reference_mean=0.0
        )
        centers = transform.output_grid.centers[transform.poison_bucket_indices]
        assert centers.max() <= 0.0

    def test_nonzero_reference_mean_shifts_split(self):
        mech = PiecewiseMechanism(1.0)
        right_default = build_transform_matrix(mech, 8, 40, "right", 0.0)
        right_shifted = build_transform_matrix(mech, 8, 40, "right", 1.0)
        assert right_shifted.n_poison_components < right_default.n_poison_components

    def test_square_wave_mechanism_supported(self):
        mech = SquareWaveMechanism(1.0)
        transform = build_transform_matrix(mech, 8, 24, side="right")
        assert transform.n_normal_components == 8
        np.testing.assert_allclose(transform.matrix[:, :8].sum(axis=0), 1.0, atol=1e-9)
        # default reference mean is the output-domain centre
        assert transform.reference_mean == pytest.approx(0.5)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            build_transform_matrix(PiecewiseMechanism(1.0), 8, 20, side="middle")

    def test_reference_mean_outside_domain(self):
        with pytest.raises(ValueError):
            build_transform_matrix(
                PiecewiseMechanism(1.0), 8, 20, side="right", reference_mean=100.0
            )

    def test_too_few_output_buckets_rejected(self):
        with pytest.raises(ValueError):
            build_transform_matrix(PiecewiseMechanism(1.0), 8, 1, side="right")
