"""Streaming vs in-memory equivalence: the bit-identity contract.

Feeding a pre-drawn report array through chunked accumulators — at several
chunk sizes, including a chunk larger than the stream and sizes that do not
divide it — must be bit-identical to the in-memory ``DAPProtocol.aggregate``
path, for all three estimators and for the k-RR frequency extension.  These
tests enforce the contract the whole streaming subsystem rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import BiasedByzantineAttack, PoisonRange
from repro.collect import CategoryCountAccumulator, chunk_array
from repro.core.dap import DAPConfig, DAPProtocol
from repro.core.frequency import FrequencyDAP
from repro.datasets.synthetic import uniform_dataset
from repro.engine import ExperimentSpec
from repro.ldp.square_wave import SquareWaveMechanism
from repro.scenario import ScenarioSpec
from repro.simulation.population import build_population, stream_population
from repro.simulation.runner import run_trials_streaming
from repro.simulation.schemes import make_scheme

ATTACK = BiasedByzantineAttack(PoisonRange.of_c(0.5, 1.0))
CHUNK_SIZES = (7, 997, 4_096, 10**7)  # includes chunk > n and n % chunk != 0


def _collect_groups(protocol, n_normal=4_000, n_byzantine=1_500, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.uniform(-0.8, 0.8, n_normal)
    return protocol.collect(values, ATTACK, n_byzantine, rng=rng)


def _stream_aggregate(protocol, groups, chunk_size):
    accumulators = []
    for group in groups:
        acc = protocol.group_accumulator(
            group.epsilon, group.n_reports, n_users=group.n_users
        )
        acc.update_stream(chunk_array(group.reports, chunk_size))
        accumulators.append(acc)
    return protocol.aggregate_accumulated(accumulators)


class TestDAPBitIdentity:
    @pytest.mark.parametrize(
        "estimator, seed", [("emf", 101), ("emf_star", 202), ("cemf_star", 303)]
    )
    def test_chunked_accumulators_match_in_memory_aggregate(self, estimator, seed):
        protocol = DAPProtocol(DAPConfig(epsilon=1.0, estimator=estimator))
        groups = _collect_groups(protocol, seed=seed)
        reference = protocol.aggregate(groups)
        for chunk_size in CHUNK_SIZES:
            result = _stream_aggregate(protocol, groups, chunk_size)
            assert result.estimate == reference.estimate
            assert result.gamma_hat == reference.gamma_hat
            assert result.poisoned_side == reference.poisoned_side
            np.testing.assert_array_equal(result.weights, reference.weights)
            for got, want in zip(result.group_estimates, reference.group_estimates):
                assert got.mean == want.mean
                assert got.gamma_hat == want.gamma_hat
                assert got.n_normal_estimate == want.n_normal_estimate

    def test_distribution_route_matches_too(self):
        # the Square Wave configuration estimates the mean from the
        # reconstructed histogram rather than the report sum
        config = DAPConfig(
            epsilon=1.0,
            estimator="emf_star",
            mechanism_factory=SquareWaveMechanism,
            intra_group_mean="distribution",
        )
        protocol = DAPProtocol(config)
        rng = np.random.default_rng(17)
        values = rng.uniform(0.1, 0.9, 3_000)
        groups = protocol.collect(values, ATTACK, 1_000, rng=rng)
        reference = protocol.aggregate(groups)
        for chunk_size in (997, 10**7):
            result = _stream_aggregate(protocol, groups, chunk_size)
            assert result.estimate == reference.estimate
            assert result.gamma_hat == reference.gamma_hat

    def test_wrong_grid_is_rejected(self):
        protocol = DAPProtocol(DAPConfig(epsilon=1.0))
        groups = _collect_groups(protocol, seed=3)
        # an accumulator sized for the wrong report count has the wrong grid
        acc = protocol.group_accumulator(groups[0].epsilon, 10)
        acc.n_expected_reports = None
        acc.update(groups[0].reports)
        with pytest.raises(ValueError, match="accumulated on a"):
            protocol.aggregate_accumulated([acc])


class TestFrequencyBitIdentity:
    def test_counts_path_matches_report_path(self):
        rng = np.random.default_rng(5)
        dap = FrequencyDAP(epsilon=1.0, n_categories=8, estimator="emf_star")
        normal = rng.integers(0, 8, 4_000)
        reports = dap.collect(normal, (3,), 900, rng=rng)
        reference = dap.estimate(reports)
        for chunk_size in CHUNK_SIZES:
            accumulator = CategoryCountAccumulator(8)
            for chunk in chunk_array(reports, chunk_size):
                accumulator.update(chunk)
            result = dap.estimate_from_counts(accumulator)
            np.testing.assert_array_equal(result.frequencies, reference.frequencies)
            assert result.poisoned_categories == reference.poisoned_categories
            assert result.gamma_hat == reference.gamma_hat

    def test_collect_stream_end_to_end(self):
        rng = np.random.default_rng(6)
        dap = FrequencyDAP(epsilon=2.0, n_categories=6)
        normal = rng.integers(0, 6, 5_000)
        accumulator = dap.collect_stream(
            chunk_array(normal, 777), (2,), 1_000, rng=rng, poison_chunk_size=300
        )
        assert accumulator.n_reports == 6_000
        result = dap.estimate_from_counts(accumulator)
        assert result.frequencies.shape == (6,)
        assert result.frequencies.sum() == pytest.approx(1.0)


class TestCollectStream:
    def test_group_sizes_and_report_counts_match_in_memory_shape(self):
        protocol = DAPProtocol(DAPConfig(epsilon=1.0))
        rng = np.random.default_rng(8)
        values = rng.uniform(-0.5, 0.5, 3_210)
        accumulators = protocol.collect_stream(
            chunk_array(values, 500), 3_210, ATTACK, 1_111, rng=rng
        )
        groups = protocol.collect(values, ATTACK, 1_111, rng=np.random.default_rng(8))
        assert [a.n_users for a in accumulators] == [g.n_users for g in groups]
        assert [a.n_reports for a in accumulators] == [g.n_reports for g in groups]
        # the sized accumulators finalise cleanly
        protocol.aggregate_accumulated(accumulators)

    def test_streamed_estimate_close_to_truth(self):
        protocol = DAPProtocol(DAPConfig(epsilon=2.0, estimator="cemf_star"))
        rng = np.random.default_rng(9)
        values = rng.uniform(0.1, 0.5, 20_000)
        result = protocol.run_stream(
            chunk_array(values, 4_096), 20_000, ATTACK, 5_000, rng=rng
        )
        assert abs(result.estimate - values.mean()) < 0.1
        assert 0.1 < result.gamma_hat < 0.35

    def test_silent_attack_with_byzantine_users_completes(self):
        """Regression: NoAttack + n_byzantine > 0 used to fail the expected-
        report consistency check (the sizing assumed one poison report per
        Byzantine user)."""
        from repro.attacks.base import NoAttack

        protocol = DAPProtocol(DAPConfig(epsilon=0.5))
        values = np.random.default_rng(0).uniform(-0.5, 0.5, 225)
        accumulators = protocol.collect_stream(
            chunk_array(values, 50), 225, NoAttack(), 75, rng=1
        )
        assert sum(a.n_users for a in accumulators) == 300
        protocol.aggregate_accumulated(accumulators)  # finalises cleanly

    def test_wrong_declared_n_normal_raises(self):
        protocol = DAPProtocol(DAPConfig(epsilon=1.0))
        values = np.zeros(100)
        with pytest.raises(ValueError, match="expected 150"):
            protocol.collect_stream(chunk_array(values, 30), 150, rng=0)
        with pytest.raises(ValueError, match="more than the declared"):
            protocol.collect_stream(chunk_array(values, 30), 50, rng=0)


class TestStreamingTrialPath:
    def test_run_trials_streaming_records_exact_truths(self):
        dataset = uniform_dataset(n_samples=2_000, rng=0)
        scheme = make_scheme("DAP-EMF", epsilon=1.0)
        result = run_trials_streaming(
            scheme, dataset, ATTACK, n_users=2_000, gamma=0.25,
            trial_seeds=[11, 22], chunk_size=300,
        )
        assert len(result.estimates) == 2
        assert len(result.truths) == 2
        assert result.mse < 1.0

    def test_non_streaming_scheme_falls_back_to_materialise(self):
        dataset = uniform_dataset(n_samples=2_000, rng=0)
        scheme = make_scheme("Ostrich", epsilon=1.0)
        assert not scheme.supports_streaming
        result = run_trials_streaming(
            scheme, dataset, None, n_users=1_000, gamma=0.0,
            trial_seeds=[5], chunk_size=128,
        )
        assert abs(result.bias) < 0.2

    def test_stream_matches_build_population_split(self):
        dataset = uniform_dataset(n_samples=1_000, rng=0)
        for n_users, gamma in ((1_000, 0.25), (7, 0.4), (3, 0.0)):
            population = build_population(dataset, n_users, gamma, rng=0)
            stream = stream_population(dataset, n_users, gamma, rng=0, chunk_size=3)
            assert stream.n_normal == population.n_normal
            assert stream.n_byzantine == population.n_byzantine
            consumed = np.concatenate(list(stream.chunks()))
            assert consumed.size == stream.n_normal
            assert stream.true_mean == pytest.approx(consumed.mean())

    def test_stream_is_single_use_and_guards_true_mean(self):
        dataset = uniform_dataset(n_samples=100, rng=0)
        stream = stream_population(dataset, 100, 0.1, rng=0, chunk_size=30)
        with pytest.raises(RuntimeError, match="fully consumed"):
            stream.true_mean
        list(stream.chunks())
        with pytest.raises(RuntimeError, match="once"):
            list(stream.chunks())
        stream.true_mean  # now defined


class TestEngineChunkSize:
    def test_spec_rejects_batched_plus_chunk_size(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ExperimentSpec(
                name="x",
                points=[{"epsilon": 1.0}],
                n_users=10,
                n_trials=1,
                batched=True,
                chunk_size=100,
                scheme_factory=lambda point: [],
                attack_factory=lambda point: None,
                dataset_factory=lambda point: None,
            )

    def test_point_granular_spec_rejects_chunk_size(self):
        class PointSpecSubclass(ExperimentSpec):
            def evaluate_point(self, point, trial_seeds):
                return []

        with pytest.raises(ValueError, match="never honoured"):
            PointSpecSubclass(
                name="x",
                points=[{"epsilon": 1.0}],
                n_users=10,
                n_trials=1,
                chunk_size=64,
            )

    def test_non_streaming_scheme_warns_on_streaming_path(self):
        dataset = uniform_dataset(n_samples=500, rng=0)
        scheme = make_scheme("Trimming", epsilon=1.0)
        with pytest.warns(RuntimeWarning, match="no streaming collection path"):
            run_trials_streaming(
                scheme, dataset, None, n_users=500, gamma=0.0,
                trial_seeds=[1], chunk_size=100,
            )

    def test_chunk_size_never_enters_the_fingerprint(self):
        """Regression: the chunk size is an execution detail (the streaming
        accumulators are chunking-invariant), so a run must be resumable with
        a different ``--chunk-size`` — exactly like ``n_workers``."""

        def spec(**kwargs):
            return ExperimentSpec(
                name="x",
                points=[{"epsilon": 1.0}],
                n_users=10,
                n_trials=1,
                scheme_factory=lambda point: [],
                attack_factory=lambda point: None,
                dataset_factory=lambda point: None,
                **kwargs,
            )

        base = spec().fingerprint()
        assert "chunk_size" not in base
        assert spec(chunk_size=512).fingerprint() == base
        assert spec(collect_workers=2).fingerprint() == base

    def test_scenario_rejects_batched_plus_chunk_size(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ScenarioSpec(
                name="x",
                schemes=["Ostrich"],
                epsilons=[1.0],
                batched=True,
                chunk_size=64,
            )

    def test_scenario_digest_ignores_execution_details(self):
        kwargs = dict(name="x", schemes=["Ostrich"], epsilons=[1.0])
        base = ScenarioSpec(**kwargs)
        assert ScenarioSpec(**kwargs, chunk_size=64).digest() == base.digest()
        assert ScenarioSpec(**kwargs, collect_workers=4).digest() == base.digest()
        document = base.document()
        assert "chunk_size" not in document
        assert "collect_workers" not in document
