"""Fault-injection benchmark: chaos must be invisible and cheap.

Runs the two execution surfaces of the pipeline — the sharded collection
round and the windowed service stream — once clean and once under a canned
fault plan (worker kill, task timeout, in-worker raise, two corrupted
checkpoints), and *enforces* the fault-tolerance contract, exiting nonzero
if any gate fails:

* **Bit-identity** — every record produced under the fault plan must be
  byte-identical to the clean run: merged accumulator snapshots and final
  estimates for the collection round, every deterministic window field for
  the service stream.  Recovery (retry, pool reincarnation, checkpoint
  rollback) replays pre-drawn seed blocks, so injected chaos may never leak
  into results.
* **Faults actually fired** — the injector must report every planned fault
  consumed; a gate that "passes" because nothing was injected is vacuous.
* **Bounded overhead** — the faulted run's wall time divided by the clean
  run's must stay under a generous bound (retried shards re-execute, but
  the recovery machinery itself must stay cheap).

Alongside the gates it records per-scenario wall times, the overhead ratio
and the resilience counters (retries / worker deaths / pool restarts /
quarantined checkpoints) observed during each faulted run.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py --out BENCH_faults.json
    PYTHONPATH=src python benchmarks/bench_faults.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

EPSILON = 1.0
GAMMA = 0.25
SEED = 7
N_SHARDS = 4
N_WORKERS = 2

DEFAULT_USERS = 200_000
QUICK_USERS = 20_000
DEFAULT_WINDOWS = 8
QUICK_WINDOWS = 5
DEFAULT_WINDOW_SIZE = 20_000
QUICK_WINDOW_SIZE = 2_000

#: faulted wall time / clean wall time must stay under this
OVERHEAD_BOUND = 2.5
QUICK_OVERHEAD_BOUND = 5.0  # tiny workloads make the ratio noisy

COLLECT_PLAN = {
    "name": "bench_collect_chaos",
    "faults": [
        {"kind": "kill", "scope": "collect.shard", "task": 1, "attempt": 0},
        {"kind": "timeout", "scope": "collect.shard", "task": 0, "attempt": 0},
        {"kind": "raise", "scope": "collect.shard", "task": 2, "attempt": 0},
    ],
}

SERVICE_PLAN = {
    "name": "bench_service_chaos",
    "faults": [
        {"kind": "kill", "scope": "collect.shard", "task": 1, "attempt": 0},
        {"kind": "timeout", "scope": "collect.shard", "task": 0, "attempt": 0},
        {"kind": "checkpoint", "window": 1, "mode": "bitflip"},
        {"kind": "checkpoint", "window": 3, "mode": "truncate"},
    ],
}

#: window fields that must be bit-identical between clean and faulted runs
DETERMINISTIC_FIELDS = (
    "window",
    "n_users_cum",
    "n_reports_cum",
    "estimate",
    "gamma_hat",
    "poisoned_side",
    "window_gamma",
    "detector_score",
    "flagged",
    "warm",
)


def collect_round(n_users: int, fault_plan=None):
    """One sharded collection round; returns (fingerprint, seconds, fired)."""
    import numpy as np

    from repro.attacks import BiasedByzantineAttack, PAPER_POISON_RANGES
    from repro.core.dap import DAPConfig, DAPProtocol
    from repro.resilience import (
        DEFAULT_POLICY,
        FaultPlan,
        use_fault_plan,
        use_retry_policy,
    )
    import contextlib
    import dataclasses

    protocol = DAPProtocol(DAPConfig(epsilon=EPSILON, estimator="emf_star"))
    values = np.random.default_rng(SEED).uniform(-0.5, 0.5, size=n_users)
    n_byzantine = int(n_users * GAMMA)

    with contextlib.ExitStack() as stack:
        injector = None
        if fault_plan is not None:
            injector = stack.enter_context(
                use_fault_plan(FaultPlan.from_mapping(fault_plan))
            )
            stack.enter_context(
                use_retry_policy(
                    dataclasses.replace(DEFAULT_POLICY, backoff_base=0.0)
                )
            )
        start = time.perf_counter()
        accumulators = protocol.collect_sharded(
            values,
            BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"]),
            n_byzantine,
            rng=np.random.default_rng(SEED + 1),
            n_shards=N_SHARDS,
            n_workers=N_WORKERS,
        )
        result = protocol.aggregate_stats([acc.stats() for acc in accumulators])
        elapsed = time.perf_counter() - start
        fired = injector.fired if injector is not None else 0

    fingerprint = json.dumps(
        {
            "states": [acc.state_dict() for acc in accumulators],
            "estimate": repr(result.estimate),
            "gamma_hat": repr(result.gamma_hat),
        },
        sort_keys=True,
    )
    return fingerprint, elapsed, fired


def service_stream(n_windows: int, window_size: int, fault_plan=None):
    """One full service stream; returns (rows, seconds, fired, resilience)."""
    import contextlib
    import dataclasses

    from repro.resilience import (
        DEFAULT_POLICY,
        FaultPlan,
        use_fault_plan,
        use_retry_policy,
    )
    from repro.service import ServiceSpec, run_service

    spec = ServiceSpec(
        name="bench_faults",
        epsilon=EPSILON,
        window_size=window_size,
        n_windows=n_windows,
        dataset="Uniform",
        attack={"name": "bba", "poison_range": "[C/2,C]"},
        gamma=GAMMA,
        attack_start=0,
        seed=SEED,
        collect_shards=3,
        collect_workers=N_WORKERS,
    )
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = spec.default_checkpoint_path(tmp)
        with contextlib.ExitStack() as stack:
            injector = None
            if fault_plan is not None:
                injector = stack.enter_context(
                    use_fault_plan(FaultPlan.from_mapping(fault_plan))
                )
                stack.enter_context(
                    use_retry_policy(
                        dataclasses.replace(DEFAULT_POLICY, backoff_base=0.0)
                    )
                )
            start = time.perf_counter()
            result = run_service(spec, checkpoint_path=checkpoint)
            elapsed = time.perf_counter() - start
            fired = injector.fired if injector is not None else 0
    rows = [
        {key: getattr(row, key) for key in DETERMINISTIC_FIELDS}
        for row in result.windows
    ]
    return rows, elapsed, fired, dict(result.resilience)


def check(condition: bool, label: str, failures: list) -> None:
    print(f"[bench_faults] {'PASS' if condition else 'FAIL'}: {label}", flush=True)
    if not condition:
        failures.append(label)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--windows", type=int, default=None)
    parser.add_argument("--window-size", type=int, default=None)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke: {QUICK_USERS:,} users / {QUICK_WINDOWS} windows x "
        f"{QUICK_WINDOW_SIZE:,}; overhead bound relaxed to "
        f"{QUICK_OVERHEAD_BOUND:g}x",
    )
    parser.add_argument("--out", default="BENCH_faults.json")
    args = parser.parse_args(argv)

    if args.quick:
        n_users = args.users or QUICK_USERS
        n_windows = args.windows or QUICK_WINDOWS
        window_size = args.window_size or QUICK_WINDOW_SIZE
        bound = QUICK_OVERHEAD_BOUND
    else:
        n_users = args.users or DEFAULT_USERS
        n_windows = args.windows or DEFAULT_WINDOWS
        window_size = args.window_size or DEFAULT_WINDOW_SIZE
        bound = OVERHEAD_BOUND

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

    failures = []
    summary = {
        "quick": args.quick,
        "n_users": n_users,
        "n_windows": n_windows,
        "window_size": window_size,
        "overhead_bound": bound,
    }

    print(
        f"[bench_faults] collection round: {n_users:,} users, "
        f"{N_SHARDS} shards x {N_WORKERS} workers ...",
        flush=True,
    )
    clean_fp, clean_s, _ = collect_round(n_users)
    faulted_fp, faulted_s, fired = collect_round(n_users, COLLECT_PLAN)
    ratio = faulted_s / clean_s if clean_s > 0 else float("inf")
    print(
        f"[bench_faults]   -> clean {clean_s:.2f}s, faulted {faulted_s:.2f}s "
        f"({ratio:.2f}x), {fired} faults fired",
        flush=True,
    )
    summary["collect"] = {
        "clean_s": round(clean_s, 3),
        "faulted_s": round(faulted_s, 3),
        "overhead_ratio": round(ratio, 3),
        "faults_fired": fired,
        "faults_planned": len(COLLECT_PLAN["faults"]),
    }
    check(faulted_fp == clean_fp, "collection round bit-identical under faults", failures)
    check(
        fired == len(COLLECT_PLAN["faults"]),
        "all planned collection faults fired",
        failures,
    )
    check(
        ratio <= bound,
        f"collection fault overhead {ratio:.2f}x <= {bound:g}x",
        failures,
    )

    print(
        f"[bench_faults] service stream: {n_windows} windows x "
        f"{window_size:,} users ...",
        flush=True,
    )
    clean_rows, clean_s, _, _ = service_stream(n_windows, window_size)
    faulted_rows, faulted_s, fired, resilience = service_stream(
        n_windows, window_size, SERVICE_PLAN
    )
    ratio = faulted_s / clean_s if clean_s > 0 else float("inf")
    print(
        f"[bench_faults]   -> clean {clean_s:.2f}s, faulted {faulted_s:.2f}s "
        f"({ratio:.2f}x), {fired} faults fired, resilience={resilience}",
        flush=True,
    )
    summary["service"] = {
        "clean_s": round(clean_s, 3),
        "faulted_s": round(faulted_s, 3),
        "overhead_ratio": round(ratio, 3),
        "faults_fired": fired,
        "faults_planned": len(SERVICE_PLAN["faults"]),
        "resilience": resilience,
    }
    check(faulted_rows == clean_rows, "service stream bit-identical under faults", failures)
    check(
        fired == len(SERVICE_PLAN["faults"]),
        "all planned service faults fired",
        failures,
    )
    check(
        ratio <= bound,
        f"service fault overhead {ratio:.2f}x <= {bound:g}x",
        failures,
    )

    summary["failures"] = failures
    summary["ok"] = not failures
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"[bench_faults] wrote {args.out}", flush=True)
    if failures:
        print(f"[bench_faults] {len(failures)} gate(s) FAILED", file=sys.stderr)
        return 1
    print("[bench_faults] all gates passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
