"""Optional numba-JIT backend (falls back to the reference when absent).

When numba is importable, :class:`NumbaBackend` compiles loop-fused versions
of the two kernels where JIT beats vectorised numpy on a single core: the
PM / SW inverse-CDF samplers (one branchy loop instead of a chain of
``np.where`` temporaries) and the fused histogram pass (assign + count + sum
in one sweep).  Everything else inherits the single-pass numpy kernels from
:class:`repro.backends.fast.FastBackend` — the JIT wins there are marginal.

When numba is *not* importable, requesting the ``"numba"`` backend must not
crash a run that was merely configured on a beefier machine:
:func:`create_numba_backend` emits a :class:`RuntimeWarning` and returns the
bit-stable numpy reference instead (so artifacts record the backend that
actually ran).
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

import numpy as np

from repro.backends.base import ArrayBackend
from repro.backends.fast import FastBackend

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True
except ImportError:
    numba = None  # type: ignore[assignment]
    NUMBA_AVAILABLE = False


def numba_available() -> bool:
    """Whether the optional numba dependency is importable."""
    return NUMBA_AVAILABLE


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _pm_kernel(u, left, right, C, high_prob, p_high, p_low):
        out = np.empty(u.size, dtype=np.float64)
        for i in range(u.size):
            below_band = (left[i] + C) * p_low
            if u[i] < below_band:
                x = u[i] / p_low - C
            elif u[i] < below_band + high_prob:
                x = left[i] + (u[i] - below_band) / p_high
            else:
                x = right[i] + (u[i] - below_band - high_prob) / p_low
            out[i] = min(max(x, -C), C)
        return out

    @numba.njit(cache=True)
    def _sw_kernel(u, values, b, p_high, p_low):
        window_mass = 2.0 * b * p_high
        out = np.empty(u.size, dtype=np.float64)
        for i in range(u.size):
            below_window = values[i] * p_low
            if u[i] < below_window:
                x = u[i] / p_low - b
            elif u[i] < below_window + window_mass:
                x = (values[i] - b) + (u[i] - below_window) / p_high
            else:
                x = (values[i] + b) + (u[i] - below_window - window_mass) / p_low
            out[i] = min(max(x, -b), 1.0 + b)
        return out

    @numba.njit(cache=True)
    def _histogram_kernel(values, low, width, n_buckets):
        counts = np.zeros(n_buckets, dtype=np.int64)
        total = 0.0
        last = n_buckets - 1
        for i in range(values.size):
            idx = int(np.floor((values[i] - low) / width))
            if idx < 0:
                idx = 0
            elif idx > last:
                idx = last
            counts[idx] += 1
            total += values[i]
        return counts, total


class NumbaBackend(FastBackend):  # pragma: no cover - requires numba
    """JIT-compiled kernels over the fast backend's algorithms."""

    name = "numba"

    def pm_sample(self, values, left, right, C, high_prob, p_high, p_low, rng):
        u = rng.random(values.size)
        return _pm_kernel(u, left, right, C, high_prob, p_high, p_low)

    def sw_sample(self, values, b, p_high, p_low, rng):
        u = rng.random(values.size)
        return _sw_kernel(u, values, b, p_high, p_low)

    def histogram_chunk(self, values, grid) -> Tuple[np.ndarray, Optional[float]]:
        counts, total = _histogram_kernel(
            values, grid.low, grid.width, grid.n_buckets
        )
        return counts, float(total)


#: process-wide latch: the fallback warning fires once, not on every backend
#: construction (a windowed service resolving its backend per window — or a
#: shard pool resolving it per worker task — must not spam hundreds of
#: identical warnings; Python's own warning registry dedupes per call site,
#: which this module defeats by being called from many places)
_fallback_warned = False


def _reset_fallback_warning() -> None:
    """Re-arm the once-per-process fallback warning (test hook)."""
    global _fallback_warned
    _fallback_warned = False


def create_numba_backend() -> ArrayBackend:
    """The numba backend, or the numpy reference (with a warning) without numba."""
    global _fallback_warned
    if not NUMBA_AVAILABLE:
        if not _fallback_warned:
            _fallback_warned = True
            warnings.warn(
                "numba is not installed; the 'numba' backend falls back to the "
                "bit-stable numpy reference",
                RuntimeWarning,
                stacklevel=3,
            )
        return ArrayBackend()
    return NumbaBackend()  # pragma: no cover - requires numba


__all__ = ["NumbaBackend", "create_numba_backend", "numba_available", "NUMBA_AVAILABLE"]
