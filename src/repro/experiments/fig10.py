"""Figure 10 — robustness to evasive poison values.

Attackers aware of DAP devote a fraction ``a`` of their poison reports to the
opposite (non-poisoned) side at ``-C/2`` in an attempt to flip the side
probing, keeping the remaining ``1 - a`` fraction uniform on ``[C/2, C]``
(epsilon = 1/2, gamma = 0.25).  The paper's analysis (Equations 18-20) and
Figure 10 show three regimes as ``a`` grows:

* small ``a``: DAP ignores the evasive values and the MSE stays low;
* intermediate ``a`` (~20-30 %): the side decision starts flipping and the MSE
  spikes;
* large ``a``: the attack has sacrificed so much of its own mass that the MSE
  falls again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

from repro.attacks import EvasionAttack, PoisonRange
from repro.datasets import load_dataset
from repro.engine import DatasetLookup, ExperimentSpec, FixedEpsilonSchemes, run_experiment
from repro.experiments.defaults import ExperimentScale, QUICK_SCALE
from repro.simulation.sweep import SweepRecord, format_table, records_to_table
from repro.utils.rng import RngLike, ensure_rng

#: the evasive fractions swept in the figure
FIG10_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


@dataclass(frozen=True)
class Fig10Attack:
    """Evasion attack with the point's evasive fraction ``a``."""

    def __call__(self, point: Mapping) -> EvasionAttack:
        return EvasionAttack(
            evasive_fraction=point["evasive_fraction"],
            true_poison_range=PoisonRange.of_c(0.5, 1.0),
            evasive_position=0.5,
        )


def build_fig10_spec(
    scale: ExperimentScale = QUICK_SCALE,
    datasets: Sequence[str] = ("Taxi",),
    evasive_fractions: Sequence[float] = FIG10_FRACTIONS,
    epsilon: float = 0.5,
    schemes: Sequence[str] = ("DAP-EMF", "DAP-EMF*", "DAP-CEMF*"),
    rng: RngLike = None,
    batched: bool = False,
) -> ExperimentSpec:
    """Build the Figure 10 evasion-sweep spec."""
    rng = ensure_rng(rng)
    dataset_cache = {
        name: load_dataset(name, n_samples=scale.n_users, rng=rng) for name in datasets
    }
    points = [
        {"dataset": name, "evasive_fraction": a}
        for name in datasets
        for a in evasive_fractions
    ]
    return ExperimentSpec(
        name="fig10",
        description="Figure 10: MSE vs evasive poison fraction",
        points=points,
        n_users=scale.n_users,
        n_trials=scale.n_trials,
        gamma=scale.gamma,
        scheme_factory=FixedEpsilonSchemes(tuple(schemes), epsilon=epsilon),
        attack_factory=Fig10Attack(),
        dataset_factory=DatasetLookup(dataset_cache),
        batched=batched,
    )


def run_fig10(
    scale: ExperimentScale = QUICK_SCALE,
    datasets: Sequence[str] = ("Taxi",),
    evasive_fractions: Sequence[float] = FIG10_FRACTIONS,
    epsilon: float = 0.5,
    schemes: Sequence[str] = ("DAP-EMF", "DAP-EMF*", "DAP-CEMF*"),
    rng: RngLike = None,
    n_workers: int | str | None = None,
    batched: bool = False,
) -> List[SweepRecord]:
    """Regenerate the Figure 10 evasion sweep."""
    rng = ensure_rng(rng)
    spec = build_fig10_spec(
        scale,
        datasets=datasets,
        evasive_fractions=evasive_fractions,
        epsilon=epsilon,
        schemes=schemes,
        rng=rng,
        batched=batched,
    )
    return run_experiment(spec, rng=rng, n_workers=n_workers)


def format_fig10(records: Sequence[SweepRecord]) -> str:
    """Render one MSE-vs-a table per dataset."""
    blocks = []
    for dataset in sorted({r.point["dataset"] for r in records}):
        dataset_records = [r for r in records if r.point["dataset"] == dataset]
        table = records_to_table(dataset_records, row_key="evasive_fraction")
        blocks.append(
            f"## {dataset}, epsilon=1/2, gamma=0.25: MSE vs evasive fraction a\n"
            + format_table(table, row_label="a")
        )
    return "\n\n".join(blocks)


__all__ = ["build_fig10_spec", "run_fig10", "format_fig10", "FIG10_FRACTIONS"]
