"""Figure 9 (a)(b) — comparison against the k-means-based defence.

Panel (a): under a Biased Byzantine Attack on Taxi (Poi [C/2, C], gamma =
0.25), the DAP variants are compared against the k-means defence of Li et al.
for several sampling rates beta; the paper reports k-means MSE in the 1e-7 to
1e-5 range versus ~1e-10 for DAP-EMF*/CEMF*.

Panel (b): under an *input manipulation attack* (Byzantine users honestly
perturb a chosen input g in {-1, 0, 1}), EMF alone cannot help (the reports
are legitimate perturbations), but combining the EMF machinery with the
k-means defence ("EMF-based") improves the k-means estimate by ~30 %.  The
"EMF-based" scheme here follows the paper's sketch: each sampled subset's mean
is computed from an EM reconstruction of the input distribution (gamma pinned
to zero, i.e. no poison columns) instead of the raw report average, and the
2-means majority vote proceeds as usual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

import numpy as np

from repro.attacks import BiasedByzantineAttack, InputManipulationAttack, PAPER_POISON_RANGES
from repro.attacks.base import Attack
from repro.core.transform import cached_transform_matrix
from repro.datasets import load_dataset
from repro.defenses.kmeans import kmeans_1d
from repro.engine import ExperimentSpec, FixedDataset, PoisonRangeAttack, run_experiment
from repro.experiments.defaults import ExperimentScale, QUICK_SCALE, PAPER_EPSILONS
from repro.ldp.ems import em_reconstruct
from repro.ldp.piecewise import PiecewiseMechanism
from repro.simulation.population import Population
from repro.simulation.schemes import Scheme, make_scheme
from repro.simulation.sweep import SweepRecord, format_table, records_to_table
from repro.utils.histogram import histogram_mean, normalize_histogram
from repro.utils.rng import RngLike, ensure_rng

#: sampling rates of the k-means defence compared in the figure
FIG9_SAMPLING_RATES = (0.1, 0.3, 0.5, 0.7, 0.9)


class EMFKMeansScheme(Scheme):
    """The paper's "EMF-based" integration of EMF with the k-means defence.

    The subset sampling and the 2-means majority vote follow the k-means
    defence unchanged (IMA reports are honest perturbations, so per-subset
    means are already unbiased).  The EMF machinery comes in afterwards: the
    reports of the majority (clean-looking) subsets are pooled and the input
    distribution is reconstructed by EM with the poison mass pinned to zero
    (``gamma_hat = 0``), and the final estimate is the mean of that bounded
    reconstruction.  Constraining the reconstruction to the legal input domain
    is what buys the accuracy gain over averaging raw reports.
    """

    def __init__(
        self,
        epsilon: float,
        sampling_rate: float = 0.1,
        n_subsets: int = 100,
        n_input_buckets: int = 32,
        n_output_buckets: int = 64,
        name: str | None = None,
    ) -> None:
        self.mechanism = PiecewiseMechanism(epsilon)
        self.sampling_rate = sampling_rate
        self.n_subsets = n_subsets
        self.n_input_buckets = n_input_buckets
        self.n_output_buckets = n_output_buckets
        self.name = name or f"EMF-based(beta={sampling_rate:g})"
        self._transform = cached_transform_matrix(
            self.mechanism, n_input_buckets, n_output_buckets, side="right"
        )

    def _reconstructed_mean(self, reports: np.ndarray) -> float:
        counts = self._transform.output_grid.counts(reports)
        # plain EM reconstruction over the normal block only (gamma = 0)
        normal_block = self._transform.matrix[:, : self._transform.n_normal_components]
        result = em_reconstruct(normal_block, counts, tol=1e-6, max_iter=2_000)
        histogram = normalize_histogram(result.weights)
        return histogram_mean(histogram, self._transform.input_grid.centers)

    def estimate(
        self, population: Population, attack: Attack | None, rng: RngLike = None
    ) -> float:
        rng = ensure_rng(rng)
        normal_reports = self.mechanism.perturb(population.normal_values, rng)
        poison_reports = (
            attack.poison_reports(population.n_byzantine, self.mechanism, 0.0, rng).reports
            if attack is not None
            else np.empty(0)
        )
        reports = np.concatenate([normal_reports, poison_reports])
        n = reports.size
        subset_size = max(1, int(round(n * self.sampling_rate)))
        subset_means = np.empty(self.n_subsets)
        subset_indices = []
        for i in range(self.n_subsets):
            idx = rng.integers(0, n, size=subset_size)
            subset_indices.append(idx)
            subset_means[i] = reports[idx].mean()
        labels, _centers = kmeans_1d(subset_means, n_clusters=2, rng=rng)
        counts = np.bincount(labels, minlength=2)
        majority = int(np.argmax(counts))
        kept = np.unique(
            np.concatenate([subset_indices[i] for i in range(self.n_subsets) if labels[i] == majority])
        )
        low, high = self.mechanism.input_domain
        return float(np.clip(self._reconstructed_mean(reports[kept]), low, high))


@dataclass(frozen=True)
class Fig9BBASchemes:
    """Panel (a): DAP variants vs k-means at several sampling rates."""

    sampling_rates: tuple
    epsilon_min: float = 1.0 / 16.0

    def __call__(self, point: Mapping) -> Sequence[Scheme]:
        epsilon = float(point["epsilon"])
        schemes = [
            make_scheme("DAP-EMF", epsilon, epsilon_min=self.epsilon_min),
            make_scheme("DAP-EMF*", epsilon, epsilon_min=self.epsilon_min),
            make_scheme("DAP-CEMF*", epsilon, epsilon_min=self.epsilon_min),
        ]
        for rate in self.sampling_rates:
            schemes.append(
                make_scheme(
                    "K-means",
                    epsilon,
                    sampling_rate=rate,
                    n_subsets=100,
                    label=f"K-means(beta={rate:g})",
                )
            )
        return schemes


@dataclass(frozen=True)
class Fig9IMASchemes:
    """Panel (b): EMF-based vs plain k-means at the point's sampling rate."""

    def __call__(self, point: Mapping) -> Sequence[Scheme]:
        rate = float(point["sampling_rate"])
        epsilon = float(point["epsilon"])
        return [
            EMFKMeansScheme(epsilon, sampling_rate=rate),
            make_scheme(
                "K-means",
                epsilon,
                sampling_rate=rate,
                n_subsets=100,
                label=f"K-means(beta={rate:g})",
            ),
        ]


@dataclass(frozen=True)
class Fig9IMAAttack:
    """Input manipulation towards the point's chosen input ``g``."""

    def __call__(self, point: Mapping) -> Attack:
        return InputManipulationAttack(point["g"])


def run_fig9_defense_comparison(
    scale: ExperimentScale = QUICK_SCALE,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    sampling_rates: Sequence[float] = (0.1, 0.5, 0.9),
    poison_range: str = "[C/2,C]",
    dataset_name: str = "Taxi",
    include_ima_panel: bool = True,
    ima_inputs: Sequence[float] = (-1.0, 0.0, 1.0),
    ima_epsilon: float = 1.0,
    rng: RngLike = None,
    n_workers: int | str | None = None,
    batched: bool = False,
) -> List[SweepRecord]:
    """Regenerate Figure 9 (a) and optionally (b)."""
    rng = ensure_rng(rng)
    dataset = load_dataset(dataset_name, n_samples=scale.n_users, rng=rng)

    # ---- panel (a): BBA, DAP vs k-means over epsilon -------------------------
    spec_a = ExperimentSpec(
        name="fig9a",
        description="Figure 9(a): DAP vs k-means defence under BBA",
        points=[
            {"panel": "a", "epsilon": epsilon, "poison_range": poison_range}
            for epsilon in epsilons
        ],
        n_users=scale.n_users,
        n_trials=scale.n_trials,
        gamma=scale.gamma,
        scheme_factory=Fig9BBASchemes(tuple(sampling_rates)),
        attack_factory=PoisonRangeAttack(),
        dataset_factory=FixedDataset(dataset),
        batched=batched,
    )
    records = run_experiment(spec_a, rng=rng, n_workers=n_workers)

    # ---- panel (b): IMA, EMF-based vs plain k-means over beta ----------------
    if include_ima_panel:
        spec_b = ExperimentSpec(
            name="fig9b",
            description="Figure 9(b): EMF-based vs k-means under IMA",
            points=[
                {"panel": "b", "sampling_rate": rate, "g": g, "epsilon": ima_epsilon}
                for rate in sampling_rates
                for g in ima_inputs
            ],
            n_users=scale.n_users,
            n_trials=scale.n_trials,
            gamma=scale.gamma,
            scheme_factory=Fig9IMASchemes(),
            attack_factory=Fig9IMAAttack(),
            dataset_factory=FixedDataset(dataset),
            batched=batched,
        )
        records += run_experiment(spec_b, rng=rng, n_workers=n_workers)
    return records


def format_fig9_defense_comparison(records: Sequence[SweepRecord]) -> str:
    """Render the (a) epsilon sweep and the (b) sampling-rate sweep."""
    blocks = []
    panel_a = [r for r in records if r.point.get("panel") == "a"]
    if panel_a:
        table = records_to_table(panel_a, row_key="epsilon")
        blocks.append(
            "## (a) Taxi, Poi[C/2,C], BBA: DAP vs k-means defence (MSE)\n"
            + format_table(table, row_label="epsilon")
        )
    panel_b = [r for r in records if r.point.get("panel") == "b"]
    if panel_b:
        for g in sorted({r.point["g"] for r in panel_b}):
            g_records = [r for r in panel_b if r.point["g"] == g]
            table = records_to_table(g_records, row_key="sampling_rate")
            blocks.append(
                f"## (b) Taxi, IMA g={g:g}: EMF-based vs k-means (MSE)\n"
                + format_table(table, row_label="beta")
            )
    return "\n\n".join(blocks)


__all__ = [
    "EMFKMeansScheme",
    "Fig9BBASchemes",
    "Fig9IMASchemes",
    "run_fig9_defense_comparison",
    "format_fig9_defense_comparison",
    "FIG9_SAMPLING_RATES",
]
