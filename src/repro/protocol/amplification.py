"""Privacy-amplification accounting for the shuffle model.

Maps each budget group's *local* epsilon to the *central* epsilon its
shuffled batch satisfies, using the Feldman–McMillan–Talwar style closed
form: shuffling ``n`` reports that are each ``eps_l``-LDP yields an
``(eps_c, delta)``-centrally-DP batch with

    eps_c = log(1 + (e^{eps_l} - 1) * (4 * sqrt(2 * log(4/delta) / ((e^{eps_l} + 1) * n)) + 4 / n))

whenever that bound improves on ``eps_l`` (for tiny ``n`` the closed form
can exceed the local guarantee, in which case the local epsilon is already
the better bound and is reported unchanged).  The per-group ledger rows
are recorded in :class:`repro.core.dap.DAPResult` and a population-level
summary lands in ``meta.execution`` next to the other runtime details.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: default amplification failure probability
DEFAULT_DELTA = 1e-6


def amplified_epsilon(epsilon_local: float, n: int, delta: float = DEFAULT_DELTA) -> float:
    """Central epsilon for ``n`` shuffled ``epsilon_local``-LDP reports."""
    epsilon_local = float(epsilon_local)
    n = int(n)
    if epsilon_local < 0:
        raise ValueError(f"epsilon_local must be >= 0, got {epsilon_local}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if n <= 0 or epsilon_local == 0.0:
        return epsilon_local
    spread = 4.0 * math.sqrt(
        2.0 * math.log(4.0 / delta) / ((math.exp(epsilon_local) + 1.0) * n)
    ) + 4.0 / n
    bound = math.log1p(math.expm1(epsilon_local) * spread)
    return min(epsilon_local, bound)


def amplification_ledger(
    group_budgets: Sequence[float],
    group_counts: Sequence[int],
    delta: float = DEFAULT_DELTA,
) -> list[dict]:
    """One ledger row per budget group: local → central epsilon.

    ``group_counts`` are *report* counts (after per-user repeats and the
    contribution cap), since each shuffled batch is a batch of reports.
    """
    if len(group_budgets) != len(group_counts):
        raise ValueError(
            f"ledger needs one count per budget, got {len(group_budgets)} "
            f"budgets and {len(group_counts)} counts"
        )
    ledger = []
    for epsilon_local, n_reports in zip(group_budgets, group_counts):
        epsilon_local = float(epsilon_local)
        n_reports = int(n_reports)
        epsilon_central = amplified_epsilon(epsilon_local, n_reports, delta)
        ledger.append(
            {
                "epsilon_local": epsilon_local,
                "n_reports": n_reports,
                "delta": float(delta),
                "epsilon_central": epsilon_central,
                "amplification_factor": (
                    epsilon_local / epsilon_central if epsilon_central > 0 else 1.0
                ),
            }
        )
    return ledger


def ledger_summary(ledger: Sequence[Mapping[str, float]]) -> dict:
    """Population-level roll-up of a ledger for ``meta.execution``."""
    if not ledger:
        return {"n_groups": 0}
    return {
        "n_groups": len(ledger),
        "delta": float(ledger[0]["delta"]),
        "epsilon_local_max": max(float(row["epsilon_local"]) for row in ledger),
        "epsilon_central_max": max(float(row["epsilon_central"]) for row in ledger),
        "amplification_factor_min": min(
            float(row["amplification_factor"]) for row in ledger
        ),
        "amplification_factor_max": max(
            float(row["amplification_factor"]) for row in ledger
        ),
    }


__all__ = [
    "DEFAULT_DELTA",
    "amplification_ledger",
    "amplified_epsilon",
    "ledger_summary",
]
