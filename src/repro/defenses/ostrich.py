"""Ostrich baseline: ignore the attackers entirely.

Averages every report (clipped to the input domain, as any unbiased PM-style
collector would do for the final estimate) and pretends Byzantine users do not
exist.  This is the "Ostrich" scheme of Figures 6-10.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense, DefenseResult
from repro.ldp.base import NumericalMechanism
from repro.registry import DEFENSES
from repro.utils.rng import RngLike


@DEFENSES.register("Ostrich")
class OstrichDefense(Defense):
    """No defence: the plain LDP mean estimator applied to all reports."""

    name = "Ostrich"

    def __init__(self, clip_to_input_domain: bool = True) -> None:
        #: whether to clip the final estimate into the input domain — a free
        #: post-processing step every realistic collector applies.
        self.clip_to_input_domain = clip_to_input_domain

    def estimate_mean(
        self,
        reports: np.ndarray,
        mechanism: NumericalMechanism,
        rng: RngLike = None,
    ) -> DefenseResult:
        reports = self._validate_reports(reports)
        estimate = mechanism.estimate_mean(reports)
        if self.clip_to_input_domain:
            low, high = mechanism.input_domain
            estimate = float(np.clip(estimate, low, high))
        return DefenseResult(
            estimate=estimate,
            kept_mask=np.ones(reports.size, dtype=bool),
            metadata={"n_reports": int(reports.size)},
        )


__all__ = ["OstrichDefense"]
