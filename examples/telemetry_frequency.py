"""Scenario: poisoned categorical telemetry (frequency estimation with k-RR).

A health agency collects a categorical attribute (age group of a reported
case) under LDP with k-RR, mirroring the paper's COVID-19 experiment
(Figure 9 c/d).  A botnet injects reports for a few chosen age groups to
distort the published histogram.  The script compares the undefended k-RR
estimator with the frequency-estimation extension of DAP, which probes the
poisoned categories and removes their collective contribution.

Run with::

    python examples/telemetry_frequency.py
"""

from __future__ import annotations

import numpy as np

from repro.core.frequency import FrequencyDAP, ostrich_frequencies
from repro.datasets import covid_dataset
from repro.datasets.covid import AGE_GROUP_LABELS
from repro.estimators import frequency_mse
from repro.ldp import KRandomizedResponse


def main() -> None:
    rng = np.random.default_rng(11)
    epsilon = 1.0
    n_normal, n_byzantine = 40_000, 10_000
    poisoned_groups = (2, 3)  # the attackers inflate two rare age groups

    dataset = covid_dataset(n_samples=n_normal, rng=rng)
    truth = dataset.true_frequencies

    dap = FrequencyDAP(epsilon, dataset.n_categories)
    reports = dap.collect(dataset.categories, poisoned_groups, n_byzantine, rng=rng)

    mechanism = KRandomizedResponse(epsilon, dataset.n_categories)
    undefended = ostrich_frequencies(mechanism, reports)
    defended = dap.estimate(reports)

    print(f"{'age group':<16} {'true':>8} {'ostrich':>8} {'DAP':>8}")
    for index, label in enumerate(AGE_GROUP_LABELS):
        marker = " <- poisoned" if index in poisoned_groups else ""
        print(
            f"{label:<16} {truth[index]:8.4f} {undefended[index]:8.4f} "
            f"{defended.frequencies[index]:8.4f}{marker}"
        )

    print(
        f"\nprobed poisoned categories: {defended.poisoned_categories} "
        f"(gamma_hat={defended.gamma_hat:.3f})"
    )
    print(f"frequency MSE, Ostrich: {frequency_mse(undefended, truth):.2e}")
    print(f"frequency MSE, DAP    : {frequency_mse(defended.frequencies, truth):.2e}")


if __name__ == "__main__":
    main()
