"""Figure 7 — robustness to the Byzantine proportion and poison distribution.

Panels (a)(b): MSE on Taxi at epsilon = 1 as the Byzantine proportion grows
through {5, 10, 30, 40}%, for poison ranges [O, C/2] and [C/2, C].

Panels (c)(d): MSE on Taxi at epsilon = 1, gamma = 0.25, as the poison-value
distribution changes through Uniform, Gaussian, Beta(1,6) and Beta(6,1) over
the same two ranges.

Expected shape: the DAP variants stay orders of magnitude below Ostrich and
Trimming across the whole sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

from repro.attacks import (
    BetaPoison,
    BiasedByzantineAttack,
    GaussianPoison,
    PAPER_POISON_RANGES,
    UniformPoison,
)
from repro.datasets import load_dataset
from repro.engine import (
    ExperimentSpec,
    FixedDataset,
    FixedEpsilonSchemes,
    PointKey,
    run_experiment,
)
from repro.experiments.defaults import ExperimentScale, QUICK_SCALE
from repro.experiments.fig6 import FIG6_SCHEMES
from repro.simulation.sweep import SweepRecord, format_table, records_to_table
from repro.utils.rng import RngLike, ensure_rng

#: the proportions of panels (a)(b)
FIG7_GAMMAS = (0.05, 0.10, 0.30, 0.40)

#: the distributions of panels (c)(d)
FIG7_DISTRIBUTIONS = ("Uniform", "Gaussian", "Beta(1,6)", "Beta(6,1)")


def _poison_distribution(name: str):
    if name == "Uniform":
        return UniformPoison()
    if name == "Gaussian":
        return GaussianPoison()
    if name == "Beta(1,6)":
        return BetaPoison(1, 6)
    if name == "Beta(6,1)":
        return BetaPoison(6, 1)
    raise KeyError(f"unknown poison distribution {name!r}")


@dataclass(frozen=True)
class Fig7Attack:
    """BBA on the point's poison range with the point's poison distribution."""

    def __call__(self, point: Mapping) -> BiasedByzantineAttack:
        return BiasedByzantineAttack(
            PAPER_POISON_RANGES[point["poison_range"]],
            distribution=_poison_distribution(point["distribution"]),
        )


def build_fig7_spec(
    scale: ExperimentScale = QUICK_SCALE,
    epsilon: float = 1.0,
    dataset_name: str = "Taxi",
    poison_ranges: Sequence[str] = ("[O,C/2]", "[C/2,C]"),
    gammas: Sequence[float] = FIG7_GAMMAS,
    distributions: Sequence[str] = FIG7_DISTRIBUTIONS,
    schemes: Sequence[str] = FIG6_SCHEMES,
    rng: RngLike = None,
    batched: bool = False,
) -> ExperimentSpec:
    """Build the Figure 7 spec (both the gamma and distribution axes)."""
    rng = ensure_rng(rng)
    dataset = load_dataset(dataset_name, n_samples=scale.n_users, rng=rng)

    points: List[dict] = []
    for poison_range in poison_ranges:
        for gamma in gammas:
            points.append(
                {
                    "panel": "gamma",
                    "poison_range": poison_range,
                    "gamma": gamma,
                    "distribution": "Uniform",
                }
            )
        for distribution in distributions:
            points.append(
                {
                    "panel": "distribution",
                    "poison_range": poison_range,
                    "gamma": scale.gamma,
                    "distribution": distribution,
                }
            )

    return ExperimentSpec(
        name="fig7",
        description="Figure 7: robustness to gamma and poison distribution",
        points=points,
        n_users=scale.n_users,
        n_trials=scale.n_trials,
        gamma=PointKey("gamma"),
        scheme_factory=FixedEpsilonSchemes(tuple(schemes), epsilon=epsilon),
        attack_factory=Fig7Attack(),
        dataset_factory=FixedDataset(dataset),
        batched=batched,
    )


def run_fig7(
    scale: ExperimentScale = QUICK_SCALE,
    epsilon: float = 1.0,
    dataset_name: str = "Taxi",
    poison_ranges: Sequence[str] = ("[O,C/2]", "[C/2,C]"),
    gammas: Sequence[float] = FIG7_GAMMAS,
    distributions: Sequence[str] = FIG7_DISTRIBUTIONS,
    schemes: Sequence[str] = FIG6_SCHEMES,
    rng: RngLike = None,
    n_workers: int | str | None = None,
    batched: bool = False,
) -> List[SweepRecord]:
    """Regenerate the Figure 7 sweeps (both the gamma and distribution axes)."""
    rng = ensure_rng(rng)
    spec = build_fig7_spec(
        scale,
        epsilon=epsilon,
        dataset_name=dataset_name,
        poison_ranges=poison_ranges,
        gammas=gammas,
        distributions=distributions,
        schemes=schemes,
        rng=rng,
        batched=batched,
    )
    return run_experiment(spec, rng=rng, n_workers=n_workers)


def format_fig7(records: Sequence[SweepRecord]) -> str:
    """Render the gamma-sweep and distribution-sweep tables per poison range."""
    blocks = []
    ranges = sorted({r.point["poison_range"] for r in records})
    for poison_range in ranges:
        gamma_records = [
            r
            for r in records
            if r.point["panel"] == "gamma" and r.point["poison_range"] == poison_range
        ]
        if gamma_records:
            table = records_to_table(gamma_records, row_key="gamma")
            blocks.append(
                f"## Taxi, Poi {poison_range}: MSE vs Byzantine proportion\n"
                + format_table(table, row_label="gamma")
            )
        dist_records = [
            r
            for r in records
            if r.point["panel"] == "distribution"
            and r.point["poison_range"] == poison_range
        ]
        if dist_records:
            table = records_to_table(dist_records, row_key="distribution")
            blocks.append(
                f"## Taxi, Poi {poison_range}: MSE vs poison distribution\n"
                + format_table(table, row_label="distribution")
            )
    return "\n\n".join(blocks)


__all__ = [
    "build_fig7_spec",
    "run_fig7",
    "format_fig7",
    "FIG7_GAMMAS",
    "FIG7_DISTRIBUTIONS",
]
