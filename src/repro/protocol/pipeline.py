"""The client → transport → server pipeline the collection paths lower to.

Every collection round in the repo — ``DAPProtocol`` (in-memory, streaming,
sharded), ``FrequencyDAP``, ``SketchFrequencyDAP``, and the windowed
service runtime on top of them — is the same three-stage pipeline run over
different batch shapes:

1. **client** — each user perturbs through their group's mechanism;
   compromised users hand their slots to the attack; a contribution cap
   drops reports beyond the per-user limit *before* perturbation, counted
   into a deterministic ``skipped`` tally.
2. **transport** — identity pass-through (local) or the seeded
   :class:`~repro.protocol.transport.Shuffler` (shuffle), applied per
   delivery lane so it composes with streaming chunks and shard blocks.
3. **server** — accumulator folding plus the estimation stages; under the
   shuffle protocol the server also writes the amplification ledger.

:class:`ProtocolPipeline` is a stateless bundle of those stage helpers,
instantiated from a :class:`~repro.protocol.plan.ProtocolPlan`.  It is
deliberately cheap to construct (the shard workers build one per task) and
holds no RNG state of its own — the shuffler derives per-lane seeds from a
dedicated namespace, so the main RNG contract of every path is preserved
bit-for-bit.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.ldp.base import NumericalMechanism

from repro.protocol.amplification import (
    DEFAULT_DELTA,
    amplification_ledger,
    ledger_summary,
)
from repro.protocol.client import adversary_view
from repro.protocol.plan import ProtocolPlan
from repro.protocol.transport import make_transport


class ProtocolPipeline:
    """Stage helpers for one collection round under a protocol plan."""

    def __init__(self, plan: ProtocolPlan) -> None:
        self.plan = plan
        self.transport = make_transport(plan.is_shuffle, plan.shuffle_seed)

    # ------------------------------------------------------------------
    # client stage
    # ------------------------------------------------------------------
    def client_repeats(self, repeats: int) -> int:
        """Reports each user actually sends (contribution cap applied)."""
        return self.plan.effective_repeats(repeats)

    def adversary_view(
        self,
        mechanism: NumericalMechanism,
        ladder_mechanisms: Mapping[float, NumericalMechanism] | None = None,
    ) -> NumericalMechanism:
        """The mechanism view the attack stage receives for one group."""
        return adversary_view(mechanism, self.plan, ladder_mechanisms)

    def skipped_reports(
        self, group_sizes: Sequence[int], uncapped_repeats: Sequence[int]
    ) -> int:
        """Deterministic tally of reports dropped by the contribution cap.

        Group head-counts are deterministic given the population size (the
        nearly-equal split), so the tally needs no cross-process state:
        ``sum(size_t * (uncapped_t - capped_t))``.
        """
        return int(
            sum(
                size * (int(repeats) - self.client_repeats(repeats))
                for size, repeats in zip(group_sizes, uncapped_repeats)
            )
        )

    # ------------------------------------------------------------------
    # transport stage
    # ------------------------------------------------------------------
    def deliver(self, reports: np.ndarray, lane: tuple[int, ...]) -> np.ndarray:
        """Run one delivery lane through the transport."""
        return self.transport.deliver(reports, lane)

    # ------------------------------------------------------------------
    # server stage
    # ------------------------------------------------------------------
    def ledger(
        self,
        group_budgets: Sequence[float],
        group_report_counts: Sequence[int],
        delta: float = DEFAULT_DELTA,
    ) -> list[dict] | None:
        """Amplification ledger (shuffle only; ``None`` under local)."""
        if not self.plan.is_shuffle:
            return None
        return amplification_ledger(group_budgets, group_report_counts, delta)

    @staticmethod
    def ledger_summary(ledger: Sequence[Mapping[str, float]] | None) -> dict | None:
        return None if ledger is None else ledger_summary(ledger)


__all__ = ["ProtocolPipeline"]
