"""Tests for the simulation harness (population, schemes, runner, sweep)."""

import numpy as np
import pytest

from repro.attacks import BiasedByzantineAttack, NoAttack, PAPER_POISON_RANGES
from repro.datasets import uniform_dataset
from repro.ldp import SquareWaveMechanism
from repro.simulation import (
    BaselineProtocolScheme,
    DAPScheme,
    Population,
    SingleRoundScheme,
    build_population,
    evaluate_schemes,
    make_scheme,
    run_trials,
    sweep,
)
from repro.simulation.sweep import format_table, records_to_table
from repro.core.dap import DAPConfig
from repro.defenses import OstrichDefense


@pytest.fixture(scope="module")
def dataset():
    return uniform_dataset(n_samples=5_000, low=-0.5, high=0.5, rng=1)


ATTACK = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])


class TestPopulation:
    def test_build_population_split(self, dataset, rng):
        population = build_population(dataset, 1_000, gamma=0.25, rng=rng)
        assert population.n_byzantine == 250
        assert population.n_normal == 750
        assert population.n_total == 1_000
        assert population.gamma == pytest.approx(0.25)

    def test_true_mean_matches_normal_values(self, dataset, rng):
        population = build_population(dataset, 500, 0.2, rng=rng)
        assert population.true_mean == pytest.approx(population.normal_values.mean())

    def test_gamma_one_rejected(self, dataset, rng):
        with pytest.raises(ValueError):
            build_population(dataset, 100, 1.0, rng=rng)

    def test_input_domain_rescaling(self, dataset, rng):
        population = build_population(dataset, 500, 0.0, rng=rng, input_domain=(0.0, 1.0))
        assert population.normal_values.min() >= 0.0
        assert population.normal_values.max() <= 1.0

    def test_empty_population_properties(self):
        population = Population(normal_values=np.array([0.0]), n_byzantine=0, true_mean=0.0)
        assert population.gamma == 0.0


class TestSchemes:
    def test_make_scheme_names(self):
        for name in ("DAP-EMF", "DAP-EMF*", "DAP-CEMF*", "Ostrich", "Trimming",
                     "K-means", "Boxplot", "IsolationForest", "Baseline"):
            scheme = make_scheme(name, epsilon=1.0)
            assert scheme.name
        with pytest.raises(KeyError):
            make_scheme("unknown", 1.0)

    def test_dap_scheme_estimate(self, dataset, rng):
        scheme = DAPScheme(DAPConfig(epsilon=1.0, epsilon_min=1 / 4))
        population = build_population(dataset, 3_000, 0.25, rng=rng)
        estimate = scheme.estimate(population, ATTACK, rng=rng)
        assert -1.0 <= estimate <= 1.0

    def test_single_round_scheme_no_attack_accurate(self, dataset, rng):
        scheme = SingleRoundScheme(OstrichDefense(), epsilon=2.0)
        population = build_population(dataset, 4_000, 0.0, rng=rng)
        estimate = scheme.estimate(population, NoAttack(), rng=rng)
        assert estimate == pytest.approx(population.true_mean, abs=0.1)

    def test_baseline_protocol_scheme(self, dataset, rng):
        scheme = BaselineProtocolScheme(epsilon=1.0)
        population = build_population(dataset, 3_000, 0.2, rng=rng)
        estimate = scheme.estimate(population, ATTACK, rng=rng)
        assert -1.0 <= estimate <= 1.0

    def test_make_scheme_with_sw_mechanism(self):
        scheme = make_scheme("Ostrich", 1.0, mechanism_factory=SquareWaveMechanism)
        assert isinstance(scheme.mechanism, SquareWaveMechanism)

    def test_kmeans_kwargs_forwarded(self):
        scheme = make_scheme("K-means", 1.0, sampling_rate=0.3, n_subsets=10)
        assert scheme.defense.sampling_rate == 0.3
        assert scheme.defense.n_subsets == 10


class TestRunner:
    def test_run_trials_counts(self, dataset):
        scheme = make_scheme("Ostrich", 1.0)
        result = run_trials(scheme, dataset, NoAttack(), n_users=2_000, gamma=0.0,
                            n_trials=3, rng=0)
        assert len(result.estimates) == 3
        assert result.mse >= 0

    def test_run_trials_reproducible(self, dataset):
        scheme = make_scheme("Ostrich", 1.0)
        a = run_trials(scheme, dataset, ATTACK, 2_000, 0.25, n_trials=2, rng=7)
        b = run_trials(scheme, dataset, ATTACK, 2_000, 0.25, n_trials=2, rng=7)
        assert a.estimates == b.estimates

    def test_evaluate_schemes_shares_trial_seeds(self, dataset):
        schemes = [make_scheme("Ostrich", 1.0), make_scheme("Trimming", 1.0)]
        results = evaluate_schemes(schemes, dataset, ATTACK, 2_000, 0.25, n_trials=2, rng=3)
        assert set(results) == {"Ostrich", "Trimming"}
        # the two schemes saw the same populations, so the truths match
        assert results["Ostrich"].truths == results["Trimming"].truths

    def test_trial_result_statistics(self, dataset):
        result = run_trials(make_scheme("Ostrich", 2.0), dataset, NoAttack(), 2_000, 0.0,
                            n_trials=3, rng=0)
        assert result.mse == pytest.approx(
            np.mean((np.array(result.estimates) - np.array(result.truths)) ** 2)
        )
        assert result.mse_against(0.0) >= 0

    def test_dap_beats_ostrich_in_harness(self, dataset):
        schemes = [make_scheme("DAP-EMF*", 1.0, epsilon_min=1 / 8), make_scheme("Ostrich", 1.0)]
        results = evaluate_schemes(schemes, dataset, ATTACK, 4_000, 0.25, n_trials=2, rng=5)
        assert results["DAP-EMF*"].mse < results["Ostrich"].mse


class TestTrialResultEmpty:
    def test_mse_raises_on_empty(self):
        from repro.simulation.runner import TrialResult

        result = TrialResult(scheme="empty")
        with pytest.raises(ValueError, match="no recorded trials"):
            result.mse

    def test_bias_raises_on_empty(self):
        from repro.simulation.runner import TrialResult

        result = TrialResult(scheme="empty")
        with pytest.raises(ValueError, match="no recorded trials"):
            result.bias


class TestSweep:
    def test_sweep_produces_record_per_point_and_scheme(self, dataset):
        points = [{"epsilon": 0.5}, {"epsilon": 1.0}]
        records = sweep(
            points,
            scheme_factory=lambda pt: [make_scheme("Ostrich", pt["epsilon"])],
            attack_factory=lambda pt: ATTACK,
            dataset_factory=lambda pt: dataset,
            n_users=1_500,
            gamma=0.25,
            n_trials=1,
            rng=0,
        )
        assert len(records) == 2
        assert {r.point["epsilon"] for r in records} == {0.5, 1.0}

    def test_callable_gamma(self, dataset):
        points = [{"gamma": 0.1}, {"gamma": 0.3}]
        records = sweep(
            points,
            scheme_factory=lambda pt: [make_scheme("Ostrich", 1.0)],
            attack_factory=lambda pt: ATTACK,
            dataset_factory=lambda pt: dataset,
            n_users=1_500,
            gamma=lambda pt: pt["gamma"],
            n_trials=1,
            rng=0,
        )
        assert len(records) == 2

    def test_records_to_table_and_format(self, dataset):
        points = [{"epsilon": 0.5}]
        records = sweep(
            points,
            scheme_factory=lambda pt: [make_scheme("Ostrich", 0.5), make_scheme("Trimming", 0.5)],
            attack_factory=lambda pt: ATTACK,
            dataset_factory=lambda pt: dataset,
            n_users=1_500,
            gamma=0.25,
            n_trials=1,
            rng=0,
        )
        table = records_to_table(records, row_key="epsilon")
        assert set(table[0.5]) == {"Ostrich", "Trimming"}
        text = format_table(table, row_label="epsilon")
        assert "Ostrich" in text and "0.5" in text

    def test_records_to_table_rejects_missing_row_key(self, dataset):
        from repro.simulation.sweep import SweepRecord

        records = [
            SweepRecord(point={"epsilon": 0.5}, scheme="Ostrich", mse=1.0,
                        bias=0.0, n_trials=1),
            SweepRecord(point={"gamma": 0.25}, scheme="Ostrich", mse=2.0,
                        bias=0.0, n_trials=1),
        ]
        # heterogeneous points must be filtered per panel, not collapsed
        with pytest.raises(KeyError, match="epsilon"):
            records_to_table(records, row_key="epsilon")
        with pytest.raises(KeyError, match="gamma"):
            records_to_table(records, row_key="scheme", column_key="gamma")
