"""Synthetic numerical datasets.

The paper's two synthetic datasets are drawn from Beta(2, 5) and Beta(5, 2)
over ``[0, 1]`` (1,000,000 samples each) and then normalised into ``[-1, 1]``.
Their normalised true means reported in Figure 4 are approximately -0.4286 and
+0.4286 for the ideal distributions (the paper reports the empirical values
-0.3994 and 0.4136 for its specific draws).

``uniform_dataset`` and ``gaussian_dataset`` are extra generators used by the
test-suite and the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import NumericalDataset, normalize_to_unit
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_integer, check_positive


def beta_dataset(
    a: float,
    b: float,
    n_samples: int = 100_000,
    rng: RngLike = None,
    name: str | None = None,
) -> NumericalDataset:
    """Samples from a Beta(a, b) distribution on [0, 1], normalised to [-1, 1]."""
    check_positive(a, "a")
    check_positive(b, "b")
    check_integer(n_samples, "n_samples", minimum=1)
    rng = ensure_rng(rng)
    raw = rng.beta(a, b, size=n_samples)
    values = normalize_to_unit(raw, 0.0, 1.0)
    return NumericalDataset(
        name=name or f"Beta({a:g},{b:g})",
        values=values,
        raw_domain=(0.0, 1.0),
        description=(
            f"{n_samples} samples drawn from a Beta({a:g}, {b:g}) distribution on "
            "[0, 1], normalised into [-1, 1] (paper Section VI-A)."
        ),
    )


def uniform_dataset(
    n_samples: int = 100_000,
    low: float = -1.0,
    high: float = 1.0,
    rng: RngLike = None,
) -> NumericalDataset:
    """Uniform samples over ``[low, high] subset of [-1, 1]``."""
    check_integer(n_samples, "n_samples", minimum=1)
    if not -1.0 <= low < high <= 1.0:
        raise ValueError(f"[low, high] must be a sub-interval of [-1, 1], got [{low}, {high}]")
    rng = ensure_rng(rng)
    values = rng.uniform(low, high, size=n_samples)
    return NumericalDataset(
        name="Uniform",
        values=values,
        raw_domain=(low, high),
        description=f"{n_samples} uniform samples over [{low:g}, {high:g}].",
    )


def gaussian_dataset(
    n_samples: int = 100_000,
    mean: float = 0.0,
    std: float = 0.3,
    rng: RngLike = None,
) -> NumericalDataset:
    """Clipped Gaussian samples in ``[-1, 1]``."""
    check_integer(n_samples, "n_samples", minimum=1)
    check_positive(std, "std")
    rng = ensure_rng(rng)
    values = np.clip(rng.normal(mean, std, size=n_samples), -1.0, 1.0)
    return NumericalDataset(
        name="Gaussian",
        values=values,
        raw_domain=(-1.0, 1.0),
        description=(
            f"{n_samples} Gaussian samples (mean={mean:g}, std={std:g}) clipped to [-1, 1]."
        ),
    )


__all__ = ["beta_dataset", "uniform_dataset", "gaussian_dataset"]
