"""Pluggable array-compute backends for the pipeline's hot kernels.

The mechanism samplers, the EM inner products, and the collection
accumulators all funnel their array work through one process-local
:class:`~repro.backends.base.ArrayBackend`, selected by name:

``"numpy"`` (default)
    The bit-stable reference — kernel bodies moved verbatim from the seed
    implementation, test-pinned to produce identical outputs draw for draw.
``"fast"``
    Pure-numpy single-pass rewrites (inverse-CDF samplers, sparse OUE,
    fused accumulation).  Statistically equivalent, not bit-identical.
``"numba"``
    JIT-compiled loops over the fast algorithms when numba is importable;
    otherwise it degrades to the numpy reference with a
    :class:`RuntimeWarning` instead of crashing.

Like ``collect_workers`` and ``probe_strategy``, the backend is an
*execution detail*: it never enters an experiment fingerprint or scenario
digest, but it is recorded in ``meta.execution`` because the fast backends
consume the RNG stream differently and therefore change which statistically
equivalent sample a seeded run produces.

The active backend is process-local state.  Hot-path call sites read it via
:func:`get_backend`; run-scoped selection goes through the
:func:`use_backend` context manager (``use_backend(None)`` is a no-op
passthrough, so callers can always wrap), and shard/pool workers re-apply
the parent's choice from the task payload.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.backends.base import ArrayBackend
from repro.backends.fast import FastBackend
from repro.backends.numba_backend import create_numba_backend, numba_available

#: selectable backend names, reference first
BACKENDS = ("numpy", "fast", "numba")

DEFAULT_BACKEND = "numpy"

# one instance per concrete class — backends are stateless, so resolving the
# same name twice may share an instance
_instances: Dict[str, ArrayBackend] = {}


def check_backend(backend: str) -> str:
    """Validate a backend name, returning it unchanged.

    Raises
    ------
    ValueError
        If ``backend`` is not one of :data:`BACKENDS`.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    return backend


def resolve_backend(name: str) -> ArrayBackend:
    """Instantiate (or reuse) the backend registered under ``name``.

    Resolving ``"numba"`` without numba installed warns and hands back the
    numpy reference — the returned instance's ``.name`` says what actually
    runs, which is also what shard tasks and artifacts record.
    """
    check_backend(name)
    if name == "numba":
        # resolve through the factory every time so the absent-numba warning
        # fires where the request happens (python's warning registry
        # deduplicates repeats); the fallback instance is still shared
        backend = create_numba_backend()
        return _instances.setdefault(backend.name, backend)
    if name not in _instances:
        _instances[name] = FastBackend() if name == "fast" else ArrayBackend()
    return _instances[name]


_active: ArrayBackend = resolve_backend(DEFAULT_BACKEND)


def get_backend() -> ArrayBackend:
    """The process's currently active backend."""
    return _active


def set_backend(name: str) -> ArrayBackend:
    """Make ``name`` the process's active backend (returns the instance)."""
    global _active
    _active = resolve_backend(name)
    return _active


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[ArrayBackend]:
    """Scoped backend selection; ``None`` keeps whatever is active.

    The ``None`` passthrough lets run-scoped callers wrap unconditionally::

        with use_backend(spec.backend):   # spec.backend may be None
            ...
    """
    global _active
    if name is None:
        yield _active
        return
    previous = _active
    _active = resolve_backend(name)
    try:
        yield _active
    finally:
        _active = previous


__all__ = [
    "ArrayBackend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "check_backend",
    "get_backend",
    "numba_available",
    "resolve_backend",
    "set_backend",
    "use_backend",
]
