"""Benchmark: Figure 8 — generalisation to the Square Wave mechanism.

Paper claims: (a) the EMF family reconstructs the value distribution more
accurately (smaller Wasserstein distance) than Ostrich, which ignores the
poison values; (b) the gamma estimate sharpens as epsilon shrinks; (c)(d) the
SW-instantiated DAP variants beat Ostrich on mean-estimation MSE for most
budgets.
"""

from repro.experiments import format_fig8
from repro.experiments.fig8 import run_fig8_distribution, run_fig8_gamma, run_fig8_mse


def test_fig8_square_wave(benchmark, bench_scale_small):
    def run_all():
        return {
            "a": run_fig8_distribution(
                bench_scale_small, epsilons=(0.5, 1.0), rng=0
            ),
            "b": run_fig8_gamma(
                bench_scale_small, dataset_names=("Beta(2,5)",),
                epsilons=(0.0625, 0.5, 2.0), rng=0,
            ),
            "cd": run_fig8_mse(
                bench_scale_small, dataset_names=("Beta(2,5)",),
                epsilons=(1.0, 2.0), epsilon_min=1.0 / 2.0, rng=0,
            ),
        }

    results = benchmark(run_all)
    print("\n" + format_fig8(results))

    # (a): the EMF family beats Ostrich on distribution reconstruction
    for epsilon in (0.5, 1.0):
        distances = {
            r.scheme: r.value for r in results["a"] if r.epsilon == epsilon
        }
        assert min(distances["EMF"], distances["EMF*"], distances["CEMF*"]) < distances["Ostrich"]

    # (b): gamma error at the smallest budget beats the largest budget
    gamma_errors = {r.epsilon: r.value for r in results["b"]}
    assert gamma_errors[0.0625] < gamma_errors[2.0] + 0.02

    # (c): SW-DAP beats Ostrich on mean MSE
    for epsilon in (1.0, 2.0):
        mse = {r.scheme: r.mse for r in results["cd"] if r.point["epsilon"] == epsilon}
        assert min(mse["SW-EMF"], mse["SW-EMF*"], mse["SW-CEMF*"]) < mse["Ostrich"]
