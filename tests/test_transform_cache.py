"""Tests for the process-local transform cache.

Satellite guarantees: a cache hit returns the same array a fresh build would
produce (for both PM and SW across several ``(epsilon, n_buckets)``
combinations), and mutating a returned matrix can never poison the cache.
"""

import numpy as np
import pytest

from repro.core.transform import build_transform_matrix, cached_transform_matrix
from repro.ldp import PiecewiseMechanism, SquareWaveMechanism
from repro.utils.transform_cache import (
    CACHE_CAPACITY,
    cached_matrix,
    clear_transform_cache,
    mechanism_cache_key,
    transform_cache_stats,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_transform_cache()
    yield
    clear_transform_cache()


MECHANISMS = [PiecewiseMechanism, SquareWaveMechanism]
GRIDS = [(0.25, 8, 16), (0.5, 12, 24), (1.0, 16, 32), (2.0, 10, 40)]


class TestCachedTransformMatrix:
    @pytest.mark.parametrize("mechanism_factory", MECHANISMS)
    @pytest.mark.parametrize("epsilon,d_in,d_out", GRIDS)
    def test_hit_equals_fresh_build(self, mechanism_factory, epsilon, d_in, d_out):
        mechanism = mechanism_factory(epsilon)
        fresh = build_transform_matrix(mechanism, d_in, d_out, side="right")
        cached_first = cached_transform_matrix(mechanism, d_in, d_out, side="right")
        cached_second = cached_transform_matrix(mechanism, d_in, d_out, side="right")
        np.testing.assert_array_equal(cached_first.matrix, fresh.matrix)
        np.testing.assert_array_equal(cached_second.matrix, fresh.matrix)
        np.testing.assert_array_equal(
            cached_second.poison_bucket_indices, fresh.poison_bucket_indices
        )
        assert transform_cache_stats()["hits"] >= 1

    @pytest.mark.parametrize("mechanism_factory", MECHANISMS)
    def test_mutation_does_not_poison_cache(self, mechanism_factory):
        mechanism = mechanism_factory(1.0)
        first = cached_transform_matrix(mechanism, 10, 20)
        expected = first.matrix.copy()
        first.matrix[:] = -1.0  # vandalise the returned copy
        second = cached_transform_matrix(mechanism, 10, 20)
        np.testing.assert_array_equal(second.matrix, expected)

    def test_distinct_epsilons_get_distinct_entries(self):
        a = cached_transform_matrix(PiecewiseMechanism(0.5), 8, 16)
        b = cached_transform_matrix(PiecewiseMechanism(1.0), 8, 16)
        assert a.matrix.shape != b.matrix.shape or not np.array_equal(a.matrix, b.matrix)
        assert transform_cache_stats()["misses"] == 2

    def test_sides_share_the_normal_block_entry(self):
        mechanism = PiecewiseMechanism(1.0)
        cached_transform_matrix(mechanism, 8, 16, side="right")
        cached_transform_matrix(mechanism, 8, 16, side="left")
        # the expensive normal block is keyed without the side, so the second
        # build is a hit
        stats = transform_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_mechanism_types_do_not_collide(self):
        pm = cached_transform_matrix(PiecewiseMechanism(1.0), 8, 16)
        sw = cached_transform_matrix(SquareWaveMechanism(1.0), 8, 16)
        assert pm.output_grid.low != sw.output_grid.low
        assert transform_cache_stats()["misses"] == 2


class TestGenericCache:
    def test_builder_called_once(self):
        calls = []

        def builder():
            calls.append(1)
            return np.arange(6.0).reshape(2, 3)

        key = ("test-entry",)
        first = cached_matrix(key, builder)
        second = cached_matrix(key, builder)
        assert calls == [1]
        np.testing.assert_array_equal(first, second)
        first[0, 0] = 99.0
        third = cached_matrix(key, builder)
        assert third[0, 0] == 0.0

    def test_lru_eviction_beyond_capacity(self):
        for index in range(CACHE_CAPACITY + 10):
            cached_matrix(("entry", index), lambda: np.zeros(1))
        assert transform_cache_stats()["size"] == CACHE_CAPACITY

    def test_mechanism_cache_key_distinguishes(self):
        assert mechanism_cache_key(PiecewiseMechanism(1.0)) != mechanism_cache_key(
            SquareWaveMechanism(1.0)
        )
        assert mechanism_cache_key(PiecewiseMechanism(1.0)) != mechanism_cache_key(
            PiecewiseMechanism(2.0)
        )


class TestCachedPathsStayIdentical:
    def test_sw_reconstruction_unaffected_by_cache(self):
        """EMS via the cache must equal EMS with a cold cache (same arrays)."""
        mechanism = SquareWaveMechanism(1.0)
        rng = np.random.default_rng(0)
        reports = mechanism.perturb(rng.random(2_000), rng)
        cold, _ = mechanism.reconstruct_distribution(reports, n_input_buckets=32)
        warm, _ = mechanism.reconstruct_distribution(reports, n_input_buckets=32)
        np.testing.assert_array_equal(cold, warm)
