"""Per-table / per-figure experiment drivers.

Each module is a thin definition of an :class:`~repro.engine.ExperimentSpec`
regenerating one table or figure of the paper's evaluation (Section VI): a
``build_*_spec`` helper (for sweep-style figures) or a spec subclass (for
probing-style panels), a ``run_*`` entry point executing it through
:func:`repro.engine.run_experiment`, and a ``format_*`` renderer producing
the same rows or series the paper reports.  Every ``run_*`` accepts
``n_workers`` to fan the sweep out over a process pool with identical
results.  The benchmark suite (``benchmarks/``) simply invokes these drivers
at a laptop-friendly scale; crank the ``n_users`` / ``n_trials`` arguments up
to approach the paper's 10^6-user setting.
"""

from repro.experiments.defaults import ExperimentScale, QUICK_SCALE, PAPER_SCALE
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.fig4 import run_fig4, format_fig4
from repro.experiments.fig5 import run_fig5, format_fig5
from repro.experiments.fig6 import build_fig6_spec, run_fig6, format_fig6
from repro.experiments.fig7 import build_fig7_spec, run_fig7, format_fig7
from repro.experiments.fig8 import build_fig8_mse_spec, run_fig8, format_fig8
from repro.experiments.fig9 import run_fig9_defense_comparison, format_fig9_defense_comparison
from repro.experiments.fig9_freq import run_fig9_frequency, format_fig9_frequency
from repro.experiments.fig10 import build_fig10_spec, run_fig10, format_fig10
from repro.experiments.matrix import build_matrix_scenario, run_matrix, format_matrix

__all__ = [
    "build_fig6_spec",
    "build_fig7_spec",
    "build_fig8_mse_spec",
    "build_fig10_spec",
    "ExperimentScale",
    "QUICK_SCALE",
    "PAPER_SCALE",
    "run_table1",
    "format_table1",
    "run_fig4",
    "format_fig4",
    "run_fig5",
    "format_fig5",
    "run_fig6",
    "format_fig6",
    "run_fig7",
    "format_fig7",
    "run_fig8",
    "format_fig8",
    "run_fig9_defense_comparison",
    "format_fig9_defense_comparison",
    "run_fig9_frequency",
    "format_fig9_frequency",
    "run_fig10",
    "format_fig10",
    "build_matrix_scenario",
    "run_matrix",
    "format_matrix",
]
