"""Piecewise Mechanism (PM) of Wang et al., the paper's default perturbation.

Given an input ``v`` in ``[-1, 1]`` and budget ``epsilon``, the mechanism
outputs ``v'`` in ``[-C, C]`` with

* ``C = (e^{eps/2} + 1) / (e^{eps/2} - 1)``,
* ``l(v) = (C + 1)/2 * v - (C - 1)/2`` and ``r(v) = l(v) + C - 1``,
* with probability ``e^{eps/2} / (e^{eps/2} + 1)`` the output is uniform on the
  "high" band ``[l(v), r(v)]``; otherwise it is uniform on the complement
  ``[-C, l(v)) U (r(v), C]``.

The output is an unbiased estimator of the input, and the worst-case
per-report variance (over inputs ``v = +-1``) is

``1 / (e^{eps/2} - 1) + (e^{eps/2} + 3) / (3 (e^{eps/2} - 1)^2)``

which is exactly the ``Var_worst`` term in the DAP aggregation weights
(Theorem 6).

Besides sampling, this module exposes the *analytical* transition
probabilities that the EMF transform matrix (Figure 2 of the paper) is built
from: :meth:`PiecewiseMechanism.interval_probability` integrates the output
density over an arbitrary output interval for a given input.  These matrices
depend only on ``(epsilon, grid sizes)``, so sweep workloads build them
through :func:`repro.core.transform.cached_transform_matrix`, which memoises
them per process (see :mod:`repro.utils.transform_cache`).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.backends import get_backend
from repro.ldp.base import NumericalMechanism
from repro.registry import MECHANISMS
from repro.utils.rng import RngLike, ensure_rng


@MECHANISMS.register("piecewise", aliases=("pm",), kind="numerical")
class PiecewiseMechanism(NumericalMechanism):
    """Piecewise Mechanism for numerical values in ``[-1, 1]``."""

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        half = math.exp(self.epsilon / 2.0)
        self._exp_half = half
        #: output domain half-width C
        self.C = (half + 1.0) / (half - 1.0)
        #: probability of landing in the high-probability band
        self.high_prob = half / (half + 1.0)
        # density of the output pdf inside / outside the high band
        band_width = self.C - 1.0  # = 2 / (e^{eps/2} - 1)
        self._p_high = self.high_prob / band_width
        self._p_low = self._p_high / math.exp(self.epsilon)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def output_domain(self) -> Tuple[float, float]:
        return (-self.C, self.C)

    def high_band(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(l(v), r(v))`` — the high-probability band for each input."""
        values = np.asarray(values, dtype=float)
        left = (self.C + 1.0) / 2.0 * values - (self.C - 1.0) / 2.0
        right = left + self.C - 1.0
        return left, right

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb a batch of values (Algorithm 1 of the paper).

        The sampling kernel itself lives on the active array backend
        (:func:`repro.backends.get_backend`): the default numpy backend is
        bit-identical to the historical implementation, fast backends sample
        the same distribution through a single-pass inverse CDF.
        """
        rng = ensure_rng(rng)
        values = self._validate_inputs(values)
        flat = values.ravel()
        left, right = self.high_band(flat)
        outputs = get_backend().pm_sample(
            flat, left, right, self.C, self.high_prob, self._p_high, self._p_low, rng
        )
        return outputs.reshape(values.shape)

    # ------------------------------------------------------------------
    # analytics
    # ------------------------------------------------------------------
    def pdf(self, output: float, value: float) -> float:
        """Output density ``Pr[v' = output | v = value]``."""
        if not -self.C <= output <= self.C:
            return 0.0
        left, right = self.high_band(np.array([value]))
        if left[0] <= output <= right[0]:
            return self._p_high
        return self._p_low

    def interval_probability(
        self, value: float, out_low: float, out_high: float
    ) -> float:
        """``Pr[v' in [out_low, out_high] | v = value]``.

        This is the quantity each entry of the EMF transform matrix needs:
        the probability that a normal user's report lands in a given output
        bucket.  Computed exactly by measuring the overlap of the output
        bucket with the high-probability band.
        """
        out_low = max(out_low, -self.C)
        out_high = min(out_high, self.C)
        if out_high <= out_low:
            return 0.0
        left, right = self.high_band(np.array([value]))
        l_v, r_v = float(left[0]), float(right[0])
        high_overlap = max(0.0, min(out_high, r_v) - max(out_low, l_v))
        total = out_high - out_low
        low_overlap = total - high_overlap
        return high_overlap * self._p_high + low_overlap * self._p_low

    def interval_probability_matrix(
        self, values: np.ndarray, edges: np.ndarray
    ) -> np.ndarray:
        """Vectorised transition probabilities.

        Parameters
        ----------
        values:
            Input values (length ``d``), typically bucket centres of the
            original domain grid.
        edges:
            Output bucket edges (length ``d' + 1``).

        Returns
        -------
        numpy.ndarray
            Matrix of shape ``(d', d)`` where entry ``(i, k)`` is
            ``Pr[v' in output bucket i | v = values[k]]``.
        """
        values = np.asarray(values, dtype=float)
        edges = np.asarray(edges, dtype=float)
        left, right = self.high_band(values)  # shape (d,)
        out_low = edges[:-1][:, None]          # (d', 1)
        out_high = edges[1:][:, None]          # (d', 1)
        out_low = np.clip(out_low, -self.C, self.C)
        out_high = np.clip(out_high, -self.C, self.C)
        total = np.clip(out_high - out_low, 0.0, None)
        high_overlap = np.clip(
            np.minimum(out_high, right[None, :]) - np.maximum(out_low, left[None, :]),
            0.0,
            None,
        )
        low_overlap = total - high_overlap
        return high_overlap * self._p_high + low_overlap * self._p_low

    def variance(self, value: float) -> float:
        """Per-report variance for a specific input value."""
        half = self._exp_half
        return value**2 / (half - 1.0) + (half + 3.0) / (3.0 * (half - 1.0) ** 2)

    def worst_case_variance(self) -> float:
        """Worst-case variance, attained at ``v = +-1`` (Theorem 6's ``B_t``)."""
        return self.variance(1.0)


__all__ = ["PiecewiseMechanism"]
