"""Histogram helpers shared by EMF, EMS and the evaluation metrics."""

from __future__ import annotations

import numpy as np

from repro.utils.discretization import BucketGrid


def histogram_counts(values: np.ndarray, grid: BucketGrid) -> np.ndarray:
    """Counts of ``values`` in each bucket of ``grid`` (float dtype)."""
    return grid.counts(np.asarray(values, dtype=float))


def normalize_histogram(counts: np.ndarray) -> np.ndarray:
    """Normalise non-negative ``counts`` to a probability vector.

    A zero histogram maps to the uniform distribution, which is the safest
    neutral output for downstream estimators.
    """
    counts = np.asarray(counts, dtype=float)
    counts = np.clip(counts, 0.0, None)
    total = counts.sum()
    if total <= 0:
        return np.full(counts.shape, 1.0 / counts.size)
    return counts / total


def histogram_mean(frequencies: np.ndarray, centers: np.ndarray) -> float:
    """Mean of a distribution given bucket ``frequencies`` and ``centers``."""
    frequencies = np.asarray(frequencies, dtype=float)
    centers = np.asarray(centers, dtype=float)
    if frequencies.shape != centers.shape:
        raise ValueError(
            f"frequencies and centers must align, got {frequencies.shape} vs {centers.shape}"
        )
    total = frequencies.sum()
    if total <= 0:
        return float(centers.mean())
    return float(np.dot(frequencies, centers) / total)


def histogram_variance(frequencies: np.ndarray, centers: np.ndarray | None = None) -> float:
    """Variance used by the poisoned-side probing rule (Algorithm 3).

    When ``centers`` is ``None`` this is the plain variance of the frequency
    vector itself — exactly the quantity compared in Algorithm 3 (a uniform
    reconstructed histogram has near-zero variance).  With ``centers`` it is
    the variance of the underlying value distribution instead.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if centers is None:
        return float(np.var(frequencies))
    centers = np.asarray(centers, dtype=float)
    mean = histogram_mean(frequencies, centers)
    total = frequencies.sum()
    if total <= 0:
        return float(np.var(centers))
    return float(np.dot(frequencies, (centers - mean) ** 2) / total)


def rebin_histogram(frequencies: np.ndarray, source: BucketGrid, target: BucketGrid) -> np.ndarray:
    """Re-express ``frequencies`` on ``source`` buckets over ``target`` buckets.

    Mass is split proportionally to bucket overlap, so total mass is preserved.
    Used when comparing reconstructed histograms against ground-truth
    histograms built on a different resolution.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.size != source.n_buckets:
        raise ValueError(
            f"frequencies length {frequencies.size} != source buckets {source.n_buckets}"
        )
    out = np.zeros(target.n_buckets)
    for i in range(source.n_buckets):
        s_low, s_high = source.bucket_bounds(i)
        mass = frequencies[i]
        if mass == 0:
            continue
        width = s_high - s_low
        # overlap of [s_low, s_high] with every target bucket
        t_low = np.maximum(target.edges[:-1], s_low)
        t_high = np.minimum(target.edges[1:], s_high)
        overlap = np.clip(t_high - t_low, 0.0, None)
        if width > 0:
            out += mass * overlap / width
        else:  # degenerate bucket: assign to the containing target bucket
            out[target.assign(np.array([s_low]))[0]] += mass
    return out


def cumulative_distribution(frequencies: np.ndarray) -> np.ndarray:
    """Cumulative sums of a (normalised) histogram."""
    return np.cumsum(normalize_histogram(frequencies))


__all__ = [
    "histogram_counts",
    "normalize_histogram",
    "histogram_mean",
    "histogram_variance",
    "rebin_histogram",
    "cumulative_distribution",
]
