"""Tests for the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators import (
    absolute_error,
    frequency_mse,
    mean_squared_error,
    squared_error,
    wasserstein_distance_histograms,
    wasserstein_distance_samples,
)
from repro.utils.discretization import BucketGrid


class TestScalarErrors:
    def test_squared_error(self):
        assert squared_error(2.0, 1.0) == 1.0

    def test_absolute_error(self):
        assert absolute_error(-2.0, 1.0) == 3.0

    def test_mean_squared_error(self):
        assert mean_squared_error([1.0, 3.0], 2.0) == pytest.approx(1.0)

    def test_mean_squared_error_empty(self):
        with pytest.raises(ValueError):
            mean_squared_error([], 0.0)


class TestFrequencyMse:
    def test_zero_for_identical(self):
        assert frequency_mse([0.2, 0.8], [0.2, 0.8]) == 0.0

    def test_simple_value(self):
        assert frequency_mse([0.0, 1.0], [1.0, 0.0]) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            frequency_mse([0.5], [0.5, 0.5])

    def test_empty(self):
        with pytest.raises(ValueError):
            frequency_mse([], [])


class TestWassersteinHistograms:
    def test_identical_distributions(self):
        assert wasserstein_distance_histograms([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_shifted_point_masses(self):
        grid = BucketGrid(0.0, 1.0, 2)
        # all mass in bucket 0 vs all in bucket 1: distance = bucket width
        assert wasserstein_distance_histograms([1, 0], [0, 1], grid) == pytest.approx(0.5)

    def test_symmetry(self):
        a, b = [0.7, 0.2, 0.1], [0.1, 0.2, 0.7]
        assert wasserstein_distance_histograms(a, b) == pytest.approx(
            wasserstein_distance_histograms(b, a)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            wasserstein_distance_histograms([1.0], [0.5, 0.5])


class TestWassersteinSamples:
    def test_identical_samples(self):
        samples = np.array([0.1, 0.5, 0.9])
        assert wasserstein_distance_samples(samples, samples) == pytest.approx(0.0)

    def test_constant_shift(self, rng):
        a = rng.normal(0, 1, 2_000)
        assert wasserstein_distance_samples(a, a + 0.5) == pytest.approx(0.5, abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            wasserstein_distance_samples([], [1.0])


class TestPropertyBased:
    @given(
        a=st.lists(st.floats(0.01, 1, allow_nan=False), min_size=2, max_size=15),
        b=st.lists(st.floats(0.01, 1, allow_nan=False), min_size=2, max_size=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_wasserstein_non_negative_and_symmetric(self, a, b):
        size = min(len(a), len(b))
        a, b = a[:size], b[:size]
        d_ab = wasserstein_distance_histograms(a, b)
        d_ba = wasserstein_distance_histograms(b, a)
        assert d_ab >= 0
        assert d_ab == pytest.approx(d_ba, abs=1e-9)

    @given(
        estimates=st.lists(st.floats(-1, 1, allow_nan=False), min_size=1, max_size=20),
        truth=st.floats(-1, 1, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_mse_non_negative(self, estimates, truth):
        assert mean_squared_error(estimates, truth) >= 0
