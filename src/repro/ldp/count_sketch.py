"""Count-mean-sketch frequency mechanism for high-cardinality domains.

The dense frequency oracles (k-RR, OUE, OLH) all materialise something
proportional to the category count ``k`` — a length-``k`` report vector, a
``k x k`` transform, or a ``(k, n)`` support grid — which rules out the
10^5–10^6-category regimes.  The count-mean-sketch route replaces the dense
domain with an ``r x w`` counter matrix (``sketch_rows`` x ``sketch_width``):

* **Client** — each user picks one of the ``r`` hash rows uniformly, hashes
  their category into that row's ``w`` buckets with the row's seeded mixing
  hash (the same splitmix family OLH uses), and reports the bucket through
  k-RR over the ``w`` buckets at the *full* privacy budget.  A report is one
  ``(row, bucket)`` pair — O(1) per user however large ``k`` is.
* **Server** — reports fold into the ``(r, w)`` counter matrix (mergeable,
  so sharding/checkpointing compose).  Any category's frequency decodes by
  debiasing its bucket's count in every row and averaging; the residual
  ``1/w`` collision mass is removed in closed form.

Decoding is unbiased with standard error ``~ sqrt(w)/(sqrt(n) (e^eps - 1))``
from the privacy noise plus ``~ sqrt(f2_other / (r w))`` from hash
collisions, so wider sketches trade memory for collision error and more rows
average collisions down.  Row seeds are a fixed deterministic sequence —
part of the mechanism's identity, like OLH's hash family, so two parties
instantiating the same ``(rows, width)`` sketch can merge their counters.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backends import get_backend
from repro.ldp.base import CategoricalMechanism, MechanismError
from repro.ldp.olh import _hash_categories
from repro.registry import MECHANISMS
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_integer


def sketch_row_seeds(n_rows: int) -> np.ndarray:
    """Deterministic 32-bit seeds for the sketch's hash rows.

    A Weyl sequence on the golden-ratio multiplier, folded to 32 bits so the
    seeds occupy the same domain as OLH's per-user hash seeds (the shared
    ``_hash_categories`` mixes ``(seed << 32) ^ category``).  Fixed, not
    sampled: the row hashes are mechanism identity — every shard, window and
    decoding party must agree on them for sketches to merge.
    """
    n_rows = check_integer(n_rows, "n_rows", minimum=1)
    idx = np.arange(1, n_rows + 1, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    idx ^= idx >> np.uint64(31)
    return idx & np.uint64(0xFFFFFFFF)


@MECHANISMS.register("count-sketch", aliases=("count_sketch", "cms"), kind="categorical")
class CountSketch(CategoricalMechanism):
    """Count-mean-sketch frequency oracle over categories ``0 .. k-1``.

    Parameters
    ----------
    epsilon:
        Privacy budget (> 0); spent in full on the single reported bucket.
    n_categories:
        Size of the categorical domain (may far exceed the sketch size).
    sketch_rows:
        Number of independent hash rows ``r`` (averaging down collisions).
    sketch_width:
        Buckets per row ``w`` (the k-RR domain each user reports over).
    """

    def __init__(
        self,
        epsilon: float,
        n_categories: int,
        sketch_rows: int = 4,
        sketch_width: int = 1024,
    ) -> None:
        super().__init__(epsilon, n_categories)
        self.sketch_rows = check_integer(sketch_rows, "sketch_rows", minimum=1)
        self.sketch_width = check_integer(sketch_width, "sketch_width", minimum=2)
        self.row_seeds = sketch_row_seeds(self.sketch_rows)
        exp_eps = math.exp(self.epsilon)
        #: k-RR keep/other probabilities over the ``w``-bucket domain
        self.p = exp_eps / (exp_eps + self.sketch_width - 1.0)
        self.q = 1.0 / (exp_eps + self.sketch_width - 1.0)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def perturb(self, categories: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb categories into ``(n, 2)`` arrays of ``(row, bucket)``."""
        rng = ensure_rng(rng)
        categories = self._validate_categories(categories).ravel()
        return get_backend().sketch_sample(
            categories,
            self.sketch_rows,
            self.sketch_width,
            self.p,
            _hash_categories,
            self.row_seeds,
            rng,
        )

    def target_reports(
        self, targets: np.ndarray, rng: RngLike = None, size: int = 1
    ) -> np.ndarray:
        """Byzantine reports that maximally boost the target categories.

        The optimal sketch poison mirrors the dense targeted attack: pick a
        target, pick a row uniformly, and report the target's own bucket in
        that row — every poison report lands exactly where the targets'
        decodes look.  Used by the benchmark/test planted-attack rounds.
        """
        rng = ensure_rng(rng)
        targets = self._validate_categories(np.asarray(targets)).ravel()
        if targets.size == 0:
            raise MechanismError("target_reports needs at least one target category")
        chosen = targets[rng.integers(0, targets.size, size=size)]
        rows = rng.integers(0, self.sketch_rows, size=size)
        buckets = _hash_categories(chosen, self.row_seeds[rows], self.sketch_width)
        return np.column_stack([rows.astype(np.int64), buckets.astype(np.int64)])

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def _validate_reports(self, reports: np.ndarray) -> np.ndarray:
        reports = np.asarray(reports)
        if reports.ndim != 2 or reports.shape[1] != 2:
            raise MechanismError(
                f"count-sketch reports must have shape (n, 2), got {reports.shape}"
            )
        return reports.astype(np.int64, copy=False)

    def fold(self, reports: np.ndarray) -> np.ndarray:
        """Fold ``(row, bucket)`` reports into ``(rows, width)`` counts."""
        return get_backend().sketch_chunk(
            self._validate_reports(reports), self.sketch_rows, self.sketch_width
        )

    def check_counts(self, counts: np.ndarray) -> np.ndarray:
        """Validate an externally accumulated sketch-count matrix."""
        counts = np.asarray(counts)
        if counts.shape != (self.sketch_rows, self.sketch_width):
            raise MechanismError(
                f"sketch counts must have shape "
                f"({self.sketch_rows}, {self.sketch_width}), got {counts.shape}"
            )
        return counts

    def hash_rows(self, categories: np.ndarray) -> np.ndarray:
        """Each category's bucket in every row: shape ``(m, rows)``."""
        categories = np.asarray(categories, dtype=np.int64).ravel()
        return _hash_categories(
            categories[:, np.newaxis],
            self.row_seeds[np.newaxis, :],
            self.sketch_width,
        )

    def estimate_categories(
        self, counts: np.ndarray, categories: np.ndarray, reduce: str = "mean"
    ) -> np.ndarray:
        """Debiased frequency estimates for a candidate set from sketch counts.

        ``reduce="mean"`` is the unbiased estimator; ``reduce="median"`` is
        the robust count-median rule — a category elevated in only a minority
        of rows (e.g. because it shares a bucket with a poisoned cell) is
        suppressed, so median decoding is what candidate *ranking* should use
        under attack while mean decoding remains the *estimate*.
        ``reduce="min"`` keeps only mass present in *every* row — the
        signature of targeted poison, which lands on all of a target's cells;
        it is what poison *flagging* keys on.
        """
        counts = self.check_counts(counts)
        if int(counts.sum()) == 0:
            raise MechanismError("cannot estimate frequencies from zero reports")
        categories = self._validate_categories(np.asarray(categories)).ravel()
        return get_backend().sketch_decode(
            counts,
            categories.astype(np.int64),
            self.p,
            self.q,
            _hash_categories,
            self.row_seeds,
            self.sketch_width,
            reduce=reduce,
        )

    def estimate_all(self, counts: np.ndarray, reduce: str = "mean") -> np.ndarray:
        """Debiased frequency estimates for the whole domain (tiled decode)."""
        return self.estimate_categories(
            counts, np.arange(self.n_categories, dtype=np.int64), reduce=reduce
        )

    def estimate_frequencies(self, reports: np.ndarray) -> np.ndarray:
        """Unbiased frequency estimates straight from ``(row, bucket)`` reports."""
        reports = self._validate_reports(reports)
        if reports.shape[0] == 0:
            raise MechanismError("cannot estimate frequencies from zero reports")
        return self.estimate_all(self.fold(reports))

    def occupancy(self) -> np.ndarray:
        """Per-cell domain occupancy: categories hashing to each ``(row, bucket)``."""
        return get_backend().sketch_occupancy(
            self.n_categories, _hash_categories, self.row_seeds, self.sketch_width
        )

    # ------------------------------------------------------------------
    # accuracy
    # ------------------------------------------------------------------
    def frequency_stderr(self, n_reports: int) -> float:
        """Privacy-noise standard error of one decoded frequency.

        The variance of one row's debiased bucket frequency is
        ``q (1 - q) / (p - q)^2`` per report; rows partition the ``n``
        reports, and averaging ``r`` rows of ``n / r`` reports each recovers
        the full-``n`` rate.  The final collision debias rescales by
        ``w / (w - 1)``.
        """
        n_reports = check_integer(n_reports, "n_reports", minimum=1)
        w = self.sketch_width
        noise = self.q * (1.0 - self.q) / (self.p - self.q) ** 2
        return (w / (w - 1.0)) * math.sqrt(noise / n_reports)

    def collision_stderr(self, f2_other: float = 1.0) -> float:
        """Hash-collision standard error of one decoded frequency.

        ``f2_other`` is the sum of squared frequencies of the *other*
        categories (<= 1; 1 is the worst case of one colliding point mass).
        Each row contributes collision mass with variance ``~ f2_other / w``
        and the ``r`` row hashes are independent, so averaging divides the
        variance by ``r``.
        """
        w = self.sketch_width
        return (w / (w - 1.0)) * math.sqrt(max(0.0, float(f2_other)) / (self.sketch_rows * w))

    def variance_per_report(self, frequency: float = 0.0) -> float:
        """Per-user variance of a frequency estimate (privacy noise only)."""
        return (
            self.q * (1.0 - self.q) / (self.p - self.q) ** 2
            + frequency * (1.0 - frequency)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CountSketch(epsilon={self.epsilon:g}, "
            f"n_categories={self.n_categories}, "
            f"rows={self.sketch_rows}, width={self.sketch_width})"
        )


__all__ = ["CountSketch", "sketch_row_seeds"]
