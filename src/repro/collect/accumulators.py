"""Chunked accumulators for the collector's sufficient statistics.

Every accumulator follows the same contract: ``update(chunk)`` consumes one
chunk of reports, ``merge(other)`` combines two accumulators over disjoint
sub-streams, and the finalised statistics are independent of how the stream
was chunked.  For integer counts (histograms, category counts) that
invariance is trivial; for the report sum it is provided by
:class:`ExactSum`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping

import numpy as np

from repro.backends import get_backend
from repro.utils.discretization import BucketGrid
from repro.utils.validation import check_integer, check_positive

#: compress the partial list once it grows past this many entries
_MAX_PARTIALS = 256


# ----------------------------------------------------------------------
# snapshot validation
# ----------------------------------------------------------------------
def _snapshot_field(state: Any, key: str, what: str) -> Any:
    """Fetch a required snapshot key, mapping structural damage to ValueError.

    ``from_state`` consumes checkpoints that crossed a disk or process
    boundary, so every structural assumption is checked up front: a corrupt
    or mismatched snapshot must fail here, loudly, rather than construct an
    accumulator that silently mis-merges later.
    """
    if not isinstance(state, Mapping):
        raise ValueError(
            f"{what} snapshot must be a mapping, got {type(state).__name__}"
        )
    if key not in state:
        raise ValueError(f"{what} snapshot is missing key {key!r}")
    return state[key]


def _snapshot_float(state: Any, key: str, what: str) -> float:
    """A required finite-float snapshot field."""
    raw = _snapshot_field(state, key, what)
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{what} snapshot key {key!r} must be a number, got {raw!r}"
        ) from None
    if not math.isfinite(value):
        raise ValueError(f"{what} snapshot key {key!r} must be finite, got {value}")
    return value


def _snapshot_int(state: Any, key: str, what: str, minimum: int = 0) -> int:
    """A required integer snapshot field (booleans and floats rejected)."""
    raw = _snapshot_field(state, key, what)
    try:
        return check_integer(raw, f"{what} snapshot key {key!r}", minimum=minimum)
    except ValueError:
        raise ValueError(
            f"{what} snapshot key {key!r} must be an integer >= {minimum}, "
            f"got {raw!r}"
        ) from None


def _snapshot_counts(raw: Any, n_buckets: int, what: str) -> np.ndarray:
    """Validate a snapshot count vector: shape, integral values, sign.

    Accepts integer arrays (or lists) verbatim and float arrays whose values
    are exact integers (JSON round-trips may widen); everything else —
    fractional counts, NaNs, strings, wrong shapes — is a corrupt snapshot.
    """
    try:
        counts = np.asarray(raw)
    except (TypeError, ValueError):
        raise ValueError(f"{what} snapshot counts are not array-like") from None
    if counts.dtype.kind not in "iuf":
        raise ValueError(
            f"{what} snapshot counts must be numeric, got dtype {counts.dtype}"
        )
    if counts.shape != (n_buckets,):
        raise ValueError(
            f"{what} snapshot needs {n_buckets} counts, got shape {counts.shape}"
        )
    if counts.dtype.kind == "f":
        if not np.all(np.isfinite(counts)) or np.any(counts != np.floor(counts)):
            raise ValueError(f"{what} snapshot counts must be finite integers")
    counts = counts.astype(np.int64)
    if np.any(counts < 0):
        raise ValueError(f"{what} snapshot counts must be non-negative")
    return counts

#: internal slice length for reducing one chunk (bounds the transient
#: Python-float list to a few MiB even when a caller adds a huge array)
_SLICE = 1 << 20


class ExactSum:
    """Chunking-invariant summation of a float64 stream.

    Each chunk is reduced to a two-term expansion ``(hi, lo)``: ``hi`` is the
    correctly rounded chunk sum (``math.fsum``) and ``lo`` the correctly
    rounded residual ``sum(chunk) - hi``, so the pair carries the exact chunk
    sum to ~106 bits.  The pairs are kept as partials and combined with one
    final ``fsum``, making the result the correctly rounded total up to
    residuals of order ``2**-105`` per chunk — far below the final float64
    rounding step, so the value does not depend on the chunking.
    """

    __slots__ = ("_partials",)

    def __init__(self) -> None:
        self._partials: List[float] = []

    def add(self, values: np.ndarray) -> "ExactSum":
        """Accumulate one chunk of values."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return self
        if not np.all(np.isfinite(values)):
            raise ValueError("ExactSum requires finite values")
        for start in range(0, values.size, _SLICE):
            items = values[start : start + _SLICE].tolist()
            hi = math.fsum(items)
            items.append(-hi)
            lo = math.fsum(items)
            if hi != 0.0:
                self._partials.append(hi)
            if lo != 0.0:
                self._partials.append(lo)
        self._compress()
        return self

    def add_value(self, value: float) -> "ExactSum":
        """Accumulate a single scalar."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError("ExactSum requires finite values")
        if value != 0.0:
            self._partials.append(value)
        self._compress()
        return self

    def merge(self, other: "ExactSum") -> "ExactSum":
        """Absorb another accumulator (covering a disjoint sub-stream)."""
        self._partials.extend(other._partials)
        self._compress()
        return self

    def _compress(self) -> None:
        if len(self._partials) > _MAX_PARTIALS:
            self._partials = self._compacted()

    def _compacted(self) -> List[float]:
        """The partials reduced to a two-term ``(hi, lo)`` expansion."""
        hi = math.fsum(self._partials)
        lo = math.fsum(self._partials + [-hi])
        return [p for p in (hi, lo) if p != 0.0]

    @property
    def value(self) -> float:
        """The accumulated sum (correctly rounded)."""
        return math.fsum(self._partials)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot: at most two floats, value-preserving.

        The partial list is compacted to its ``(hi, lo)`` expansion — the
        same reduction :meth:`merge` applies when the list grows — so a
        restored accumulator carries the identical sum and keeps the
        chunking/merge-order invariance contract.
        """
        return {"partials": self._compacted()}

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ExactSum":
        """Rebuild an accumulator from :meth:`state_dict` output.

        Raises ``ValueError`` on any structurally corrupt snapshot (missing
        key, non-sequence, non-numeric or non-finite partials).
        """
        raw = _snapshot_field(state, "partials", "ExactSum")
        if isinstance(raw, (str, bytes, Mapping)) or not hasattr(raw, "__iter__"):
            raise ValueError(
                f"ExactSum snapshot partials must be a sequence of floats, "
                f"got {type(raw).__name__}"
            )
        try:
            partials = [float(p) for p in raw]
        except (TypeError, ValueError):
            raise ValueError(
                "ExactSum snapshot partials must be numbers"
            ) from None
        if not all(math.isfinite(p) for p in partials):
            raise ValueError("ExactSum snapshot partials must be finite")
        out = cls()
        out._partials = [p for p in partials if p != 0.0]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExactSum(value={self.value!r})"


class SumCount:
    """Streaming sum + count (the sufficient statistics of a mean)."""

    __slots__ = ("_sum", "count")

    def __init__(self) -> None:
        self._sum = ExactSum()
        self.count = 0

    def update(self, values: np.ndarray) -> "SumCount":
        values = np.asarray(values, dtype=float).ravel()
        self._sum.add(values)
        self.count += int(values.size)
        return self

    def merge(self, other: "SumCount") -> "SumCount":
        self._sum.merge(other._sum)
        self.count += other.count
        return self

    @property
    def sum(self) -> float:
        return self._sum.value

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("cannot take the mean of an empty stream")
        return self._sum.value / self.count


class HistogramAccumulator:
    """Streaming histogram over a fixed :class:`BucketGrid`.

    Counts are integers, so chunked accumulation is exactly equal to a
    one-shot ``grid.counts`` over the concatenated stream.  Optionally tracks
    the exact sum and count of the raw values (the DAP group accumulator
    needs both).
    """

    def __init__(self, grid: BucketGrid, track_sum: bool = False) -> None:
        self.grid = grid
        self.counts = np.zeros(grid.n_buckets, dtype=np.int64)
        self._sum = ExactSum() if track_sum else None
        self.n_values = 0

    def update(self, values: np.ndarray) -> "HistogramAccumulator":
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return self
        # BucketGrid.assign validates too; the accumulator-level check is
        # kept so nothing is counted and no ExactSum partial is recorded
        # before the whole chunk is known-good, whichever grid implementation
        # sits underneath — the same error family ExactSum raises
        if not np.all(np.isfinite(values)):
            raise ValueError("HistogramAccumulator requires finite values")
        counts, chunk_sum = get_backend().histogram_chunk(values, self.grid)
        self.counts += counts
        if self._sum is not None:
            if chunk_sum is None:
                # reference path: exact, chunking-invariant fsum over values
                self._sum.add(values)
            else:
                # fast path: the backend pre-reduced the chunk to one float;
                # the scalar folds into the same partials representation, so
                # shard snapshots and merges behave identically
                self._sum.add_value(chunk_sum)
        self.n_values += int(values.size)
        return self

    def merge(self, other: "HistogramAccumulator") -> "HistogramAccumulator":
        if other.grid != self.grid:
            raise ValueError("cannot merge histogram accumulators over different grids")
        if (self._sum is None) != (other._sum is None):
            raise ValueError("cannot merge accumulators with mismatched track_sum")
        self.counts += other.counts
        if self._sum is not None:
            self._sum.merge(other._sum)
        self.n_values += other.n_values
        return self

    @property
    def sum(self) -> float:
        if self._sum is None:
            raise ValueError("histogram accumulator was built with track_sum=False")
        return self._sum.value

    def counts_float(self) -> np.ndarray:
        """Counts as float64 (what the EM machinery consumes)."""
        return self.counts.astype(float)

    def state_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot: grid geometry, integer counts, sum partials."""
        return {
            "grid": {
                "low": self.grid.low,
                "high": self.grid.high,
                "n_buckets": self.grid.n_buckets,
            },
            "counts": self.counts.tolist(),
            "n_values": self.n_values,
            "sum": None if self._sum is None else self._sum.state_dict(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "HistogramAccumulator":
        """Rebuild an accumulator from :meth:`state_dict` output.

        Validates the full snapshot — grid geometry (finite edges, positive
        width), count shape/dtype/sign, and the ``sum(counts) == n_values``
        invariant every live accumulator maintains — and raises
        ``ValueError`` on any mismatch, so a corrupt checkpoint cannot
        produce an accumulator that mis-merges later.
        """
        grid_state = _snapshot_field(state, "grid", "histogram")
        low = _snapshot_float(grid_state, "low", "histogram grid")
        high = _snapshot_float(grid_state, "high", "histogram grid")
        n_buckets = _snapshot_int(grid_state, "n_buckets", "histogram grid", minimum=1)
        try:
            grid = BucketGrid(low, high, n_buckets)
        except ValueError as error:
            raise ValueError(f"histogram snapshot grid is invalid: {error}") from None
        counts = _snapshot_counts(
            _snapshot_field(state, "counts", "histogram"), grid.n_buckets, "histogram"
        )
        n_values = _snapshot_int(state, "n_values", "histogram")
        if int(counts.sum()) != n_values:
            raise ValueError(
                f"histogram snapshot counts sum to {int(counts.sum())} but "
                f"claim n_values={n_values}; the snapshot is corrupt"
            )
        raw_sum = _snapshot_field(state, "sum", "histogram")
        out = cls(grid, track_sum=raw_sum is not None)
        out.counts = counts
        out.n_values = n_values
        if raw_sum is not None:
            out._sum = ExactSum.from_state(raw_sum)
        return out


class CategoryCountAccumulator:
    """Streaming category counts for the k-RR frequency path."""

    def __init__(self, n_categories: int) -> None:
        self.n_categories = check_integer(n_categories, "n_categories", minimum=1)
        self.counts = np.zeros(self.n_categories, dtype=np.int64)

    def update(self, reports: np.ndarray) -> "CategoryCountAccumulator":
        reports = np.asarray(reports, dtype=int).ravel()
        if reports.size == 0:
            return self
        # the backend validates the report range (reference: explicit min/max
        # check; fast: bincount's own negative check plus a length check) and
        # raises the same error message either way
        self.counts += get_backend().category_chunk(reports, self.n_categories)
        return self

    def merge(self, other: "CategoryCountAccumulator") -> "CategoryCountAccumulator":
        if other.n_categories != self.n_categories:
            raise ValueError("cannot merge category accumulators of different arity")
        self.counts += other.counts
        return self

    @property
    def n_reports(self) -> int:
        return int(self.counts.sum())

    def counts_float(self) -> np.ndarray:
        return self.counts.astype(float)

    def state_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot of the category counts."""
        return {"n_categories": self.n_categories, "counts": self.counts.tolist()}

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "CategoryCountAccumulator":
        """Rebuild an accumulator from :meth:`state_dict` output.

        Raises ``ValueError`` on corrupt snapshots (missing keys, wrong
        shape, fractional/negative/non-finite counts).
        """
        out = cls(_snapshot_int(state, "n_categories", "category", minimum=1))
        out.counts = _snapshot_counts(
            _snapshot_field(state, "counts", "category"),
            out.n_categories,
            "category",
        )
        return out


class SketchAccumulator:
    """Streaming ``(rows, width)`` counter matrix for the count-sketch path.

    Consumes ``(row, bucket)`` report pairs and folds them into the sketch's
    counter matrix.  Counts are integers, so chunked accumulation and merges
    are exactly equal to a one-shot fold over the concatenated stream — the
    same invariance contract as :class:`CategoryCountAccumulator`, which is
    what lets sharded collection, checkpointing and the windowed service
    compose with the sketch for free.
    """

    def __init__(self, sketch_rows: int, sketch_width: int) -> None:
        self.sketch_rows = check_integer(sketch_rows, "sketch_rows", minimum=1)
        self.sketch_width = check_integer(sketch_width, "sketch_width", minimum=2)
        self.counts = np.zeros((self.sketch_rows, self.sketch_width), dtype=np.int64)

    def update(self, reports: np.ndarray) -> "SketchAccumulator":
        reports = np.asarray(reports, dtype=np.int64)
        if reports.size == 0:
            return self
        if reports.ndim != 2 or reports.shape[1] != 2:
            raise ValueError(
                f"sketch reports must have shape (n, 2), got {reports.shape}"
            )
        # the backend validates the (row, bucket) ranges (reference: explicit
        # min/max checks; fast: bincount's own bounds plus a bucket check)
        # and raises the same error message either way
        self.counts += get_backend().sketch_chunk(
            reports, self.sketch_rows, self.sketch_width
        )
        return self

    def merge(self, other: "SketchAccumulator") -> "SketchAccumulator":
        if (
            other.sketch_rows != self.sketch_rows
            or other.sketch_width != self.sketch_width
        ):
            raise ValueError(
                f"cannot merge sketch accumulators of different geometry: "
                f"({self.sketch_rows}, {self.sketch_width}) vs "
                f"({other.sketch_rows}, {other.sketch_width})"
            )
        self.counts += other.counts
        return self

    @property
    def n_reports(self) -> int:
        return int(self.counts.sum())

    def counts_float(self) -> np.ndarray:
        return self.counts.astype(float)

    def state_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot: geometry plus row-major flat counts."""
        return {
            "sketch_rows": self.sketch_rows,
            "sketch_width": self.sketch_width,
            "counts": self.counts.ravel().tolist(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "SketchAccumulator":
        """Rebuild an accumulator from :meth:`state_dict` output.

        Raises ``ValueError`` on corrupt snapshots (missing keys, wrong
        geometry or count length, fractional/negative/non-finite counts).
        """
        out = cls(
            _snapshot_int(state, "sketch_rows", "sketch", minimum=1),
            _snapshot_int(state, "sketch_width", "sketch", minimum=2),
        )
        flat = _snapshot_counts(
            _snapshot_field(state, "counts", "sketch"),
            out.sketch_rows * out.sketch_width,
            "sketch",
        )
        out.counts = flat.reshape(out.sketch_rows, out.sketch_width)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SketchAccumulator(rows={self.sketch_rows}, "
            f"width={self.sketch_width}, n_reports={self.n_reports})"
        )


@dataclass(frozen=True)
class GroupStats:
    """Sufficient statistics of one DAP group's report stream.

    Everything :meth:`repro.core.dap.DAPProtocol.aggregate_stats` needs:
    the output-grid histogram drives probing and the EMF family, the exact
    report sum and count drive the corrected mean, and ``n_users`` is kept
    for bookkeeping parity with :class:`~repro.core.dap.GroupCollection`.
    """

    epsilon: float
    n_reports: int
    report_sum: float
    output_counts: np.ndarray
    output_grid: BucketGrid
    n_users: int = 0


class GroupAccumulator:
    """Chunked accumulator for one DAP group.

    The output grid must be fixed before the stream starts; the protocol
    derives it from the group's expected report count (known up front: the
    grouping stage fixes group sizes and per-user report multiplicities), so
    ``n_expected_reports`` doubles as a consistency check at finalisation.
    """

    def __init__(
        self,
        epsilon: float,
        output_grid: BucketGrid,
        n_expected_reports: int | None = None,
        n_users: int = 0,
    ) -> None:
        self.epsilon = float(epsilon)
        self.n_users = int(n_users)
        self.n_expected_reports = (
            None
            if n_expected_reports is None
            else check_integer(n_expected_reports, "n_expected_reports", minimum=0)
        )
        self._histogram = HistogramAccumulator(output_grid, track_sum=True)

    @property
    def output_grid(self) -> BucketGrid:
        return self._histogram.grid

    @property
    def n_reports(self) -> int:
        return self._histogram.n_values

    def update(self, reports: np.ndarray) -> "GroupAccumulator":
        """Consume one chunk of (perturbed or poison) reports."""
        self._histogram.update(reports)
        return self

    def update_stream(self, chunks: Iterable[np.ndarray]) -> "GroupAccumulator":
        """Consume a whole iterable of report chunks."""
        for chunk in chunks:
            self.update(chunk)
        return self

    def merge(self, other: "GroupAccumulator") -> "GroupAccumulator":
        if other.epsilon != self.epsilon:
            raise ValueError("cannot merge group accumulators with different budgets")
        self._histogram.merge(other._histogram)
        self.n_users += other.n_users
        return self

    def state_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot for checkpoints and cross-process transport.

        Carries only sufficient statistics — bucket counts plus the compacted
        sum partials, never raw reports — so shipping a shard's partial round
        across a process boundary costs a few kilobytes regardless of how many
        reports it accumulated.
        """
        return {
            "epsilon": self.epsilon,
            "n_users": self.n_users,
            "n_expected_reports": self.n_expected_reports,
            "histogram": self._histogram.state_dict(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "GroupAccumulator":
        """Rebuild an accumulator from :meth:`state_dict` output.

        On top of the histogram snapshot's own validation this checks the
        group identity fields — a finite positive budget, a non-negative
        user count, and an expected-report count the accumulated stream has
        not already overshot — raising ``ValueError`` on any mismatch.
        """
        histogram = HistogramAccumulator.from_state(
            _snapshot_field(state, "histogram", "group")
        )
        if histogram._sum is None:
            raise ValueError("group snapshot must track the report sum")
        epsilon = check_positive(
            _snapshot_float(state, "epsilon", "group"), "group snapshot epsilon"
        )
        expected = _snapshot_field(state, "n_expected_reports", "group")
        if expected is not None:
            expected = _snapshot_int(state, "n_expected_reports", "group")
            if histogram.n_values > expected:
                raise ValueError(
                    f"group snapshot accumulated {histogram.n_values} reports "
                    f"but was sized for {expected}; the snapshot is corrupt"
                )
        out = cls(
            epsilon,
            histogram.grid,
            n_expected_reports=expected,
            n_users=_snapshot_int(state, "n_users", "group"),
        )
        out._histogram = histogram
        return out

    def stats(self) -> GroupStats:
        """Finalise into :class:`GroupStats` (validates the expected count)."""
        if (
            self.n_expected_reports is not None
            and self.n_reports != self.n_expected_reports
        ):
            raise ValueError(
                f"group (epsilon={self.epsilon:g}) accumulated {self.n_reports} "
                f"reports but was sized for {self.n_expected_reports}; the output "
                f"grid would not match the aggregation-side bucket counts"
            )
        return GroupStats(
            epsilon=self.epsilon,
            n_reports=self.n_reports,
            report_sum=self._histogram.sum,
            output_counts=self._histogram.counts_float(),
            output_grid=self.output_grid,
            n_users=self.n_users,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GroupAccumulator(epsilon={self.epsilon:g}, "
            f"n_reports={self.n_reports}, d_out={self.output_grid.n_buckets})"
        )


__all__ = [
    "CategoryCountAccumulator",
    "ExactSum",
    "GroupAccumulator",
    "GroupStats",
    "HistogramAccumulator",
    "SketchAccumulator",
    "SumCount",
]
