"""Per-stage wall-time accounting for the protocol hot paths.

The pipeline's interesting stages — client-side **collect**ion, the
likelihood-driven **probe**, the remaining collector-side **aggregate**
work, and classical **defense** scoring — are scattered across modules, so
this module keeps one process-local accumulator that the instrumented call
sites feed through :func:`stage`.  Accumulation is a pair of
``perf_counter`` calls per stage entry (nanoseconds against rounds that
take milliseconds), so it is always on; whether anything *reads* the
totals is the caller's business — the engine snapshots them around each
work unit and records the deltas into the run artifact's
``meta.execution.profile`` when profiling is requested.

Totals are per process.  Pool workers accumulate into their own process's
totals, which the executor ships back alongside each unit's records, so a
parallel run profiles just like a serial one.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Mapping, TypeVar

_F = TypeVar("_F", bound=Callable)

#: the canonical stage names, in pipeline order; the ``collect.*`` and
#: ``probe.*`` entries are sub-timers that deliberately nest *inside* their
#: parent stage (mechanism sampling, poison-report drawing, accumulator
#: updates under ``collect``; sketch decoding and the greedy EM under
#: ``probe``), so the parent bounds their sum rather than adding to it
STAGES = (
    "collect",
    "collect.sample",
    "collect.poison",
    "collect.accumulate",
    "probe",
    "probe.decode",
    "probe.em",
    "aggregate",
    "defense",
)

_totals: Dict[str, float] = {}


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Accumulate the wall time of the enclosed block under ``name``.

    Instrumented call sites do not nest the same stage.  Distinct stages may
    nest, and the outer stage then includes the inner one's wall time: the
    top-level stages are placed so they never do, while the ``collect.*``
    sub-timers nest inside ``collect`` by design — they attribute the
    collect total to its kernels without changing it.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        _totals[name] = _totals.get(name, 0.0) + (time.perf_counter() - start)


def profiled_stage(name: str) -> Callable[[_F], _F]:
    """Decorator form of :func:`stage` for whole functions/methods."""

    def wrap(function: _F) -> _F:
        @functools.wraps(function)
        def inner(*args, **kwargs):
            with stage(name):
                return function(*args, **kwargs)

        return inner  # type: ignore[return-value]

    return wrap


def snapshot() -> Dict[str, float]:
    """Copy of this process's cumulative stage totals (seconds)."""
    return dict(_totals)


def delta_since(before: Mapping[str, float]) -> Dict[str, float]:
    """Stage time accumulated since ``before`` (a :func:`snapshot`)."""
    return {
        name: total - before.get(name, 0.0)
        for name, total in _totals.items()
        if total - before.get(name, 0.0) > 0.0
    }


def merge_profiles(
    target: Dict[str, float], addition: Mapping[str, float]
) -> Dict[str, float]:
    """Fold one profile delta into ``target`` (in place; returned for chaining)."""
    for name, seconds in addition.items():
        target[name] = target.get(name, 0.0) + seconds
    return target


def format_profile(profile: Mapping[str, float]) -> str:
    """Render a profile as ``stage=1.234s`` pairs in pipeline order."""
    ordered = [name for name in STAGES if name in profile]
    ordered += sorted(set(profile) - set(STAGES))
    return " ".join(f"{name}={profile[name]:.3f}s" for name in ordered)


__all__ = [
    "STAGES",
    "stage",
    "profiled_stage",
    "snapshot",
    "delta_since",
    "merge_profiles",
    "format_profile",
]
