"""Benchmark: Figure 5 — accuracy of the Byzantine-proportion estimate.

Paper claims: (a)(b) |gamma_hat - gamma| shrinks as epsilon shrinks; (c) the
false-positive rate at the smallest budget is a few percent; (d) an input
manipulation attack stays close to the false-positive level (EMF cannot see
honestly perturbed poison inputs).
"""

from repro.experiments import format_fig5, run_fig5


def test_fig5_gamma_estimation(benchmark, bench_scale):
    records = benchmark(
        run_fig5,
        bench_scale,
        epsilons=(2.0, 0.5, 0.0625),
        gammas=(0.1, 0.4),
        poison_ranges=("[C/2,C]", "[O,C]"),
        rng=0,
    )
    print("\n" + format_fig5(records))

    # (a)(b): error at the smallest budget beats the error at the largest
    for panel, gamma in (("a", 0.1), ("b", 0.4)):
        for range_name in ("[C/2,C]", "[O,C]"):
            series = {
                r.epsilon: r.gamma_error
                for r in records
                if r.panel == panel and r.poison_range == range_name
            }
            assert series[0.0625] < series[2.0] + 0.02

    # (c): small false-positive rate at the smallest budget
    false_positives = [r for r in records if r.panel == "c" and r.epsilon == 0.0625]
    assert all(r.gamma_hat < 0.1 for r in false_positives)

    # (d): at the small budgets where EMF probing is accurate, an IMA stays
    # near the false-positive level, far below the true 25% Byzantine share
    ima_small_eps = [r for r in records if r.panel == "d" and r.epsilon == 0.0625]
    assert all(r.gamma_hat < 0.15 for r in ima_small_eps)
